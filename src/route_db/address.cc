#include "src/route_db/address.h"

namespace pathalias {
namespace {

// Splits off relays from a pure bang path: "a!b!rest" appends a, b; returns "rest".
std::string_view ConsumeBangs(std::string_view text, Address& address) {
  size_t bang;
  while ((bang = text.find('!')) != std::string_view::npos) {
    address.saw_bang = true;
    address.path.emplace_back(text.substr(0, bang));
    text = text.substr(bang + 1);
  }
  return text;
}

// Handles "user%h2%h3@?..." local parts: each % names a further relay, applied
// right-to-left after the @ host.
void ConsumePercents(std::string_view local, Address& address) {
  std::vector<std::string_view> parts;
  size_t percent;
  while ((percent = local.rfind('%')) != std::string_view::npos) {
    address.saw_percent = true;
    parts.push_back(local.substr(percent + 1));
    local = local.substr(0, percent);
  }
  for (std::string_view relay : parts) {
    address.path.emplace_back(relay);
  }
  // Remaining local part may itself be a bang path (gateways produce these).
  std::string_view rest = ConsumeBangs(local, address);
  address.user = std::string(rest);
}

}  // namespace

Address ParseAddress(std::string_view text, ParseStyle style) {
  Address address;
  if (style == ParseStyle::kRfc822First) {
    // Rightmost @ binds first: everything after it is the first relay.
    size_t at = text.rfind('@');
    if (at != std::string_view::npos) {
      address.saw_at = true;
      address.path.emplace_back(text.substr(at + 1));
      ConsumePercents(text.substr(0, at), address);
      return address;
    }
    std::string_view rest = ConsumeBangs(text, address);
    ConsumePercents(rest, address);
    return address;
  }
  // UUCP first: leftmost !s bind first, then any @ in the remainder, then %s.
  std::string_view rest = ConsumeBangs(text, address);
  size_t at = rest.rfind('@');
  if (at != std::string_view::npos) {
    address.saw_at = true;
    address.path.emplace_back(rest.substr(at + 1));
    ConsumePercents(rest.substr(0, at), address);
    return address;
  }
  ConsumePercents(rest, address);
  return address;
}

std::string ToBangPath(const Address& address) {
  std::string out;
  for (const std::string& relay : address.path) {
    out += relay;
    out += '!';
  }
  out += address.user;
  return out;
}

std::string ToPercentForm(const Address& address) {
  if (address.path.empty()) {
    return address.user;
  }
  std::string out = address.user;
  for (size_t i = address.path.size(); i-- > 1;) {
    out += '%';
    out += address.path[i];
  }
  out += '@';
  out += address.path[0];
  return out;
}

}  // namespace pathalias
