// Message-header handling per the paper's guidelines (§Perspectives on relative
// addressing and §Integrating pathalias with mailers).
//
// The paper closes with six rules that make internetwork addressing workable; the four
// that concern header text are implemented here:
//   * "Message headers should be modified only as necessary to conform to network
//     standards."  — relays pass To:/Cc: through untouched;
//   * "A host must not generate a return path that would be rejected if used." — an
//     originating host rewrites its recipients with full database routes, and its
//     From: with its own name, so every visible address works when mailed back;
//   * "Relays within a network should not modify routes, nor translate to foreign
//     addressing styles." — a relay's only edit is extending the relative From: path
//     with its own name (that is maintenance of correctness, not modification: the
//     address is relative, and the mail just moved one hop);
//   * "Gateways should translate between addressing styles when providing gateway
//     services." — gateway mode converts every address to the target side's syntax.
//
// The paper's cbosgd example — a Cc: of seismo!mcvax!piet that an "overly-enthusiastic"
// optimizer would abbreviate to mcvax!piet and thereby break for every other reader of
// the header — is pinned by the tests: relays here never shorten recipient paths.

#ifndef SRC_ROUTE_DB_HEADERS_H_
#define SRC_ROUTE_DB_HEADERS_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/route_db/resolver.h"

namespace pathalias {

// What the machine running the rewriter is doing with the message.
enum class MailRole {
  kOriginate,  // the message was composed here
  kRelay,      // passing through; UUCP neighbor handed it to us
  kGateway,    // crossing between addressing worlds (UUCP <-> RFC822)
};

// Target syntax for gateway translation.
enum class AddressStyle {
  kUucp,    // bang paths: a!b!user
  kRfc822,  // user@host, relays folded into the underground user%h2@h1 form
};

struct HeaderRewriteOptions {
  ParseStyle parse_style = ParseStyle::kUucpFirst;
  AddressStyle gateway_target = AddressStyle::kRfc822;
};

class HeaderRewriter {
 public:
  // `resolver` may be null for kRelay/kGateway roles (they never consult the
  // database); kOriginate requires it.
  HeaderRewriter(std::string local_host, const Resolver* resolver,
                 HeaderRewriteOptions options = {});

  // Rewrites one address according to the role rules described above.  Addresses that
  // cannot be resolved (unknown host, kOriginate) are returned unchanged — bouncing is
  // the transport's job, mangling the header would hide the evidence.
  std::string RewriteAddress(std::string_view address, MailRole role) const;

  // Rewrites a complete header block (everything up to the first blank line; the rest
  // of the message is passed through byte-identically).  Understands From:/To:/Cc:
  // (case-insensitive), their RFC822 continuation lines, comma-separated address
  // lists, and the mbox "From " envelope line, which relays extend with the
  // traditional "remote from <host>" marker.
  std::string RewriteMessage(std::string_view message, MailRole role) const;

  const std::string& local_host() const { return local_host_; }

 private:
  std::string RewriteRecipient(std::string_view address, MailRole role) const;
  std::string RewriteOriginator(std::string_view address, MailRole role) const;
  std::string Translate(const Address& address) const;
  std::string RewriteAddressList(std::string_view list, MailRole role,
                                 bool originator_field) const;

  // pathalint: allow(R1): operator-configured spelling — the hostname exactly as
  // it must appear in rewritten RFC-822 headers (an output format, not a key).
  std::string local_host_;
  const Resolver* resolver_;
  HeaderRewriteOptions options_;
};

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_HEADERS_H_
