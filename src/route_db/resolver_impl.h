// BasicResolver method definitions, shared by the per-backend instantiation units:
// resolver.cc (BasicResolver<RouteSet>) and src/image/frozen_resolver.cc
// (BasicResolver<FrozenRouteSet>).  Keeping the bodies here — instead of in
// resolver.cc next to an #include of the image subsystem — keeps route_db a lower
// layer than src/image, which depends on it.

#ifndef SRC_ROUTE_DB_RESOLVER_IMPL_H_
#define SRC_ROUTE_DB_RESOLVER_IMPL_H_

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/core/route_printer.h"
#include "src/route_db/resolver.h"

namespace pathalias {
namespace resolver_detail {

// Reply-path hot loop: bang paths are a handful of hosts, so the quadratic scan
// over the vector beats a heap-allocating hash set by an order of magnitude at
// realistic lengths (no allocation, no hashing, two or three resident lines) and
// only loses past ~100 hops — far beyond any UUCP loop test.
inline bool HasRepeatedHost(const std::vector<std::string>& path) {
  for (size_t i = 1; i < path.size(); ++i) {
    const std::string& host = path[i];
    for (size_t j = 0; j < i; ++j) {
      if (path[j] == host) {
        return true;
      }
    }
  }
  return false;
}

// Joins path[first..] and the user into a relative bang path.
inline std::string TailArgument(const std::vector<std::string>& path, size_t first,
                                const std::string& user) {
  std::string out;
  for (size_t i = first; i < path.size(); ++i) {
    out += path[i];
    out += '!';
  }
  out += user;
  return out;
}

}  // namespace resolver_detail

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupInterned(NameId id) const {
  // The query is a known name: the exact probe and the entire domain-suffix walk
  // (caip.rutgers.edu → .rutgers.edu → .edu) are integer chases from here on.
  BatchLookup out;
  if (RouteView route = routes_->FindRouteView(id)) {
    out.route = route;
    out.via = id;
    return out;
  }
  const NameInterner& names = routes_->names();
  for (NameId suffix = names.Suffix(id); suffix != kNoName; suffix = names.Suffix(suffix)) {
    if (RouteView route = routes_->FindRouteView(suffix)) {
      out.route = route;
      out.via = suffix;
      // The interner never holds two ids with equal bytes, so a hit through the chain
      // is a proper domain-suffix match — no string compare needed.
      out.suffix_match = true;
      return out;
    }
  }
  return out;
}

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupStranger(std::string_view host) const {
  // A stranger: probe its dotted suffixes until one is interned.  Interning any dotted
  // name interns its whole chain, so the first hit's chain covers every shorter suffix.
  BatchLookup out;
  const NameInterner& names = routes_->names();
  size_t dot = host.find('.', 1);
  while (dot != std::string_view::npos) {
    NameId suffix = names.Find(host.substr(dot));  // includes the leading '.'
    if (suffix != kNoName) {
      for (; suffix != kNoName; suffix = names.Suffix(suffix)) {
        if (RouteView route = routes_->FindRouteView(suffix)) {
          out.route = route;
          out.via = suffix;
          out.suffix_match = true;  // the host itself is not in the database
          return out;
        }
      }
      return out;
    }
    dot = host.find('.', dot + 1);
  }
  return out;
}

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupOne(std::string_view host) const {
  NameId id = routes_->names().Find(host);
  return id != kNoName ? LookupInterned(id) : LookupStranger(host);
}

template <typename RouteSource>
RouteView BasicResolver<RouteSource>::LookupId(std::string_view host, NameId* via) const {
  BatchLookup result = LookupOne(host);
  if (result.route.ok()) {
    *via = result.via;
  }
  return result.route;
}

template <typename RouteSource>
RouteView BasicResolver<RouteSource>::Lookup(std::string_view host,
                                             std::string_view* matched_key) const {
  NameId via = kNoName;
  RouteView route = LookupId(host, &via);
  if (route.ok()) {
    *matched_key = routes_->names().View(via);
  }
  return route;
}

template <typename RouteSource>
size_t BasicResolver<RouteSource>::ResolveBatchScalar(
    std::span<const std::string_view> hosts, std::span<BatchLookup> results) const {
  size_t resolved = 0;
  // Only the common prefix: a results span shorter than the hosts span truncates the
  // batch rather than writing out of bounds (see the header contract).
  size_t count = std::min(hosts.size(), results.size());
  for (size_t i = 0; i < count; ++i) {
    results[i] = LookupOne(hosts[i]);
    if (results[i].route.ok()) {
      ++resolved;
    }
  }
  return resolved;
}

template <typename RouteSource>
size_t BasicResolver<RouteSource>::ResolveBatch(std::span<const std::string_view> hosts,
                                                std::span<BatchLookup> results) const {
  return ResolveBatchPipelined(hosts, results, kDefaultPipelineWindow);
}

// Per-call probe counters, compiled to nothing outside PATHALIAS_PROBE_STATS builds
// so the pipeline's hot loop carries zero counter writes in release.
#ifdef PATHALIAS_PROBE_STATS
#define PATHALIAS_PROBE_COUNT(stats, field) \
  do {                                      \
    if ((stats) != nullptr) {               \
      ++(stats)->field;                     \
    }                                       \
  } while (0)
#else
#define PATHALIAS_PROBE_COUNT(stats, field) ((void)0)
#endif

template <typename RouteSource>
size_t BasicResolver<RouteSource>::ResolveBatchPipelined(
    std::span<const std::string_view> hosts, std::span<BatchLookup> results,
    size_t window, ResolvePipelineStats* stats) const {
  if (stats != nullptr) {
    *stats = ResolvePipelineStats{};
  }
  size_t count = std::min(hosts.size(), results.size());
  const NameInterner& names = routes_->names();
  if (count == 0 || !names.can_probe()) {
    // Stolen or empty tables have no slots to prefetch; the scalar loop owns the
    // degraded modes (LinearFind et al.) and is bit-identical by contract.
    return ResolveBatchScalar(hosts.first(count), results.first(count));
  }
  window = std::clamp<size_t>(window, 1, kMaxPipelineWindow);

  // Batch-local suffix memo.  From the first dotted suffix a stranger tries,
  // its outcome is a pure function of the suffix bytes (probe it; if interned,
  // chase that chain; else try the next dot — no other query state enters), so
  // one batch resolving "a.cs.foo.edu", "b.cs.foo.edu", ... pays the suffix
  // probe and chain walk once and copies the retired result thereafter.  Real
  // mailer batches are exactly this shape: many strangers under few domains.
  // The memo is local to one call (the table cannot change mid-batch, and views
  // into `hosts` stay alive), keyed on raw query bytes (equal bytes imply equal
  // outcome whether or not the interner folds case), and consulted only where
  // the scalar path would begin a suffix probe — so results stay byte-identical
  // to ResolveBatchScalar, only cheaper.  Skipped for small batches, where
  // zeroing the table would cost more than the repeats it could catch.
  struct SuffixMemoEntry {
    const char* ptr = nullptr;  // null: empty slot
    uint32_t len = 0;
    uint64_t hash = 0;
    BatchLookup out;
  };
  constexpr size_t kSuffixMemoBits = 9;
  constexpr size_t kSuffixMemoMinBatch = 64;
  std::vector<SuffixMemoEntry> memo;
  if (count >= kSuffixMemoMinBatch) {
    memo.resize(size_t{1} << kSuffixMemoBits);
  }
  // The memo's own hash, deliberately NOT the interner's: the paper's shift/XOR
  // hash folds one byte per step (a serial dependency chain), while the memo —
  // hit almost always in steady state — only needs any well-mixed function of
  // the raw bytes.  Word-wide chunks cost ~2 multiplies per suffix, and the
  // interner hash is then computed only on a memo miss, right where the probe
  // needs it.  Raw (unfolded) bytes keep hash, key compare and outcome
  // consistent with each other whether or not the interner folds case.
  auto memo_hash_of = [](std::string_view s) {
    uint64_t h = 0x9E3779B97F4A7C15ull ^ (s.size() * 0xA24BAED4963EE407ull);
    const char* p = s.data();
    size_t n = s.size();
    for (; n >= 8; p += 8, n -= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      h = (h ^ w) * 0x9FB21C651E98DF25ull;
      h ^= h >> 29;
    }
    if (n > 0) {
      uint64_t w = 0;
      std::memcpy(&w, p, n);
      h = (h ^ w) * 0x9FB21C651E98DF25ull;
      h ^= h >> 29;
    }
    return h;
  };
  auto memo_index = [](uint64_t hash) {
    return static_cast<size_t>(hash >> (64 - kSuffixMemoBits));
  };

  // A rolling window of lookups in flight as parallel lane arrays: each round,
  // every pass below is one tight homogeneous loop over a list of lane indices,
  // doing one stage of every in-flight lookup before any lookup does its next.
  // That shape is the whole trick.  A lookup's own miss chain (probe slot →
  // entry → name bytes → by-name index → route record) is inherently serial,
  // but across lanes the fetches are independent — so every line a pass reads
  // was prefetched one full round (a window of other lookups' stage steps)
  // earlier, and hashing runs in batched passes whose independent per-byte
  // chains overlap in the core where the one-at-a-time loop's serial chain
  // cannot.  Lookups that retire free their lane; the launch pass refills freed
  // lanes at the top of every round, so occupancy — the memory-level
  // parallelism — stays at `window` until the batch drains.  A lookup needing
  // more probes (stranger suffix, hash/byte reject) spills its continuation
  // into the next round's probe list instead of stalling the others.
  std::string_view host[kMaxPipelineWindow];  // the full query
  std::string_view text[kMaxPipelineWindow];  // current probe text (host or suffix)
  NameInterner::ProbeCursor cur[kMaxPipelineWindow];
  NameId walk[kMaxPipelineWindow];      // current position on the suffix chain
  NameId host_id[kMaxPipelineWindow];   // exact query's id (kNoName on stranger path)
  uint32_t out_slot[kMaxPipelineWindow];  // results index
  size_t dotpos[kMaxPipelineWindow];    // stranger: offset of the suffix being probed
  bool stranger[kMaxPipelineWindow];
  // First suffix this stranger tried (empty until then) + its hash: the memo key
  // its retired outcome is recorded under.
  std::string_view memo_key[kMaxPipelineWindow];
  uint64_t memo_hash[kMaxPipelineWindow];

  // Records a retiring stranger's outcome under its first-suffix key.  Shorter
  // suffixes it went on to try share the same outcome by construction (a suffix
  // only advances after the longer one failed), so the first key subsumes them.
  auto memo_insert = [&](uint32_t j, const BatchLookup& out) {
    if (memo.empty() || memo_key[j].empty()) {
      return;
    }
    SuffixMemoEntry& entry = memo[memo_index(memo_hash[j])];
    entry.ptr = memo_key[j].data();
    entry.len = static_cast<uint32_t>(memo_key[j].size());
    entry.hash = memo_hash[j];
    entry.out = out;
  };
  // Per-stage lane lists; `probe`, `walk` and `ready` are double-buffered
  // across rounds, the others live within one round.
  uint32_t probe_list[2][kMaxPipelineWindow], walk_list[2][kMaxPipelineWindow];
  uint32_t ready_list[2][kMaxPipelineWindow];
  uint32_t rehash_list[kMaxPipelineWindow];
  uint32_t free_stack[kMaxPipelineWindow];

  size_t resolved = 0;
  size_t next = 0;    // next query to launch
  size_t active = 0;  // lookups in flight
  size_t n_free = 0;
  for (uint32_t j = 0; j < window; ++j) {
    free_stack[n_free++] = static_cast<uint32_t>(window - 1 - j);
  }
  int flip = 0;
  size_t n_probe = 0, n_walk = 0, n_ready = 0;

  while (active > 0 || next < count) {
    uint32_t* probe_in = probe_list[flip];
    uint32_t* walk_in = walk_list[flip];
    uint32_t* ready_in = ready_list[flip];
    flip ^= 1;
    uint32_t* probe_out = probe_list[flip];
    uint32_t* walk_out = walk_list[flip];
    uint32_t* ready_out = ready_list[flip];
    size_t n_probe_out = 0, n_walk_out = 0, n_ready_out = 0;

    // Retire pass: these lanes' route records were prefetched a full round ago,
    // by the walk pass that proved HasRoute.
    for (size_t p = 0; p < n_ready; ++p) {
      const uint32_t j = ready_in[p];
      BatchLookup& out = results[out_slot[j]];
      out.route = routes_->FindRouteView(walk[j]);
      out.via = walk[j];
      out.suffix_match = stranger[j] || walk[j] != host_id[j];
      ++resolved;
      memo_insert(j, out);
      free_stack[n_free++] = j;
      --active;
      PATHALIAS_PROBE_COUNT(stats, retired_hits);
    }

    // Launch pass: refill freed lanes — hash the query (adjacent launches'
    // per-byte chains are independent, so they overlap) and prefetch its
    // primary probe slot for next round's probe pass.
    while (n_free > 0 && next < count) {
      const uint32_t j = free_stack[--n_free];
      host[j] = hosts[next];
      text[j] = host[j];
      stranger[j] = false;
      memo_key[j] = {};
      host_id[j] = kNoName;
      out_slot[j] = static_cast<uint32_t>(next);
      cur[j] = names.BeginProbe(names.HashOf(host[j]));
      names.PrefetchSlot(cur[j]);
      probe_out[n_probe_out++] = j;
      ++next;
      ++active;
      PATHALIAS_PROBE_COUNT(stats, lookups);
      PATHALIAS_PROBE_COUNT(stats, name_probes);
    }

    // Walk pass: one chain hop per round.  HasRoute reads the by-name line
    // prefetched when the lane resolved its name (or hopped) last round; a hit
    // prefetches the route record and parks the lane for next round's retire
    // pass; a hop prefetches the next suffix's by-name line and entry (the
    // entry holds the suffix link the NEXT hop chases).  A stranger whose first
    // interned suffix's chain drains retires a miss — shorter dotted suffixes
    // are covered by this chain, never re-probed (LookupStranger's rule).
    for (size_t p = 0; p < n_walk; ++p) {
      const uint32_t j = walk_in[p];
      PATHALIAS_PROBE_COUNT(stats, route_checks);
      if (routes_->HasRoute(walk[j])) {
        routes_->PrefetchRoute(walk[j]);
        ready_out[n_ready_out++] = j;
      } else {
        NameId suffix = names.Suffix(walk[j]);
        if (suffix == kNoName) {
          results[out_slot[j]] = BatchLookup{};
          memo_insert(j, BatchLookup{});
          free_stack[n_free++] = j;
          --active;
          PATHALIAS_PROBE_COUNT(stats, retired_misses);
        } else {
          walk[j] = suffix;
          routes_->PrefetchFind(suffix);
          names.PrefetchEntry(suffix);
          walk_out[n_walk_out++] = j;
          PATHALIAS_PROBE_COUNT(stats, chain_steps);
        }
      }
    }

    // Probe pass: each lane inspects exactly the one slot its prefetch covers
    // (issued last round, or by this round's launch pass) and spills whatever
    // comes next — another slot, a suffix re-probe, a chain hop — back into
    // the window with a prefetch, so no lane ever reads a line it did not
    // prefetch a round earlier.  The verify work that needs no further slot —
    // the 64-bit hash filter, the byte compare, the first HasRoute check —
    // runs inline: the candidate's entry line arrives with the slot's
    // neighborhood on a resident table, and inlining folds the overwhelmingly
    // common one-probe hit into a single pass.  Predicates and their order are
    // exactly the scalar probe's (the hash filter is a pure narrowing of the
    // byte compare), so a reject resumes the probe at the same slot ProbeFor
    // would.
    size_t n_rehash = 0;
    for (size_t p = 0; p < n_probe; ++p) {
      const uint32_t j = probe_in[p];
      NameId candidate = kNoName;
      NameInterner::ProbeOutcome outcome;
      // Collisions and rejected candidates re-probe inline, exactly as the
      // scalar loop does: measured at every map scale, re-reading the next
      // slot immediately beats spilling it to the next round — probe
      // sequences are short (αH = 0.79 worst case) and the spill's extra
      // list traffic costs more than the unprefetched read.
      for (;;) {
        outcome = names.ProbeStep(&cur[j], &candidate);
        if (outcome == NameInterner::ProbeOutcome::kCollision) {
          PATHALIAS_PROBE_COUNT(stats, slot_collisions);
          continue;
        }
        if (outcome == NameInterner::ProbeOutcome::kCandidate &&
            (!names.CandidateHashMatches(candidate, cur[j].hash) ||
             !names.CandidateEquals(candidate, text[j]))) {
          PATHALIAS_PROBE_COUNT(stats, candidate_rejects);
          continue;
        }
        break;
      }
      if (outcome == NameInterner::ProbeOutcome::kCandidate) {
        // The probe text is interned: start its walk.  The immediate route
        // check folds the overwhelmingly common first hop into this pass;
        // chain hops (suffix fallbacks) stay windowed in the walk pass.
        if (!stranger[j]) {
          host_id[j] = candidate;
        }
        walk[j] = candidate;
        PATHALIAS_PROBE_COUNT(stats, route_checks);
        if (routes_->HasRoute(candidate)) {
          routes_->PrefetchRoute(candidate);
          ready_out[n_ready_out++] = j;
        } else {
          NameId suffix = names.Suffix(candidate);
          if (suffix == kNoName) {
            results[out_slot[j]] = BatchLookup{};
            memo_insert(j, BatchLookup{});
            free_stack[n_free++] = j;
            --active;
            PATHALIAS_PROBE_COUNT(stats, retired_misses);
          } else {
            walk[j] = suffix;
            routes_->PrefetchFind(suffix);
            names.PrefetchEntry(suffix);
            walk_out[n_walk_out++] = j;
            PATHALIAS_PROBE_COUNT(stats, chain_steps);
          }
        }
      } else {
        // Empty slot: the probe text is not interned.  Spill the stranger
        // continuation — the next dotted suffix — or retire a miss when the
        // dots run out.  A leading dot is never a suffix of itself:
        // find('.', 1), matching LookupStranger.
        size_t from = stranger[j] ? dotpos[j] + 1 : 1;
        size_t dot = host[j].find('.', from);
        if (dot == std::string_view::npos) {
          results[out_slot[j]] = BatchLookup{};
          memo_insert(j, BatchLookup{});
          free_stack[n_free++] = j;
          --active;
          PATHALIAS_PROBE_COUNT(stats, retired_misses);
        } else {
          stranger[j] = true;
          dotpos[j] = dot;
          text[j] = host[j].substr(dot);  // includes the leading '.'
          rehash_list[n_rehash++] = j;
        }
      }
    }

    // Rehash pass: hash the spilled suffixes together, not one by one inside
    // the probe pass — like the launch pass, back-to-back independent hash
    // chains overlap where a hash wedged between two probes cannot.  The
    // suffix bytes are the tail of a string this lane already hashed, so the
    // only new fetch is each continuation's probe slot.
    for (size_t p = 0; p < n_rehash; ++p) {
      const uint32_t j = rehash_list[p];
      if (!memo.empty()) {
        const uint64_t hash = memo_hash_of(text[j]);
        if (memo_key[j].empty()) {
          memo_key[j] = text[j];
          memo_hash[j] = hash;
        }
        const SuffixMemoEntry& entry = memo[memo_index(hash)];
        if (entry.ptr != nullptr && entry.hash == hash &&
            std::string_view(entry.ptr, entry.len) == text[j]) {
          // A previous query in this batch already resolved this exact suffix:
          // its retired outcome IS this lane's outcome.  Copy and retire.
          results[out_slot[j]] = entry.out;
          if (entry.out.route.ok()) {
            ++resolved;
            PATHALIAS_PROBE_COUNT(stats, retired_hits);
          } else {
            PATHALIAS_PROBE_COUNT(stats, retired_misses);
          }
          // If this lane's FIRST suffix was a different (longer) one that missed
          // the memo, record it too: its outcome equals this one's by the same
          // only-advances-after-failure argument.
          memo_insert(j, entry.out);
          free_stack[n_free++] = j;
          --active;
          PATHALIAS_PROBE_COUNT(stats, suffix_memo_hits);
          continue;
        }
      }
      cur[j] = names.BeginProbe(names.HashOf(text[j]));
      names.PrefetchSlot(cur[j]);
      probe_out[n_probe_out++] = j;
      PATHALIAS_PROBE_COUNT(stats, name_probes);
      PATHALIAS_PROBE_COUNT(stats, stranger_continuations);
    }

    n_probe = n_probe_out;
    n_walk = n_walk_out;
    n_ready = n_ready_out;
  }
  return resolved;
}

#undef PATHALIAS_PROBE_COUNT

template <typename RouteSource>
Resolution BasicResolver<RouteSource>::Resolve(std::string_view destination) const {
  Resolution resolution;
  Address address = ParseAddress(destination, options_.parse_style);
  if (address.user.empty() && address.path.empty()) {
    resolution.error = "empty address";
    return resolution;
  }
  if (address.path.empty()) {
    // Local delivery: nothing to route.
    resolution.ok = true;
    resolution.route = address.user;
    resolution.via = "<local>";
    resolution.argument = address.user;
    return resolution;
  }

  size_t target_index = 0;
  if (options_.optimize == ResolveOptions::Optimize::kRightmostKnown &&
      !(options_.preserve_loops && resolver_detail::HasRepeatedHost(address.path))) {
    std::string_view key;
    for (size_t i = address.path.size(); i-- > 0;) {
      if (Lookup(address.path[i], &key).ok()) {
        target_index = i;
        break;
      }
    }
  }

  const std::string& target = address.path[target_index];
  std::string argument =
      resolver_detail::TailArgument(address.path, target_index + 1, address.user);

  std::string_view matched;
  RouteView route = Lookup(target, &matched);
  if (!route.ok()) {
    resolution.error = "no route to " + target;
    return resolution;
  }
  if (matched != target) {
    // Domain-suffix match: "The argument here is not pleasant (as it were), it is
    // caip.rutgers.edu!pleasant."
    argument = target + "!" + argument;
  }
  resolution.ok = true;
  resolution.via = std::string(matched);
  resolution.argument = argument;
  resolution.route = RoutePrinter::SpliceUser(route.route, argument);
  return resolution;
}

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_RESOLVER_IMPL_H_
