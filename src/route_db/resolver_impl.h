// BasicResolver method definitions, shared by the per-backend instantiation units:
// resolver.cc (BasicResolver<RouteSet>) and src/image/frozen_resolver.cc
// (BasicResolver<FrozenRouteSet>).  Keeping the bodies here — instead of in
// resolver.cc next to an #include of the image subsystem — keeps route_db a lower
// layer than src/image, which depends on it.

#ifndef SRC_ROUTE_DB_RESOLVER_IMPL_H_
#define SRC_ROUTE_DB_RESOLVER_IMPL_H_

#include <algorithm>
#include <unordered_set>

#include "src/core/route_printer.h"
#include "src/route_db/resolver.h"

namespace pathalias {
namespace resolver_detail {

inline bool HasRepeatedHost(const std::vector<std::string>& path) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& host : path) {
    if (!seen.insert(host).second) {
      return true;
    }
  }
  return false;
}

// Joins path[first..] and the user into a relative bang path.
inline std::string TailArgument(const std::vector<std::string>& path, size_t first,
                                const std::string& user) {
  std::string out;
  for (size_t i = first; i < path.size(); ++i) {
    out += path[i];
    out += '!';
  }
  out += user;
  return out;
}

}  // namespace resolver_detail

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupInterned(NameId id) const {
  // The query is a known name: the exact probe and the entire domain-suffix walk
  // (caip.rutgers.edu → .rutgers.edu → .edu) are integer chases from here on.
  BatchLookup out;
  if (RouteView route = routes_->FindRouteView(id)) {
    out.route = route;
    out.via = id;
    return out;
  }
  const NameInterner& names = routes_->names();
  for (NameId suffix = names.Suffix(id); suffix != kNoName; suffix = names.Suffix(suffix)) {
    if (RouteView route = routes_->FindRouteView(suffix)) {
      out.route = route;
      out.via = suffix;
      // The interner never holds two ids with equal bytes, so a hit through the chain
      // is a proper domain-suffix match — no string compare needed.
      out.suffix_match = true;
      return out;
    }
  }
  return out;
}

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupStranger(std::string_view host) const {
  // A stranger: probe its dotted suffixes until one is interned.  Interning any dotted
  // name interns its whole chain, so the first hit's chain covers every shorter suffix.
  BatchLookup out;
  const NameInterner& names = routes_->names();
  size_t dot = host.find('.', 1);
  while (dot != std::string_view::npos) {
    NameId suffix = names.Find(host.substr(dot));  // includes the leading '.'
    if (suffix != kNoName) {
      for (; suffix != kNoName; suffix = names.Suffix(suffix)) {
        if (RouteView route = routes_->FindRouteView(suffix)) {
          out.route = route;
          out.via = suffix;
          out.suffix_match = true;  // the host itself is not in the database
          return out;
        }
      }
      return out;
    }
    dot = host.find('.', dot + 1);
  }
  return out;
}

template <typename RouteSource>
BatchLookup BasicResolver<RouteSource>::LookupOne(std::string_view host) const {
  NameId id = routes_->names().Find(host);
  return id != kNoName ? LookupInterned(id) : LookupStranger(host);
}

template <typename RouteSource>
RouteView BasicResolver<RouteSource>::LookupId(std::string_view host, NameId* via) const {
  BatchLookup result = LookupOne(host);
  if (result.route.ok()) {
    *via = result.via;
  }
  return result.route;
}

template <typename RouteSource>
RouteView BasicResolver<RouteSource>::Lookup(std::string_view host,
                                             std::string_view* matched_key) const {
  NameId via = kNoName;
  RouteView route = LookupId(host, &via);
  if (route.ok()) {
    *matched_key = routes_->names().View(via);
  }
  return route;
}

template <typename RouteSource>
size_t BasicResolver<RouteSource>::ResolveBatch(std::span<const std::string_view> hosts,
                                                std::span<BatchLookup> results) const {
  size_t resolved = 0;
  // Only the common prefix: a results span shorter than the hosts span truncates the
  // batch rather than writing out of bounds (see the header contract).
  size_t count = std::min(hosts.size(), results.size());
  for (size_t i = 0; i < count; ++i) {
    results[i] = LookupOne(hosts[i]);
    if (results[i].route.ok()) {
      ++resolved;
    }
  }
  return resolved;
}

template <typename RouteSource>
Resolution BasicResolver<RouteSource>::Resolve(std::string_view destination) const {
  Resolution resolution;
  Address address = ParseAddress(destination, options_.parse_style);
  if (address.user.empty() && address.path.empty()) {
    resolution.error = "empty address";
    return resolution;
  }
  if (address.path.empty()) {
    // Local delivery: nothing to route.
    resolution.ok = true;
    resolution.route = address.user;
    resolution.via = "<local>";
    resolution.argument = address.user;
    return resolution;
  }

  size_t target_index = 0;
  if (options_.optimize == ResolveOptions::Optimize::kRightmostKnown &&
      !(options_.preserve_loops && resolver_detail::HasRepeatedHost(address.path))) {
    std::string_view key;
    for (size_t i = address.path.size(); i-- > 0;) {
      if (Lookup(address.path[i], &key).ok()) {
        target_index = i;
        break;
      }
    }
  }

  const std::string& target = address.path[target_index];
  std::string argument =
      resolver_detail::TailArgument(address.path, target_index + 1, address.user);

  std::string_view matched;
  RouteView route = Lookup(target, &matched);
  if (!route.ok()) {
    resolution.error = "no route to " + target;
    return resolution;
  }
  if (matched != target) {
    // Domain-suffix match: "The argument here is not pleasant (as it were), it is
    // caip.rutgers.edu!pleasant."
    argument = target + "!" + argument;
  }
  resolution.ok = true;
  resolution.via = std::string(matched);
  resolution.argument = argument;
  resolution.route = RoutePrinter::SpliceUser(route.route, argument);
  return resolution;
}

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_RESOLVER_IMPL_H_
