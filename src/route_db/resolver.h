// Mailer-side route resolution (paper §Output "Domains" and §Integrating pathalias
// with mailers).
//
// Given a destination address and a pathalias route database, produce the concrete
// address to hand to the transport.  Implements, verbatim from the paper:
//   * the domain lookup order — "a search for caip.rutgers.edu; if found, the mailer
//     uses argument pleasant ... Otherwise, a search for .rutgers.edu, followed by a
//     search for .edu", where the argument handed to a domain route is the route
//     relative to its gateway (caip.rutgers.edu!pleasant);
//   * the optimization policy question — "should the mailer simply find a route to the
//     first site in the string, or should it search for the right-most host known to
//     its database?" — as a selectable strategy;
//   * the loop-test caveat — "an overly-enthusiastic optimizer can eliminate them
//     altogether": paths that visit a host twice are never shortened.
//
// The resolver is a template over its route source so the same code serves both
// backends: the live, parse-built RouteSet and the mmap'd FrozenRouteSet from
// src/image.  A RouteSource supplies
//   const NameInterner& names() const;
//   RouteView FindRouteView(NameId) const;
// and everything else — the suffix walk, rightmost-known rewriting, loop preservation —
// is shared.  Method bodies live in resolver_impl.h; each backend's translation unit
// (resolver.cc here, frozen_resolver.cc in src/image) hosts its own explicit
// instantiation, so this layer never depends on the image subsystem above it.

#ifndef SRC_ROUTE_DB_RESOLVER_H_
#define SRC_ROUTE_DB_RESOLVER_H_

#include <span>
#include <string>
#include <string_view>

#include "src/route_db/address.h"
#include "src/route_db/route_db.h"

namespace pathalias {

class FrozenRouteSet;  // src/image/frozen_route_set.h

struct ResolveOptions {
  ParseStyle parse_style = ParseStyle::kUucpFirst;

  enum class Optimize {
    kNone,            // hand the whole remainder to the first relay, verbatim
    kFirstHop,        // route to the first relay; remainder becomes the argument
    kRightmostKnown,  // route to the rightmost relay the database knows
  };
  Optimize optimize = Optimize::kFirstHop;

  // Never optimize a path that names some host twice (UUCP loop tests).
  bool preserve_loops = true;
};

struct Resolution {
  bool ok = false;
  std::string route;     // final address, %s already substituted
  // pathalint: allow(R1): rendered result for the caller — Resolution is the
  // output edge (mailers print these); the interned form is BatchLookup.
  std::string via;       // database key that matched (host or domain)
  std::string argument;  // what was substituted for %s
  std::string error;     // set iff !ok
};

// One batch lookup outcome: a handle and views into the route set only, no owned
// strings — back-resolve via the set's names() when formatting.
struct BatchLookup {
  RouteView route;               // !route.ok(): no route known
  NameId via = kNoName;          // database key that matched (host or domain suffix)
  bool suffix_match = false;     // a domain suffix hit: prepend the host to the argument
};

// Firehose-style probe/collision/retire counters for the pipelined batch path.
// The counting code compiles in only under PATHALIAS_PROBE_STATS (CMake option of
// the same name); without it ResolveBatchPipelined zeroes the struct and the hot
// loop carries no counter writes at all.  Counters accrue into a caller-local
// struct, so concurrent pipelines over one route source never share state.
struct ResolvePipelineStats {
  uint64_t lookups = 0;                 // queries entering the pipeline
  uint64_t name_probes = 0;             // probe sequences begun (host + suffix texts)
  uint64_t slot_collisions = 0;         // occupied slots with a different hash32
  uint64_t candidate_rejects = 0;       // hash32 matches whose bytes differed
  uint64_t stranger_continuations = 0;  // dotted-suffix re-probes spilled into the window
  uint64_t suffix_memo_hits = 0;        // suffix probes answered by the batch-local memo
  uint64_t chain_steps = 0;             // domain-suffix chain hops walked
  uint64_t route_checks = 0;            // HasRoute inspections
  uint64_t retired_hits = 0;
  uint64_t retired_misses = 0;

  // True when the counters above are live (PATHALIAS_PROBE_STATS builds).
  static constexpr bool compiled_in() {
#ifdef PATHALIAS_PROBE_STATS
    return true;
#else
    return false;
#endif
  }
};

template <typename RouteSource>
class BasicResolver {
 public:
  BasicResolver(const RouteSource* routes, ResolveOptions options)
      : routes_(routes), options_(options) {}

  Resolution Resolve(std::string_view destination) const;

  // The paper's lookup: exact host name, then successive domain suffixes, longest
  // first.  On a suffix match the caller must prepend the full host name to the
  // argument.  `matched_key` receives the database key that hit — always a view into
  // the route set's interner (alive as long as the set), never an allocation.
  RouteView Lookup(std::string_view host, std::string_view* matched_key) const;

  // Bulk form of Lookup for mailer delivery scans: resolves hosts[i] into results[i]
  // and returns the number that matched.  Only the common prefix is processed: with
  // results.size() < hosts.size() the surplus hosts are ignored (an empty span of
  // either resolves nothing and returns 0).  A query with no routable shape — empty,
  // all whitespace, undotted and unknown — is a plain miss, never an error.  The
  // domain-suffix walk rides the interner's precomputed suffix chains — after the
  // single hash that locates the query name, misses and domain fallbacks are
  // id-chasing with zero per-query allocations.
  //
  // ResolveBatch runs the software-pipelined loop at kDefaultPipelineWindow (it is
  // ResolveBatchPipelined with the default window); results are byte-identical to
  // ResolveBatchScalar at every window size — enforced by tests, the fuzz harness,
  // and CI against the committed benchmark run.
  size_t ResolveBatch(std::span<const std::string_view> hosts,
                      std::span<BatchLookup> results) const;

  // The one-query-at-a-time reference loop (what ResolveBatch was before the
  // pipeline): each lookup's dependent-miss chain — hash, probe slot, interner
  // entry, by-name index, route record — stalls to completion before the next
  // query starts.  Retained as the golden reference and the degraded-mode path.
  size_t ResolveBatchScalar(std::span<const std::string_view> hosts,
                            std::span<BatchLookup> results) const;

  // The software pipeline: a ring of `window` lookups in flight.  Each lane
  // advances one stage per sweep — hash+slot-prefetch on launch, one probe-slot
  // inspection, entry-hash verify, name-byte verify, route-index check / suffix
  // chain hop, route-record retire — and every stage touches only lines a
  // prefetch was issued for one full sweep (window-1 other lane steps) earlier.
  // Misses don't stall the pipe: a stranger's next dotted-suffix probe and a
  // suffix walk's next chain hop are spilled back into the lane as continuations.
  // `window` is clamped to [1, kMaxPipelineWindow]; tables that cannot be probed
  // slot-wise (stolen, empty) fall back to the scalar loop.  `stats`, when
  // non-null, is zeroed and — in PATHALIAS_PROBE_STATS builds — filled with
  // probe/collision/retire counters for the call.
  size_t ResolveBatchPipelined(std::span<const std::string_view> hosts,
                               std::span<BatchLookup> results, size_t window,
                               ResolvePipelineStats* stats = nullptr) const;

  // Measured sweet spot across map scales: at 1986 scale (8-9k names, cache
  // resident) any window from 8 to 48 is within noise of the best; at 4x-16x
  // scale (L3/DRAM resident) wider windows win, flat from 24 up.  24 takes the
  // plateau of both regimes without outsizing the lane state.
  static constexpr size_t kDefaultPipelineWindow = 24;
  static constexpr size_t kMaxPipelineWindow = 64;

  // The per-query pieces ResolveBatch is made of, exposed for the sharded batch
  // engine (src/exec), which hashes each query once and wants to memoize the walk
  // that follows.  All three are const, allocation-free and mutate nothing, so any
  // number of threads may call them against one route source concurrently.
  //
  // LookupInterned: the walk for a query the interner already knows, starting from
  // its id (exact route, then the precomputed suffix chain).  The result is a pure
  // function of `id` — what makes it cacheable under a NameId key.
  BatchLookup LookupInterned(NameId id) const;
  // LookupStranger: the walk for a query the interner does not know — probe its
  // dotted suffixes until one is interned, then chase that chain.  There is no id to
  // key a cache on; any hit is by definition a domain-suffix match.
  BatchLookup LookupStranger(std::string_view host) const;
  // LookupOne: Find + dispatch to the two above; exactly one ResolveBatch slot.
  BatchLookup LookupOne(std::string_view host) const;

 private:
  // Core walk shared by Lookup and Resolve; fills `via` on a hit.
  RouteView LookupId(std::string_view host, NameId* via) const;

  const RouteSource* routes_;
  ResolveOptions options_;
};

// The two supported backends; bodies are compiled once, in resolver.cc.
using Resolver = BasicResolver<RouteSet>;
using FrozenResolver = BasicResolver<FrozenRouteSet>;

extern template class BasicResolver<RouteSet>;
extern template class BasicResolver<FrozenRouteSet>;

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_RESOLVER_H_
