#include "src/route_db/resolver.h"

#include <unordered_set>

#include "src/core/route_printer.h"

namespace pathalias {
namespace {

bool HasRepeatedHost(const std::vector<std::string>& path) {
  std::unordered_set<std::string_view> seen;
  for (const std::string& host : path) {
    if (!seen.insert(host).second) {
      return true;
    }
  }
  return false;
}

// Joins path[first..] and the user into a relative bang path.
std::string TailArgument(const std::vector<std::string>& path, size_t first,
                         const std::string& user) {
  std::string out;
  for (size_t i = first; i < path.size(); ++i) {
    out += path[i];
    out += '!';
  }
  out += user;
  return out;
}

}  // namespace

const Route* Resolver::Lookup(std::string_view host, std::string* matched_key) const {
  if (const Route* route = routes_->Find(host)) {
    *matched_key = std::string(host);
    return route;
  }
  // Successive domain suffixes: caip.rutgers.edu → .rutgers.edu → .edu.
  size_t dot = host.find('.');
  while (dot != std::string_view::npos) {
    std::string_view suffix = host.substr(dot);  // includes the leading '.'
    if (const Route* route = routes_->Find(suffix)) {
      *matched_key = std::string(suffix);
      return route;
    }
    dot = host.find('.', dot + 1);
  }
  return nullptr;
}

Resolution Resolver::Resolve(std::string_view destination) const {
  Resolution resolution;
  Address address = ParseAddress(destination, options_.parse_style);
  if (address.user.empty() && address.path.empty()) {
    resolution.error = "empty address";
    return resolution;
  }
  if (address.path.empty()) {
    // Local delivery: nothing to route.
    resolution.ok = true;
    resolution.route = address.user;
    resolution.via = "<local>";
    resolution.argument = address.user;
    return resolution;
  }

  size_t target_index = 0;
  if (options_.optimize == ResolveOptions::Optimize::kRightmostKnown &&
      !(options_.preserve_loops && HasRepeatedHost(address.path))) {
    std::string key;
    for (size_t i = address.path.size(); i-- > 0;) {
      if (Lookup(address.path[i], &key) != nullptr) {
        target_index = i;
        break;
      }
    }
  }

  const std::string& target = address.path[target_index];
  std::string argument = TailArgument(address.path, target_index + 1, address.user);

  std::string matched;
  const Route* route = Lookup(target, &matched);
  if (route == nullptr) {
    resolution.error = "no route to " + target;
    return resolution;
  }
  if (matched != target) {
    // Domain-suffix match: "The argument here is not pleasant (as it were), it is
    // caip.rutgers.edu!pleasant."
    argument = target + "!" + argument;
  }
  resolution.ok = true;
  resolution.via = matched;
  resolution.argument = argument;
  resolution.route = RoutePrinter::SpliceUser(route->route, argument);
  return resolution;
}

}  // namespace pathalias
