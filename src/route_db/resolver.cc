// Instantiates the resolver for the live, parse-built backend.  The image-backed
// instantiation lives in src/image/frozen_resolver.cc so route_db stays independent of
// the layers above it.

#include "src/route_db/resolver_impl.h"

namespace pathalias {

template class BasicResolver<RouteSet>;

}  // namespace pathalias
