// The route database a mail system consumes (paper §Output, §Integrating pathalias
// with mailers).
//
// pathalias emits "a simple linear file, in the UNIX tradition"; this module parses
// that file back into an indexed set, serializes it, and converts it to/from the cdb
// image for "rapid database retrieval".  The RouteSet is the boundary between the
// route *generator* (src/core) and the route *consumers* (Resolver, the routedb tool,
// mailers).

#ifndef SRC_ROUTE_DB_ROUTE_DB_H_
#define SRC_ROUTE_DB_ROUTE_DB_H_

#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/route_printer.h"
#include "src/graph/cost.h"
#include "src/support/diag.h"
#include "src/support/interner.h"

namespace pathalias {

struct Route {
  NameId name = kNoName;  // key handle; the RouteSet's interner owns the bytes
  std::string route;      // printf format string with one %s
  Cost cost = -1;         // -1: unknown (the file had no cost column)
};

// A non-owning route record: what the Resolver traffics in.  Both backends produce it —
// the live RouteSet views its Route's string, the image-backed FrozenRouteSet views the
// mmap'd route-byte pool — so resolution code is backend-agnostic and allocation-free.
struct RouteView {
  NameId name = kNoName;   // key handle; kNoName means "no route known"
  std::string_view route;  // printf format string with one %s; owned by the route set
  Cost cost = -1;

  bool ok() const { return name != kNoName; }
  explicit operator bool() const { return ok(); }
};

// One incremental route change: insert `name`'s route or replace it wholesale.
struct RouteUpsert {
  // pathalint: allow(R1): wire-format delta record — carries the bytes exactly
  // as they arrived (file/stream) until ApplyDelta interns them.
  std::string name;
  std::string route;
  Cost cost = -1;
};

class RouteSet {
 public:
  RouteSet() = default;

  // Later adds of the same name replace earlier ones.
  void Add(std::string_view name, std::string_view route, Cost cost = -1);

  // Applies an incremental delta — erase `erases`' routes, insert-or-replace
  // `upserts` — and returns the NameIds (this set's interner space; stable across
  // every delta, which is what keys cache invalidation) of the routes that actually
  // changed.  A no-op upsert (identical route and cost) is not reported; an erase of
  // an absent name is ignored.  Erased names keep their NameId: the interner never
  // forgets, so a later re-add changes the same id it changed before.
  std::vector<NameId> ApplyDelta(std::span<const RouteUpsert> upserts,
                                 std::span<const std::string> erases);

  static RouteSet FromEntries(const std::vector<RouteEntry>& entries);

  // Parses pathalias output.  Accepts both layouts: "name<TAB>route" and
  // "cost<TAB>name<TAB>route" (a leading integer column switches to the latter).
  static RouteSet FromText(std::string_view text, Diagnostics* diag = nullptr);

  std::string ToText(bool include_costs) const;

  // ToText in name order regardless of insertion history: the canonical form the
  // incremental pipeline's golden-equivalence checks compare byte-for-byte (an
  // incrementally patched set and a rebuilt one order their routes_ differently).
  std::string ToSortedText(bool include_costs) const;

  // cdb image: key = host name; value = route, or "cost\troute" when cost is known.
  std::string ToCdbBuffer() const;
  static std::optional<RouteSet> FromCdbBuffer(std::string buffer);
  bool WriteCdbFile(const std::string& path) const;
  static std::optional<RouteSet> OpenCdbFile(const std::string& path);

  // Exact-name lookup; nullptr if absent.  The string_view form hashes once against
  // the interner; the NameId form is a pure array index (the Resolver's batch path).
  const Route* Find(std::string_view name) const;
  const Route* Find(NameId id) const {
    return id < by_name_.size() && by_name_[id] != 0 ? &routes_[by_name_[id] - 1] : nullptr;
  }

  // The backend-agnostic lookup the Resolver uses (FrozenRouteSet implements the same
  // signature over the mmap'd image).  A default RouteView means "no route".
  RouteView FindRouteView(NameId id) const {
    const Route* route = Find(id);
    return route != nullptr ? RouteView{route->name, route->route, route->cost} : RouteView{};
  }

  // FindRouteView split for the pipelined resolver (FrozenRouteSet mirrors these):
  // PrefetchFind covers the by-name index line a HasRoute will read, PrefetchRoute
  // covers the route record a FindRouteView will read once HasRoute said yes.
  // Each is one prefetch — callers interleave them across a window of lookups.
  bool HasRoute(NameId id) const { return id < by_name_.size() && by_name_[id] != 0; }
  void PrefetchFind(NameId id) const {
    if (id < by_name_.size()) {
      __builtin_prefetch(by_name_.data() + id);
    }
  }
  void PrefetchRoute(NameId id) const {
    if (id < by_name_.size() && by_name_[id] != 0) {
      __builtin_prefetch(routes_.data() + (by_name_[id] - 1));
    }
  }
  RouteView FindRouteView(std::string_view name) const {
    const Route* route = Find(name);
    return route != nullptr ? RouteView{route->name, route->route, route->cost} : RouteView{};
  }

  // The interner every route key (and its precomputed domain-suffix chain) lives in.
  const NameInterner& names() const { return names_; }
  std::string_view NameOf(const Route& route) const { return names_.View(route.name); }

  const std::vector<Route>& routes() const { return routes_; }
  size_t size() const { return routes_.size(); }
  bool empty() const { return routes_.empty(); }

 private:
  NameInterner names_;
  std::vector<Route> routes_;
  std::vector<uint32_t> by_name_;  // NameId -> route index + 1 (0 = no route)
};

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_ROUTE_DB_H_
