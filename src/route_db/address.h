// Mixed-syntax electronic-mail address parsing (paper §Perspectives on relative
// addressing, and Honeyman & Parseghian's companion work it cites).
//
// 1986 reality: three address syntaxes coexist and compose —
//   * UUCP bang paths      a!b!user          (relays left to right)
//   * RFC822               user@host         (host on the right)
//   * the "underground"    user%h2@h1        (h1 relays to h2; legal but absolute-ish)
// An address like a!user@b is genuinely ambiguous: a UUCP mailer relays via a first, an
// RFC822 mailer via b first.  The parser therefore takes the convention to apply as a
// parameter; the resolver (and experiment E11) use both to quantify ambiguity.

#ifndef SRC_ROUTE_DB_ADDRESS_H_
#define SRC_ROUTE_DB_ADDRESS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pathalias {

enum class ParseStyle {
  kUucpFirst,    // "rigidly adhere to UUCP syntax": leftmost ! binds first
  kRfc822First,  // "rigidly adhere to RFC822 syntax": rightmost @ binds first
};

struct Address {
  std::vector<std::string> path;  // relay hosts in delivery order
  std::string user;               // final recipient (may be empty for malformed input)
  bool saw_bang = false;
  bool saw_at = false;
  bool saw_percent = false;

  // True if both ! and @ appear: the forms whose interpretation depends on the mailer.
  bool ambiguous() const { return saw_bang && saw_at; }

  bool operator==(const Address&) const = default;
};

// Parses `text` under the given convention.  Never fails: unparseable pieces end up as
// the user part, which is what real mailers did (and then bounced).
Address ParseAddress(std::string_view text, ParseStyle style);

// Renders delivery order as a pure bang path: h1!h2!user.  The inverse of parsing for
// any address, regardless of the syntax it arrived in — this is the gateway
// translation the paper's guidelines call for.
std::string ToBangPath(const Address& address);

// Renders as RFC822 with a %-relay chain: user%h3%h2@h1.  Empty path → bare user.
std::string ToPercentForm(const Address& address);

}  // namespace pathalias

#endif  // SRC_ROUTE_DB_ADDRESS_H_
