#include "src/route_db/route_db.h"

#include <algorithm>
#include <charconv>

#include "src/support/cdb.h"

namespace pathalias {
namespace {

std::optional<Cost> ParseCost(std::string_view text) {
  Cost value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return std::nullopt;
  }
  return value;
}

std::vector<std::string_view> SplitTabs(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (start <= line.size()) {
    size_t tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  return fields;
}

}  // namespace

void RouteSet::Add(std::string_view name, std::string_view route, Cost cost) {
  NameId id = names_.Intern(name);
  if (by_name_.size() < names_.size()) {
    by_name_.resize(names_.size(), 0);
  }
  uint32_t& slot = by_name_[id];
  if (slot != 0) {
    routes_[slot - 1].route = std::string(route);
    routes_[slot - 1].cost = cost;
    return;
  }
  routes_.push_back(Route{id, std::string(route), cost});
  slot = static_cast<uint32_t>(routes_.size());
}

std::vector<NameId> RouteSet::ApplyDelta(std::span<const RouteUpsert> upserts,
                                         std::span<const std::string> erases) {
  std::vector<NameId> dirty;
  bool erased_any = false;
  for (const std::string& name : erases) {
    NameId id = names_.Find(name);
    if (id == kNoName || id >= by_name_.size() || by_name_[id] == 0) {
      continue;
    }
    routes_[by_name_[id] - 1].name = kNoName;  // tombstone; compacted below
    by_name_[id] = 0;
    dirty.push_back(id);
    erased_any = true;
  }
  if (erased_any) {
    routes_.erase(std::remove_if(routes_.begin(), routes_.end(),
                                 [](const Route& route) { return route.name == kNoName; }),
                  routes_.end());
    std::fill(by_name_.begin(), by_name_.end(), 0u);
    for (size_t i = 0; i < routes_.size(); ++i) {
      by_name_[routes_[i].name] = static_cast<uint32_t>(i) + 1;
    }
  }
  for (const RouteUpsert& upsert : upserts) {
    NameId id = names_.Find(upsert.name);
    if (id != kNoName) {
      const Route* existing = Find(id);
      if (existing != nullptr && existing->route == upsert.route &&
          existing->cost == upsert.cost) {
        continue;  // byte-identical: not dirty, keep caches warm
      }
    }
    Add(upsert.name, upsert.route, upsert.cost);
    dirty.push_back(names_.Find(upsert.name));
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

RouteSet RouteSet::FromEntries(const std::vector<RouteEntry>& entries) {
  RouteSet set;
  for (const RouteEntry& entry : entries) {
    set.Add(entry.name, entry.route, entry.cost);
  }
  return set;
}

RouteSet RouteSet::FromText(std::string_view text, Diagnostics* diag) {
  RouteSet set;
  int line_number = 0;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) {
      end = text.size();
    }
    std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::vector<std::string_view> fields = SplitTabs(line);
    if (fields.size() == 2) {
      set.Add(fields[0], fields[1]);
    } else if (fields.size() == 3) {
      std::optional<Cost> cost = ParseCost(fields[0]);
      if (!cost) {
        if (diag != nullptr) {
          diag->Warn(SourcePos{"<routes>", line_number}, "malformed cost column; line skipped");
        }
        continue;
      }
      set.Add(fields[1], fields[2], *cost);
    } else if (diag != nullptr) {
      diag->Warn(SourcePos{"<routes>", line_number}, "malformed route line skipped");
    }
  }
  return set;
}

std::string RouteSet::ToText(bool include_costs) const {
  std::string out;
  for (const Route& route : routes_) {
    if (include_costs) {
      out += std::to_string(route.cost);
      out += '\t';
    }
    out += NameOf(route);
    out += '\t';
    out += route.route;
    out += '\n';
  }
  return out;
}

std::string RouteSet::ToSortedText(bool include_costs) const {
  std::vector<uint32_t> order(routes_.size());
  for (uint32_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return NameOf(routes_[a]) < NameOf(routes_[b]);
  });
  std::string out;
  for (uint32_t index : order) {
    const Route& route = routes_[index];
    if (include_costs) {
      out += std::to_string(route.cost);
      out += '\t';
    }
    out += NameOf(route);
    out += '\t';
    out += route.route;
    out += '\n';
  }
  return out;
}

std::string RouteSet::ToCdbBuffer() const {
  CdbWriter writer;
  for (const Route& route : routes_) {
    std::string value;
    if (route.cost >= 0) {
      value = std::to_string(route.cost) + "\t" + route.route;
    } else {
      value = route.route;
    }
    writer.Put(NameOf(route), value);
  }
  return writer.WriteBuffer();
}

std::optional<RouteSet> RouteSet::FromCdbBuffer(std::string buffer) {
  std::optional<CdbReader> reader = CdbReader::FromBuffer(std::move(buffer));
  if (!reader) {
    return std::nullopt;
  }
  RouteSet set;
  reader->ForEach([&set](std::string_view key, std::string_view value) {
    size_t tab = value.find('\t');
    if (tab != std::string_view::npos) {
      std::optional<Cost> cost = ParseCost(value.substr(0, tab));
      if (cost) {
        set.Add(key, value.substr(tab + 1), *cost);
        return;
      }
    }
    set.Add(key, value);
  });
  return set;
}

bool RouteSet::WriteCdbFile(const std::string& path) const {
  CdbWriter writer;
  for (const Route& route : routes_) {
    std::string value =
        route.cost >= 0 ? std::to_string(route.cost) + "\t" + route.route : route.route;
    writer.Put(NameOf(route), value);
  }
  return writer.WriteFile(path);
}

std::optional<RouteSet> RouteSet::OpenCdbFile(const std::string& path) {
  std::optional<CdbReader> reader = CdbReader::Open(path);
  if (!reader) {
    return std::nullopt;
  }
  RouteSet set;
  reader->ForEach([&set](std::string_view key, std::string_view value) {
    size_t tab = value.find('\t');
    if (tab != std::string_view::npos) {
      std::optional<Cost> cost = ParseCost(value.substr(0, tab));
      if (cost) {
        set.Add(key, value.substr(tab + 1), *cost);
        return;
      }
    }
    set.Add(key, value);
  });
  return set;
}

const Route* RouteSet::Find(std::string_view name) const {
  NameId id = names_.Find(name);
  return id == kNoName ? nullptr : Find(id);
}

}  // namespace pathalias
