#include "src/route_db/headers.h"

#include <cctype>

namespace pathalias {
namespace {

std::string_view Trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool FieldIs(std::string_view line, std::string_view name, std::string_view* value) {
  if (line.size() < name.size() + 1) {
    return false;
  }
  for (size_t i = 0; i < name.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(line[i])) !=
        std::tolower(static_cast<unsigned char>(name[i]))) {
      return false;
    }
  }
  if (line[name.size()] != ':') {
    return false;
  }
  *value = line.substr(name.size() + 1);
  return true;
}

}  // namespace

HeaderRewriter::HeaderRewriter(std::string local_host, const Resolver* resolver,
                               HeaderRewriteOptions options)
    : local_host_(std::move(local_host)), resolver_(resolver), options_(options) {}

std::string HeaderRewriter::Translate(const Address& address) const {
  if (options_.gateway_target == AddressStyle::kUucp) {
    return ToBangPath(address);
  }
  return ToPercentForm(address);
}

std::string HeaderRewriter::RewriteRecipient(std::string_view text, MailRole role) const {
  Address address = ParseAddress(text, options_.parse_style);
  switch (role) {
    case MailRole::kOriginate: {
      if (resolver_ == nullptr) {
        return std::string(text);
      }
      // "Hosts that re-route mail from local users should show the modified routes in
      // message headers" — and the shown route must be usable from anywhere downstream,
      // so it is the full database route, never an abbreviation.
      Resolution resolution = resolver_->Resolve(text);
      return resolution.ok ? resolution.route : std::string(text);
    }
    case MailRole::kRelay:
      // "Relays within a network should not modify routes, nor translate to foreign
      // addressing styles."  The cbosgd lesson: shortening seismo!mcvax!piet to
      // mcvax!piet warps everyone else's relative name space.
      return std::string(text);
    case MailRole::kGateway:
      return Translate(address);
  }
  return std::string(text);
}

std::string HeaderRewriter::RewriteOriginator(std::string_view text, MailRole role) const {
  Address address = ParseAddress(text, options_.parse_style);
  switch (role) {
    case MailRole::kOriginate:
      // A bare local user becomes host!user: the return path must work remotely.
      if (address.path.empty() && !address.user.empty()) {
        return local_host_ + "!" + address.user;
      }
      return std::string(text);
    case MailRole::kRelay:
      // The From: path is relative to wherever the message is; after this hop the
      // origin is one link further away, so the relay's name is prepended.  That is
      // not "modifying the route" — it is keeping a relative address true.
      address.path.insert(address.path.begin(), local_host_);
      return ToBangPath(address);
    case MailRole::kGateway: {
      Address prefixed = address;
      prefixed.path.insert(prefixed.path.begin(), local_host_);
      return Translate(prefixed);
    }
  }
  return std::string(text);
}

std::string HeaderRewriter::RewriteAddress(std::string_view address, MailRole role) const {
  return RewriteRecipient(address, role);
}

std::string HeaderRewriter::RewriteAddressList(std::string_view list, MailRole role,
                                               bool originator_field) const {
  std::string out;
  size_t start = 0;
  bool first = true;
  while (start <= list.size()) {
    size_t comma = list.find(',', start);
    std::string_view piece = comma == std::string_view::npos
                                 ? list.substr(start)
                                 : list.substr(start, comma - start);
    std::string_view address = Trim(piece);
    if (!address.empty()) {
      if (!first) {
        out += ", ";
      }
      first = false;
      out += originator_field ? RewriteOriginator(address, role)
                              : RewriteRecipient(address, role);
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

std::string HeaderRewriter::RewriteMessage(std::string_view message, MailRole role) const {
  std::string out;
  size_t pos = 0;
  bool in_headers = true;
  bool first_line = true;
  while (pos <= message.size()) {
    size_t end = message.find('\n', pos);
    bool had_newline = end != std::string_view::npos;
    std::string_view line = message.substr(pos, had_newline ? end - pos : std::string_view::npos);
    pos = had_newline ? end + 1 : message.size() + 1;

    if (!in_headers) {
      out += line;
      if (had_newline) {
        out += '\n';
      }
      continue;
    }
    if (line.empty()) {
      in_headers = false;
      out += line;
      if (had_newline) {
        out += '\n';
      }
      continue;
    }

    // The mbox envelope: "From user date..." — relays traditionally prepend their
    // name to the address and append "remote from <previous hop implied by caller>".
    if (first_line && line.starts_with("From ") && role != MailRole::kOriginate) {
      first_line = false;
      size_t addr_start = 5;
      size_t addr_end = line.find(' ', addr_start);
      if (addr_end == std::string_view::npos) {
        addr_end = line.size();
      }
      std::string_view address = line.substr(addr_start, addr_end - addr_start);
      out += "From ";
      out += RewriteOriginator(address, role);
      out += line.substr(addr_end);
      out += " remote from ";
      out += local_host_;
      if (had_newline) {
        out += '\n';
      }
      continue;
    }
    first_line = false;

    // Gather continuation lines — but only for the address fields this rewriter owns;
    // a wrapped Subject: must pass through with its line breaks intact ("other
    // message data should not be modified at all").
    std::string_view probe;
    bool address_field = FieldIs(line, "From", &probe) || FieldIs(line, "To", &probe) ||
                         FieldIs(line, "Cc", &probe);
    std::string logical(line);
    while (address_field && pos < message.size() &&
           (message[pos] == ' ' || message[pos] == '\t')) {
      size_t cont_end = message.find('\n', pos);
      bool cont_newline = cont_end != std::string_view::npos;
      std::string_view cont =
          message.substr(pos, cont_newline ? cont_end - pos : std::string_view::npos);
      logical += ' ';
      logical += Trim(cont);
      pos = cont_newline ? cont_end + 1 : message.size() + 1;
    }

    std::string_view value;
    if (FieldIs(logical, "From", &value)) {
      out += "From: " + RewriteAddressList(value, role, /*originator_field=*/true);
    } else if (FieldIs(logical, "To", &value)) {
      out += "To: " + RewriteAddressList(value, role, /*originator_field=*/false);
    } else if (FieldIs(logical, "Cc", &value)) {
      out += "Cc: " + RewriteAddressList(value, role, /*originator_field=*/false);
    } else {
      // "Other message data should not be modified at all."
      out += logical;
    }
    if (had_newline) {
      out += '\n';
    }
  }
  return out;
}

}  // namespace pathalias
