// Clique representations (paper §Networks, experiment E3).
//
// "A clique with n vertices contains about n² edges, so with over 2,000 hosts in the
// ARPANET we are faced with millions of edges."  pathalias represents a network as a
// single node with a pair of edges per member; this module also builds the rejected
// explicit representation so the benchmark can regenerate the comparison.
//
// Both builders produce the same logical topology: a `source` host with one declared
// link to the first member, plus an n-member clique at `entry_cost`.  Path costs from
// source agree between representations (net entry pays entry_cost once, exit is free —
// exactly what a direct member-to-member edge costs), which the equivalence test pins.

#ifndef SRC_BASELINE_CLIQUE_EXPAND_H_
#define SRC_BASELINE_CLIQUE_EXPAND_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace pathalias {

struct CliqueSpec {
  int members = 8;
  Cost entry_cost = 95;   // DEDICATED, the ARPANET grade
  Cost source_cost = 300; // DEMAND link from source to member 0
  char op = '@';
  bool right_syntax = true;
};

// Member names are m0, m1, ...; the source host is named "source".
std::vector<std::string> CliqueMemberNames(int members);

// Net representation: one placeholder node, 2n member edges.
void BuildCliqueAsNet(Graph& graph, const CliqueSpec& spec);

// Explicit representation: n(n-1) member-to-member edges.
void BuildCliqueExplicit(Graph& graph, const CliqueSpec& spec);

}  // namespace pathalias

#endif  // SRC_BASELINE_CLIQUE_EXPAND_H_
