// The "standard version of Dijkstra's algorithm" (paper §Time complexity).
//
// Extract-min by scanning an array of all vertices: Θ(v²) regardless of edge count.
// The paper's point is that for the sparse USENET graph (e ∝ v) the heap variant's
// e·log v beats this "both asymptotically and pragmatically", while on dense graphs
// the v²·log v heap bound loses — experiment E8 regenerates both regimes.
//
// Paths are priced with the *same* heuristic cost function as the production mapper
// (taken from Mapper::CostOf), so E8 compares extraction strategies, nothing else.
// Single-label mode only, no back-link passes: the comparison covers the core mapping
// loop the paper analyzes.

#ifndef SRC_BASELINE_DENSE_DIJKSTRA_H_
#define SRC_BASELINE_DENSE_DIJKSTRA_H_

#include <cstddef>
#include <vector>

#include "src/core/mapper.h"

namespace pathalias {

struct DenseDijkstraResult {
  size_t mapped = 0;
  size_t scans = 0;        // vertex inspections during extract-min (the v² term)
  size_t relaxations = 0;
  // Final label per node, indexed by node->order.  labels[i].cost == kUnreached means
  // unreachable.
  std::vector<PathLabel> labels;
};

// Maps graph->local() to every vertex.  Leaves node->cost/parent untouched (results
// are returned, not written back), so it can run against a graph the heap mapper also
// maps — equivalence tests rely on that.
DenseDijkstraResult DenseDijkstra(Graph* graph, const MapOptions& options);

}  // namespace pathalias

#endif  // SRC_BASELINE_DENSE_DIJKSTRA_H_
