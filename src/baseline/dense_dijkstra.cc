#include "src/baseline/dense_dijkstra.h"

namespace pathalias {
namespace {

// Mirror of the heap mapper's tie-break so both algorithms pick identical trees.
bool LabelBefore(const PathLabel& a, const PathLabel& b, const NameInterner& names) {
  if (a.cost != b.cost) {
    return a.cost < b.cost;
  }
  if (a.hops != b.hops) {
    return a.hops < b.hops;
  }
  return names.View(a.node->name) < names.View(b.node->name);
}

}  // namespace

DenseDijkstraResult DenseDijkstra(Graph* graph, const MapOptions& options) {
  DenseDijkstraResult result;
  Node* local = graph->local();
  if (local == nullptr) {
    return result;
  }
  // Pricing must match the production mapper exactly; borrow its cost function.
  MapOptions pricing = options;
  pricing.two_label = false;
  Mapper cost_model(graph, pricing);

  std::span<Node* const> nodes = graph->nodes();
  result.labels.resize(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    result.labels[i].node = nodes[i];
    result.labels[i].cost = kUnreached;
  }
  PathLabel& root = result.labels[static_cast<size_t>(local->order)];
  root.cost = 0;
  root.taint = local->domain() ? 1 : 0;

  for (;;) {
    // Extract-min by full scan: the Θ(v²) loop the paper's heap variant replaces.
    PathLabel* current = nullptr;
    for (PathLabel& label : result.labels) {
      ++result.scans;
      if (label.mapped || label.cost == kUnreached || label.node->deleted()) {
        continue;
      }
      if (current == nullptr || LabelBefore(label, *current, graph->names())) {
        current = &label;
      }
    }
    if (current == nullptr) {
      break;
    }
    current->mapped = true;
    current->best = true;
    ++result.mapped;
    for (Link* link = current->node->links; link != nullptr; link = link->next) {
      Node* to = link->to;
      if (to->deleted()) {
        continue;
      }
      ++result.relaxations;
      PathLabel& target = result.labels[static_cast<size_t>(to->order)];
      if (target.mapped) {
        continue;
      }
      Cost cost = cost_model.CostOf(*current, *link);
      int32_t hops = current->hops + (link->alias() ? 0 : 1);
      if (cost < target.cost || (cost == target.cost && hops < target.hops)) {
        target.cost = cost;
        target.hops = hops;
        target.parent = current;
        target.via = link;
        target.taint = Mapper::TaintAfter(*current, *to);
        Mapper::PropagateSyntax(*current, *link, target);
      }
    }
  }
  return result;
}

}  // namespace pathalias
