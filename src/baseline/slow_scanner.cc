#include "src/baseline/slow_scanner.h"

namespace pathalias {

const std::array<SlowScanner::CharClass, 256> SlowScanner::kClassTable = [] {
  std::array<CharClass, 256> table{};
  for (int c = 0; c < 256; ++c) {
    table[static_cast<size_t>(c)] = kClsOther;
  }
  table[' '] = kClsSpace;
  table['\t'] = kClsSpace;
  table['\r'] = kClsSpace;
  table['\n'] = kClsNewline;
  for (unsigned char c = 'a'; c <= 'z'; ++c) {
    table[c] = kClsName;
  }
  for (unsigned char c = 'A'; c <= 'Z'; ++c) {
    table[c] = kClsName;
  }
  for (unsigned char c = '0'; c <= '9'; ++c) {
    table[c] = kClsName;
  }
  table['.'] = kClsName;
  table['-'] = kClsName;
  table['_'] = kClsName;
  table['+'] = kClsName;
  table['!'] = kClsOp;
  table['@'] = kClsOp;
  table[':'] = kClsOp;
  table['%'] = kClsOp;
  table[','] = kClsPunct;
  table['{'] = kClsPunct;
  table['}'] = kClsPunct;
  table['('] = kClsPunct;
  table[')'] = kClsPunct;
  table['='] = kClsPunct;
  table['#'] = kClsHash;
  table['\\'] = kClsBackslash;
  return table;
}();

// yy_nxt: for each state, the successor state per character class.
const std::array<std::array<uint8_t, SlowScanner::kClassCount>, SlowScanner::kStateCount>
    SlowScanner::kNextState = [] {
      std::array<std::array<uint8_t, kClassCount>, kStateCount> table{};
      for (auto& row : table) {
        row.fill(kJam);
      }
      auto& start = table[kStart];
      start[kClsSpace] = kInSpace;
      start[kClsNewline] = kSeenNewline;
      start[kClsName] = kInName;
      start[kClsOp] = kSeenOp;
      start[kClsPunct] = kSeenPunct;
      start[kClsHash] = kInComment;
      start[kClsBackslash] = kSeenBackslash;
      start[kClsOther] = kSeenOther;
      table[kInSpace][kClsSpace] = kInSpace;
      table[kInName][kClsName] = kInName;
      for (int cls = 0; cls < kClassCount; ++cls) {
        if (cls != kClsNewline) {
          table[kInComment][static_cast<size_t>(cls)] = kInComment;
        }
      }
      table[kSeenBackslash][kClsNewline] = kSeenSplice;
      return table;
    }();

// yy_accept: the action for each accepting state.
const std::array<SlowScanner::Action, SlowScanner::kStateCount> SlowScanner::kAccept = [] {
  std::array<Action, kStateCount> table{};
  table.fill(kActNone);
  table[kInSpace] = kActSkip;
  table[kInName] = kActName;
  table[kInComment] = kActSkip;
  table[kSeenOp] = kActOp;
  table[kSeenPunct] = kActPunct;
  table[kSeenNewline] = kActNewline;
  table[kSeenBackslash] = kActBad;  // lone backslash
  table[kSeenSplice] = kActSplice;
  table[kSeenOther] = kActBad;
  return table;
}();

int SlowScanner::InputChar() {
  return pos_ < input_.size() ? static_cast<unsigned char>(input_[pos_]) : -1;
}

Token SlowScanner::Next() {
  for (;;) {
    if (pos_ >= input_.size()) {
      return Token{TokenKind::kEnd, {}, line_, 0};
    }
    // One lex match: walk the DFA until it jams, tracking the last accepting state —
    // exactly the yy_ec / yy_nxt / yy_accept interpreter loop of generated scanners.
    size_t token_start = pos_;
    int token_line = line_;
    uint8_t state = kStart;
    Action last_action = kActNone;
    size_t last_accept_end = pos_;
    int newlines_consumed = 0;
    yytext_.clear();
    yy_state_buf_.clear();
    for (;;) {
      int ci = InputChar();  // lex reads each character through input()
      if (ci < 0) {
        break;
      }
      char c = static_cast<char>(ci);
      ++chars_dispatched_;
      uint8_t cls = kClassTable[static_cast<unsigned char>(c)];
      uint8_t next = kNextState[state][cls];
      if (next == kJam) {
        break;
      }
      state = next;
      yy_state_buf_.push_back(static_cast<char>(state));  // REJECT history (yylstate)
      yytext_.push_back(c);                               // the copy lex always makes
      ++pos_;
      if (c == '\n') {
        ++newlines_consumed;
      }
      Action action = kAccept[state];
      if (action != kActNone) {
        last_action = action;
        last_accept_end = pos_;
      }
    }
    // Back up to the last accepting position (lex's backtracking).
    pos_ = last_accept_end;
    line_ = token_line + newlines_consumed;
    std::string_view text = input_.substr(token_start, last_accept_end - token_start);
    switch (last_action) {
      case kActSkip:
        continue;
      case kActSplice:
        continue;  // backslash-newline joins lines; line_ already advanced
      case kActName:
        return Token{TokenKind::kName, text, token_line, 0};
      case kActOp:
        return Token{TokenKind::kOp, text, token_line, text[0]};
      case kActPunct: {
        TokenKind kind;
        switch (text[0]) {
          case ',':
            kind = TokenKind::kComma;
            break;
          case '{':
            kind = TokenKind::kLBrace;
            break;
          case '}':
            kind = TokenKind::kRBrace;
            break;
          case '(':
            kind = TokenKind::kLParen;
            break;
          case ')':
            kind = TokenKind::kRParen;
            break;
          default:
            kind = TokenKind::kEquals;
            break;
        }
        return Token{kind, text, token_line, 0};
      }
      case kActNewline:
        return Token{TokenKind::kNewline, text, token_line, 0};
      case kActBad:
      case kActNone:
        if (last_accept_end == token_start) {
          ++pos_;  // ensure progress on a character no rule matches
          return Token{TokenKind::kBad, input_.substr(token_start, 1), token_line, 0};
        }
        return Token{TokenKind::kBad, text, token_line, 0};
    }
  }
}

std::string_view SlowScanner::CaptureParenBody() {
  size_t start = pos_;
  int depth = 1;
  yytext_.clear();
  for (;;) {
    int ci = InputChar();
    if (ci < 0) {
      break;
    }
    char c = static_cast<char>(ci);
    ++chars_dispatched_;
    // Even here the generated scanner pays its class lookup and buffer copy.
    uint8_t cls = kClassTable[static_cast<unsigned char>(c)];
    (void)cls;
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0) {
        std::string_view body = input_.substr(start, pos_ - start);
        ++pos_;
        return body;
      }
    } else if (c == '\n') {
      ++line_;
    }
    yytext_.push_back(c);
    ++pos_;
  }
  return input_.substr(start);
}

}  // namespace pathalias
