// Allocator baselines (paper §Memory allocation woes, experiment E5).
//
// The paper evaluated allocators from Korn & Vo's "In Search of a Better Malloc"
// (USENIX 1985) against pathalias's pattern — allocate heavily while parsing, free
// almost nothing until exit — and concluded that a buffered-sbrk arena with no reuse
// wins on both time and space, because "memory allocators that attempt to coalesce
// when space is freed simply waste time (and space)".
//
// The two rejected designs rebuilt here:
//   * MallocEachAllocator — one general-purpose heap call per object (per-object
//     header overhead, no batching);
//   * FreeListAllocator   — classic first-fit with address-ordered free list and
//     boundary coalescing (the list walk on free is the time sink the paper calls out).
// ArenaAllocatorAdapter wraps the production Arena behind the same interface.
//
// The benchmark replays a real allocation trace recorded from parsing a synthetic
// USENET map (Arena::set_trace), so all three face the byte-identical workload.

#ifndef SRC_BASELINE_ALLOC_BASELINES_H_
#define SRC_BASELINE_ALLOC_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/support/arena.h"

namespace pathalias {

class AllocatorBase {
 public:
  virtual ~AllocatorBase() = default;
  virtual void* Alloc(size_t size) = 0;
  virtual void Free(void* p) = 0;
  // Total bytes obtained from the OS, including headers and slack: the space axis.
  virtual size_t bytes_reserved() const = 0;
  virtual const char* name() const = 0;
};

class MallocEachAllocator final : public AllocatorBase {
 public:
  void* Alloc(size_t size) override;
  void Free(void* p) override;
  size_t bytes_reserved() const override { return reserved_; }
  const char* name() const override { return "malloc-each"; }

 private:
  // glibc-style bookkeeping estimate: 8-byte header, 16-byte granule.
  static size_t Footprint(size_t size);
  size_t reserved_ = 0;
};

class FreeListAllocator final : public AllocatorBase {
 public:
  explicit FreeListAllocator(size_t block_size = 256 * 1024);
  ~FreeListAllocator() override;

  void* Alloc(size_t size) override;
  void Free(void* p) override;
  size_t bytes_reserved() const override { return reserved_; }
  const char* name() const override { return "first-fit+coalesce"; }

  size_t free_list_length() const;

 private:
  struct Header {
    size_t size;  // payload bytes following the header
  };
  struct FreeNode {
    size_t size;
    FreeNode* next;
  };

  void AddBlock(size_t payload);
  void InsertCoalesced(FreeNode* node);

  size_t block_size_;
  FreeNode* free_list_ = nullptr;  // address-ordered
  std::vector<void*> blocks_;
  size_t reserved_ = 0;
};

class ArenaAllocatorAdapter final : public AllocatorBase {
 public:
  void* Alloc(size_t size) override { return arena_.Allocate(size); }
  void Free(void*) override {}  // the whole point: never free
  size_t bytes_reserved() const override { return arena_.stats().bytes_reserved; }
  const char* name() const override { return "buffered-arena"; }

 private:
  Arena arena_;
};

// Replays pathalias's allocation pattern: every size in order, then (for allocators
// that support it) everything freed at once — "after parsing ... just about everything
// is freed".  Returns a checksum so the work cannot be optimized away.
uint64_t ReplayParseTrace(AllocatorBase& allocator, std::span<const uint32_t> sizes,
                          bool free_at_end);

// Records the allocation-size trace of parsing `map_text` through the real pipeline.
std::vector<uint32_t> RecordParseTrace(const std::string& map_text);

}  // namespace pathalias

#endif  // SRC_BASELINE_ALLOC_BASELINES_H_
