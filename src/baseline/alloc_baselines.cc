#include "src/baseline/alloc_baselines.h"

#include <cassert>
#include <cstring>
#include <new>

#include "src/graph/graph.h"
#include "src/parser/parser.h"

namespace pathalias {

size_t MallocEachAllocator::Footprint(size_t size) {
  size_t with_header = size + 8;
  return (with_header + 15) & ~static_cast<size_t>(15);
}

void* MallocEachAllocator::Alloc(size_t size) {
  reserved_ += Footprint(size);
  return ::operator new(size);
}

void MallocEachAllocator::Free(void* p) { ::operator delete(p); }

FreeListAllocator::FreeListAllocator(size_t block_size) : block_size_(block_size) {}

FreeListAllocator::~FreeListAllocator() {
  for (void* block : blocks_) {
    ::operator delete(block);
  }
}

void FreeListAllocator::AddBlock(size_t payload) {
  size_t usable = payload > block_size_ ? payload : block_size_;
  void* raw = ::operator new(usable);
  blocks_.push_back(raw);
  reserved_ += usable;
  auto* node = static_cast<FreeNode*>(raw);
  node->size = usable;
  node->next = nullptr;
  InsertCoalesced(node);
}

void FreeListAllocator::InsertCoalesced(FreeNode* node) {
  // Address-ordered insert, coalescing with both neighbors — the classic design whose
  // per-free list walk the paper identifies as wasted work for this workload.
  FreeNode** cursor = &free_list_;
  while (*cursor != nullptr && *cursor < node) {
    cursor = &(*cursor)->next;
  }
  node->next = *cursor;
  *cursor = node;
  // Coalesce node with successor.
  if (node->next != nullptr &&
      reinterpret_cast<char*>(node) + node->size == reinterpret_cast<char*>(node->next)) {
    node->size += node->next->size;
    node->next = node->next->next;
  }
  // Coalesce predecessor with node.
  if (cursor != &free_list_) {
    auto* prev = reinterpret_cast<FreeNode*>(reinterpret_cast<char*>(cursor) -
                                             offsetof(FreeNode, next));
    if (reinterpret_cast<char*>(prev) + prev->size == reinterpret_cast<char*>(node)) {
      prev->size += node->size;
      prev->next = node->next;
    }
  }
}

void* FreeListAllocator::Alloc(size_t size) {
  size_t need = ((size + sizeof(Header) + 15) & ~static_cast<size_t>(15));
  if (need < sizeof(FreeNode) + sizeof(Header)) {
    need = sizeof(FreeNode) + sizeof(Header);
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    FreeNode** cursor = &free_list_;
    while (*cursor != nullptr) {
      FreeNode* node = *cursor;
      if (node->size >= need) {
        size_t leftover = node->size - need;
        if (leftover >= sizeof(FreeNode) + sizeof(Header)) {
          // Split: tail stays free.
          auto* rest = reinterpret_cast<FreeNode*>(reinterpret_cast<char*>(node) + need);
          rest->size = leftover;
          rest->next = node->next;
          *cursor = rest;
        } else {
          need = node->size;  // use it whole
          *cursor = node->next;
        }
        auto* header = reinterpret_cast<Header*>(node);
        header->size = need;
        return reinterpret_cast<char*>(header) + sizeof(Header);
      }
      cursor = &node->next;
    }
    AddBlock(need);
  }
  throw std::bad_alloc();
}

void FreeListAllocator::Free(void* p) {
  if (p == nullptr) {
    return;
  }
  auto* header = reinterpret_cast<Header*>(static_cast<char*>(p) - sizeof(Header));
  auto* node = reinterpret_cast<FreeNode*>(header);
  size_t size = header->size;
  node->size = size;
  node->next = nullptr;
  InsertCoalesced(node);
}

size_t FreeListAllocator::free_list_length() const {
  size_t length = 0;
  for (FreeNode* node = free_list_; node != nullptr; node = node->next) {
    ++length;
  }
  return length;
}

uint64_t ReplayParseTrace(AllocatorBase& allocator, std::span<const uint32_t> sizes,
                          bool free_at_end) {
  std::vector<void*> live;
  live.reserve(sizes.size());
  uint64_t checksum = 0;
  for (uint32_t size : sizes) {
    void* p = allocator.Alloc(size);
    // Touch the storage like real node/link initialization does.
    std::memset(p, 0, size < 64 ? size : 64);
    checksum ^= reinterpret_cast<uintptr_t>(p);
    live.push_back(p);
  }
  if (free_at_end) {
    // "After parsing ... just about everything is freed."
    for (void* p : live) {
      allocator.Free(p);
    }
  }
  return checksum;
}

std::vector<uint32_t> RecordParseTrace(const std::string& map_text) {
  Diagnostics diag;
  Graph graph(&diag);
  std::vector<uint32_t> trace;
  graph.arena().set_trace(&trace);
  Parser parser(&graph);
  parser.ParseFile(InputFile{"<trace>", map_text});
  graph.arena().set_trace(nullptr);
  return trace;
}

}  // namespace pathalias
