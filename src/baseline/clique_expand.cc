#include "src/baseline/clique_expand.h"

namespace pathalias {
namespace {

Node* AttachSource(Graph& graph, const CliqueSpec& spec, Node* first_member) {
  Node* source = graph.Intern("source");
  graph.AddLink(source, first_member, spec.source_cost, kDefaultOp, /*right_syntax=*/false,
                SourcePos{});
  graph.SetLocal("source");
  return source;
}

}  // namespace

std::vector<std::string> CliqueMemberNames(int members) {
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(members));
  for (int i = 0; i < members; ++i) {
    names.push_back("m" + std::to_string(i));
  }
  return names;
}

void BuildCliqueAsNet(Graph& graph, const CliqueSpec& spec) {
  std::vector<Node*> members;
  for (const std::string& name : CliqueMemberNames(spec.members)) {
    members.push_back(graph.Intern(name));
  }
  Node* net = graph.Intern("NET");
  graph.DeclareNet(net, members, spec.entry_cost, spec.op, spec.right_syntax, SourcePos{});
  AttachSource(graph, spec, members.front());
}

void BuildCliqueExplicit(Graph& graph, const CliqueSpec& spec) {
  std::vector<Node*> members;
  for (const std::string& name : CliqueMemberNames(spec.members)) {
    members.push_back(graph.Intern(name));
  }
  for (Node* from : members) {
    for (Node* to : members) {
      if (from != to) {
        graph.AddLink(from, to, spec.entry_cost, spec.op, spec.right_syntax, SourcePos{});
      }
    }
  }
  AttachSource(graph, spec, members.front());
}

}  // namespace pathalias
