// A lex(1)-style scanner (paper §Parsing, experiment E4).
//
// "We experimented with lex for transforming the raw input into lexical tokens, but
// were disappointed with its performance: half the run time was spent in the scanner."
// lex's cost was structural, and this scanner reproduces the structure exactly: for
// every input character it performs a non-inlined input() call (AT&T lex read through
// a getc-style routine), an equivalence-class lookup (yy_ec), a next-state table
// lookup (yy_nxt), accepting-state bookkeeping for backtracking (yy_accept /
// last-accepting-state), a push onto the REJECT state-history buffer (lex's yylstate —
// AT&T lex always paid for REJECT capability), and a byte append into the yytext
// buffer — whether or not the parser wants the text.  The hand-built Lexer does one
// switch per character and copies nothing.
//
// It emits exactly the same token stream as Lexer (tests pin stream equality; the
// benchmark pins the speed ratio).  Documented simulation: DESIGN.md §3.

#ifndef SRC_BASELINE_SLOW_SCANNER_H_
#define SRC_BASELINE_SLOW_SCANNER_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/parser/scanner.h"

namespace pathalias {

class SlowScanner final : public Scanner {
 public:
  explicit SlowScanner(std::string_view input) : input_(input) {}

  Token Next() override;
  std::string_view CaptureParenBody() override;
  int line() const override { return line_; }

  // Total characters pushed through the automaton (benchmark counter).
  size_t chars_dispatched() const { return chars_dispatched_; }

 private:
  // Character equivalence classes (lex's yy_ec).
  enum CharClass : uint8_t {
    kClsSpace,
    kClsNewline,
    kClsName,
    kClsOp,
    kClsPunct,
    kClsHash,
    kClsBackslash,
    kClsOther,
    kClassCount,
  };

  // DFA states (lex's yy_nxt rows).  kJam = no transition: token complete.
  enum State : uint8_t {
    kStart,
    kInSpace,
    kInName,
    kInComment,
    kSeenOp,
    kSeenPunct,
    kSeenNewline,
    kSeenBackslash,
    kSeenSplice,
    kSeenOther,
    kStateCount,
    kJam = 0xff,
  };

  // Token-level actions attached to accepting states (lex's yy_accept).
  enum Action : uint8_t {
    kActNone,  // non-accepting
    kActSkip,
    kActName,
    kActOp,
    kActPunct,
    kActNewline,
    kActSplice,
    kActBad,
  };

  static const std::array<CharClass, 256> kClassTable;
  static const std::array<std::array<uint8_t, kClassCount>, kStateCount> kNextState;
  static const std::array<Action, kStateCount> kAccept;

  // The per-character input() routine; deliberately opaque to the optimizer, as the
  // stdio call in generated scanners was.  Returns -1 at end of input.
  [[gnu::noinline]] int InputChar();

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  std::string yytext_;            // lex copies every token's text here
  std::string yy_state_buf_;      // state history for REJECT (lex's yylstate)
  size_t chars_dispatched_ = 0;
};

}  // namespace pathalias

#endif  // SRC_BASELINE_SLOW_SCANNER_H_
