// Request coalescing and duplicate-request dedup for the routedbd loop.
//
// RequestCoalescer: the daemon drains every datagram the kernel has queued before
// resolving anything, accumulating all their queries into ONE flat batch — so a
// burst of concurrent clients costs one BasicBatchEngine::ResolveBatch call (the
// PR-6 pipelined walk, the PR-3 shards, the result cache) instead of N small ones,
// and the demultiplexing back to per-client replies is a span slice per request.
// Query bytes are copied out of the receive buffer into an owned arena (the buffer
// is reused for the next datagram); views are materialized only at Finish(), after
// the arena stops growing.
//
// ReplayBuffer: the dedup side of the retransmit discipline (wire.h).  Keyed by
// (peer address bytes, request id), holding the encoded reply datagram that was
// sent.  A retransmitted request is answered by resending those exact bytes with
// kReplyFlagReplayed OR'd in — the resolve is not repeated, and a client that
// missed the first reply cannot observe a different answer computed after a map
// rollover (the at-most-once answer property the linearizability test leans on).
// Bounded FIFO: `capacity` entries AND `max_bytes` of stored key+reply bytes,
// oldest evicted first past either limit — entry count alone would let a few
// thousand 64 KiB replies pin tens of MiB.  A replay miss after eviction falls
// through to a fresh resolve, which is still correct — just not guaranteed
// byte-identical across a rollover, matching UDP's at-least-once reality.
// Evictions are counted (entries and bytes) for DaemonStats.

#ifndef SRC_NET_COALESCER_H_
#define SRC_NET_COALESCER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/net/socket.h"

namespace pathalias {
namespace net {

class RequestCoalescer {
 public:
  // One accepted request datagram awaiting its slice of the batch results.
  struct Pending {
    PeerAddress peer;
    uint64_t request_id = 0;
    size_t first_query = 0;  // offset of this request's queries in the flat batch
    size_t query_count = 0;
  };

  // Appends a request's queries to the batch.  `queries` views the receive
  // buffer; the bytes are copied here.
  void Add(const PeerAddress& peer, uint64_t request_id,
           const std::vector<std::string_view>& queries);

  // Materializes the flat query views (stable until Reset).  Call once after the
  // last Add of a turn.
  const std::vector<std::string_view>& Finish();

  const std::vector<Pending>& pending() const { return pending_; }
  size_t total_queries() const { return offsets_.size(); }
  bool empty() const { return pending_.empty(); }

  // Clears for the next turn, keeping the arena's capacity warm.
  void Reset();

 private:
  std::vector<Pending> pending_;
  std::string arena_;  // all query bytes, back to back
  std::vector<std::pair<uint32_t, uint32_t>> offsets_;  // (offset, length) per query
  std::vector<std::string_view> views_;
};

class ReplayBuffer {
 public:
  // `capacity` bounds entries; `max_bytes` bounds total stored key+reply bytes
  // (0 = unlimited).  Either bound alone triggers FIFO eviction.
  explicit ReplayBuffer(size_t capacity, size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  // The stored reply for (peer, id), or nullptr.  The pointer is valid until the
  // next Put.
  const std::string* Find(const PeerAddress& peer, uint64_t request_id) const;

  // Records the reply sent for (peer, id), evicting oldest-first past either
  // bound.  A repeat Put for the same key (client retransmitted before we
  // replied, and both got answered) overwrites in place.  A single reply larger
  // than the whole byte budget is not stored — the budget is a hard cap.
  void Put(const PeerAddress& peer, uint64_t request_id, std::string reply);

  size_t size() const { return replies_.size(); }
  size_t bytes() const { return bytes_; }
  // Monotonic totals since construction, for DaemonStats.
  uint64_t evicted_entries() const { return evicted_entries_; }
  uint64_t evicted_bytes() const { return evicted_bytes_; }

 private:
  static std::string KeyOf(const PeerAddress& peer, uint64_t request_id);
  void EvictOldest();

  size_t capacity_;
  size_t max_bytes_;
  size_t bytes_ = 0;  // stored key + reply bytes across all live entries
  uint64_t evicted_entries_ = 0;
  uint64_t evicted_bytes_ = 0;
  std::unordered_map<std::string, std::string> replies_;
  std::deque<std::string> order_;  // insertion order of keys, for FIFO eviction
};

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_COALESCER_H_
