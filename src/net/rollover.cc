#include "src/net/rollover.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/image/image_writer.h"
#include "src/incr/state_dir.h"
#include "src/parser/parser.h"
#include "src/support/failpoint.h"

namespace pathalias {
namespace net {

namespace {

// Route equality for the image-diff path: same key, same expansion bytes, same
// cost (two no-routes are equal).
bool SameRoute(const RouteView& a, const RouteView& b) {
  if (a.ok() != b.ok()) {
    return false;
  }
  if (!a.ok()) {
    return true;
  }
  return a.name == b.name && a.cost == b.cost && a.route == b.route;
}

}  // namespace

bool RolloverController::StatImage(ImageIdentity* out) const {
  struct stat st;
  if (::stat(options_.image_path.c_str(), &st) != 0) {
    return false;
  }
  out->dev = st.st_dev;
  out->inode = st.st_ino;
  out->size = st.st_size;
  out->mtime_sec = static_cast<int64_t>(st.st_mtim.tv_sec);
  out->mtime_nsec = static_cast<int64_t>(st.st_mtim.tv_nsec);
  return true;
}

bool RolloverController::Start(std::string* error) {
  auto image = FrozenImage::Open(options_.image_path, image::ImageView::Verify::kStructure,
                                 error, /*readahead=*/true);
  if (!image.has_value()) {
    return false;
  }
  current_ = std::make_unique<FrozenImage>(std::move(*image));
  image_generation_ = current_->view().header().generation;
  engine_ = std::make_unique<exec::FrozenBatchEngine>(&current_->routes(), options_.engine);
  StatImage(&identity_);  // best-effort: a failed stat just means CheckImage re-opens
  return true;
}

bool RolloverController::EnsureBuilder(std::string* detail) {
  if (builder_ != nullptr) {
    return true;
  }
  std::string state_dir = options_.image_path + ".state";
  std::string error;
  auto state = incr::LoadStateDir(state_dir, &error);
  if (!state.has_value()) {
    *detail = "cannot load " + state_dir + " (" + error +
              "); run `routedb update --init` before HUP-reloading";
    return false;
  }
  // Generation agreement: the state dir must be the one published with the
  // image being served.  A disagreement means the last publish tore between
  // the image rename and the manifest rename — the state's NameId assignment
  // may not match the image's, and building on it could make AdoptRoutes adopt
  // routes keyed by the wrong ids.  Refuse; the old map keeps serving, and
  // `routedb update` (which re-freezes the whole image) heals the pairing.
  // Stamps of 0 are pre-generation files and can't be checked.
  if (state->image_generation != 0 && image_generation_ != 0 &&
      state->image_generation != image_generation_) {
    *detail = "generation mismatch: " + state_dir + " is generation " +
              std::to_string(state->image_generation) + " but the served image is " +
              std::to_string(image_generation_) +
              " (torn update?); run `routedb update` to republish both";
    return false;
  }
  incr::MapBuilderOptions builder_options;
  builder_options.local = state->local;
  builder_options.ignore_case = state->ignore_case;
  auto builder = std::make_unique<incr::MapBuilder>(builder_options);
  if (!builder->BuildFromArtifacts(std::move(state->artifacts))) {
    *detail = "retained state in " + state_dir + " no longer builds";
    return false;
  }
  builder_ = std::move(builder);
  return true;
}

ReloadOutcome RolloverController::ReloadFromSources(std::string* detail) {
  if (options_.map_files.empty()) {
    *detail = "no map files configured; reload-from-sources disabled";
    return ReloadOutcome::kError;
  }
  if (!EnsureBuilder(detail)) {
    return ReloadOutcome::kError;
  }
  // Offer every configured file; the builder's digest check turns the unchanged
  // ones into no-ops without lexing them.
  std::vector<InputFile> files;
  files.reserve(options_.map_files.size());
  for (const std::string& path : options_.map_files) {
    std::ifstream in(path);
    if (!in) {
      *detail = "cannot open map file " + path;
      return ReloadOutcome::kError;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({path, std::move(buffer).str()});
  }
  incr::UpdateStats stats = builder_->Update(files);
  if (!builder_->valid()) {
    // The builder's retained state may be damaged too: drop it so the next HUP
    // reloads from the state dir instead of updating on top of a broken graph.
    builder_.reset();
    *detail = "update left no buildable map; previous image still serving";
    return ReloadOutcome::kError;
  }
  if (builder_->dirty_route_ids().empty()) {
    // No source change — but if a previous reload published the image and then
    // failed to reopen it, the file on disk is ahead of the map being served.
    // Reconcile through the image-diff path rather than reporting a no-op that
    // would strand the old map until the next source edit.
    ImageIdentity now;
    if (StatImage(&now) && !(now == identity_)) {
      return CheckImage(detail);
    }
    *detail = "no route changed (" + std::to_string(stats.files_unchanged) +
              " file(s) digest-unchanged)";
    return ReloadOutcome::kNoop;
  }
  // Publish image first, then state, both stamped with the same generation: a
  // crash between the two leaves the image ahead of the state, which the next
  // EnsureBuilder detects as a mismatch instead of serving a mixed pair.
  const uint64_t next_generation = image_generation_ + 1;
  std::string error;
  if (!image::ImageWriter::Refreeze(builder_->routes(), options_.image_path,
                                    next_generation, &error)) {
    // The builder already absorbed the file changes, so a retry would see
    // digest-clean sources and no-op with the publish still missing.  Drop it:
    // the next reload rebuilds from the state dir (still paired with the served
    // image) and re-applies the edits as a fresh update.
    builder_.reset();
    *detail = "cannot rewrite " + options_.image_path + ": " + error;
    return ReloadOutcome::kError;
  }
  incr::StateDirContents contents;
  contents.local = builder_->options().local;
  contents.ignore_case = builder_->options().ignore_case;
  contents.image_generation = next_generation;
  contents.artifacts = builder_->artifacts();
  if (!incr::SaveStateDir(options_.image_path + ".state", contents)) {
    // The image is already rewritten and sound; a stale state dir only costs the
    // next update a rebuild.  Swap anyway, but say so.
    *detail = "warning: cannot save " + options_.image_path + ".state; ";
  } else {
    detail->clear();
  }
  if (support::failpoint::Inject("rollover.reopen")) {
    *detail += "refrozen image fails to open: injected failure (rollover.reopen)";
    return ReloadOutcome::kError;
  }
  auto fresh = FrozenImage::Open(options_.image_path, image::ImageView::Verify::kStructure,
                                 &error, /*readahead=*/true);
  if (!fresh.has_value()) {
    *detail += "refrozen image fails to open: " + error;
    return ReloadOutcome::kError;
  }
  Swap(std::make_unique<FrozenImage>(std::move(*fresh)), builder_->dirty_route_ids());
  *detail += (stats.patched ? "patched" : "rebuilt");
  *detail += ", " + std::to_string(stats.routes_changed) + " route(s) changed, " +
             std::to_string(builder_->routes().size()) + " total";
  return ReloadOutcome::kApplied;
}

ReloadOutcome RolloverController::CheckImage(std::string* detail) {
  ImageIdentity now;
  if (!StatImage(&now)) {
    *detail = "cannot stat " + options_.image_path + "; previous image still serving";
    return ReloadOutcome::kError;
  }
  if (now == identity_) {
    *detail = "image unchanged";
    return ReloadOutcome::kNoop;
  }
  if (support::failpoint::Inject("rollover.reopen")) {
    // identity_ is deliberately NOT updated: the next watch tick sees the same
    // changed file and retries the open — transient failures self-heal.
    *detail = "changed image fails to open: injected failure (rollover.reopen)";
    return ReloadOutcome::kError;
  }
  std::string error;
  auto opened = FrozenImage::Open(options_.image_path, image::ImageView::Verify::kStructure,
                                  &error, /*readahead=*/true);
  if (!opened.has_value()) {
    // Likely caught the replacer mid-write (Refreeze renames atomically, but a
    // copy-based updater would not).  Keep serving; the next poll retries.
    *detail = "changed image fails to open: " + error;
    return ReloadOutcome::kError;
  }
  auto fresh = std::make_unique<FrozenImage>(std::move(*opened));
  const FrozenRouteSet& old_routes = current_->routes();
  const FrozenRouteSet& new_routes = fresh->routes();

  // AdoptRoutes requires a stable id assignment.  Refreeze guarantees it (ids are
  // append-only across updates), but an externally replaced file could be anything
  // — verify the common prefix of the interners byte-for-byte before trusting it.
  const size_t old_names = old_routes.names().size();
  const size_t new_names = new_routes.names().size();
  const size_t common = std::min(old_names, new_names);
  bool compatible = old_routes.names().fold_case() == new_routes.names().fold_case();
  for (NameId id = 0; compatible && id < common; ++id) {
    if (old_routes.names().View(id) != new_routes.names().View(id)) {
      compatible = false;
    }
  }

  // The external updater doesn't tell us what changed, and the resident builder
  // (if any) no longer describes the file on disk either way.
  builder_.reset();

  if (!compatible) {
    // Different id universe: targeted invalidation is meaningless.  Replace the
    // whole engine — cold caches, correct results.  The old engine dies here on
    // the serving thread (between batches), so nothing references the old image
    // except possibly pool-thread batches already counted; retire as usual.
    std::unique_ptr<FrozenImage> old = std::move(current_);
    uint64_t mark = engine_->batches_started();
    current_ = std::move(fresh);
    image_generation_ = current_->view().header().generation;
    engine_ = std::make_unique<exec::FrozenBatchEngine>(&current_->routes(), options_.engine);
    retired_.push_back({std::move(old), mark});
    identity_ = now;
    ++generation_;
    *detail = "image replaced with an incompatible id assignment; engine rebuilt cold";
    return ReloadOutcome::kApplied;
  }

  // Diff the two mappings into the dirty-id set AdoptRoutes wants: every common id
  // whose route changed, plus every new id that has a route (a cached miss whose
  // chain now reaches one must be condemned — the chain-closure pass handles the
  // fan-out, it just needs the new id in the set).
  std::vector<NameId> dirty;
  for (NameId id = 0; id < common; ++id) {
    if (!SameRoute(old_routes.FindRouteView(id), new_routes.FindRouteView(id))) {
      dirty.push_back(id);
    }
  }
  for (NameId id = static_cast<NameId>(common); id < new_names; ++id) {
    if (new_routes.HasRoute(id)) {
      dirty.push_back(id);
    }
  }
  size_t changed = dirty.size();
  Swap(std::move(fresh), dirty);  // re-stats the path, superseding `now`
  *detail = "image replaced on disk; " + std::to_string(changed) + " route(s) changed";
  return ReloadOutcome::kApplied;
}

void RolloverController::Swap(std::unique_ptr<FrozenImage> fresh,
                              std::span<const NameId> dirty) {
  uint64_t mark = engine_->batches_started();
  std::unique_ptr<FrozenImage> old = std::move(current_);
  current_ = std::move(fresh);
  image_generation_ = current_->view().header().generation;
  engine_->AdoptRoutes(&current_->routes(), dirty);
  retired_.push_back({std::move(old), mark});
  StatImage(&identity_);
  ++generation_;
}

size_t RolloverController::RetireDrained() {
  size_t freed = 0;
  uint64_t completed = engine_->batches_completed();
  while (!retired_.empty() && completed >= retired_.front().mark) {
    retired_.pop_front();
    ++freed;
  }
  return freed;
}

}  // namespace net
}  // namespace pathalias
