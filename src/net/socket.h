// DatagramSocket: a thin RAII wrapper over UDP and unix-domain datagram sockets
// with the EINTR/short-I/O discipline of support/io_retry.h applied at every
// syscall site.
//
// Both the daemon and the query client speak through this class; the daemon binds
// (BindUnix / BindUdp), the client binds an ephemeral address of the matching
// family (ClientForUnix / ClientUdp) because a datagram *reply* needs a bound
// source to send back to.  All sockets are nonblocking — the daemon's poll loop
// must never park inside recvfrom, and the client implements its own timeout with
// poll.  Datagram semantics make the I/O contract simple: one Recv is one whole
// datagram (a too-small buffer truncates; callers size buffers at
// wire::kMaxDatagramBytes), one Send is one whole datagram or an error.

#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <sys/socket.h>

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pathalias {
namespace net {

// A peer's source address, comparable/hashable via key() so the dedup buffer can
// index replies by (peer, request id).
struct PeerAddress {
  sockaddr_storage storage{};
  socklen_t length = 0;

  const sockaddr* addr() const { return reinterpret_cast<const sockaddr*>(&storage); }
  sockaddr* addr() { return reinterpret_cast<sockaddr*>(&storage); }
  // The raw address bytes as a string key (family + path/ip/port).  Two datagrams
  // from the same bound socket produce identical keys.
  std::string_view key() const {
    return std::string_view(reinterpret_cast<const char*>(&storage),
                            static_cast<size_t>(length));
  }
};

class DatagramSocket {
 public:
  DatagramSocket() = default;
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;
  DatagramSocket(DatagramSocket&& other) noexcept { *this = std::move(other); }
  DatagramSocket& operator=(DatagramSocket&& other) noexcept;
  ~DatagramSocket();

  // Server binds.  BindUnix unlinks a stale socket file at `path` first (the
  // standard daemon-restart idiom) and owns the path: the destructor unlinks it.
  static std::optional<DatagramSocket> BindUnix(const std::string& path,
                                                std::string* error);
  // Binds 127.0.0.1:<port> (port 0 = kernel-chosen; see bound_udp_port()).
  static std::optional<DatagramSocket> BindUdp(uint16_t port, std::string* error);

  // Client binds.  A unix-domain client must bind its own (temporary) path to be
  // replyable; it is unlinked on destruction.  A UDP client just needs any
  // ephemeral port.
  static std::optional<DatagramSocket> ClientForUnix(const std::string& temp_path,
                                                     std::string* error);
  static std::optional<DatagramSocket> ClientUdp(std::string* error);

  // Address helpers for clients: the daemon's address as a sendable PeerAddress.
  static PeerAddress UnixPeer(const std::string& path);
  static PeerAddress UdpPeer(uint32_t ipv4_host_order, uint16_t port);

  // One datagram, nonblocking.  Returns the byte count, 0 for a zero-length
  // datagram with `*got_one` true, or -1 with `*got_one` false when the socket is
  // drained (EAGAIN) — any other errno is also -1/false with `*error` set.
  ssize_t Recv(char* buffer, size_t capacity, PeerAddress* from, bool* got_one,
               std::string* error = nullptr);

  // One datagram to `to`.  True on success.  EAGAIN (full socket buffer) and
  // ECONNREFUSED/ENOENT (a unix peer that went away) are reported as false with
  // `*dropped` true — datagram losses the caller counts, not errors that stop the
  // loop.  Other errnos set `*error`.
  bool SendTo(std::string_view datagram, const PeerAddress& to, bool* dropped,
              std::string* error = nullptr);

  // Blocks up to `timeout_ms` for readability (-1 = forever), EINTR-retried.
  // True when readable.
  bool WaitReadable(int timeout_ms);

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  // After BindUdp(0): the kernel-assigned port.
  uint16_t bound_udp_port() const;

 private:
  static std::optional<DatagramSocket> BindUnixAt(const std::string& path,
                                                  std::string* error);

  int fd_ = -1;
  std::string owned_path_;  // unix socket file to unlink on close ("" = none)
};

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_SOCKET_H_
