// Counters for everything the routedbd loop does, printed on exit and on demand
// (SIGUSR1).  Plain uint64s: the daemon loop is single-threaded, so there is
// nothing to synchronize — the struct exists so tests and the smoke harness can
// assert on behavior (dedup hits, truncations, rollovers) instead of scraping
// logs.

#ifndef SRC_NET_STATS_H_
#define SRC_NET_STATS_H_

#include <cstdint>
#include <string>

namespace pathalias {
namespace net {

struct DaemonStats {
  // Datagram traffic.
  uint64_t datagrams_in = 0;
  uint64_t datagrams_out = 0;
  uint64_t bad_datagrams = 0;      // undecodable requests (bad-request reply or silence)
  uint64_t send_drops = 0;         // replies the kernel or a vanished peer dropped
  // Request/reply protocol.
  uint64_t requests = 0;           // well-formed requests accepted (dedup included)
  uint64_t duplicate_requests = 0; // answered from the replay buffer, no resolve
  uint64_t truncated_replies = 0;  // replies sent with kReplyFlagTruncated
  uint64_t overload_replies = 0;   // requests shed with kReplyFlagOverloaded
  // Replay buffer (synced from ReplayBuffer once per turn).
  uint64_t replay_bytes = 0;           // current stored key+reply bytes
  uint64_t replay_evictions = 0;       // entries evicted by count or byte budget
  uint64_t replay_evicted_bytes = 0;   // bytes those evictions released
  // Resolution.
  uint64_t batches = 0;            // ResolveBatch calls (the coalescing ratio is
                                   // queries / batches vs queries / requests)
  uint64_t queries = 0;
  uint64_t resolved = 0;
  uint64_t malformed_queries = 0;  // per-name rejects inside well-formed requests
  // Rollover.
  uint64_t reloads_attempted = 0;
  uint64_t reloads_applied = 0;    // the engine adopted a fresh mapping
  uint64_t reloads_noop = 0;       // nothing changed (digest-clean sources)
  uint64_t reload_errors = 0;
  uint64_t images_retired = 0;     // old mappings unmapped after their drain

  std::string ToString() const {
    auto line = [](const char* key, uint64_t value) {
      return std::string(key) + "=" + std::to_string(value);
    };
    return line("datagrams_in", datagrams_in) + " " + line("datagrams_out", datagrams_out) +
           " " + line("bad_datagrams", bad_datagrams) + " " +
           line("send_drops", send_drops) + " " + line("requests", requests) + " " +
           line("duplicate_requests", duplicate_requests) + " " +
           line("truncated_replies", truncated_replies) + " " +
           line("overload_replies", overload_replies) + " " +
           line("replay_bytes", replay_bytes) + " " +
           line("replay_evictions", replay_evictions) + " " +
           line("replay_evicted_bytes", replay_evicted_bytes) + " " + line("batches", batches) +
           " " + line("queries", queries) + " " + line("resolved", resolved) + " " +
           line("malformed_queries", malformed_queries) + " " +
           line("reloads_attempted", reloads_attempted) + " " +
           line("reloads_applied", reloads_applied) + " " +
           line("reloads_noop", reloads_noop) + " " +
           line("reload_errors", reload_errors) + " " +
           line("images_retired", images_retired);
  }
};

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_STATS_H_
