#include "src/net/coalescer.h"

namespace pathalias {
namespace net {

void RequestCoalescer::Add(const PeerAddress& peer, uint64_t request_id,
                           const std::vector<std::string_view>& queries) {
  Pending pending;
  pending.peer = peer;
  pending.request_id = request_id;
  pending.first_query = offsets_.size();
  pending.query_count = queries.size();
  pending_.push_back(pending);
  for (std::string_view query : queries) {
    offsets_.emplace_back(static_cast<uint32_t>(arena_.size()),
                          static_cast<uint32_t>(query.size()));
    arena_.append(query);
  }
}

const std::vector<std::string_view>& RequestCoalescer::Finish() {
  views_.clear();
  views_.reserve(offsets_.size());
  for (const auto& [offset, length] : offsets_) {
    views_.emplace_back(arena_.data() + offset, length);
  }
  return views_;
}

void RequestCoalescer::Reset() {
  pending_.clear();
  arena_.clear();
  offsets_.clear();
  views_.clear();
}

std::string ReplayBuffer::KeyOf(const PeerAddress& peer, uint64_t request_id) {
  std::string key;
  std::string_view address = peer.key();
  key.reserve(address.size() + sizeof(request_id));
  key.append(address);
  key.append(reinterpret_cast<const char*>(&request_id), sizeof(request_id));
  return key;
}

const std::string* ReplayBuffer::Find(const PeerAddress& peer,
                                      uint64_t request_id) const {
  if (capacity_ == 0) {
    return nullptr;
  }
  auto it = replies_.find(KeyOf(peer, request_id));
  return it == replies_.end() ? nullptr : &it->second;
}

void ReplayBuffer::EvictOldest() {
  auto it = replies_.find(order_.front());
  if (it != replies_.end()) {
    size_t entry_bytes = it->first.size() + it->second.size();
    bytes_ -= entry_bytes;
    evicted_bytes_ += entry_bytes;
    ++evicted_entries_;
    replies_.erase(it);
  }
  order_.pop_front();
}

void ReplayBuffer::Put(const PeerAddress& peer, uint64_t request_id,
                       std::string reply) {
  if (capacity_ == 0) {
    return;
  }
  std::string key = KeyOf(peer, request_id);
  auto [it, inserted] = replies_.try_emplace(key, std::move(reply));
  if (!inserted) {
    bytes_ -= it->second.size();
    it->second = std::move(reply);  // retransmit answered twice: keep the latest
    bytes_ += it->second.size();
  } else {
    bytes_ += it->first.size() + it->second.size();
    order_.push_back(std::move(key));
  }
  while (order_.size() > capacity_ || (max_bytes_ != 0 && bytes_ > max_bytes_)) {
    // Oldest first; a just-stored reply bigger than the whole budget is last in
    // line and gets dropped too — the byte budget is a hard cap, not advisory.
    EvictOldest();
  }
}

}  // namespace net
}  // namespace pathalias
