// RolloverController: zero-downtime route updates for a serving process.
//
// Owns the pieces a long-lived server needs to swap its mapping under live
// traffic: the current FrozenImage, the FrozenBatchEngine resolving against it,
// an optionally-resident incr::MapBuilder for in-process updates, and a retire
// list of old mappings waiting for in-flight batches to drain.
//
// Two update entry points, matching routedbd's two triggers:
//
//   ReloadFromSources() — the SIGHUP path.  Re-reads the configured map files and
//   runs the routedb-update flow in process: MapBuilder::Update (digest check
//   skips unchanged files; patch or replay as the edit allows), then
//   ImageWriter::Refreeze (temp + rename, so concurrent opens never see a torn
//   image), SaveStateDir, reopen the fresh image, and
//   engine->AdoptRoutes(fresh, builder.dirty_route_ids()).  The builder stays
//   resident, so repeated HUPs get the patch path's full advantage (no state-dir
//   reload, no replay of the previous state).
//
//   CheckImage() — the changed-file-notification path.  Detects that some OTHER
//   process replaced the image on disk (routedb update's rename), reopens it, and
//   computes the dirty-id set itself by diffing per-id route views old vs new
//   (frozen ids are append-only across Refreeze, so the common prefix of the two
//   interners must agree — verified, not assumed).  Compatible images hot-swap via
//   AdoptRoutes like the HUP path; an incompatible image (rebuilt from scratch
//   with a different id assignment) falls back to replacing the whole engine,
//   which flushes the caches — correct, just colder.
//
// Either way the OLD image is not unmapped at swap time: it goes on the retire
// list with a mark taken from engine->batches_started(), and RetireDrained() —
// called from the serving loop whenever convenient — frees it only once
// engine->batches_completed() has reached the mark, i.e. once every batch that
// could have been reading the old bytes has returned.  AdoptRoutes re-homes the
// caches onto the fresh image, so after the drain nothing references the old
// mapping at all.
//
// Threading: all methods run on the serving thread, between batches (the
// AdoptRoutes contract).  The drain counters exist for engines whose batches are
// executed by pool threads — the mark/drain protocol is what makes the unmap safe
// without joining them.

#ifndef SRC_NET_ROLLOVER_H_
#define SRC_NET_ROLLOVER_H_

#include <sys/stat.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/batch_engine.h"
#include "src/image/frozen_route_set.h"
#include "src/incr/map_builder.h"

namespace pathalias {
namespace net {

struct RolloverOptions {
  std::string image_path;              // the .pari image to serve and watch
  std::vector<std::string> map_files;  // sources for the SIGHUP reload path; empty
                                       //   disables ReloadFromSources
  exec::BatchEngineOptions engine;     // forwarded to the serving engine
};

enum class ReloadOutcome {
  kApplied,  // a fresh mapping is live; the old one is queued for retirement
  kNoop,     // nothing changed — same engine, same image, no work done
  kError,    // reload failed; the PREVIOUS mapping is still serving, untouched
};

class RolloverController {
 public:
  explicit RolloverController(RolloverOptions options) : options_(std::move(options)) {}

  // Opens the image and builds the serving engine.  False (with *error set) if the
  // image is missing or invalid.
  bool Start(std::string* error);

  // The serving engine.  The pointer is stable across rollovers (AdoptRoutes swaps
  // its internals) except after an incompatible CheckImage() swap, which replaces
  // the engine object — re-fetch after every reload, which costs nothing.
  exec::FrozenBatchEngine* engine() { return engine_.get(); }
  const FrozenRouteSet* routes() const { return &current_->routes(); }

  // SIGHUP: re-read options_.map_files and run the in-process update pipeline.
  // kNoop when every file's digest matches the retained state (no refreeze, no
  // swap — image mtime untouched).  *detail gets a one-line human summary either
  // way (the reason, on kError).
  ReloadOutcome ReloadFromSources(std::string* detail);

  // File-watch: if the image on disk is no longer the one being served (rename by
  // an external `routedb update`), reopen and hot-swap it.  kNoop when the file is
  // unchanged.  Cheap when nothing changed (one stat), so poll freely.
  ReloadOutcome CheckImage(std::string* detail);

  // Unmaps every retired image whose drain mark has been reached.  Returns how
  // many were freed.  Call from the serving loop after batches complete.
  size_t RetireDrained();

  size_t pending_retirements() const { return retired_.size(); }
  // Monotonic count of successful swaps — lets a test or stats line observe that a
  // rollover actually happened.
  uint64_t generation() const { return generation_; }
  // The publish generation stamped in the image being served
  // (ImageHeader::generation; 0 for pre-stamp images).  The HUP path refuses a
  // <image>.state whose stamp disagrees — see EnsureBuilder.
  uint64_t image_generation() const { return image_generation_; }

 private:
  struct ImageIdentity {
    dev_t dev = 0;
    ino_t inode = 0;
    off_t size = 0;
    int64_t mtime_sec = 0;
    int64_t mtime_nsec = 0;
    bool operator==(const ImageIdentity&) const = default;
  };
  struct RetiredImage {
    std::unique_ptr<FrozenImage> image;
    uint64_t mark;  // retire once engine batches_completed() >= mark
  };

  // stat() the served path into *out; false if it cannot be stat'd.
  bool StatImage(ImageIdentity* out) const;
  // Loads <image>.state into the resident builder (first HUP only); false + detail
  // on failure.  Refuses a state dir whose generation stamp disagrees with the
  // served image's — that pairing only arises from a torn update (crash between
  // the image rename and the manifest rename), and updating from mismatched
  // state would hand AdoptRoutes NameIds from a different id universe: the
  // "serve garbage" failure this PR exists to close.  The old map keeps serving.
  bool EnsureBuilder(std::string* detail);
  // Installs `fresh` as the serving image: AdoptRoutes with `dirty`, queue the old
  // image for retirement, refresh the identity record.
  void Swap(std::unique_ptr<FrozenImage> fresh, std::span<const NameId> dirty);

  RolloverOptions options_;
  std::unique_ptr<FrozenImage> current_;
  std::unique_ptr<exec::FrozenBatchEngine> engine_;
  std::unique_ptr<incr::MapBuilder> builder_;  // lazy: loaded on first HUP
  ImageIdentity identity_;                     // what is being served
  std::deque<RetiredImage> retired_;
  uint64_t generation_ = 0;
  uint64_t image_generation_ = 0;  // ImageHeader::generation of current_
};

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_ROLLOVER_H_
