#include "src/net/daemon.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/support/io_retry.h"

namespace pathalias {
namespace net {

namespace {

// The one self-pipe write end signal handlers reach (one daemon per process; the
// handler must be a free function and async-signal-safe, so no member access).
volatile int g_signal_pipe_fd = -1;

extern "C" void DaemonSignalHandler(int signum) {
  int fd = g_signal_pipe_fd;
  if (fd < 0) {
    return;
  }
  char byte = signum == SIGHUP ? 'H' : 'T';
  // A full pipe means requests are already pending; dropping the byte is fine.
  int saved_errno = errno;
  // pathalint: allow(R3): async-signal context — RetryEintr is a template call
  // and retrying inside a handler is wrong anyway; a dropped self-pipe byte is
  // explicitly fine (see comment above), so the bare one-shot write is correct.
  [[maybe_unused]] ssize_t ignored = ::write(fd, &byte, 1);
  errno = saved_errno;
}

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The same routable-query rule `routedb batch` applies: printable, non-blank
// ASCII.  Anything else is answered kResultMalformed instead of being treated as
// a (never-matching) database key.
bool RoutableQuery(std::string_view query) {
  for (unsigned char c : query) {
    if (c < 0x21 || c > 0x7e) {
      return false;
    }
  }
  return !query.empty();
}

// OR a flag into an encoded reply's header in place (flags live at byte 6).
void OrReplyFlag(std::string* datagram, uint16_t flag) {
  if (datagram->size() < sizeof(WireHeader)) {
    return;
  }
  uint16_t flags;
  std::memcpy(&flags, datagram->data() + 6, sizeof(flags));
  flags |= flag;
  std::memcpy(datagram->data() + 6, &flags, sizeof(flags));
}

}  // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)),
      rollover_(options_.rollover),
      replay_(options_.replay_entries, options_.replay_bytes) {}

Daemon::~Daemon() {
  if (g_signal_pipe_fd == control_write_fd_) {
    g_signal_pipe_fd = -1;
  }
  if (control_read_fd_ >= 0) {
    ::close(control_read_fd_);
  }
  if (control_write_fd_ >= 0) {
    ::close(control_write_fd_);
  }
}

bool Daemon::Start(std::string* error) {
  if (options_.unix_path.empty() && options_.udp_port < 0) {
    *error = "no listening address: configure a unix socket path or a UDP port";
    return false;
  }
  if (!rollover_.Start(error)) {
    return false;
  }
  if (!options_.unix_path.empty()) {
    auto socket = DatagramSocket::BindUnix(options_.unix_path, error);
    if (!socket.has_value()) {
      return false;
    }
    unix_socket_ = std::move(*socket);
  }
  if (options_.udp_port >= 0) {
    auto socket = DatagramSocket::BindUdp(static_cast<uint16_t>(options_.udp_port), error);
    if (!socket.has_value()) {
      return false;
    }
    udp_socket_ = std::move(*socket);
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    *error = std::string("pipe: ") + std::strerror(errno);
    return false;
  }
  control_read_fd_ = pipe_fds[0];
  control_write_fd_ = pipe_fds[1];
  int fl = ::fcntl(control_read_fd_, F_GETFL);
  if (fl < 0 || ::fcntl(control_read_fd_, F_SETFL, fl | O_NONBLOCK) != 0) {
    *error = std::string("fcntl(control pipe): ") + std::strerror(errno);
    return false;
  }
  recv_buffer_.resize(kMaxDatagramBytes);
  next_watch_ms_ = options_.watch_interval_ms > 0
                       ? SteadyNowMs() + options_.watch_interval_ms
                       : 0;
  return true;
}

bool Daemon::InstallSignalHandlers(std::string* error) {
  if (control_write_fd_ < 0) {
    *error = "InstallSignalHandlers before Start";
    return false;
  }
  support::IgnoreSigpipe();
  g_signal_pipe_fd = control_write_fd_;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = DaemonSignalHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: poll should return EINTR so the control byte is seen promptly
  // (it is retried by WaitReadable/poll loops anyway).
  for (int signum : {SIGTERM, SIGINT, SIGHUP}) {
    if (::sigaction(signum, &action, nullptr) != 0) {
      *error = std::string("sigaction: ") + std::strerror(errno);
      return false;
    }
  }
  return true;
}

void Daemon::RequestTerminate() {
  char byte = 'T';
  support::RetryEintr([&] { return ::write(control_write_fd_, &byte, 1); });
}

void Daemon::RequestReload() {
  char byte = 'H';
  support::RetryEintr([&] { return ::write(control_write_fd_, &byte, 1); });
}

void Daemon::DrainControlPipe() {
  // The read end is O_NONBLOCK (Start): read until EAGAIN.
  char bytes[64];
  for (;;) {
    ssize_t got = support::RetryEintr(
        [&] { return ::read(control_read_fd_, bytes, sizeof(bytes)); });
    if (got <= 0) {
      return;
    }
    for (ssize_t i = 0; i < got; ++i) {
      if (bytes[i] == 'T') {
        terminate_requested_ = true;
      } else if (bytes[i] == 'H') {
        reload_requested_ = true;
      }
    }
  }
}

void Daemon::DrainSocket(DatagramSocket* socket) {
  if (!socket->valid()) {
    return;
  }
  for (;;) {
    PeerAddress peer;
    bool got_one = false;
    std::string error;
    ssize_t got = socket->Recv(recv_buffer_.data(), recv_buffer_.size(), &peer, &got_one,
                               &error);
    if (!got_one) {
      return;  // drained (or a transient error; either way this turn is done)
    }
    ++stats_.datagrams_in;
    std::string_view datagram(recv_buffer_.data(), static_cast<size_t>(got));
    DecodedRequest request;
    std::string why;
    uint64_t recovered_id = 0;
    if (!DecodeRequest(datagram, &request, &why, &recovered_id)) {
      ++stats_.bad_datagrams;
      if (recovered_id != 0 || datagram.size() >= sizeof(WireHeader)) {
        EncodeBadRequestReply(recovered_id, &reply_buffer_);
        SendReply(reply_buffer_, peer);
      }
      continue;
    }
    ++stats_.requests;
    if (const std::string* stored = replay_.Find(peer, request.request_id)) {
      // Retransmit: answer with the SAME bytes (flagged), no second resolve —
      // the at-most-once answer a rollover must not be able to change.
      ++stats_.duplicate_requests;
      reply_buffer_ = *stored;
      OrReplyFlag(&reply_buffer_, kReplyFlagReplayed);
      SendReply(reply_buffer_, peer);
      continue;
    }
    if (options_.max_queries_per_turn > 0 &&
        coalescer_.total_queries() + request.queries.size() >
            options_.max_queries_per_turn) {
      // Shed: answer "overloaded" now instead of letting the batch (and this
      // turn's latency) grow without bound.  NOT recorded in the replay buffer
      // — the client retransmits the same id and gets a real answer once the
      // flood subsides.
      ++stats_.overload_replies;
      EncodeOverloadReply(request.request_id, &reply_buffer_);
      SendReply(reply_buffer_, peer);
      continue;
    }
    coalescer_.Add(peer, request.request_id, request.queries);
  }
}

void Daemon::ResolveAndReply() {
  if (coalescer_.empty()) {
    return;
  }
  const std::vector<std::string_view>& queries = coalescer_.Finish();
  results_.assign(queries.size(), BatchLookup{});
  exec::FrozenBatchEngine* engine = rollover_.engine();
  size_t resolved = engine->ResolveBatch(queries, results_);
  ++stats_.batches;
  stats_.queries += queries.size();
  stats_.resolved += resolved;

  const FrozenRouteSet* routes = rollover_.routes();
  std::vector<ReplyResult> reply_results;
  for (const RequestCoalescer::Pending& pending : coalescer_.pending()) {
    reply_results.clear();
    reply_results.reserve(pending.query_count);
    for (size_t i = 0; i < pending.query_count; ++i) {
      size_t slot = pending.first_query + i;
      ReplyResult result;
      if (!RoutableQuery(queries[slot])) {
        result.status = kResultMalformed;
        ++stats_.malformed_queries;
      } else if (!results_[slot].route.ok()) {
        result.status = kResultMiss;
      } else {
        result.status = results_[slot].suffix_match ? kResultSuffix : kResultExact;
        result.via = routes->names().View(results_[slot].via);
        result.route = results_[slot].route.route;
      }
      reply_results.push_back(result);
    }
    size_t included = EncodeReply(pending.request_id, 0, pending.query_count,
                                  reply_results, options_.max_reply_bytes, &reply_buffer_);
    if (included < pending.query_count) {
      ++stats_.truncated_replies;
    }
    // Record BEFORE sending: if the send drops, the client's retransmit must
    // still find the answer that was committed for this id.
    replay_.Put(pending.peer, pending.request_id, reply_buffer_);
    SendReply(reply_buffer_, pending.peer);
  }
  coalescer_.Reset();
}

void Daemon::SendReply(std::string_view datagram, const PeerAddress& peer) {
  DatagramSocket* socket =
      peer.addr()->sa_family == AF_UNIX ? &unix_socket_ : &udp_socket_;
  if (!socket->valid()) {
    ++stats_.send_drops;
    return;
  }
  bool dropped = false;
  std::string error;
  if (socket->SendTo(datagram, peer, &dropped, &error)) {
    ++stats_.datagrams_out;
  } else {
    ++stats_.send_drops;
  }
}

void Daemon::Housekeeping() {
  std::string detail;
  // Counts a reload outcome and — crucially for a failed rollover — logs the
  // detail instead of discarding it.  A failed reload is NOT fatal: the old map
  // keeps serving, the error is visible, and the image watch (or the next HUP)
  // retries, so a transiently bad publish heals without operator intervention.
  auto account = [&](const char* trigger, ReloadOutcome outcome) {
    switch (outcome) {
      case ReloadOutcome::kApplied:
        ++stats_.reloads_applied;
        if (options_.log_reloads) {
          std::fprintf(stderr, "routedbd: reload (%s) applied\n", trigger);
        }
        break;
      case ReloadOutcome::kNoop:
        ++stats_.reloads_noop;
        break;
      case ReloadOutcome::kError:
        ++stats_.reload_errors;
        if (options_.log_reloads) {
          std::fprintf(stderr,
                       "routedbd: reload (%s) failed, still serving the old map: %s\n",
                       trigger, detail.c_str());
        }
        break;
    }
  };
  if (reload_requested_) {
    reload_requested_ = false;
    ++stats_.reloads_attempted;
    // HUP means "re-read the sources" when they are configured; a daemon serving
    // an externally-updated image treats HUP as "check the image right now".
    account("SIGHUP", options_.rollover.map_files.empty()
                          ? rollover_.CheckImage(&detail)
                          : rollover_.ReloadFromSources(&detail));
  }
  if (options_.watch_interval_ms > 0) {
    int64_t now = SteadyNowMs();
    if (now >= next_watch_ms_) {
      next_watch_ms_ = now + options_.watch_interval_ms;
      ++stats_.reloads_attempted;
      account("watch", rollover_.CheckImage(&detail));
    }
  }
  stats_.images_retired += rollover_.RetireDrained();
  stats_.replay_bytes = replay_.bytes();
  stats_.replay_evictions = replay_.evicted_entries();
  stats_.replay_evicted_bytes = replay_.evicted_bytes();
}

bool Daemon::PollOnce(int timeout_ms) {
  struct pollfd fds[3];
  nfds_t count = 0;
  int unix_slot = -1;
  int udp_slot = -1;
  if (unix_socket_.valid()) {
    unix_slot = static_cast<int>(count);
    fds[count++] = {unix_socket_.fd(), POLLIN, 0};
  }
  if (udp_socket_.valid()) {
    udp_slot = static_cast<int>(count);
    fds[count++] = {udp_socket_.fd(), POLLIN, 0};
  }
  fds[count++] = {control_read_fd_, POLLIN, 0};

  // Wake for the image watch even when no traffic arrives.
  int wait_ms = timeout_ms;
  if (options_.watch_interval_ms > 0) {
    int64_t until_watch = next_watch_ms_ - SteadyNowMs();
    int watch_ms = static_cast<int>(std::max<int64_t>(0, until_watch));
    wait_ms = timeout_ms < 0 ? watch_ms : std::min(timeout_ms, watch_ms);
  }
  support::RetryEintr([&] { return ::poll(fds, count, wait_ms); });

  DrainControlPipe();
  // Drain BOTH sockets before resolving: this is the coalescing window — every
  // datagram already queued joins this turn's single batch.
  if (unix_slot >= 0) {
    DrainSocket(&unix_socket_);
  }
  if (udp_slot >= 0) {
    DrainSocket(&udp_socket_);
  }
  ResolveAndReply();
  Housekeeping();
  return !terminate_requested_;
}

int Daemon::Run() {
  while (PollOnce(-1)) {
  }
  return 0;
}

uint16_t Daemon::udp_port() const { return udp_socket_.bound_udp_port(); }

}  // namespace net
}  // namespace pathalias
