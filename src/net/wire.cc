#include "src/net/wire.h"

#include <algorithm>

namespace pathalias {
namespace net {
namespace {

// Little-endian field access through memcpy: the header structs are only read and
// written through these, so unaligned datagram buffers are fine on any target.
template <typename T>
T LoadLe(const char* at) {
  T value;
  std::memcpy(&value, at, sizeof(T));
  return value;
}

void AppendU16(std::string* out, uint16_t value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void AppendHeader(std::string* out, const WireHeader& header) {
  out->append(reinterpret_cast<const char*>(&header), sizeof(header));
}

bool ReadHeader(std::string_view datagram, WireHeader* header) {
  if (datagram.size() < sizeof(WireHeader)) {
    return false;
  }
  std::memcpy(header, datagram.data(), sizeof(WireHeader));
  return true;
}

// The serialized size of one reply entry: status byte + two u16 lengths + bytes.
size_t ResultWireSize(const ReplyResult& result) {
  return 1 + 2 * sizeof(uint16_t) + result.via.size() + result.route.size();
}

}  // namespace

bool EncodeRequest(uint64_t request_id, std::span<const std::string_view> queries,
                   std::string* out) {
  if (queries.empty() || queries.size() > kMaxQueriesPerRequest) {
    return false;  // the decoder rejects count == 0; never emit what it refuses
  }
  for (std::string_view query : queries) {
    if (query.empty() || query.size() > kMaxNameLength) {
      return false;
    }
  }
  WireHeader header{};
  header.magic = kRequestMagic;
  header.version = kWireVersion;
  header.flags = 0;
  header.request_id = request_id;
  header.count = static_cast<uint16_t>(queries.size());
  header.query_count = header.count;
  header.reserved = 0;
  out->clear();
  AppendHeader(out, header);
  for (std::string_view query : queries) {
    AppendU16(out, static_cast<uint16_t>(query.size()));
    out->append(query);
  }
  return out->size() <= kMaxDatagramBytes;
}

bool DecodeRequest(std::string_view datagram, DecodedRequest* out, std::string* error,
                   uint64_t* recovered_id) {
  auto fail = [&](const char* why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  *recovered_id = 0;
  WireHeader header;
  if (!ReadHeader(datagram, &header)) {
    return fail("short datagram");
  }
  if (header.magic != kRequestMagic) {
    return fail("bad magic");
  }
  // The id is usable for an error reply from here on: magic said "ours".
  *recovered_id = header.request_id;
  if (header.version != kWireVersion) {
    return fail("unsupported version");
  }
  if (header.flags != 0 || header.reserved != 0) {
    return fail("nonzero request flags");
  }
  if (header.count == 0 || header.count > kMaxQueriesPerRequest) {
    return fail("query count out of range");
  }
  if (header.query_count != header.count) {
    return fail("query_count mismatch");
  }
  out->request_id = header.request_id;
  out->queries.clear();
  out->queries.reserve(header.count);
  size_t at = sizeof(WireHeader);
  for (uint16_t i = 0; i < header.count; ++i) {
    if (at + sizeof(uint16_t) > datagram.size()) {
      return fail("truncated query length");
    }
    uint16_t length = LoadLe<uint16_t>(datagram.data() + at);
    at += sizeof(uint16_t);
    if (length == 0 || length > kMaxNameLength) {
      return fail("query length out of range");
    }
    if (at + length > datagram.size()) {
      return fail("truncated query bytes");
    }
    out->queries.push_back(datagram.substr(at, length));
    at += length;
  }
  if (at != datagram.size()) {
    return fail("trailing bytes after last query");
  }
  return true;
}

size_t EncodeReply(uint64_t request_id, uint16_t flags, size_t query_count,
                   std::span<const ReplyResult> results, size_t max_bytes,
                   std::string* out) {
  max_bytes = std::clamp(max_bytes, sizeof(WireHeader) + 8, kMaxDatagramBytes);
  size_t included = 0;
  size_t size = sizeof(WireHeader);
  bool clipped_one = false;
  while (included < results.size()) {
    size_t next = ResultWireSize(results[included]);
    if (size + next > max_bytes) {
      // Never send an empty answer: clip the first result to a bare
      // kResultTruncated marker (its wire size is the 5-byte minimum, which the
      // clamp above guarantees fits).
      if (included == 0) {
        clipped_one = true;
        ++included;
      }
      break;
    }
    size += next;
    ++included;
  }
  if (included < query_count) {
    flags |= kReplyFlagTruncated;
  }
  WireHeader header{};
  header.magic = kReplyMagic;
  header.version = kWireVersion;
  header.flags = flags;
  header.request_id = request_id;
  header.count = static_cast<uint16_t>(included);
  header.query_count = static_cast<uint16_t>(query_count);
  header.reserved = 0;
  out->clear();
  out->reserve(size);
  AppendHeader(out, header);
  for (size_t i = 0; i < included; ++i) {
    if (clipped_one) {
      out->push_back(static_cast<char>(kResultTruncated));
      AppendU16(out, 0);
      AppendU16(out, 0);
      continue;
    }
    const ReplyResult& result = results[i];
    out->push_back(static_cast<char>(result.status));
    AppendU16(out, static_cast<uint16_t>(result.via.size()));
    AppendU16(out, static_cast<uint16_t>(result.route.size()));
    out->append(result.via);
    out->append(result.route);
  }
  return included;
}

void EncodeBadRequestReply(uint64_t request_id, std::string* out) {
  WireHeader header{};
  header.magic = kReplyMagic;
  header.version = kWireVersion;
  header.flags = kReplyFlagBadRequest;
  header.request_id = request_id;
  header.count = 0;
  header.query_count = 0;
  header.reserved = 0;
  out->clear();
  AppendHeader(out, header);
}

void EncodeOverloadReply(uint64_t request_id, std::string* out) {
  WireHeader header{};
  header.magic = kReplyMagic;
  header.version = kWireVersion;
  header.flags = kReplyFlagOverloaded;
  header.request_id = request_id;
  header.count = 0;
  header.query_count = 0;
  header.reserved = 0;
  out->clear();
  AppendHeader(out, header);
}

bool DecodeReply(std::string_view datagram, DecodedReply* out, std::string* error) {
  auto fail = [&](const char* why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  WireHeader header;
  if (!ReadHeader(datagram, &header)) {
    return fail("short datagram");
  }
  if (header.magic != kReplyMagic) {
    return fail("bad magic");
  }
  if (header.version != kWireVersion) {
    return fail("unsupported version");
  }
  if (header.count > kMaxQueriesPerRequest || header.count > header.query_count) {
    return fail("result count out of range");
  }
  out->request_id = header.request_id;
  out->flags = header.flags;
  out->query_count = header.query_count;
  out->results.clear();
  out->results.reserve(header.count);
  size_t at = sizeof(WireHeader);
  for (uint16_t i = 0; i < header.count; ++i) {
    if (at + 1 + 2 * sizeof(uint16_t) > datagram.size()) {
      return fail("truncated result header");
    }
    ReplyResult result;
    result.status = static_cast<uint8_t>(datagram[at]);
    if (result.status > kResultTruncated) {
      return fail("unknown result status");
    }
    uint16_t via_length = LoadLe<uint16_t>(datagram.data() + at + 1);
    uint16_t route_length = LoadLe<uint16_t>(datagram.data() + at + 1 + sizeof(uint16_t));
    at += 1 + 2 * sizeof(uint16_t);
    if (at + via_length + route_length > datagram.size()) {
      return fail("truncated result bytes");
    }
    result.via = datagram.substr(at, via_length);
    at += via_length;
    result.route = datagram.substr(at, route_length);
    at += route_length;
    out->results.push_back(result);
  }
  if (at != datagram.size()) {
    return fail("trailing bytes after last result");
  }
  return true;
}

}  // namespace net
}  // namespace pathalias
