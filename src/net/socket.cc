#include "src/net/socket.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <utility>

#include "src/support/failpoint.h"
#include "src/support/io_retry.h"

namespace pathalias {
namespace net {
namespace {

void SetError(std::string* error, const char* what) {
  if (error != nullptr) {
    *error = std::string(what) + ": " + std::strerror(errno);
  }
}

bool MakeNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

DatagramSocket& DatagramSocket::operator=(DatagramSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    if (!owned_path_.empty()) {
      ::unlink(owned_path_.c_str());
    }
    fd_ = std::exchange(other.fd_, -1);
    owned_path_ = std::exchange(other.owned_path_, std::string());
  }
  return *this;
}

DatagramSocket::~DatagramSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  if (!owned_path_.empty()) {
    ::unlink(owned_path_.c_str());
  }
}

std::optional<DatagramSocket> DatagramSocket::BindUnixAt(const std::string& path,
                                                         std::string* error) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    if (error != nullptr) {
      *error = "unix socket path too long: " + path;
    }
    return std::nullopt;
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  DatagramSocket socket;
  if (support::failpoint::Inject("net.socket")) {
    // Simulated socket(2) failure (fd exhaustion, EMFILE/ENFILE): the daemon
    // must report it and decline to start, exactly like the real thing.
    SetError(error, "socket");
    return std::nullopt;
  }
  socket.fd_ = ::socket(AF_UNIX, SOCK_DGRAM, 0);
  if (socket.fd_ < 0) {
    SetError(error, "socket");
    return std::nullopt;
  }
  if (::bind(socket.fd_, reinterpret_cast<sockaddr*>(&address),
             static_cast<socklen_t>(sizeof(address))) != 0) {
    SetError(error, "bind");
    return std::nullopt;
  }
  socket.owned_path_ = path;
  if (!MakeNonBlocking(socket.fd_)) {
    SetError(error, "fcntl O_NONBLOCK");
    return std::nullopt;
  }
  return socket;
}

std::optional<DatagramSocket> DatagramSocket::BindUnix(const std::string& path,
                                                       std::string* error) {
  ::unlink(path.c_str());  // stale socket file from a previous run
  return BindUnixAt(path, error);
}

std::optional<DatagramSocket> DatagramSocket::BindUdp(uint16_t port, std::string* error) {
  DatagramSocket socket;
  if (support::failpoint::Inject("net.socket")) {
    // Same simulated socket(2) failure as BindUnixAt — one name covers both
    // address families; a schedule can still target a single bind by arming
    // around the call.
    SetError(error, "socket");
    return std::nullopt;
  }
  socket.fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (socket.fd_ < 0) {
    SetError(error, "socket");
    return std::nullopt;
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  if (::bind(socket.fd_, reinterpret_cast<sockaddr*>(&address),
             static_cast<socklen_t>(sizeof(address))) != 0) {
    SetError(error, "bind");
    return std::nullopt;
  }
  if (!MakeNonBlocking(socket.fd_)) {
    SetError(error, "fcntl O_NONBLOCK");
    return std::nullopt;
  }
  return socket;
}

std::optional<DatagramSocket> DatagramSocket::ClientForUnix(const std::string& temp_path,
                                                            std::string* error) {
  return BindUnix(temp_path, error);  // a client is just a bound unix socket too
}

std::optional<DatagramSocket> DatagramSocket::ClientUdp(std::string* error) {
  return BindUdp(0, error);
}

PeerAddress DatagramSocket::UnixPeer(const std::string& path) {
  PeerAddress peer;
  auto* address = reinterpret_cast<sockaddr_un*>(&peer.storage);
  address->sun_family = AF_UNIX;
  size_t n = path.size() < sizeof(address->sun_path) - 1 ? path.size()
                                                         : sizeof(address->sun_path) - 1;
  std::memcpy(address->sun_path, path.data(), n);
  address->sun_path[n] = '\0';
  peer.length = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + n + 1);
  return peer;
}

PeerAddress DatagramSocket::UdpPeer(uint32_t ipv4_host_order, uint16_t port) {
  PeerAddress peer;
  auto* address = reinterpret_cast<sockaddr_in*>(&peer.storage);
  address->sin_family = AF_INET;
  address->sin_addr.s_addr = htonl(ipv4_host_order);
  address->sin_port = htons(port);
  peer.length = static_cast<socklen_t>(sizeof(sockaddr_in));
  return peer;
}

ssize_t DatagramSocket::Recv(char* buffer, size_t capacity, PeerAddress* from,
                             bool* got_one, std::string* error) {
  from->length = static_cast<socklen_t>(sizeof(from->storage));
  if (support::failpoint::Inject("net.recv")) {
    // Simulates a spuriously-failing recv; EAGAIN-family errno reads as "socket
    // drained" (datagram lost in the kernel), anything else as a real error.
    *got_one = false;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      SetError(error, "recvfrom");
    }
    return -1;
  }
  ssize_t n = support::RetryEintr([&] {
    from->length = static_cast<socklen_t>(sizeof(from->storage));
    return ::recvfrom(fd_, buffer, capacity, 0, from->addr(), &from->length);
  });
  if (n < 0) {
    *got_one = false;
    if (errno != EAGAIN && errno != EWOULDBLOCK) {
      SetError(error, "recvfrom");
    }
    return -1;
  }
  *got_one = true;
  return n;
}

bool DatagramSocket::SendTo(std::string_view datagram, const PeerAddress& to,
                            bool* dropped, std::string* error) {
  *dropped = false;
  if (support::failpoint::Inject("net.send")) {
    // A lost datagram: the client's retransmit discipline covers it.
    *dropped = true;
    return false;
  }
  ssize_t n = support::RetryEintr([&] {
    return ::sendto(fd_, datagram.data(), datagram.size(), 0, to.addr(), to.length);
  });
  if (n == static_cast<ssize_t>(datagram.size())) {
    return true;
  }
  // A vanished unix peer (its socket file unlinked) or a full buffer is a dropped
  // datagram — the client's retransmit handles it — not a daemon-stopping error.
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNREFUSED ||
                errno == ENOENT || errno == EPIPE)) {
    *dropped = true;
    return false;
  }
  SetError(error, "sendto");
  return false;
}

bool DatagramSocket::WaitReadable(int timeout_ms) {
  pollfd entry{fd_, POLLIN, 0};
  int ready = support::RetryEintr([&] { return ::poll(&entry, 1, timeout_ms); });
  return ready > 0 && (entry.revents & POLLIN) != 0;
}

uint16_t DatagramSocket::bound_udp_port() const {
  sockaddr_in address{};
  socklen_t length = static_cast<socklen_t>(sizeof(address));
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    return 0;
  }
  return ntohs(address.sin_port);
}

}  // namespace net
}  // namespace pathalias
