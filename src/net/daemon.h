// The routedbd serving loop: datagram resolve service with zero-downtime
// rollover.
//
// One thread, one poll loop, three wakeup sources: the unix-domain socket, the
// UDP socket, and a self-pipe the (async-signal-safe) signal handlers write one
// control byte to ('T' terminate, 'H' reload).  Each turn:
//
//   1. Drain BOTH sockets completely — every datagram the kernel has queued is
//      decoded and its queries appended to one RequestCoalescer batch.  Duplicate
//      requests (same peer, same id) short-circuit to the ReplayBuffer and never
//      reach the resolver.
//   2. One ResolveBatch over the whole coalesced batch (shards, result cache,
//      pipelined walk — the serving engine is exec::FrozenBatchEngine), then one
//      reply datagram per request, sliced back out of the flat result span,
//      bounded by max_reply_bytes with explicit truncation flags.
//   3. Housekeeping: a pending SIGHUP runs the in-process reload; the image file
//      is polled for external replacement on watch_interval_ms cadence; drained
//      old mappings are unmapped (RolloverController::RetireDrained).
//
// Because the resolve happens between drains, a rollover observed by this loop is
// linearizable from any client's point of view: every reply sent after
// AdoptRoutes returns was computed against the new mapping, and a retransmitted
// request that was first answered pre-rollover is re-answered with the SAME
// stored bytes (replay buffer), never a mix.
//
// Tests drive the loop deterministically with PollOnce(); production uses Run().

#ifndef SRC_NET_DAEMON_H_
#define SRC_NET_DAEMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/coalescer.h"
#include "src/net/rollover.h"
#include "src/net/socket.h"
#include "src/net/stats.h"
#include "src/net/wire.h"

namespace pathalias {
namespace net {

struct DaemonOptions {
  RolloverOptions rollover;       // image, map files, engine knobs
  std::string unix_path;          // unix-domain datagram socket ("" = disabled)
  int udp_port = -1;              // -1 disabled, 0 ephemeral, else the port
  size_t max_reply_bytes = kMaxDatagramBytes;  // per-reply budget (clamped by wire.cc)
  size_t replay_entries = 1024;   // dedup replay buffer capacity (0 disables dedup)
  size_t replay_bytes = 4 * 1024 * 1024;  // replay buffer byte budget (0 = unlimited)
  // Load shedding: once a turn's coalesced batch holds this many queries,
  // further requests this turn get a header-only kReplyFlagOverloaded reply
  // instead of joining the batch (0 = never shed).  An explicit "back off and
  // retry" beats a silent drop: the client stops burning its timeout, and the
  // daemon's turn latency stays bounded under a flood.
  size_t max_queries_per_turn = 16384;
  int watch_interval_ms = 1000;   // external-image poll cadence; <= 0 disables
  // Log reload outcomes (and their error detail) to stderr.  Off in tests —
  // routedbd turns it on so a failed rollover is visible in the daemon log, not
  // just a counter.
  bool log_reloads = false;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Opens the image, builds the engine, binds the sockets, creates the self-pipe.
  // False with *error on any failure.  Does NOT install signal handlers — call
  // InstallSignalHandlers() (production) or drive Request*() directly (tests).
  bool Start(std::string* error);

  // Routes SIGTERM/SIGINT → RequestTerminate and SIGHUP → RequestReload for this
  // daemon instance (one instance per process), and ignores SIGPIPE.
  bool InstallSignalHandlers(std::string* error);

  // One loop turn: wait up to `timeout_ms` (-1 = until work arrives) for a
  // datagram or control byte, then drain, resolve, reply, and do housekeeping.
  // Returns false once termination has been requested (the turn still completes:
  // queued requests are answered before shutdown).
  bool PollOnce(int timeout_ms);

  // PollOnce until terminated.  Returns the process exit code (0).
  int Run();

  // Async-signal-safe shutdown/reload triggers (each writes one self-pipe byte).
  void RequestTerminate();
  void RequestReload();

  const DaemonStats& stats() const { return stats_; }
  RolloverController& rollover() { return rollover_; }
  // The live engine (test hook; changes identity after an incompatible swap).
  exec::FrozenBatchEngine* engine() { return rollover_.engine(); }
  // After Start with udp_port == 0: the kernel-assigned port.
  uint16_t udp_port() const;
  const std::string& unix_path() const { return options_.unix_path; }

 private:
  // Drains one socket: decode, dedup, coalesce.  Malformed datagrams get their
  // bad-request reply (or silence) immediately.
  void DrainSocket(DatagramSocket* socket);
  // Resolves the coalesced batch and sends every reply.
  void ResolveAndReply();
  // Sends `datagram` to `peer` out the socket matching its address family,
  // keeping the traffic counters.
  void SendReply(std::string_view datagram, const PeerAddress& peer);
  // Runs the HUP reload / image-watch / retirement housekeeping for this turn.
  void Housekeeping();
  // Reads every pending control byte off the self-pipe.
  void DrainControlPipe();

  DaemonOptions options_;
  RolloverController rollover_;
  DatagramSocket unix_socket_;
  DatagramSocket udp_socket_;
  int control_read_fd_ = -1;
  int control_write_fd_ = -1;
  bool terminate_requested_ = false;
  bool reload_requested_ = false;
  int64_t next_watch_ms_ = 0;  // steady-clock deadline for the next image stat

  RequestCoalescer coalescer_;
  ReplayBuffer replay_;
  std::vector<char> recv_buffer_;
  std::vector<BatchLookup> results_;
  std::string reply_buffer_;
  DaemonStats stats_;
};

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_DAEMON_H_
