// The routedbd wire format: versioned request/reply framing over datagrams.
//
// One datagram is one request (client-chosen 64-bit request id, up to
// kMaxQueriesPerRequest destination names) or one reply (the id echoed, one result
// per query in request order).  Datagrams are atomic — a UDP or unix-domain
// datagram arrives whole or not at all — so there is no streaming reassembly; the
// framing exists to make *replies* idempotent and *truncation* explicit:
//
//   * Dedup/retransmit: a client that hears nothing retransmits the SAME datagram
//     (same id, same queries).  The daemon remembers its last replies per peer in a
//     bounded replay buffer and answers a duplicate by resending the stored bytes —
//     same answer, no second resolve — with kReplyFlagReplayed set so clients and
//     tests can observe the dedup.  (The AMUDP request/reply engine is the model:
//     coalesce, dedup by (source, id), replay from a bounded buffer.)
//
//   * Truncation: a reply never exceeds the daemon's max_reply_bytes.  Results are
//     appended in request order until the next one would not fit; the reply then
//     carries count < query_count and kReplyFlagTruncated.  The client contract:
//     results [0, count) are final and positional; re-ask the tail [count,
//     query_count) in a NEW request.  A single result too large even for an empty
//     reply comes back as status kResultTruncated with empty via/route — re-ask it
//     alone with a bigger budget, or treat it as undeliverable.
//
// All integers are little-endian, the native order of every supported target (the
// .pari image made the same call; see image_format.h).  Decoders validate
// everything — magic, version, counts, lengths, exact payload size — and reject
// rather than guess: a malformed datagram gets a header-only kReplyFlagBadRequest
// reply when the id is recoverable, silence when it is not.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pathalias {
namespace net {

// 'P','A','D','Q' / 'P','A','D','R' read as little-endian u32.
constexpr uint32_t kRequestMagic = 0x51444150u;
constexpr uint32_t kReplyMagic = 0x52444150u;
constexpr uint16_t kWireVersion = 1;

// Hard protocol bounds, chosen so any well-formed request fits one 64 KiB
// datagram with room to spare and a reply buffer can be stack-sized.
constexpr size_t kMaxQueriesPerRequest = 512;
constexpr size_t kMaxNameLength = 1024;
constexpr size_t kMaxDatagramBytes = 64 * 1024;

// Reply header flags.
constexpr uint16_t kReplyFlagTruncated = 1u << 0;   // count < query_count: re-ask the tail
constexpr uint16_t kReplyFlagReplayed = 1u << 1;    // served from the dedup replay buffer
constexpr uint16_t kReplyFlagBadRequest = 1u << 2;  // request undecodable; count == 0
constexpr uint16_t kReplyFlagOverloaded = 1u << 3;  // daemon shed this request; count == 0,
                                                    // nothing was resolved — back off and
                                                    // retransmit the SAME id later

// Per-result status.
enum ResultStatus : uint8_t {
  kResultMiss = 0,         // no route known
  kResultExact = 1,        // exact host/domain key hit: route is the full route
  kResultSuffix = 2,       // domain-suffix hit: prepend the host to the argument
  kResultMalformed = 3,    // query bytes are not a routable name (whitespace/control)
  kResultTruncated = 4,    // this one result alone exceeded the reply budget
};

// The fixed 24-byte header shared by requests and replies.
struct WireHeader {
  uint32_t magic;
  uint16_t version;
  uint16_t flags;        // requests: must be 0; replies: kReplyFlag*
  uint64_t request_id;   // client-chosen; echoed verbatim in the reply
  uint16_t count;        // queries present / results present
  uint16_t query_count;  // replies: queries in the request answered (= count unless
                         // truncated); requests: must equal count
  uint32_t reserved;     // must be 0
};
static_assert(sizeof(WireHeader) == 24, "wire header layout is part of the protocol");

// A decoded request: views into the datagram buffer (valid until the buffer is
// reused — the coalescer copies what it keeps).
struct DecodedRequest {
  uint64_t request_id = 0;
  std::vector<std::string_view> queries;
};

// One reply entry.  `via` is the database key that matched; `route` the stored
// route text (with its %s placeholder) — both empty on miss/malformed/truncated.
struct ReplyResult {
  uint8_t status = kResultMiss;
  std::string_view via;
  std::string_view route;
};

// A decoded reply, views into the caller's datagram buffer.
struct DecodedReply {
  uint64_t request_id = 0;
  uint16_t flags = 0;
  uint16_t query_count = 0;
  std::vector<ReplyResult> results;
};

// Encodes a request datagram into `out` (replacing its contents).  False when the
// queries violate the protocol bounds (too many, a name too long or empty).
bool EncodeRequest(uint64_t request_id, std::span<const std::string_view> queries,
                   std::string* out);

// Decodes a request datagram.  On failure returns false and sets *error to a
// short reason; *recovered_id gets the request id when at least the header was
// intact (so the server can still send a bad-request reply), 0 otherwise.
bool DecodeRequest(std::string_view datagram, DecodedRequest* out, std::string* error,
                   uint64_t* recovered_id);

// Encodes a reply for `results`, appending entries in order while the encoded size
// stays within `max_bytes`; sets kReplyFlagTruncated itself when it stops early.
// `flags` carries caller flags (e.g. kReplyFlagReplayed is applied by the replay
// path, not here).  Returns the number of results included.  A first result that
// alone busts the budget is included as kResultTruncated with empty strings, so a
// reply always answers at least one query.  `max_bytes` is clamped to
// [sizeof(WireHeader) + 8, kMaxDatagramBytes].
size_t EncodeReply(uint64_t request_id, uint16_t flags, size_t query_count,
                   std::span<const ReplyResult> results, size_t max_bytes,
                   std::string* out);

// Header-only bad-request reply (count == 0, kReplyFlagBadRequest).
void EncodeBadRequestReply(uint64_t request_id, std::string* out);

// Header-only overload reply (count == 0, kReplyFlagOverloaded): the daemon is
// shedding load and answered nothing.  Deliberately NOT a silent drop — the
// client learns immediately that it should back off instead of burning its
// timeout, and retransmits the same id once the daemon catches up.
void EncodeOverloadReply(uint64_t request_id, std::string* out);

// Decodes a reply datagram; same validation discipline as DecodeRequest.
bool DecodeReply(std::string_view datagram, DecodedReply* out, std::string* error);

}  // namespace net
}  // namespace pathalias

#endif  // SRC_NET_WIRE_H_
