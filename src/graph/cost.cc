#include "src/graph/cost.h"

#include <array>
#include <cctype>

namespace pathalias {
namespace {

constexpr std::array<CostSymbol, 10> kSymbols = {{
    {"LOCAL", 25},
    {"DEDICATED", 95},
    {"DIRECT", 200},
    {"DEMAND", 300},
    {"HOURLY", 500},
    {"EVENING", 1800},
    {"POLLED", 5000},
    {"DAILY", 5000},
    {"WEEKLY", 30000},
    {"DEAD", kInfinity},
}};

// Bound intermediate results so pathological expressions cannot overflow int64 even
// after repeated multiplication.
constexpr Cost kExprLimit = INT64_MAX / 1024;

class ExprParser {
 public:
  explicit ExprParser(std::string_view text) : text_(text) {}

  CostParse Parse() {
    std::optional<Cost> value = ParseSum();
    SkipSpace();
    if (value && pos_ != text_.size()) {
      Fail("trailing characters in cost expression");
      value = std::nullopt;
    }
    if (!value) {
      return {std::nullopt, error_.empty() ? "malformed cost expression" : error_};
    }
    return {value, {}};
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void Fail(std::string message) {
    if (error_.empty()) {
      error_ = std::move(message);
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<Cost> ParseSum() {
    std::optional<Cost> left = ParseTerm();
    while (left) {
      if (Eat('+')) {
        if (auto right = ParseTerm()) {
          left = CheckedApply(*left, *right, '+');
        } else {
          return std::nullopt;
        }
      } else if (Eat('-')) {
        if (auto right = ParseTerm()) {
          left = CheckedApply(*left, *right, '-');
        } else {
          return std::nullopt;
        }
      } else {
        break;
      }
    }
    return left;
  }

  std::optional<Cost> ParseTerm() {
    std::optional<Cost> left = ParseUnary();
    while (left) {
      if (Eat('*')) {
        if (auto right = ParseUnary()) {
          left = CheckedApply(*left, *right, '*');
        } else {
          return std::nullopt;
        }
      } else if (Eat('/')) {
        auto right = ParseUnary();
        if (!right) {
          return std::nullopt;
        }
        if (*right == 0) {
          Fail("division by zero in cost expression");
          return std::nullopt;
        }
        left = Check(*left / *right);
      } else {
        break;
      }
    }
    return left;
  }

  std::optional<Cost> ParseUnary() {
    if (Eat('-')) {
      auto value = ParseUnary();
      if (!value) {
        return std::nullopt;
      }
      return Check(-*value);
    }
    if (Eat('+')) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  std::optional<Cost> ParsePrimary() {
    SkipSpace();
    if (Eat('(')) {
      auto value = ParseSum();
      if (!value) {
        return std::nullopt;
      }
      if (!Eat(')')) {
        Fail("missing ')' in cost expression");
        return std::nullopt;
      }
      return value;
    }
    if (pos_ >= text_.size()) {
      Fail("unexpected end of cost expression");
      return std::nullopt;
    }
    unsigned char c = static_cast<unsigned char>(text_[pos_]);
    if (std::isdigit(c)) {
      Cost value = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        value = value * 10 + (text_[pos_] - '0');
        if (value > kExprLimit) {
          Fail("cost constant too large");
          return std::nullopt;
        }
        ++pos_;
      }
      return value;
    }
    if (std::isalpha(c)) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
        ++pos_;
      }
      std::string_view name = text_.substr(start, pos_ - start);
      if (auto symbol = LookupCostSymbol(name)) {
        return *symbol;
      }
      Fail("unknown cost symbol '" + std::string(name) + "'");
      return std::nullopt;
    }
    Fail(std::string("unexpected character '") + text_[pos_] + "' in cost expression");
    return std::nullopt;
  }

  std::optional<Cost> Check(Cost value) {
    if (value > kExprLimit || value < -kExprLimit) {
      Fail("cost expression overflow");
      return std::nullopt;
    }
    return value;
  }

  // Overflow-checked arithmetic: operands within kExprLimit can still overflow the
  // underlying int64 (e.g. 1e12 * 1e12), which would be UB before Check ever saw it.
  std::optional<Cost> CheckedApply(Cost a, Cost b, char op) {
    Cost out = 0;
    bool overflow = false;
    switch (op) {
      case '+':
        overflow = __builtin_add_overflow(a, b, &out);
        break;
      case '-':
        overflow = __builtin_sub_overflow(a, b, &out);
        break;
      default:
        overflow = __builtin_mul_overflow(a, b, &out);
        break;
    }
    if (overflow) {
      Fail("cost expression overflow");
      return std::nullopt;
    }
    return Check(out);
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::span<const CostSymbol> CostSymbols() { return kSymbols; }

std::optional<Cost> LookupCostSymbol(std::string_view name) {
  for (const CostSymbol& symbol : kSymbols) {
    if (symbol.name == name) {
      return symbol.value;
    }
  }
  return std::nullopt;
}

CostParse EvalCostExpression(std::string_view text) { return ExprParser(text).Parse(); }

}  // namespace pathalias
