// The in-memory connectivity graph (paper §Data structures).
//
// Owns the arena every Node/Link lives in, the name interner every NameId resolves
// through, and the semantic rules the input language needs:
//   * private-name scoping — identically named hosts in different files stay distinct
//     (paper §Host name collisions), implemented as shadow chains hanging off the
//     NameId-indexed node vector rather than by deletion;
//   * duplicate-link resolution — the same link declared twice keeps the cheaper cost
//     [R: the paper notes file boundaries matter here but not the rule; cheapest-wins
//     with a warning on conflicting same-file declarations is our reconstruction];
//   * network declarations — a net is a single placeholder node with member→net edges
//     at the declared cost and net→member edges at zero ("you pay to get into the City,
//     but you get back to Jersey for free");
//   * aliases — pairs of zero-cost ALIAS edges; "aliases are a property of edges, not
//     vertices", so nosc (ARPANET) and noscvax (UUCP) resolve per-route;
//   * dead / delete / adjust / gatewayed / gateway declarations.

#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/link.h"
#include "src/graph/node.h"
#include "src/support/arena.h"
#include "src/support/diag.h"
#include "src/support/interner.h"

namespace pathalias {

class Graph {
 public:
  struct Options {
    bool ignore_case = false;  // -i: fold host names to lower case
  };

  explicit Graph(Diagnostics* diag);
  Graph(Diagnostics* diag, Options options);

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  // --- input file scoping (drives private-name visibility) ---

  // Starts reading a named input file; returns its index.
  int BeginFile(std::string_view file_name);
  void EndFile();
  const std::vector<std::string>& files() const { return files_; }
  int current_file() const { return current_file_; }

  // --- names ---

  // Interns a name (case-normalized per Options) without creating a node.  This is the
  // tokenization entry point: every name the parser sees passes through here once, and
  // all later layers reuse the returned id.
  NameId InternName(std::string_view name) { return names_.Intern(name); }

  // Resolves a node's (or any interned) name.  O(1); the interner owns the bytes.
  std::string_view NameOf(const Node* node) const { return names_.View(node->name); }
  std::string_view NameOf(NameId id) const { return names_.View(id); }

  NameInterner& names() { return names_; }
  const NameInterner& names() const { return names_; }

  // --- node and link construction ---

  // Finds the visible node named `name`, creating a global one if absent.
  Node* Intern(std::string_view name);
  Node* Intern(NameId id);

  // Finds the visible node named `name`; nullptr if none exists.
  Node* Find(std::string_view name);
  Node* Find(NameId id);

  // Adds a directed edge.  Returns the link (a pre-existing one if this declaration
  // duplicates it), or nullptr for a rejected self-link.
  Link* AddLink(Node* from, Node* to, Cost cost, char op, bool right_syntax, SourcePos pos,
                uint32_t extra_flags = 0);

  // Declares `a` and `b` to be the same machine (a pair of zero-cost ALIAS edges).
  void AddAlias(Node* a, Node* b, SourcePos pos);

  // --- incremental patching (src/incr) ---
  //
  // These bypass the duplicate-resolution diagnostics: the caller (MapBuilder) has
  // already computed the declaration set's effective winner and is bringing the live
  // graph to the state a from-scratch rebuild would produce.

  // Finds the non-alias from→to link; nullptr if absent.
  Link* FindLink(Node* from, Node* to) const;
  // Sets the effective (cost, op, right, declaration flags) of from→to, creating the
  // link if absent.  `decl_flags` ⊆ kLinkDead|kLinkGateway|kLinkNetMember is applied
  // exactly: bits outside the set (invented/traced) are preserved, bits inside it
  // are overwritten — dead{a!b} and gateway{net!host} edits patch through here.
  Link* SetLinkState(Node* from, Node* to, Cost cost, char op, bool right,
                     uint32_t decl_flags = 0);
  // Unlinks the non-alias from→to link; returns true if one existed.
  bool RemoveLink(Node* from, Node* to);
  // Finds the directed alias edge from→to; nullptr if absent.
  Link* FindAlias(Node* from, Node* to) const;
  // Unlinks both alias edges of the a = b pair; returns true if either existed.
  bool RemoveAlias(Node* a, Node* b);
  // Sets the declaration-derived host state exactly: `decl_flags` ⊆
  // kNodeTerminal|kNodeDeleted|kNodeGatewayed|kNodeExplicitGateways replaces those
  // bits (everything else is preserved) and `adjust` replaces the accumulated bias —
  // dead{a} / delete{a} / adjust{a(n)} / gatewayed{a} edits patch through here.
  void SetHostState(Node* node, uint32_t decl_flags, Cost adjust);
  // Retires a node no remaining declaration references: marks it deleted and drops
  // its adjacency.  The node object survives (NameIds and shadow chains are stable);
  // ReviveNode restores it to the state CreateNode would have produced.
  void RetireNode(Node* node);
  void ReviveNode(Node* node);
  // True if `id`'s shadow chain holds more than one node or a private node — the
  // name-keyed declaration diffing the patcher does is only sound without shadows.
  bool HasShadowedName(NameId id) const {
    const Node* head = ChainHead(id);
    return head != nullptr && (head->shadow != nullptr || head->is_private());
  }

  // NAME = op{members}(cost): placeholder node, member→net at `cost`, net→member at 0.
  Node* DeclareNet(Node* net, const std::vector<Node*>& members, Cost cost, char op,
                   bool right_syntax, SourcePos pos);

  // --- keyword declarations ---

  void DeclarePrivate(NameId id, SourcePos pos);
  void DeclarePrivate(std::string_view name, SourcePos pos);
  void MarkDeadHost(Node* host, SourcePos pos);
  void MarkDeadLink(Node* from, Node* to, SourcePos pos);
  void DeleteHost(Node* host, SourcePos pos);
  void AdjustHost(Node* host, Cost amount, SourcePos pos);
  void MarkGatewayed(Node* net, SourcePos pos);
  // Declares `gateway` a sanctioned entry into `net`: flags the gateway→net link,
  // creating it at zero cost if the map never declared one.
  void MarkGatewayLink(Node* net, Node* gateway, SourcePos pos);

  // --- the distinguished source vertex ---

  // Names the local host (the Dijkstra source).  Creates the node if the map never
  // mentioned it (with a warning: routes will then only cover the local host itself).
  Node* SetLocal(std::string_view name);
  Node* local() const { return local_; }

  // --- introspection ---

  std::span<Node* const> nodes() const { return nodes_; }
  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return link_count_; }
  // Links carrying kLinkInvented (back links).  Maintained so Mapper::Patch's
  // no-invented-links gate is O(1) instead of a full adjacency rescan per update.
  size_t invented_link_count() const { return invented_link_count_; }

  Arena& arena() { return arena_; }
  Diagnostics& diag() { return *diag_; }

 private:
  Node* CreateNode(NameId id, bool is_private);
  std::string Describe(const Node* from, const Node* to) const;
  bool Visible(const Node* node) const {
    return !node->is_private() || node->private_file == current_file_;
  }
  // Shadow-chain head for `id`, or nullptr.  The id-indexed vector replaces the old
  // name-keyed hash table: the interner did the only string hash at tokenization.
  Node* ChainHead(NameId id) const {
    return id < by_name_.size() ? by_name_[id] : nullptr;
  }

  Diagnostics* diag_;
  Options options_;
  Arena arena_;
  NameInterner names_;
  std::vector<Node*> by_name_;  // NameId -> shadow-chain head (private first)
  std::vector<Node*> nodes_;
  std::vector<std::string> files_;
  size_t link_count_ = 0;
  size_t invented_link_count_ = 0;
  int current_file_ = -1;
  Node* local_ = nullptr;
};

}  // namespace pathalias

#endif  // SRC_GRAPH_GRAPH_H_
