// Node: a host or network vertex (paper §Graph representation).
//
// "A node is represented by a structure consisting mostly of pointers and flags."
// Nodes are arena-allocated, never freed individually, and trivially destructible.
// Mapping state (cost, parent, heap index) lives directly in the node, exactly as in
// the original; the two PathLabel slots support the two-label "second-best" extension.

#ifndef SRC_GRAPH_NODE_H_
#define SRC_GRAPH_NODE_H_

#include <cstdint>
#include <string_view>

#include "src/graph/cost.h"
#include "src/graph/link.h"
#include "src/support/interner.h"

namespace pathalias {

struct PathLabel;

enum NodeFlag : uint32_t {
  kNodeNet = 1u << 0,        // placeholder declared via NAME = {...}
  kNodeDomain = 1u << 1,     // name begins with '.'
  kNodePrivate = 1u << 2,    // scope limited to its declaring file
  kNodeDeleted = 1u << 3,    // delete {...}: ignore entirely
  kNodeTerminal = 1u << 4,   // dead {host}: may receive mail, must not relay
  kNodeGatewayed = 1u << 5,  // gatewayed {...}: entry requires a gateway link
  kNodeLocal = 1u << 6,      // the source of the shortest-path computation
  kNodeTraced = 1u << 7,     // -t: report every relaxation involving this node
  // Set when a gateway {net!host} declaration names explicit gateways.  Domains without
  // one accept any declared link as an implicit gateway [R]; with one, entry is
  // restricted to the declared gateways like any other gatewayed net.
  kNodeExplicitGateways = 1u << 8,
};

struct Node {
  NameId name = kNoName;  // handle into the graph's interner, which owns the string
  Link* links = nullptr;  // adjacency list head (declaration order)
  Link* links_tail = nullptr;
  Node* shadow = nullptr;  // next node with the same name (private-name chain)

  // Final mapping results (best label), filled by the mapper.
  PathLabel* label[2] = {nullptr, nullptr};  // [clean, via-domain] labels
  Node* parent = nullptr;
  Link* parent_link = nullptr;
  Cost cost = kUnreached;
  int32_t hops = 0;

  Cost adjust = 0;  // adjust {host(cost)}: bias on every path through this host
  uint32_t flags = 0;
  int32_t private_file = -1;  // file that declared it private (-1 = global)
  int32_t order = 0;          // creation order; deterministic iteration & tie-breaks

  bool net() const { return (flags & kNodeNet) != 0; }
  bool domain() const { return (flags & kNodeDomain) != 0; }
  // Nets and domains are placeholders: their routes equal their parents' and (except
  // top-level domains) they never appear in the output.
  bool placeholder() const { return (flags & (kNodeNet | kNodeDomain)) != 0; }
  bool is_private() const { return (flags & kNodePrivate) != 0; }
  bool deleted() const { return (flags & kNodeDeleted) != 0; }
  bool terminal() const { return (flags & kNodeTerminal) != 0; }
  bool gatewayed() const { return (flags & kNodeGatewayed) != 0; }
  bool local() const { return (flags & kNodeLocal) != 0; }
  bool traced() const { return (flags & kNodeTraced) != 0; }
  bool mapped() const { return cost != kUnreached; }
};

// Whether a declared name denotes a domain.
inline bool IsDomainName(std::string_view name) { return !name.empty() && name[0] == '.'; }

}  // namespace pathalias

#endif  // SRC_GRAPH_NODE_H_
