#include "src/graph/audit.h"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace pathalias {
namespace {

struct PairHash {
  size_t operator()(const std::pair<const Node*, const Node*>& pair) const {
    auto a = reinterpret_cast<uintptr_t>(pair.first);
    auto b = reinterpret_cast<uintptr_t>(pair.second);
    return std::hash<uintptr_t>()(a * 31 + b);
  }
};

class Auditor {
 public:
  Auditor(const Graph& graph, const AuditOptions& options) : graph_(graph), options_(options) {}

  std::string Name(const Node* node) const { return std::string(graph_.NameOf(node)); }

  AuditReport Run() {
    IndexLinks();
    Summarize();
    FindNameCollisions();
    FindOneWayAndAsymmetric();
    FindDisconnected();
    FindUnenterableNetsAndDomains();
    FindDeadRelays();
    return std::move(report_);
  }

 private:
  void Add(AuditSeverity severity, const std::string& category, std::string message) {
    size_t& count = per_category_[category];
    ++count;
    if (count == options_.max_findings_per_category + 1) {
      report_.findings.push_back(
          {severity, category, "... further " + category + " findings suppressed"});
      return;
    }
    if (count > options_.max_findings_per_category) {
      return;
    }
    report_.findings.push_back({severity, category, std::move(message)});
  }

  // Per-target inbound facts, folded in one pass over the link index.  The
  // unenterable-net and dead-relay passes used to rescan every link per
  // candidate node — O(placeholders x links) / O(dead x links), the first
  // thing that blows up on 100k-host maps.
  struct Inbound {
    bool any = false;
    bool gateway = false;
    size_t non_invented = 0;
  };

  void IndexLinks() {
    for (const Node* node : graph_.nodes()) {
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        if (!link->alias()) {
          forward_.emplace(std::pair{node, static_cast<const Node*>(link->to)}, link);
        }
      }
    }
    // Tally from forward_, not the raw lists: emplace deduplicated parallel
    // (from,to) links, and the findings must not change shape with the rewrite.
    for (const auto& [pair, link] : forward_) {
      Inbound& in = inbound_[pair.second];
      in.any = true;
      if (link->gateway()) {
        in.gateway = true;
      }
      if (!link->invented()) {
        ++in.non_invented;
      }
    }
  }

  void Summarize() {
    size_t degree_sum = 0;
    for (const Node* node : graph_.nodes()) {
      if (node->placeholder()) {
        ++report_.placeholders;
        continue;
      }
      if (node->deleted()) {
        continue;
      }
      ++report_.hosts;
      size_t degree = 0;
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        if (!link->alias()) {
          ++degree;
        }
      }
      degree_sum += degree;
      if (degree > report_.max_degree) {
        report_.max_degree = degree;
        report_.max_degree_host = Name(node);
      }
    }
    report_.links = graph_.link_count();
    report_.average_degree =
        report_.hosts == 0 ? 0.0
                           : static_cast<double>(degree_sum) / static_cast<double>(report_.hosts);
  }

  void FindNameCollisions() {
    // A host whose outgoing links were declared by several distinct input files is a
    // collision suspect: sites normally declare their own connections.  Hosts that
    // were properly declared private never trip this (each instance is one file's).
    for (const Node* node : graph_.nodes()) {
      if (node->placeholder() || node->is_private()) {
        continue;
      }
      std::set<int> declaring_files;
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        if (!link->alias() && !link->invented() && link->decl_file >= 0) {
          declaring_files.insert(link->decl_file);
        }
      }
      if (declaring_files.size() >= 3) {
        std::string files;
        int shown = 0;
        for (int file : declaring_files) {
          if (shown++ == 4) {
            files += ", ...";
            break;
          }
          if (!files.empty()) {
            files += ", ";
          }
          files += graph_.files()[static_cast<size_t>(file)];
        }
        Add(AuditSeverity::kSuspicious, "name-collision",
            Name(node) + ": outgoing links declared by " +
                std::to_string(declaring_files.size()) + " different files (" + files +
                "); possibly several machines sharing one name — consider 'private'");
      }
    }
  }

  void FindOneWayAndAsymmetric() {
    for (const auto& [pair, link] : forward_) {
      const auto& [from, to] = pair;
      if (from->placeholder() || to->placeholder()) {
        continue;  // net/domain edges are one-way by construction
      }
      auto reverse = forward_.find({to, from});
      if (reverse == forward_.end()) {
        ++report_.one_way_links;
        if (!link->invented()) {
          Add(AuditSeverity::kInfo, "one-way-link",
              Name(from) + " calls " + Name(to) + " but " + Name(to) +
                  " never calls back; the return route must be invented");
        }
        continue;
      }
      // Report each asymmetric pair once (from < to by pointer keeps it stable).
      if (from < to) {
        Cost a = link->cost;
        Cost b = reverse->second->cost;
        Cost low = std::min(a, b);
        Cost high = std::max(a, b);
        if (low >= 0 && high > static_cast<Cost>(options_.cost_asymmetry_factor *
                                                 static_cast<double>(std::max<Cost>(low, 1)))) {
          Add(AuditSeverity::kSuspicious, "asymmetric-cost",
              Name(from) + " <-> " + Name(to) + ": costs " + std::to_string(a) +
                  " vs " + std::to_string(b) + " differ by more than " +
                  std::to_string(static_cast<int>(options_.cost_asymmetry_factor)) + "x");
        }
      }
    }
  }

  void FindDisconnected() {
    for (const Node* node : graph_.nodes()) {
      if (node->placeholder() || node->deleted()) {
        continue;
      }
      bool has_outbound = false;
      bool has_alias = false;
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        if (link->alias()) {
          has_alias = true;
        } else {
          has_outbound = true;
        }
      }
      bool inbound = inbound_.contains(node);
      if (!has_outbound && !inbound && !has_alias) {
        ++report_.isolated_hosts;
        Add(AuditSeverity::kProblem, "isolated-host",
            Name(node) + " is declared but connected to nothing");
      } else if (!inbound && !has_alias) {
        ++report_.no_inbound_hosts;
      }
    }
  }

  void FindUnenterableNetsAndDomains() {
    for (const Node* node : graph_.nodes()) {
      if (!node->placeholder() || node->deleted()) {
        continue;
      }
      bool has_member = false;
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        if (link->net_member() || (!link->alias() && node->domain())) {
          has_member = true;
          break;
        }
      }
      auto in = inbound_.find(node);
      bool enterable = in != inbound_.end() && in->second.any;
      bool gateway_ok = (node->flags & kNodeExplicitGateways) == 0 ||
                        (in != inbound_.end() && in->second.gateway);
      if (!enterable) {
        Add(AuditSeverity::kProblem, "unenterable-net",
            Name(node) + (node->domain() ? " (domain)" : " (network)") +
                " has no links into it; its members are unreachable through it");
      } else if (!gateway_ok) {
        Add(AuditSeverity::kProblem, "gatewayless-net",
            Name(node) +
                " requires explicit gateways but none of its inbound links is one");
      }
      if (!has_member) {
        Add(AuditSeverity::kSuspicious, "empty-net",
            Name(node) + (node->domain() ? " (domain)" : " (network)") +
                " has no members");
      }
    }
  }

  void FindDeadRelays() {
    for (const Node* node : graph_.nodes()) {
      if (!node->terminal() && !node->deleted()) {
        continue;
      }
      auto in = inbound_.find(node);
      size_t still_referenced = in == inbound_.end() ? 0 : in->second.non_invented;
      if (still_referenced >= 2) {
        Add(AuditSeverity::kInfo, "dead-but-popular",
            Name(node) + " is declared " +
                (node->deleted() ? "deleted" : "dead") + " yet " +
                std::to_string(still_referenced) +
                " links still point at it; neighbor data may be stale");
      }
    }
  }

  const Graph& graph_;
  const AuditOptions& options_;
  AuditReport report_;
  std::unordered_map<std::pair<const Node*, const Node*>, const Link*, PairHash> forward_;
  std::unordered_map<const Node*, Inbound> inbound_;
  std::unordered_map<std::string, size_t> per_category_;
};

}  // namespace

std::string_view ToString(AuditSeverity severity) {
  switch (severity) {
    case AuditSeverity::kInfo:
      return "info";
    case AuditSeverity::kSuspicious:
      return "suspicious";
    case AuditSeverity::kProblem:
      return "PROBLEM";
  }
  return "unknown";
}

size_t AuditReport::CountAtLeast(AuditSeverity severity) const {
  size_t count = 0;
  for (const AuditFinding& finding : findings) {
    if (static_cast<int>(finding.severity) >= static_cast<int>(severity)) {
      ++count;
    }
  }
  return count;
}

std::string AuditReport::ToString() const {
  std::ostringstream out;
  out << "map audit: " << hosts << " hosts, " << placeholders << " nets/domains, " << links
      << " links\n";
  out << "  average degree " << average_degree << ", max " << max_degree << " ("
      << max_degree_host << ")\n";
  out << "  " << one_way_links << " one-way links, " << no_inbound_hosts
      << " hosts nobody calls, " << isolated_hosts << " isolated\n";
  for (AuditSeverity severity :
       {AuditSeverity::kProblem, AuditSeverity::kSuspicious, AuditSeverity::kInfo}) {
    for (const AuditFinding& finding : findings) {
      if (finding.severity == severity) {
        out << "  [" << pathalias::ToString(severity) << "/" << finding.category << "] "
            << finding.message << "\n";
      }
    }
  }
  return out.str();
}

AuditReport AuditGraph(const Graph& graph, const AuditOptions& options) {
  return Auditor(graph, options).Run();
}

}  // namespace pathalias
