#include "src/graph/graph.h"

#include <cctype>

namespace pathalias {
namespace {

std::string Describe(const Node* from, const Node* to) {
  return std::string(from->name) + "!" + to->name;
}

}  // namespace

Graph::Graph(Diagnostics* diag) : Graph(diag, Options()) {}

Graph::Graph(Diagnostics* diag, Options options)
    : diag_(diag), options_(options), table_(&arena_, /*initial_capacity=*/61) {}

int Graph::BeginFile(std::string_view file_name) {
  files_.emplace_back(file_name);
  current_file_ = static_cast<int>(files_.size()) - 1;
  return current_file_;
}

void Graph::EndFile() { current_file_ = -1; }

std::string_view Graph::Fold(std::string_view name, std::string& storage) const {
  if (!options_.ignore_case) {
    return name;
  }
  storage.assign(name);
  for (char& c : storage) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return storage;
}

Node* Graph::CreateNode(std::string_view name, bool is_private) {
  Node* node = arena_.New<Node>();
  node->name = arena_.InternString(name);
  node->order = static_cast<int32_t>(nodes_.size());
  if (IsDomainName(name)) {
    // Domains are placeholders and always require gateways (paper §Gatewayed networks:
    // "domains and subdomains are assumed to require gateways").
    node->flags |= kNodeDomain | kNodeGatewayed;
  }
  if (is_private) {
    node->flags |= kNodePrivate;
    node->private_file = current_file_;
  }
  nodes_.push_back(node);

  if (table_.stolen()) {
    return node;  // findable via the linear-scan path only
  }
  Node** chain = table_.Find(name);
  if (chain == nullptr) {
    table_.Insert(node->name, node);
    return node;
  }
  if (is_private) {
    // Private nodes shadow at the head; the global (if any) stays at the tail.
    node->shadow = *chain;
    *chain = node;
  } else {
    Node* tail = *chain;
    while (tail->shadow != nullptr) {
      tail = tail->shadow;
    }
    tail->shadow = node;
  }
  return node;
}

Node* Graph::Find(std::string_view name) {
  std::string folded;
  name = Fold(name, folded);
  if (table_.stolen()) {
    // The mapper adopted the hash table's storage for its heap (paper §Calculating
    // shortest paths).  Post-mapping lookups are rare (tests, tools, resolvers), so a
    // linear scan honoring the same visibility rules suffices.
    for (Node* node : nodes_) {
      if (name == node->name_view() && Visible(node)) {
        return node;
      }
    }
    return nullptr;
  }
  Node** chain = table_.Find(name);
  for (Node* node = chain ? *chain : nullptr; node != nullptr; node = node->shadow) {
    if (Visible(node)) {
      return node;
    }
  }
  return nullptr;
}

Node* Graph::Intern(std::string_view name) {
  std::string folded;
  name = Fold(name, folded);
  if (Node* existing = Find(name)) {
    return existing;
  }
  return CreateNode(name, /*is_private=*/false);
}

Link* Graph::AddLink(Node* from, Node* to, Cost cost, char op, bool right_syntax,
                     SourcePos pos, uint32_t extra_flags) {
  if (from == to) {
    diag_->Warn(pos, "link from " + std::string(from->name) + " to itself ignored");
    return nullptr;
  }
  if (cost < 0) {
    diag_->Warn(pos, "negative cost on link " + Describe(from, to) + " clamped to 0");
    cost = 0;
  }
  // Duplicate resolution: the same physical link reported twice (usually by the two
  // endpoint sites) keeps the cheaper estimate.
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to != to || link->alias()) {
      continue;
    }
    if (link->cost != cost) {
      Severity severity =
          link->decl_file == current_file_ && link->decl_file >= 0 && (extra_flags == 0)
              ? Severity::kWarning
              : Severity::kNote;
      diag_->Report(severity, pos,
                    "duplicate link " + Describe(from, to) + " declared with cost " +
                        std::to_string(cost) + " (previously " + std::to_string(link->cost) +
                        "); keeping the cheaper");
      if (cost < link->cost) {
        link->cost = cost;
        link->op = op;
        if (right_syntax) {
          link->flags |= kLinkRight;
        } else {
          link->flags &= ~static_cast<uint32_t>(kLinkRight);
        }
        link->decl_file = current_file_;
        link->decl_line = pos.line;
      }
    }
    link->flags |= extra_flags;
    return link;
  }
  Link* link = arena_.New<Link>();
  link->to = to;
  link->cost = cost;
  link->op = op;
  link->flags = extra_flags | (right_syntax ? kLinkRight : 0u);
  link->decl_file = current_file_;
  link->decl_line = pos.line;
  if (from->links_tail == nullptr) {
    from->links = link;
  } else {
    from->links_tail->next = link;
  }
  from->links_tail = link;
  ++link_count_;
  return link;
}

void Graph::AddAlias(Node* a, Node* b, SourcePos pos) {
  if (a == b) {
    diag_->Warn(pos, "alias of " + std::string(a->name) + " to itself ignored");
    return;
  }
  for (Link* link = a->links; link != nullptr; link = link->next) {
    if (link->to == b && link->alias()) {
      return;  // already aliased
    }
  }
  // "A pair of zero cost edges connects aliases."
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Link* link = arena_.New<Link>();
    link->to = to;
    link->cost = 0;
    link->flags = kLinkAlias;
    link->decl_file = current_file_;
    link->decl_line = pos.line;
    if (from->links_tail == nullptr) {
      from->links = link;
    } else {
      from->links_tail->next = link;
    }
    from->links_tail = link;
    ++link_count_;
  }
}

Node* Graph::DeclareNet(Node* net, const std::vector<Node*>& members, Cost cost, char op,
                        bool right_syntax, SourcePos pos) {
  if (!net->domain()) {
    net->flags |= kNodeNet;
  }
  for (Node* member : members) {
    if (member == net) {
      diag_->Warn(pos, "network " + std::string(net->name) + " lists itself as a member");
      continue;
    }
    // "the weight applies only to the edges originating at network members; the weight
    // of edges from the network node to its members is zero."
    AddLink(member, net, cost, op, right_syntax, pos);
    AddLink(net, member, 0, op, right_syntax, pos, kLinkNetMember);
  }
  return net;
}

void Graph::DeclarePrivate(std::string_view name, SourcePos pos) {
  std::string folded;
  name = Fold(name, folded);
  Node** chain = table_.Find(name);
  for (Node* node = chain ? *chain : nullptr; node != nullptr; node = node->shadow) {
    if (node->is_private() && node->private_file == current_file_) {
      diag_->Warn(pos, "host " + std::string(name) + " is already private in this file");
      return;
    }
  }
  CreateNode(name, /*is_private=*/true);
}

void Graph::MarkDeadHost(Node* host, SourcePos pos) {
  (void)pos;
  // A dead host may still receive mail but must not relay it; the mapper charges
  // +kInfinity for every path leaving it.
  host->flags |= kNodeTerminal;
}

void Graph::MarkDeadLink(Node* from, Node* to, SourcePos pos) {
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to == to && !link->alias()) {
      link->flags |= kLinkDead;
      return;
    }
  }
  diag_->Warn(pos, "dead link " + Describe(from, to) + " was never declared; ignored");
}

void Graph::DeleteHost(Node* host, SourcePos pos) {
  (void)pos;
  host->flags |= kNodeDeleted;
}

void Graph::AdjustHost(Node* host, Cost amount, SourcePos pos) {
  (void)pos;
  host->adjust += amount;
}

void Graph::MarkGatewayed(Node* net, SourcePos pos) {
  (void)pos;
  net->flags |= kNodeGatewayed;
}

void Graph::MarkGatewayLink(Node* net, Node* gateway, SourcePos pos) {
  net->flags |= kNodeGatewayed | kNodeExplicitGateways;
  for (Link* link = gateway->links; link != nullptr; link = link->next) {
    if (link->to == net && !link->alias()) {
      link->flags |= kLinkGateway;
      return;
    }
  }
  diag_->Note(pos, "gateway " + std::string(gateway->name) + " had no declared link into " +
                       net->name + "; creating one at zero cost");
  AddLink(gateway, net, 0, kDefaultOp, /*right_syntax=*/false, pos, kLinkGateway);
}

Node* Graph::SetLocal(std::string_view name) {
  Node* node = Find(name);
  if (node == nullptr) {
    diag_->Warn(SourcePos{}, "local host " + std::string(name) +
                                 " does not appear in the map; only trivial routes result");
    node = Intern(name);
  }
  if (local_ != nullptr) {
    local_->flags &= ~static_cast<uint32_t>(kNodeLocal);
  }
  local_ = node;
  node->flags |= kNodeLocal;
  return node;
}

}  // namespace pathalias
