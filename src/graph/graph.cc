#include "src/graph/graph.h"

namespace pathalias {

Graph::Graph(Diagnostics* diag) : Graph(diag, Options()) {}

Graph::Graph(Diagnostics* diag, Options options)
    : diag_(diag),
      options_(options),
      names_(&arena_, NameInterner::Options{.fold_case = options.ignore_case,
                                            .suffix_chains = true,
                                            .initial_capacity = 61}) {}

std::string Graph::Describe(const Node* from, const Node* to) const {
  return std::string(NameOf(from)) + "!" + std::string(NameOf(to));
}

int Graph::BeginFile(std::string_view file_name) {
  files_.emplace_back(file_name);
  current_file_ = static_cast<int>(files_.size()) - 1;
  return current_file_;
}

void Graph::EndFile() { current_file_ = -1; }

Node* Graph::CreateNode(NameId id, bool is_private) {
  Node* node = arena_.New<Node>();
  node->name = id;
  node->order = static_cast<int32_t>(nodes_.size());
  if (IsDomainName(names_.View(id))) {
    // Domains are placeholders and always require gateways (paper §Gatewayed networks:
    // "domains and subdomains are assumed to require gateways").
    node->flags |= kNodeDomain | kNodeGatewayed;
  }
  if (is_private) {
    node->flags |= kNodePrivate;
    node->private_file = current_file_;
  }
  nodes_.push_back(node);

  if (id >= by_name_.size()) {
    by_name_.resize(names_.size(), nullptr);
  }
  Node*& chain = by_name_[id];
  if (chain == nullptr) {
    chain = node;
  } else if (is_private) {
    // Private nodes shadow at the head; the global (if any) stays at the tail.
    node->shadow = chain;
    chain = node;
  } else {
    Node* tail = chain;
    while (tail->shadow != nullptr) {
      tail = tail->shadow;
    }
    tail->shadow = node;
  }
  return node;
}

Node* Graph::Find(NameId id) {
  for (Node* node = ChainHead(id); node != nullptr; node = node->shadow) {
    if (Visible(node)) {
      return node;
    }
  }
  return nullptr;
}

Node* Graph::Find(std::string_view name) {
  NameId id = names_.Find(name);
  return id == kNoName ? nullptr : Find(id);
}

Node* Graph::Intern(NameId id) {
  if (Node* existing = Find(id)) {
    return existing;
  }
  return CreateNode(id, /*is_private=*/false);
}

Node* Graph::Intern(std::string_view name) { return Intern(names_.Intern(name)); }

Link* Graph::AddLink(Node* from, Node* to, Cost cost, char op, bool right_syntax,
                     SourcePos pos, uint32_t extra_flags) {
  if (from == to) {
    diag_->Warn(pos, "link from " + std::string(NameOf(from)) + " to itself ignored");
    return nullptr;
  }
  if (cost < 0) {
    diag_->Warn(pos, "negative cost on link " + Describe(from, to) + " clamped to 0");
    cost = 0;
  }
  // Duplicate resolution: the same physical link reported twice (usually by the two
  // endpoint sites) keeps the cheaper estimate.
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to != to || link->alias()) {
      continue;
    }
    if (link->cost != cost) {
      Severity severity =
          link->decl_file == current_file_ && link->decl_file >= 0 && (extra_flags == 0)
              ? Severity::kWarning
              : Severity::kNote;
      diag_->Report(severity, pos,
                    "duplicate link " + Describe(from, to) + " declared with cost " +
                        std::to_string(cost) + " (previously " + std::to_string(link->cost) +
                        "); keeping the cheaper");
      if (cost < link->cost) {
        link->cost = cost;
        link->op = op;
        if (right_syntax) {
          link->flags |= kLinkRight;
        } else {
          link->flags &= ~static_cast<uint32_t>(kLinkRight);
        }
        link->decl_file = current_file_;
        link->decl_line = pos.line;
      }
    }
    if (!link->invented() && (extra_flags & kLinkInvented) != 0) {
      ++invented_link_count_;
    }
    link->flags |= extra_flags;
    return link;
  }
  Link* link = arena_.New<Link>();
  link->to = to;
  link->cost = cost;
  link->op = op;
  link->flags = extra_flags | (right_syntax ? kLinkRight : 0u);
  if (link->invented()) {
    ++invented_link_count_;
  }
  link->decl_file = current_file_;
  link->decl_line = pos.line;
  if (from->links_tail == nullptr) {
    from->links = link;
  } else {
    from->links_tail->next = link;
  }
  from->links_tail = link;
  ++link_count_;
  return link;
}

Link* Graph::FindLink(Node* from, Node* to) const {
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to == to && !link->alias()) {
      return link;
    }
  }
  return nullptr;
}

Link* Graph::SetLinkState(Node* from, Node* to, Cost cost, char op, bool right,
                          uint32_t decl_flags) {
  constexpr uint32_t kDeclFlagMask = kLinkDead | kLinkGateway | kLinkNetMember;
  decl_flags &= kDeclFlagMask;
  if (from == to) {
    return nullptr;
  }
  if (cost < 0) {
    cost = 0;
  }
  if (Link* link = FindLink(from, to)) {
    link->cost = cost;
    link->op = op;
    if (right) {
      link->flags |= kLinkRight;
    } else {
      link->flags &= ~static_cast<uint32_t>(kLinkRight);
    }
    link->flags = (link->flags & ~kDeclFlagMask) | decl_flags;
    return link;
  }
  return AddLink(from, to, cost, op, right, SourcePos{}, decl_flags);
}

bool Graph::RemoveLink(Node* from, Node* to) {
  Link* previous = nullptr;
  for (Link* link = from->links; link != nullptr; previous = link, link = link->next) {
    if (link->to != to || link->alias()) {
      continue;
    }
    if (previous == nullptr) {
      from->links = link->next;
    } else {
      previous->next = link->next;
    }
    if (from->links_tail == link) {
      from->links_tail = previous;
    }
    --link_count_;
    if (link->invented()) {
      --invented_link_count_;
    }
    return true;  // at most one non-alias link per (from, to): AddLink deduplicates
  }
  return false;
}

Link* Graph::FindAlias(Node* from, Node* to) const {
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to == to && link->alias()) {
      return link;
    }
  }
  return nullptr;
}

bool Graph::RemoveAlias(Node* a, Node* b) {
  bool removed = false;
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Link* previous = nullptr;
    for (Link* link = from->links; link != nullptr; previous = link, link = link->next) {
      if (link->to != to || !link->alias()) {
        continue;
      }
      if (previous == nullptr) {
        from->links = link->next;
      } else {
        previous->next = link->next;
      }
      if (from->links_tail == link) {
        from->links_tail = previous;
      }
      --link_count_;
      removed = true;
      break;  // AddAlias deduplicates: at most one alias edge per direction
    }
  }
  return removed;
}

void Graph::SetHostState(Node* node, uint32_t decl_flags, Cost adjust) {
  constexpr uint32_t kDeclFlagMask =
      kNodeTerminal | kNodeDeleted | kNodeGatewayed | kNodeExplicitGateways;
  node->flags = (node->flags & ~kDeclFlagMask) | (decl_flags & kDeclFlagMask);
  node->adjust = adjust;
}

void Graph::RetireNode(Node* node) {
  size_t dropped = 0;
  for (Link* link = node->links; link != nullptr; link = link->next) {
    ++dropped;
    if (link->invented()) {
      --invented_link_count_;
    }
  }
  link_count_ -= dropped;
  node->links = nullptr;
  node->links_tail = nullptr;
  node->flags |= kNodeDeleted;
}

void Graph::ReviveNode(Node* node) {
  node->flags = IsDomainName(NameOf(node)) ? (kNodeDomain | kNodeGatewayed) : 0u;
  node->adjust = 0;
  node->links = nullptr;
  node->links_tail = nullptr;
}

void Graph::AddAlias(Node* a, Node* b, SourcePos pos) {
  if (a == b) {
    diag_->Warn(pos, "alias of " + std::string(NameOf(a)) + " to itself ignored");
    return;
  }
  for (Link* link = a->links; link != nullptr; link = link->next) {
    if (link->to == b && link->alias()) {
      return;  // already aliased
    }
  }
  // "A pair of zero cost edges connects aliases."
  for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
    Link* link = arena_.New<Link>();
    link->to = to;
    link->cost = 0;
    link->flags = kLinkAlias;
    link->decl_file = current_file_;
    link->decl_line = pos.line;
    if (from->links_tail == nullptr) {
      from->links = link;
    } else {
      from->links_tail->next = link;
    }
    from->links_tail = link;
    ++link_count_;
  }
}

Node* Graph::DeclareNet(Node* net, const std::vector<Node*>& members, Cost cost, char op,
                        bool right_syntax, SourcePos pos) {
  if (!net->domain()) {
    net->flags |= kNodeNet;
  }
  for (Node* member : members) {
    if (member == net) {
      diag_->Warn(pos, "network " + std::string(NameOf(net)) + " lists itself as a member");
      continue;
    }
    // "the weight applies only to the edges originating at network members; the weight
    // of edges from the network node to its members is zero."
    AddLink(member, net, cost, op, right_syntax, pos);
    AddLink(net, member, 0, op, right_syntax, pos, kLinkNetMember);
  }
  return net;
}

void Graph::DeclarePrivate(NameId id, SourcePos pos) {
  for (Node* node = ChainHead(id); node != nullptr; node = node->shadow) {
    if (node->is_private() && node->private_file == current_file_) {
      diag_->Warn(pos, "host " + std::string(NameOf(id)) + " is already private in this file");
      return;
    }
  }
  CreateNode(id, /*is_private=*/true);
}

void Graph::DeclarePrivate(std::string_view name, SourcePos pos) {
  DeclarePrivate(names_.Intern(name), pos);
}

void Graph::MarkDeadHost(Node* host, SourcePos pos) {
  (void)pos;
  // A dead host may still receive mail but must not relay it; the mapper charges
  // +kInfinity for every path leaving it.
  host->flags |= kNodeTerminal;
}

void Graph::MarkDeadLink(Node* from, Node* to, SourcePos pos) {
  for (Link* link = from->links; link != nullptr; link = link->next) {
    if (link->to == to && !link->alias()) {
      link->flags |= kLinkDead;
      return;
    }
  }
  diag_->Warn(pos, "dead link " + Describe(from, to) + " was never declared; ignored");
}

void Graph::DeleteHost(Node* host, SourcePos pos) {
  (void)pos;
  host->flags |= kNodeDeleted;
}

void Graph::AdjustHost(Node* host, Cost amount, SourcePos pos) {
  (void)pos;
  host->adjust += amount;
}

void Graph::MarkGatewayed(Node* net, SourcePos pos) {
  (void)pos;
  net->flags |= kNodeGatewayed;
}

void Graph::MarkGatewayLink(Node* net, Node* gateway, SourcePos pos) {
  net->flags |= kNodeGatewayed | kNodeExplicitGateways;
  for (Link* link = gateway->links; link != nullptr; link = link->next) {
    if (link->to == net && !link->alias()) {
      link->flags |= kLinkGateway;
      return;
    }
  }
  diag_->Note(pos, "gateway " + std::string(NameOf(gateway)) + " had no declared link into " +
                       std::string(NameOf(net)) + "; creating one at zero cost");
  AddLink(gateway, net, 0, kDefaultOp, /*right_syntax=*/false, pos, kLinkGateway);
}

Node* Graph::SetLocal(std::string_view name) {
  Node* node = Find(name);
  if (node == nullptr) {
    diag_->Warn(SourcePos{}, "local host " + std::string(name) +
                                 " does not appear in the map; only trivial routes result");
    node = Intern(name);
  }
  if (local_ != nullptr) {
    local_->flags &= ~static_cast<uint32_t>(kNodeLocal);
  }
  local_ = node;
  node->flags |= kNodeLocal;
  return node;
}

}  // namespace pathalias
