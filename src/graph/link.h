// Link: one element of a node's adjacency list (paper §Graph representation).
//
// "A list element, called a link, contains a pointer to the next link on the list, a
// pointer to the destination host on the edge it represents, a non-negative cost, and
// some flags."  We add the routing-operator character and the declaration site (for
// duplicate-link diagnostics).  Links are arena-allocated and trivially destructible.

#ifndef SRC_GRAPH_LINK_H_
#define SRC_GRAPH_LINK_H_

#include <cstdint>

#include "src/graph/cost.h"

namespace pathalias {

struct Node;

enum LinkFlag : uint32_t {
  kLinkDead = 1u << 0,       // declared dead; traversal costs +kInfinity
  kLinkAlias = 1u << 1,      // zero-cost alias edge ("aliases are a property of edges")
  kLinkGateway = 1u << 2,    // sanctioned entry into a gatewayed net/domain
  kLinkRight = 1u << 3,      // host appears to the right of the operator (%s@host)
  kLinkNetMember = 1u << 4,  // generated net→member edge ("you get off for free")
  kLinkInvented = 1u << 5,   // back link invented for an unreachable host
  kLinkTraced = 1u << 6,     // -t: report every relaxation over this link
};

// The default routing convention is UUCP: host!user, i.e. '!' with the host on the left.
inline constexpr char kDefaultOp = '!';

struct Link {
  Link* next = nullptr;
  Node* to = nullptr;
  Cost cost = 0;
  uint32_t flags = 0;
  char op = kDefaultOp;
  int32_t decl_file = -1;  // index into Graph::files(); -1 for generated links
  int32_t decl_line = 0;

  bool dead() const { return (flags & kLinkDead) != 0; }
  bool alias() const { return (flags & kLinkAlias) != 0; }
  bool gateway() const { return (flags & kLinkGateway) != 0; }
  bool right_syntax() const { return (flags & kLinkRight) != 0; }
  bool net_member() const { return (flags & kLinkNetMember) != 0; }
  bool invented() const { return (flags & kLinkInvented) != 0; }
  bool traced() const { return (flags & kLinkTraced) != 0; }
};

}  // namespace pathalias

#endif  // SRC_GRAPH_LINK_H_
