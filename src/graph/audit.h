// Static map auditing (paper §History and §Problems).
//
// "Because the data were often contradictory and error-filled, it was necessary to
// inspect and edit the data manually."  This module is that inspection, mechanized:
// it examines a parsed Graph (no mapping required) and reports the defect patterns the
// UUCP mapping project fought —
//   * host-name collisions: one node whose outgoing links are declared by several
//     different files ("we would be pleased if ... data either marked host name
//     collisions with private declarations or simply excluded them");
//   * one-way links (call-out-only hosts survive via back-link invention, but each one
//     is worth a look) and wildly asymmetric costs on link pairs;
//   * isolated hosts, hosts no link points at, domains nothing connects to;
//   * gatewayed networks without a single usable gateway;
//   * dead/deleted hosts that other sites still list as neighbors.
//
// The `mapcheck` tool wraps this for map maintainers; tests drive it directly.

#ifndef SRC_GRAPH_AUDIT_H_
#define SRC_GRAPH_AUDIT_H_

#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace pathalias {

enum class AuditSeverity {
  kInfo,        // worth knowing
  kSuspicious,  // probably fine, possibly a data error
  kProblem,     // almost certainly wrong
};

std::string_view ToString(AuditSeverity severity);

struct AuditFinding {
  AuditSeverity severity = AuditSeverity::kInfo;
  std::string category;  // stable machine-readable tag, e.g. "name-collision"
  std::string message;
};

struct AuditReport {
  std::vector<AuditFinding> findings;

  // Summary statistics.
  size_t hosts = 0;         // real hosts (placeholders excluded)
  size_t placeholders = 0;  // nets + domains
  size_t links = 0;
  size_t one_way_links = 0;
  size_t isolated_hosts = 0;
  size_t no_inbound_hosts = 0;
  double average_degree = 0.0;
  size_t max_degree = 0;
  // pathalint: allow(R1): audit-report field — human-readable diagnostics copied
  // out so the report outlives the graph (and its interner) it describes.
  std::string max_degree_host;

  size_t CountAtLeast(AuditSeverity severity) const;
  bool clean() const { return CountAtLeast(AuditSeverity::kProblem) == 0; }

  // Human-readable report: summary block, then findings grouped by severity.
  std::string ToString() const;
};

struct AuditOptions {
  // Flag pairs of opposite links whose costs differ by more than this factor.
  double cost_asymmetry_factor = 20.0;
  // Cap per-category findings so a rotten map still yields a readable report.
  size_t max_findings_per_category = 25;
};

AuditReport AuditGraph(const Graph& graph, const AuditOptions& options = AuditOptions());

}  // namespace pathalias

#endif  // SRC_GRAPH_AUDIT_H_
