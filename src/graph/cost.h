// The pathalias cost model (paper §Input).
//
// Costs are pragmatic, not physical: symbolic grades of connection quality, tuned until
// "the paths produced were reasonable" in the judgement of experienced users.  Note the
// deliberate distortion the paper calls out: DAILY is 10× HOURLY rather than 24×,
// because per-hop overhead dominates and paths must be kept short.
//
// Costs may be arbitrary arithmetic expressions mixing numbers and symbols, e.g.
// HOURLY*3 ("completed once every three hours") or DAILY/2.

#ifndef SRC_GRAPH_COST_H_
#define SRC_GRAPH_COST_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace pathalias {

using Cost = int64_t;

// The paper's "essentially infinite" penalty quantum.  Heuristic violations add this;
// routes that accumulate it still exist but lose to any clean route.  (Keeping it
// finite matters: a host reachable only through a gatewayed net must still be routed.)
inline constexpr Cost kInfinity = 30'000'000;

// Cost used for a link declared without one.  [R] The paper does not state a default;
// this sits between EVENING and DAILY/POLLED, i.e. "assume a mediocre link".
inline constexpr Cost kDefaultCost = 4'000;

// Sentinel for "no path found (yet)".  Far above any real sum but safe from overflow.
inline constexpr Cost kUnreached = INT64_MAX / 4;

struct CostSymbol {
  // pathalint: allow(R1): cost-keyword table (DAILY, HOURLY, ...) — views into
  // string literals, not host-name bytes; the interner never sees these.
  std::string_view name;
  Cost value;
};

// Table 1 of the paper, verbatim, plus DEAD [R] as a spelled-out kInfinity.
std::span<const CostSymbol> CostSymbols();

// Case-sensitive symbol lookup (the table is upper-case by convention).
std::optional<Cost> LookupCostSymbol(std::string_view name);

struct CostParse {
  std::optional<Cost> value;
  std::string error;  // set iff !value
};

// Evaluates a cost expression: integers, Table-1 symbols, + - * / and parentheses,
// with unary minus.  Division truncates toward zero (DAILY/2 == 2500).
CostParse EvalCostExpression(std::string_view text);

}  // namespace pathalias

#endif  // SRC_GRAPH_COST_H_
