// A small fixed thread pool with fork-join dispatch, sized once at construction.
//
// This is the execution substrate for the sharded batch engine (batch_engine.h): a
// batch is split into one job per shard, Run() hands the jobs to the pool, and the
// calling thread works alongside the workers instead of blocking — with W workers the
// pool runs W+1 jobs at once and a width-1 pool is simply the caller, serial.  Workers
// are started once and parked on a condition variable between batches, so steady-state
// dispatch costs two lock handoffs per batch, not a thread spawn per shard.
//
// Concurrency contract: Run() may not be called concurrently with itself (the engine
// serializes batches; one engine per serving thread).  Jobs must not call Run() on
// their own pool.  Job indices are claimed from an atomic counter, so callers may
// submit more jobs than the pool has lanes — the surplus queues naturally.

#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "src/support/annotated_mutex.h"
#include "src/support/thread_annotations.h"

namespace pathalias {
namespace exec {

class ThreadPool {
 public:
  // `width` is total parallelism including the caller: width-1 workers are spawned.
  // width < 1 is clamped to 1 (no workers; Run degenerates to a serial loop).
  explicit ThreadPool(int width);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int width() const { return width_; }

  // Runs job(0) … job(jobs-1) across the pool and returns when all have finished.
  // The caller participates, so the pool is never idle while the caller spins.
  void Run(int jobs, const std::function<void(int)>& job) EXCLUDES(mu_);

  // The width to use when the caller asked for "all cores".
  static int HardwareWidth();

 private:
  void WorkerLoop() EXCLUDES(mu_);
  // Claims and runs jobs until the current batch's indices are exhausted; returns the
  // number of jobs this thread completed.  Runs unlocked: `job` and `jobs` are the
  // caller's local copies of the batch, never the guarded members.
  int Drain(const std::function<void(int)>& job, int jobs) EXCLUDES(mu_);

  const int width_;
  support::Mutex mu_;
  support::CondVar work_cv_;  // batch posted (generation_ advanced) or stop
  support::CondVar done_cv_;  // all jobs of the current batch completed
  // Valid while a batch is in flight; workers copy it out under mu_ and call
  // through the copy unlocked (Run's rendezvous keeps the pointee alive).
  const std::function<void(int)>* job_ GUARDED_BY(mu_) = nullptr;
  int job_count_ GUARDED_BY(mu_) = 0;
  std::atomic<int> next_index_{0};  // job-index ticket counter, claimed unlocked
  int completed_ GUARDED_BY(mu_) = 0;  // jobs finished this batch
  int drained_ GUARDED_BY(mu_) = 0;    // workers that left Drain this batch
  uint64_t generation_ GUARDED_BY(mu_) = 0;  // advanced once per Run()
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written by the constructor only
};

}  // namespace exec
}  // namespace pathalias

#endif  // SRC_EXEC_THREAD_POOL_H_
