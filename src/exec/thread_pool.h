// A small fixed thread pool with fork-join dispatch, sized once at construction.
//
// This is the execution substrate for the sharded batch engine (batch_engine.h): a
// batch is split into one job per shard, Run() hands the jobs to the pool, and the
// calling thread works alongside the workers instead of blocking — with W workers the
// pool runs W+1 jobs at once and a width-1 pool is simply the caller, serial.  Workers
// are started once and parked on a condition variable between batches, so steady-state
// dispatch costs two lock handoffs per batch, not a thread spawn per shard.
//
// Concurrency contract: Run() may not be called concurrently with itself (the engine
// serializes batches; one engine per serving thread).  Jobs must not call Run() on
// their own pool.  Job indices are claimed from an atomic counter, so callers may
// submit more jobs than the pool has lanes — the surplus queues naturally.

#ifndef SRC_EXEC_THREAD_POOL_H_
#define SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pathalias {
namespace exec {

class ThreadPool {
 public:
  // `width` is total parallelism including the caller: width-1 workers are spawned.
  // width < 1 is clamped to 1 (no workers; Run degenerates to a serial loop).
  explicit ThreadPool(int width);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int width() const { return width_; }

  // Runs job(0) … job(jobs-1) across the pool and returns when all have finished.
  // The caller participates, so the pool is never idle while the caller spins.
  void Run(int jobs, const std::function<void(int)>& job);

  // The width to use when the caller asked for "all cores".
  static int HardwareWidth();

 private:
  void WorkerLoop();
  // Claims and runs jobs until the current batch's indices are exhausted; returns the
  // number of jobs this thread completed.
  int Drain(const std::function<void(int)>& job, int jobs);

  const int width_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // batch posted (generation_ advanced) or stop
  std::condition_variable done_cv_;   // all jobs of the current batch completed
  const std::function<void(int)>* job_ = nullptr;  // valid while a batch is in flight
  int job_count_ = 0;
  std::atomic<int> next_index_{0};
  int completed_ = 0;        // jobs finished this batch; guarded by mu_
  int drained_ = 0;          // workers that left Drain this batch; guarded by mu_
  uint64_t generation_ = 0;  // guarded by mu_; advanced once per Run()
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace exec
}  // namespace pathalias

#endif  // SRC_EXEC_THREAD_POOL_H_
