// A fixed-size cache of full batch-lookup results keyed by interned destination
// NameId, with set-associative CLOCK replacement.
//
// The POI-alias observation (He et al., 2021; see PAPERS.md) holds for mail routing
// too: resolution traffic is dominated by a small hot set of repeated destinations.
// For a destination the interner knows, the entire walk that follows the initial hash
// — exact-route probe, then the precomputed domain-suffix chain — is a pure function
// of its NameId, so one cache probe replaces the whole thing, negative outcomes
// included (a cached miss is as final as a cached route).  Strangers have no NameId
// and are never cached; their dotted-suffix probing runs every time.
//
// Shape: `entries` slots organized as power-of-two sets of kWays ways.  Lookup probes
// one set (at most kWays key compares, one cache line of keys); replacement is CLOCK
// within the set — a hit arms the way's reference bit, the rotating hand evicts the
// first unarmed way and disarms the armed ones it passes.  No linked lists, no
// tombstones, no allocation after construction.
//
// Concurrency: single-owner reads and writes, concurrent invalidation.  A
// ResultCache belongs to exactly one shard of one batch engine, and a shard runs on
// one thread at a time — sharding by destination is what makes this single-owner
// design safe AND maximizes hits (a destination always lands in the same shard, so
// its cached result is always in the cache that is asked).  The ONE cross-thread
// entry point is Invalidate(): an updater may revoke dirty keys while the owner
// thread serves a batch.  Keys are therefore atomics; values never are — the
// invalidator writes only keys, so values stay single-owner.  The race semantics
// are best-effort revocation: a lookup that overlaps an invalidation may return
// the pre-update result one last time (the query was in flight when the routes
// changed), and a Put may land a result computed BEFORE the invalidation just
// after it, where it survives until the next invalidation or eviction.  A hard
// cut needs the invalidation to happen with no batch in flight (the engine's
// AdoptRoutes flow).  What cannot happen is a key matching one entry while the
// value bytes belong to another.
//
// Lifetime: cached BatchLookups hold views into the route source's storage (interner
// bytes, route bytes — possibly an mmap'd .pari image).  The cache must not outlive
// the route source; when the source is replaced see BasicBatchEngine::AdoptRoutes
// (targeted) or call Clear() (flush).

#ifndef SRC_EXEC_RESULT_CACHE_H_
#define SRC_EXEC_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "src/route_db/resolver.h"
#include "src/support/interner.h"

namespace pathalias {
namespace exec {

class ResultCache {
 private:
  // Defined up front so the public Handle below can point at one.
  struct Set {
    std::atomic<NameId> keys[4] = {kNoName, kNoName, kNoName, kNoName};
    uint8_t armed[4] = {0, 0, 0, 0};  // CLOCK reference bits (owner-only)
    uint8_t hand = 0;
    BatchLookup values[4];  // owner-only: the invalidator never touches values
  };

 public:
  static constexpr size_t kWays = 4;
  static_assert(sizeof(Set::keys) / sizeof(Set::keys[0]) == kWays);

  struct Stats {
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  // A resolved set position: Begin() hashes the key once and prefetches the
  // set's line, then Get and Put reuse the handle instead of recomputing the
  // tag — the recompute was a measurable slice of the hit path, and issuing
  // Begin a query early hides the set's cache miss behind the previous
  // query's walk.
  class Handle {
   public:
    Handle() = default;

   private:
    friend class ResultCache;
    explicit Handle(Set* set) : set_(set) {}
    Set* set_ = nullptr;
  };

  // `entries` is the requested capacity; it is rounded up to a whole power-of-two
  // number of sets (so the real capacity is the next multiple of kWays whose set
  // count is a power of two).  0 disables the cache entirely.
  explicit ResultCache(size_t entries) {
    if (entries == 0) {
      return;
    }
    size_t sets = 1;
    while (sets * kWays < entries) {
      sets *= 2;
    }
    sets_ = std::vector<Set>(sets);  // atomics: construct in place, never move
    set_mask_ = sets - 1;
  }

  bool enabled() const { return !sets_.empty(); }
  size_t capacity() const { return sets_.size() * kWays; }
  const Stats& stats() const { return stats_; }

  // Locates `key`'s set once and prefetches its line.  Issue as early as the key
  // is known — ideally a query ahead — then hand the handle to Get and Put.
  Handle Begin(NameId key) {
    Set* set = &sets_[SetOf(key)];
    __builtin_prefetch(set);
    return Handle(set);
  }

  // True and fills `out` if `key` is cached; arms the way's CLOCK reference bit.
  bool Get(NameId key, BatchLookup* out) { return Get(Begin(key), key, out); }

  // Handle form: no tag recompute — `handle` must come from Begin(key).
  bool Get(Handle handle, NameId key, BatchLookup* out) {
    ++stats_.lookups;
    Set& set = *handle.set_;
    for (size_t way = 0; way < kWays; ++way) {
      // memory_order: relaxed — keys are revocation flags, not publication: the
      // value bytes a match licenses us to read are owner-written (this thread),
      // so no acquire is needed to see them; a racing invalidation is allowed
      // to miss a lookup already past this check (documented best-effort).
      if (set.keys[way].load(std::memory_order_relaxed) == key) {
        set.armed[way] = 1;
        // Safe even if an invalidation lands between the key check and this copy:
        // only the owner thread (us) ever writes values, so these are the bytes
        // that were current when the key matched.
        *out = set.values[way];
        ++stats_.hits;
        return true;
      }
    }
    return false;
  }

  // Inserts (or refreshes) `key`.  The caller has just computed `value` with
  // BasicResolver::LookupInterned, so `value` is THE result for `key` — a duplicate
  // insert simply overwrites with identical bytes.
  void Put(NameId key, const BatchLookup& value) { Put(Begin(key), key, value); }

  // Handle form: no tag recompute — `handle` must come from Begin(key).
  void Put(Handle handle, NameId key, const BatchLookup& value) {
    Set& set = *handle.set_;
    size_t victim = kWays;  // first empty or matching way wins without the hand
    for (size_t way = 0; way < kWays; ++way) {
      // memory_order: relaxed — owner-thread read of its own slots; the only
      // concurrent writer (an invalidator) can only flip keys to kNoName, and
      // either side of that race picks a valid victim.
      NameId current = set.keys[way].load(std::memory_order_relaxed);
      if (current == key || current == kNoName) {
        victim = way;
        break;
      }
    }
    if (victim == kWays) {
      // CLOCK: march the hand, disarming armed ways, until an unarmed way turns up.
      // Bounded: after at most kWays steps every way is disarmed.
      for (;;) {
        size_t way = set.hand;
        set.hand = (set.hand + 1) % kWays;
        if (set.armed[way] == 0) {
          victim = way;
          break;
        }
        set.armed[way] = 0;
      }
      ++stats_.evictions;
    }
    // Value before key: a concurrent invalidator matching the OLD key must never
    // expose the new value under it, and publishing the new key only after the
    // bytes are in place keeps key↔value pairing coherent for our own next Get.
    // memory_order: relaxed — no cross-thread publication happens through these
    // stores: values are only ever read by this owner thread (program order
    // suffices), and the invalidator reads keys alone, never values.
    set.keys[victim].store(kNoName, std::memory_order_relaxed);
    set.values[victim] = value;
    set.keys[victim].store(key, std::memory_order_relaxed);
    set.armed[victim] = 1;
    ++stats_.insertions;
  }

  // Revokes `keys` (sorted or not, duplicates fine).  The only entry point that may
  // run concurrently with the owner thread's Get/Put: it writes nothing but key
  // slots, flipping matches to kNoName.  Lookups already past their key check keep
  // the stale result (documented in-flight semantics); later lookups miss and
  // recompute against the fresh routes.
  void Invalidate(std::span<const NameId> keys) {
    if (sets_.empty()) {
      return;
    }
    for (NameId key : keys) {
      Set& set = sets_[SetOf(key)];
      for (size_t way = 0; way < kWays; ++way) {
        // memory_order: relaxed — best-effort revocation by contract: the
        // invalidator touches keys only, the hard cut (no batch in flight) is
        // provided by AdoptRoutes' sequencing, not by these operations.
        if (set.keys[way].load(std::memory_order_relaxed) == key) {
          set.keys[way].store(kNoName, std::memory_order_relaxed);
        }
      }
    }
  }

  // Full-scan form of Invalidate: revokes every entry whose KEY the predicate
  // condemns.  Same concurrency contract as Invalidate (keys only, values never
  // read), so an updater thread may run it mid-batch best-effort.  This is what a
  // route update actually needs: a cached result for destination `id` depends on
  // id's whole domain-suffix chain, not just on id — the predicate gets the key
  // and decides with the interner's chain in hand (see AdoptRoutes).
  template <typename Predicate>
  void InvalidateKeysWhere(Predicate&& condemned) {
    for (Set& set : sets_) {
      for (size_t way = 0; way < kWays; ++way) {
        // memory_order: relaxed — same best-effort revocation contract as
        // Invalidate: keys only, hard cut supplied by the caller's sequencing.
        NameId key = set.keys[way].load(std::memory_order_relaxed);
        if (key != kNoName && condemned(key)) {
          set.keys[way].store(kNoName, std::memory_order_relaxed);
        }
      }
    }
  }

  // OWNER-THREAD-ONLY (no batch in flight): visits every live entry with mutable
  // access to its value; a false return revokes the entry.  This is the adoption
  // hook — after a route-source swap the engine re-homes each surviving value's
  // views onto the fresh source's storage so nothing in the cache references the
  // old mapping, which is what lets the old mapping actually be unmapped once
  // in-flight batches drain (AdoptRoutes + batches_completed()).
  template <typename Visitor>
  void VisitEntries(Visitor&& visit) {
    for (Set& set : sets_) {
      for (size_t way = 0; way < kWays; ++way) {
        // memory_order: relaxed — owner-thread-only entry point (contract
        // above): there is no concurrent access at all during a visit.
        NameId key = set.keys[way].load(std::memory_order_relaxed);
        if (key == kNoName) {
          continue;
        }
        if (!visit(key, &set.values[way])) {
          // memory_order: relaxed — same owner-thread-only contract as the
          // load above; revocation needs no ordering when nothing races.
          set.keys[way].store(kNoName, std::memory_order_relaxed);
        }
      }
    }
  }

  void Clear() {
    for (Set& set : sets_) {
      for (size_t way = 0; way < kWays; ++way) {
        // memory_order: relaxed — owner-thread flush between batches; nothing
        // concurrent reads these slots while Clear runs.
        set.keys[way].store(kNoName, std::memory_order_relaxed);
        set.armed[way] = 0;
      }
      set.hand = 0;
    }
  }

 private:
  size_t SetOf(NameId key) const {
    // Fibonacci scramble: NameIds are dense and small, so without mixing every hot id
    // would land in the first few sets.
    return (static_cast<uint64_t>(key) * 0x9E3779B97F4A7C15ull >> 32) & set_mask_;
  }

  std::vector<Set> sets_;
  size_t set_mask_ = 0;
  Stats stats_;
};

}  // namespace exec
}  // namespace pathalias

#endif  // SRC_EXEC_RESULT_CACHE_H_
