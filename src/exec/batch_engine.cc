#include "src/exec/batch_engine.h"

#include <algorithm>

#include "src/image/frozen_route_set.h"
#include "src/route_db/resolver.h"

namespace pathalias {
namespace exec {

template <typename RouteSource>
BasicBatchEngine<RouteSource>::BasicBatchEngine(const RouteSource* routes,
                                                BatchEngineOptions options)
    : routes_(routes),
      options_(options),
      resolver_(routes, options.resolve),
      shards_(options.threads == 0 ? ThreadPool::HardwareWidth()
                                   : std::max(1, options.threads)),
      fold_case_(routes->names().fold_case()) {
  if (shards_ > 1) {
    pool_ = std::make_unique<ThreadPool>(shards_);
  }
  if (options_.cache_entries > 0) {
    caches_.reserve(static_cast<size_t>(shards_));
    for (int shard = 0; shard < shards_; ++shard) {
      caches_.emplace_back(options_.cache_entries);
    }
  }
  shard_indices_.resize(static_cast<size_t>(shards_));
  shard_resolved_.resize(static_cast<size_t>(shards_));
}

template <typename RouteSource>
BasicBatchEngine<RouteSource>::~BasicBatchEngine() = default;

template <typename RouteSource>
uint32_t BasicBatchEngine<RouteSource>::ShardOf(std::string_view host) const {
  // FNV-1a, folded to match the interner's normalization so "Duke" and "duke" shard
  // together exactly when they intern together.
  uint32_t hash = 2166136261u;
  if (fold_case_) {
    for (char c : host) {
      hash = (hash ^ static_cast<unsigned char>(NameInterner::FoldChar(c))) * 16777619u;
    }
  } else {
    for (unsigned char c : host) {
      hash = (hash ^ c) * 16777619u;
    }
  }
  // Fibonacci mix before the modulo: FNV's low bits are weak for short keys.
  return static_cast<uint32_t>((static_cast<uint64_t>(hash) * 0x9E3779B97F4A7C15ull) >> 33) %
         static_cast<uint32_t>(shards_);
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::ResolveOneInto(std::string_view host,
                                                   ResultCache* cache,
                                                   BatchLookup* out) const {
  NameId id = routes_->names().Find(host);
  if (id == kNoName) {
    *out = resolver_.LookupStranger(host);
    return;
  }
  if (cache == nullptr) {
    *out = resolver_.LookupInterned(id);
    return;
  }
  if (cache->Get(id, out)) {
    return;  // the stored result IS LookupInterned(id), negative outcomes included
  }
  *out = resolver_.LookupInterned(id);
  cache->Put(id, *out);
}

template <typename RouteSource>
size_t BasicBatchEngine<RouteSource>::ResolveBatch(std::span<const std::string_view> hosts,
                                                   std::span<BatchLookup> results) {
  size_t count = std::min(hosts.size(), results.size());
  stats_.queries += count;
  if (shards_ == 1 && caches_.empty()) {
    // Nothing to partition and nothing to memoize: the serial resolver IS this path.
    size_t resolved = resolver_.ResolveBatch(hosts.first(count), results.first(count));
    stats_.resolved += resolved;
    return resolved;
  }

  if (shards_ == 1) {
    // One shard with the cache on: no partition pass, just the cached walk in order.
    ResultCache* cache = &caches_.front();
    size_t resolved = 0;
    for (size_t i = 0; i < count; ++i) {
      ResolveOneInto(hosts[i], cache, &results[i]);
      if (results[i].route.ok()) {
        ++resolved;
      }
    }
    stats_.resolved += resolved;
    stats_.cache_lookups = cache->stats().lookups;
    stats_.cache_hits = cache->stats().hits;
    return resolved;
  }

  if (caches_.empty()) {
    // Cache off: destination affinity buys nothing, so skip the hash-partition pass
    // entirely — balanced contiguous ranges resolve the same slots to the same bytes
    // with sequential writeback instead of a scatter.
    auto run_range = [&](int shard) {
      size_t lo = count * static_cast<size_t>(shard) / static_cast<size_t>(shards_);
      size_t hi = count * (static_cast<size_t>(shard) + 1) / static_cast<size_t>(shards_);
      size_t resolved = 0;
      for (size_t i = lo; i < hi; ++i) {
        ResolveOneInto(hosts[i], nullptr, &results[i]);
        if (results[i].route.ok()) {
          ++resolved;
        }
      }
      shard_resolved_[static_cast<size_t>(shard)] = resolved;
    };
    pool_->Run(shards_, run_range);  // shards_ > 1 here, so the pool exists
  } else {
    // Cache on: partition by destination so each shard's cache has a single owner
    // and always gets asked the destinations it cached.
    for (std::vector<uint32_t>& indices : shard_indices_) {
      indices.clear();
    }
    for (size_t i = 0; i < count; ++i) {
      shard_indices_[ShardOf(hosts[i])].push_back(static_cast<uint32_t>(i));
    }
    auto run_shard = [&](int shard) {
      ResultCache* cache = &caches_[static_cast<size_t>(shard)];
      size_t resolved = 0;
      for (uint32_t index : shard_indices_[static_cast<size_t>(shard)]) {
        ResolveOneInto(hosts[index], cache, &results[index]);
        if (results[index].route.ok()) {
          ++resolved;
        }
      }
      shard_resolved_[static_cast<size_t>(shard)] = resolved;
    };
    pool_->Run(shards_, run_shard);
  }

  size_t resolved = 0;
  for (size_t shard = 0; shard < static_cast<size_t>(shards_); ++shard) {
    resolved += shard_resolved_[shard];
  }
  stats_.resolved += resolved;
  uint64_t lookups = 0;
  uint64_t hits = 0;
  for (const ResultCache& cache : caches_) {
    lookups += cache.stats().lookups;
    hits += cache.stats().hits;
  }
  stats_.cache_lookups = lookups;  // ResultCache stats are already cumulative
  stats_.cache_hits = hits;
  return resolved;
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::InvalidateRoutes(std::span<const NameId> dirty) {
  for (ResultCache& cache : caches_) {
    cache.Invalidate(dirty);
  }
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::AdoptRoutes(const RouteSource* fresh,
                                                std::span<const NameId> dirty) {
  routes_ = fresh;
  resolver_ = BasicResolver<RouteSource>(fresh, options_.resolve);
  fold_case_ = fresh->names().fold_case();
  InvalidateRoutes(dirty);
}

template class BasicBatchEngine<RouteSet>;
template class BasicBatchEngine<FrozenRouteSet>;

}  // namespace exec
}  // namespace pathalias
