#include "src/exec/batch_engine.h"

#include <algorithm>

#include "src/image/frozen_route_set.h"
#include "src/route_db/resolver.h"

namespace pathalias {
namespace exec {

template <typename RouteSource>
BasicBatchEngine<RouteSource>::BasicBatchEngine(const RouteSource* routes,
                                                BatchEngineOptions options)
    : routes_(routes),
      options_(options),
      resolver_(routes, options.resolve),
      shards_(options.threads == 0 ? ThreadPool::HardwareWidth()
                                   : std::max(1, options.threads)),
      fold_case_(routes->names().fold_case()) {
  if (shards_ > 1) {
    pool_ = std::make_unique<ThreadPool>(shards_);
  }
  if (options_.cache_entries > 0) {
    caches_.reserve(static_cast<size_t>(shards_));
    for (int shard = 0; shard < shards_; ++shard) {
      caches_.emplace_back(options_.cache_entries);
    }
  }
  shard_indices_.resize(static_cast<size_t>(shards_));
  shard_resolved_.resize(static_cast<size_t>(shards_));
}

template <typename RouteSource>
BasicBatchEngine<RouteSource>::~BasicBatchEngine() = default;

template <typename RouteSource>
uint32_t BasicBatchEngine<RouteSource>::ShardOf(std::string_view host) const {
  // FNV-1a, folded to match the interner's normalization so "Duke" and "duke" shard
  // together exactly when they intern together.
  uint32_t hash = 2166136261u;
  if (fold_case_) {
    for (char c : host) {
      hash = (hash ^ static_cast<unsigned char>(NameInterner::FoldChar(c))) * 16777619u;
    }
  } else {
    for (unsigned char c : host) {
      hash = (hash ^ c) * 16777619u;
    }
  }
  // Fibonacci mix before the modulo: FNV's low bits are weak for short keys.
  return static_cast<uint32_t>((static_cast<uint64_t>(hash) * 0x9E3779B97F4A7C15ull) >> 33) %
         static_cast<uint32_t>(shards_);
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::ResolveOneInto(std::string_view host,
                                                   ResultCache* cache,
                                                   BatchLookup* out) const {
  NameId id = routes_->names().Find(host);
  if (id == kNoName) {
    *out = resolver_.LookupStranger(host);
    return;
  }
  if (cache == nullptr) {
    *out = resolver_.LookupInterned(id);
    return;
  }
  if (cache->Get(id, out)) {
    return;  // the stored result IS LookupInterned(id), negative outcomes included
  }
  *out = resolver_.LookupInterned(id);
  cache->Put(id, *out);
}

template <typename RouteSource>
template <typename IndexFn>
size_t BasicBatchEngine<RouteSource>::ResolveCachedRun(std::span<const std::string_view> hosts,
                                                       std::span<BatchLookup> results,
                                                       ResultCache* cache, size_t n,
                                                       IndexFn index_of) const {
  size_t resolved = 0;
  // Depth-2 pipeline: `stage` runs one query ahead of retirement, so a hit's
  // cache-set line has the whole previous query's walk to arrive.  Find is const
  // and effect-free, so running it early changes nothing observable.
  NameId ahead_id = kNoName;
  ResultCache::Handle ahead_handle;
  auto stage = [&](size_t pos) {
    ahead_id = routes_->names().Find(hosts[index_of(pos)]);
    if (ahead_id != kNoName) {
      ahead_handle = cache->Begin(ahead_id);
    }
  };
  if (n > 0) {
    stage(0);
  }
  for (size_t pos = 0; pos < n; ++pos) {
    size_t index = index_of(pos);
    NameId id = ahead_id;
    ResultCache::Handle handle = ahead_handle;
    if (pos + 1 < n) {
      stage(pos + 1);
    }
    BatchLookup* out = &results[index];
    if (id == kNoName) {
      *out = resolver_.LookupStranger(hosts[index]);
    } else if (!cache->Get(handle, id, out)) {
      *out = resolver_.LookupInterned(id);
      cache->Put(handle, id, *out);
    }
    if (out->route.ok()) {
      ++resolved;
    }
  }
  return resolved;
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::MaybeDropCaches() {
  if (caches_.empty() || options_.cache_min_hit_rate <= 0.0) {
    return;
  }
  if (stats_.cache_lookups < kCacheProbationLookups) {
    return;  // not enough evidence yet
  }
  if (stats_.hit_rate() >= options_.cache_min_hit_rate) {
    return;
  }
  // The workload has no hot set worth memoizing: every probe is overhead on top
  // of a walk the pipelined path runs faster anyway.  Dropping the caches also
  // retires the hash-partition pass — later batches take the contiguous-range
  // path.  Either path produces byte-identical results, so this only changes
  // throughput, never output.
  caches_.clear();
  stats_.caches_dropped = true;
}

template <typename RouteSource>
size_t BasicBatchEngine<RouteSource>::ResolveBatch(std::span<const std::string_view> hosts,
                                                   std::span<BatchLookup> results) {
  // memory_order: acq_rel — the completed_ increment must release every read
  // this batch performed on the (possibly old) route source, so that a retirer
  // who acquires batches_completed() >= mark knows the mapping is unreferenced
  // and may unmap it; started_ matches so the counter pair itself is ordered.
  batches_started_.fetch_add(1, std::memory_order_acq_rel);
  size_t resolved = ResolveBatchInner(hosts, results);
  // memory_order: acq_rel — see batches_started_ above (release half is the
  // load-bearing part; see also batches_completed() in batch_engine.h).
  batches_completed_.fetch_add(1, std::memory_order_acq_rel);
  return resolved;
}

template <typename RouteSource>
size_t BasicBatchEngine<RouteSource>::ResolveBatchInner(
    std::span<const std::string_view> hosts, std::span<BatchLookup> results) {
  size_t count = std::min(hosts.size(), results.size());
  stats_.queries += count;
  if (shards_ == 1 && caches_.empty()) {
    // Nothing to partition and nothing to memoize: the pipelined resolver IS this
    // path — count lookups in one span, window-K in flight.
    size_t resolved = resolver_.ResolveBatchPipelined(hosts.first(count),
                                                      results.first(count), PipelineWindow());
    stats_.resolved += resolved;
    return resolved;
  }

  if (shards_ == 1) {
    // One shard with the cache on: no partition pass, just the cached walk in order.
    ResultCache* cache = &caches_.front();
    size_t resolved =
        ResolveCachedRun(hosts, results, cache, count, [](size_t pos) { return pos; });
    stats_.resolved += resolved;
    stats_.cache_lookups = cache->stats().lookups;
    stats_.cache_hits = cache->stats().hits;
    MaybeDropCaches();
    return resolved;
  }

  if (caches_.empty()) {
    // Cache off: destination affinity buys nothing, so skip the hash-partition pass
    // entirely — balanced contiguous ranges resolve the same slots to the same bytes
    // with sequential writeback instead of a scatter.  Each range runs the resolver's
    // software pipeline over its own subspan.
    auto run_range = [&](int shard) {
      size_t lo = count * static_cast<size_t>(shard) / static_cast<size_t>(shards_);
      size_t hi = count * (static_cast<size_t>(shard) + 1) / static_cast<size_t>(shards_);
      shard_resolved_[static_cast<size_t>(shard)] = resolver_.ResolveBatchPipelined(
          hosts.subspan(lo, hi - lo), results.subspan(lo, hi - lo), PipelineWindow());
    };
    pool_->Run(shards_, run_range);  // shards_ > 1 here, so the pool exists
  } else {
    // Cache on: partition by destination so each shard's cache has a single owner
    // and always gets asked the destinations it cached.
    for (std::vector<uint32_t>& indices : shard_indices_) {
      indices.clear();
    }
    for (size_t i = 0; i < count; ++i) {
      shard_indices_[ShardOf(hosts[i])].push_back(static_cast<uint32_t>(i));
    }
    auto run_shard = [&](int shard) {
      const std::vector<uint32_t>& indices = shard_indices_[static_cast<size_t>(shard)];
      shard_resolved_[static_cast<size_t>(shard)] =
          ResolveCachedRun(hosts, results, &caches_[static_cast<size_t>(shard)],
                           indices.size(), [&indices](size_t pos) { return indices[pos]; });
    };
    pool_->Run(shards_, run_shard);
  }

  size_t resolved = 0;
  for (size_t shard = 0; shard < static_cast<size_t>(shards_); ++shard) {
    resolved += shard_resolved_[shard];
  }
  stats_.resolved += resolved;
  uint64_t lookups = 0;
  uint64_t hits = 0;
  for (const ResultCache& cache : caches_) {
    lookups += cache.stats().lookups;
    hits += cache.stats().hits;
  }
  stats_.cache_lookups = lookups;  // ResultCache stats are already cumulative
  stats_.cache_hits = hits;
  MaybeDropCaches();
  return resolved;
}

template <typename RouteSource>
bool BasicBatchEngine<RouteSource>::ChainTouchesDirty(
    NameId id, std::span<const NameId> sorted_dirty) const {
  // A cached result for `id` is LookupInterned(id): id's own route, else the
  // first routed id on its precomputed suffix chain.  Any dirty id anywhere on
  // the chain can change that outcome (via-route rewritten, a closer suffix
  // gaining a route, the exact route disappearing), so the whole chain decides.
  for (NameId s = id; s != kNoName; s = routes_->names().Suffix(s)) {
    if (std::binary_search(sorted_dirty.begin(), sorted_dirty.end(), s)) {
      return true;
    }
  }
  return false;
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::InvalidateRoutes(std::span<const NameId> dirty) {
  if (caches_.empty() || dirty.empty()) {
    return;
  }
  std::vector<NameId> sorted(dirty.begin(), dirty.end());
  std::sort(sorted.begin(), sorted.end());
  for (ResultCache& cache : caches_) {
    // Full key scan (capacity × chain walk): dirty sets are small and updates are
    // rare next to lookups; correctness of the suffix closure is worth the scan.
    cache.InvalidateKeysWhere([&](NameId key) { return ChainTouchesDirty(key, sorted); });
  }
}

template <typename RouteSource>
void BasicBatchEngine<RouteSource>::AdoptRoutes(const RouteSource* fresh,
                                                std::span<const NameId> dirty) {
  routes_ = fresh;
  resolver_ = BasicResolver<RouteSource>(fresh, options_.resolve);
  fold_case_ = fresh->names().fold_case();
  std::vector<NameId> sorted(dirty.begin(), dirty.end());
  std::sort(sorted.begin(), sorted.end());
  const uint32_t fresh_names = static_cast<uint32_t>(fresh->names().size());
  for (ResultCache& cache : caches_) {
    cache.VisitEntries([&](NameId key, BatchLookup* value) {
      // Revoke everything the dirty set's suffix closure condemns (the chain is
      // walked in the FRESH interner: ids are append-only, so a newly interned
      // suffix that just gained a route is on the fresh chain and condemns the
      // stale cached miss below it).
      if (key >= fresh_names || ChainTouchesDirty(key, sorted)) {
        return false;
      }
      if (!value->route.ok()) {
        return true;  // a cached miss views nothing; nothing to re-home
      }
      if (value->via >= fresh_names) {
        return false;  // defensive: a via the fresh source does not know
      }
      RouteView fresh_view = routes_->FindRouteView(value->via);
      if (!fresh_view.ok()) {
        return false;  // defensive: via lost its route without being marked dirty
      }
      // The surviving entry's chain is clean, so the fresh bytes are identical —
      // re-pointing the views is what releases the old mapping.
      value->route = fresh_view;
      return true;
    });
  }
}

template class BasicBatchEngine<RouteSet>;
template class BasicBatchEngine<FrozenRouteSet>;

}  // namespace exec
}  // namespace pathalias
