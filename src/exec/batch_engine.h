// Sharded parallel batch resolution over any route source.
//
// BasicBatchEngine is the serving-path front end to BasicResolver::ResolveBatch: it
// partitions a batch of destination queries into per-thread shards, resolves every
// shard in parallel on a small fixed ThreadPool, memoizes interned-destination
// results in a per-shard ResultCache, and writes each result back to its original
// position — so the output is byte-identical to the serial resolver, at any thread
// count, with the cache on or off.
//
// Sharding policy: with caching on, shard = mix(hash of the case-normalized query
// bytes) % shards.  Hashing the bytes rather than the NameId keeps the partition
// pass allocation-free and probe-free (no interner lookup until the owning shard
// runs), while still sending every occurrence of a destination to the same shard —
// which is what makes the per-shard caches both coherent without locks (single
// owner) and effective (a hot destination's result is always in the cache that is
// asked).  With caching off, affinity buys nothing, so shards are balanced
// contiguous index ranges: no partition pass, sequential writeback, same bytes.
//
// Determinism: results[i] depends only on hosts[i] and the route source.  Shards
// write disjoint result slots, misses included, so the merge-back is the partition
// itself and the resolved/suffix-match counts equal the serial path's exactly.
//
// Concurrency contract: the route source is the shared object — any number of
// engines (or raw resolvers) may read one RouteSet or one FrozenRouteSet mapping
// concurrently.  One engine instance, however, serves one calling thread at a time:
// ResolveBatch reuses the engine's partition and cache state.
//
// The same code serves both backends; like BasicResolver, the template is explicitly
// instantiated in batch_engine.cc for RouteSet and FrozenRouteSet.

#ifndef SRC_EXEC_BATCH_ENGINE_H_
#define SRC_EXEC_BATCH_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/exec/result_cache.h"
#include "src/exec/thread_pool.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace pathalias {
namespace exec {

struct BatchEngineOptions {
  int threads = 1;           // shard/thread count; 0 means "all hardware threads"
  size_t cache_entries = 0;  // per-shard result cache capacity; 0 disables caching
  ResolveOptions resolve;    // forwarded to the underlying resolver

  // Window for the resolver's software-pipelined loop on the uncached paths
  // (0 = BasicResolver's default).  The cached paths run their own depth-2
  // pipeline (lookahead Find + cache-set prefetch) regardless.
  size_t pipeline_window = 0;

  // Cache self-eviction: when > 0 and the engine's measured hit rate is below
  // this after a probation of lookups, the caches are dropped for the life of
  // the engine and batches take the (faster-when-cold) pipelined path.  Results
  // are byte-identical either way; only throughput changes.  See README
  // "Result caching" for when the cache loses (it costs ~6% at hot_permille=500
  // — workloads without a hot set should set cache_entries = 0 or this knob).
  double cache_min_hit_rate = 0.0;
};

// Cumulative counters across every batch the engine has served.
struct BatchEngineStats {
  uint64_t queries = 0;
  uint64_t resolved = 0;
  uint64_t cache_lookups = 0;  // interned queries that consulted a shard cache
  uint64_t cache_hits = 0;     // ... and were answered from it
  bool caches_dropped = false;  // cache_min_hit_rate fired: caching is off for good

  double hit_rate() const {
    return cache_lookups == 0 ? 0.0
                              : static_cast<double>(cache_hits) /
                                    static_cast<double>(cache_lookups);
  }
};

template <typename RouteSource>
class BasicBatchEngine {
 public:
  BasicBatchEngine(const RouteSource* routes, BatchEngineOptions options);
  ~BasicBatchEngine();

  BasicBatchEngine(const BasicBatchEngine&) = delete;
  BasicBatchEngine& operator=(const BasicBatchEngine&) = delete;

  // Same contract as BasicResolver::ResolveBatch — resolves hosts[i] into results[i]
  // over the common prefix of the two spans and returns the number that matched —
  // with the same results, bit for bit.  Caches persist across calls: a server loop
  // keeps its hot set warm from one batch to the next.
  size_t ResolveBatch(std::span<const std::string_view> hosts,
                      std::span<BatchLookup> results);

  // Revokes cached results invalidated by a change to the `dirty` route keys,
  // across every shard.  Because a cached result for destination `d` depends on
  // d's whole domain-suffix chain (LookupInterned walks it), revocation condemns
  // every cached KEY whose chain intersects `dirty` — not just the dirty ids
  // themselves — so a suffix-match result whose via-route changed, and a cached
  // miss whose domain just gained a route, both come back fresh.  Safe
  // (data-race-free; TSan-enforced) to call from another thread WHILE a batch is
  // in flight, but then only BEST-EFFORT: a query already past its cache probe
  // may serve the pre-update result one last time, and a miss being resolved
  // concurrently may Put a pre-update result back AFTER the revocation, where it
  // stays until something invalidates or evicts it again.  A hard cut therefore
  // requires invalidating with no batch in flight — which is exactly what
  // AdoptRoutes (the intended update entry point) does after swapping sources.
  // No-op when caching is off.
  void InvalidateRoutes(std::span<const NameId> dirty);

  // The sound update flow: switches the engine to `fresh` routes, revokes every
  // cached entry whose suffix chain intersects the `dirty` ids
  // (MapBuilder::dirty_route_ids() after a Refreeze), and RE-HOMES every surviving
  // entry's views onto the fresh source's storage (identical bytes — the entry
  // survived precisely because nothing on its chain changed).  After this returns
  // the engine holds NO references to the old source: the caller may retire (and
  // unmap) it as soon as every batch that started before the swap has drained —
  // poll batches_completed() against a batches_started() mark taken at swap time
  // (src/net's RolloverController does exactly this).  Requirements: call between
  // batches on the ResolveBatch caller thread (what makes the revocation a hard
  // cut), and fresh must share the old source's NameId assignment for surviving
  // names (a RouteSet maintained by ApplyDelta, or an image refrozen from it,
  // does — ids are append-only).  NOTE: mutating a live RouteSet the engine is
  // reading (ApplyDelta in place) is NOT a supported update path — its vectors
  // reallocate under the reader; serve from frozen images (or a second RouteSet
  // instance) and swap here.
  void AdoptRoutes(const RouteSource* fresh, std::span<const NameId> dirty);

  // Drain-then-retire instrumentation: monotonic counts of ResolveBatch calls
  // entered and returned.  started is incremented before any work, completed
  // after all of it (release; read with acquire), so once
  // batches_completed() >= a mark taken from batches_started(), every batch the
  // mark covers has fully drained and resources those batches could have read —
  // an old mapping after AdoptRoutes — are retirable.  Readable from any thread.
  uint64_t batches_started() const {
    // memory_order: acquire — pairs with the acq_rel increment in ResolveBatch
    // so a mark read here happens-after everything the counted batches did.
    return batches_started_.load(std::memory_order_acquire);
  }
  uint64_t batches_completed() const {
    // memory_order: acquire — the retire gate: once this reaches a started
    // mark, the old mapping's reads are all visible-before here and unmapping
    // it cannot race them (RolloverController's drain loop relies on this).
    return batches_completed_.load(std::memory_order_acquire);
  }

  int shards() const { return shards_; }
  size_t cache_entries_per_shard() const {
    return caches_.empty() ? 0 : caches_.front().capacity();
  }
  const BatchEngineStats& stats() const { return stats_; }

 private:
  // The partition hash: FNV-1a over the query bytes, case-folded iff the route
  // source's interner folds, then Fibonacci-mixed so low-entropy tails still spread.
  uint32_t ShardOf(std::string_view host) const;

  // Resolves one query on its owning shard directly into its result slot, through
  // that shard's cache when the query is interned.  `cache` is null when caching is
  // disabled.  Writing in place matters: a cache hit is one probe and one copy, so a
  // second copy would be a measurable fraction of the whole cached path.
  void ResolveOneInto(std::string_view host, ResultCache* cache, BatchLookup* out) const;

  // The cached shard loop, run as a depth-2 software pipeline: while query j's
  // walk (or cache copy) completes, query j+1's interner Find has already run and
  // ResultCache::Begin has prefetched its set's line — so a hit's set read lands
  // in cache and its tag is never recomputed.  `index_of(pos)` maps loop position
  // to result slot (identity for the single-shard path, the shard's index vector
  // when partitioned).  Returns the number resolved.
  template <typename IndexFn>
  size_t ResolveCachedRun(std::span<const std::string_view> hosts,
                          std::span<BatchLookup> results, ResultCache* cache,
                          size_t n, IndexFn index_of) const;

  // Resolver window honoring options_.pipeline_window (0 = resolver default).
  size_t PipelineWindow() const {
    return options_.pipeline_window == 0 ? BasicResolver<RouteSource>::kDefaultPipelineWindow
                                         : options_.pipeline_window;
  }

  // Applies cache_min_hit_rate after a batch: once past a probation of lookups,
  // a hit rate below the floor drops every shard cache permanently.
  void MaybeDropCaches();
  static constexpr uint64_t kCacheProbationLookups = 4096;

  // ResolveBatch minus the drain counters (the public entry wraps it).
  size_t ResolveBatchInner(std::span<const std::string_view> hosts,
                           std::span<BatchLookup> results);

  // True when any id on `id`'s domain-suffix chain (per `names`) is in the
  // sorted `dirty` list — the invalidation predicate AdoptRoutes and
  // InvalidateRoutes share.
  bool ChainTouchesDirty(NameId id, std::span<const NameId> sorted_dirty) const;

  const RouteSource* routes_;
  BatchEngineOptions options_;
  BasicResolver<RouteSource> resolver_;
  int shards_;
  bool fold_case_;
  std::unique_ptr<ThreadPool> pool_;        // null when shards_ == 1
  std::vector<ResultCache> caches_;         // one per shard; empty when disabled
  std::vector<std::vector<uint32_t>> shard_indices_;  // reused partition buffers
  std::vector<size_t> shard_resolved_;      // per-shard hit counts, one write each
  BatchEngineStats stats_;
  std::atomic<uint64_t> batches_started_{0};
  std::atomic<uint64_t> batches_completed_{0};
};

// The two supported backends (FrozenRouteSet is forward-declared by resolver.h);
// bodies are compiled once, in batch_engine.cc.
using BatchEngine = BasicBatchEngine<RouteSet>;
using FrozenBatchEngine = BasicBatchEngine<FrozenRouteSet>;

extern template class BasicBatchEngine<RouteSet>;
extern template class BasicBatchEngine<FrozenRouteSet>;

}  // namespace exec
}  // namespace pathalias

#endif  // SRC_EXEC_BATCH_ENGINE_H_
