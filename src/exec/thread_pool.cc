#include "src/exec/thread_pool.h"

namespace pathalias {
namespace exec {

ThreadPool::ThreadPool(int width) : width_(width < 1 ? 1 : width) {
  workers_.reserve(static_cast<size_t>(width_ - 1));
  for (int i = 0; i < width_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    support::MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

int ThreadPool::HardwareWidth() {
  unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

int ThreadPool::Drain(const std::function<void(int)>& job, int jobs) {
  int ran = 0;
  for (;;) {
    // memory_order: relaxed — the ticket counter only partitions indices;
    // publication of the batch (job_/job_count_) happened under mu_ before any
    // worker could observe the new generation, and completion is published by
    // the mu_-guarded completed_/drained_ rendezvous, not by this counter.
    int index = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (index >= jobs) {
      return ran;
    }
    job(index);
    ++ran;
  }
}

void ThreadPool::Run(int jobs, const std::function<void(int)>& job) {
  if (jobs <= 0) {
    return;
  }
  if (workers_.empty()) {
    for (int i = 0; i < jobs; ++i) {
      job(i);
    }
    return;
  }
  {
    support::MutexLock lock(mu_);
    job_ = &job;
    job_count_ = jobs;
    // memory_order: relaxed — the reset is published to workers by the
    // generation_ advance under mu_ below, not by this store.
    next_index_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    drained_ = 0;
    ++generation_;
  }
  work_cv_.NotifyAll();
  int ran = Drain(job, jobs);
  support::MutexLock lock(mu_);
  completed_ += ran;
  // Wait for the jobs AND for every worker to have left Drain for this generation.
  // The second half is the load-bearing part: it guarantees no worker can wake late
  // and claim indices (or dereference job_) after Run has returned and the engine has
  // destroyed the job closure or started the next batch.
  while (!(completed_ == job_count_ && drained_ == static_cast<int>(workers_.size()))) {
    done_cv_.Wait(lock);
  }
  job_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(int)>* job;
    int jobs;
    {
      support::MutexLock lock(mu_);
      while (!stop_ && generation_ == seen_generation) {
        work_cv_.Wait(lock);
      }
      if (stop_) {
        return;
      }
      seen_generation = generation_;
      job = job_;
      jobs = job_count_;
    }
    int ran = Drain(*job, jobs);
    {
      support::MutexLock lock(mu_);
      completed_ += ran;
      ++drained_;
      if (completed_ == job_count_ && drained_ == static_cast<int>(workers_.size())) {
        done_cv_.NotifyAll();
      }
    }
  }
}

}  // namespace exec
}  // namespace pathalias
