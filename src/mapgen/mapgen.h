// Synthetic 1986-scale map generation.
//
// The paper's measurements ran against the live UUCP-mapping-project data: "USENET maps
// contain over 5,700 nodes and 20,000 links, while ARPANET, CSNET, and BITNET add
// another 2,800 nodes and 8,000 links."  Those files are not reproducible inputs, so
// this module synthesizes maps with the same statistical profile:
//   * a small, densely connected long-haul backbone (the ihnp4/seismo/ucbvax role);
//   * regional hosts hanging off the backbone; leaf sites hanging off regionals —
//     giving the sparse e ≈ 3.5v degree profile the paper's complexity argument
//     depends on;
//   * mostly-bidirectional links with asymmetric costs (callers pay), plus a tail of
//     call-out-only leaves whose return routes must be invented by back-links;
//   * networks declared as cliques (one ARPANET-sized, several CSNET/BITNET-sized)
//     with explicit gateways on the backbone;
//   * domain trees with suffix-structured names, members reached through them;
//   * aliases, and deliberate host-name collisions declared private in two files.
//
// Output is real map *text* split across site files, so benchmarks exercise the same
// parse→map→print pipeline the paper timed.  Everything is seeded and deterministic.

#ifndef SRC_MAPGEN_MAPGEN_H_
#define SRC_MAPGEN_MAPGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/parser/parser.h"

namespace pathalias {

struct MapGenConfig {
  uint64_t seed = 1986;

  // UUCP/USENET side.
  int backbone_hosts = 20;
  int regional_hosts = 620;
  int leaf_hosts = 5060;  // backbone + regional + leaf ≈ 5,700

  // ARPANET/CSNET/BITNET side.
  int net_member_hosts = 2800;
  int net_count = 16;      // one net takes the lion's share (the ARPANET role)
  int domain_count = 10;   // domain trees (gateways sit on the backbone)
  int domain_hosts = 120;  // hosts reachable only through domains (within net_member_hosts? no: extra)

  double alias_fraction = 0.02;   // hosts that also declare a nickname
  int private_pairs = 24;         // name collisions declared private in two files
  double one_way_leaf_rate = 0.03;  // leaves that only call out (back-link fodder)

  int files = 40;  // site files the declarations are spread over

  // ---- usenet-scale profile (mapgen --profile usenet-scale) ----
  // When scale_hosts > 0 a different generator runs: strata are sized from the
  // total, the bulk of hosts live in domain subtrees and are declared with
  // fully-qualified names (host.sub.top), and names are counter-based so the
  // syllable namespace never exhausts.  This is the million-host workload the
  // domain-sharded mapper partitions by suffix subtree.
  int scale_hosts = 0;                  // total host target; > 0 engages the profile
  int domain_depth = 3;                 // max subdomain labels under a top-level domain
  int top_domains = 12;                 // independent top-level domain trees
  int members_per_subdomain = 250;      // domain members declared per leaf subdomain
  double domain_member_fraction = 0.85; // hosts living inside domain subtrees
  double net_member_fraction = 0.04;    // hosts inside net cliques
  double intra_domain_link_rate = 0.30; // member→member UUCP links inside a subdomain
  double dual_home_rate = 0.01;         // members with a UUCP link out to a regional
  double dead_link_fraction = 0.001;    // bidirectional link pairs also declared dead
  double dead_host_fraction = 0.0003;   // domain members declared dead

  // A configuration scaled down for unit tests (~1/10 size, same structure).
  static MapGenConfig Small();
  // The paper-scale configuration described above.
  static MapGenConfig Usenet1986();
  // The usenet-scale profile sized for `hosts` total hosts (100k/1M benchmarks).
  static MapGenConfig UsenetScale(int hosts);
};

struct GeneratedMap {
  std::vector<InputFile> files;
  std::string local;  // suggested Dijkstra source (a backbone host)

  // Ground truth for tests/benchmarks.
  int host_count = 0;       // host names emitted (excluding nets/domains)
  int link_declarations = 0;
  int net_count = 0;
  int domain_count = 0;
  int alias_count = 0;
  int private_declarations = 0;
  int dead_link_declarations = 0;
  int dead_host_declarations = 0;

  // All input concatenated (order preserved) for single-buffer consumers.
  std::string Joined() const;
  // Host names by stratum, for workload generators.
  std::vector<std::string> backbone;
  std::vector<std::string> regionals;
  std::vector<std::string> leaves;
  std::vector<std::string> net_members;
  std::vector<std::string> domain_members;  // fully qualified (host.sub.top)
};

GeneratedMap GenerateUsenetMap(const MapGenConfig& config);

// A stream of destination addresses a 1986 mail relay would see, drawn from the map:
// bang paths over known hosts, user@host, domainized names, %-hack forms, occasional
// unknown hosts and loop-test paths.  Used by the resolver benchmark (E13).
std::vector<std::string> GenerateAddressTrace(const GeneratedMap& map, int count,
                                              uint64_t seed);

}  // namespace pathalias

#endif  // SRC_MAPGEN_MAPGEN_H_
