#include "src/mapgen/mapgen.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "src/support/hash_table.h"
#include "src/support/rng.h"

namespace pathalias {
namespace {

// 1986 host names: short, pronounceable, lower-case (ihnp4, seismo, mcvax...).
class NameMaker {
 public:
  explicit NameMaker(Rng* rng) : rng_(rng) {}

  std::string Fresh(std::string_view flavor) {
    for (;;) {
      std::string name = Coin(flavor);
      if (used_.insert(name).second) {
        return name;
      }
    }
  }

  // Returns a name designated for deliberate reuse across two site files (the paper's
  // bilbo scenario).  Sequential so distinct collision pairs never share a name —
  // otherwise two pairs could declare the same name private in the same file.
  std::string Collide() {
    std::string name = "bilbo" + std::to_string(collide_counter_++);
    used_.insert(name);
    return name;
  }

 private:
  std::string Coin(std::string_view flavor) {
    static constexpr std::string_view kConsonants = "bcdfghjklmnprstvwz";
    static constexpr std::string_view kVowels = "aeiou";
    std::string name;
    int syllables = 2 + static_cast<int>(rng_->Below(2));
    for (int i = 0; i < syllables; ++i) {
      name += kConsonants[rng_->Below(kConsonants.size())];
      name += kVowels[rng_->Below(kVowels.size())];
    }
    if (!flavor.empty() && rng_->Chance(0.3)) {
      name += flavor;
    }
    if (rng_->Chance(0.25)) {
      name += static_cast<char>('0' + rng_->Below(10));
    }
    return name;
  }

  Rng* rng_;
  std::unordered_set<std::string> used_;
  int collide_counter_ = 0;
};

// Costs drawn to mimic the mix of grades in the published maps.
std::string_view UucpCost(Rng& rng, bool long_haul) {
  double roll = rng.Double();
  if (long_haul) {
    if (roll < 0.25) {
      return "DEDICATED";
    }
    if (roll < 0.60) {
      return "DEMAND";
    }
    if (roll < 0.80) {
      return "DIRECT";
    }
    return "HOURLY";
  }
  if (roll < 0.10) {
    return "HOURLY";
  }
  if (roll < 0.25) {
    return "EVENING";
  }
  if (roll < 0.60) {
    return "DAILY";
  }
  if (roll < 0.75) {
    return "POLLED";
  }
  if (roll < 0.90) {
    return "WEEKLY";
  }
  return "DAILY*2";  // arithmetic expressions appear in real maps
}

class Generator {
 public:
  explicit Generator(const MapGenConfig& config)
      : config_(config), rng_(config.seed), names_(&rng_) {
    file_bodies_.resize(static_cast<size_t>(std::max(config.files, 2)));
  }

  GeneratedMap Run() {
    MakeBackbone();
    MakeRegionals();
    MakeLeaves();
    MakeNets();
    MakeDomains();
    MakeAliases();
    MakePrivateCollisions();
    Finish();
    return std::move(map_);
  }

 private:
  // Every declaration is appended to some site file; spreading them keeps private
  // scoping and cross-file duplicate handling honest at scale.
  std::string& FileFor(size_t hint) { return file_bodies_[hint % file_bodies_.size()]; }

  // A host's outgoing links are declared in its own site file, as in the real mapping
  // project (each site reports its own connections).
  size_t HomeFile(const std::string& host) const {
    return static_cast<size_t>(HashHostName(host)) % file_bodies_.size();
  }

  void Emit(size_t file_hint, const std::string& line) {
    FileFor(file_hint) += line;
    FileFor(file_hint) += '\n';
  }

  void EmitLink(size_t file_hint, const std::string& from, const std::string& to,
                std::string_view cost) {
    Emit(file_hint, from + "\t" + to + "(" + std::string(cost) + ")");
    ++map_.link_declarations;
  }

  // Declares from→to in from's file and to→from in to's file.
  void EmitLinkPair(const std::string& from, const std::string& to, std::string_view out_cost,
                    std::string_view back_cost) {
    EmitLink(HomeFile(from), from, to, out_cost);
    EmitLink(HomeFile(to), to, from, back_cost);
  }

  void MakeBackbone() {
    for (int i = 0; i < config_.backbone_hosts; ++i) {
      map_.backbone.push_back(names_.Fresh("vax"));
      ++map_.host_count;
    }
    // Dense long-haul mesh: most pairs talk, both directions, asymmetric costs.
    for (size_t i = 0; i < map_.backbone.size(); ++i) {
      for (size_t j = i + 1; j < map_.backbone.size(); ++j) {
        if (!rng_.Chance(0.55)) {
          continue;
        }
        EmitLinkPair(map_.backbone[i], map_.backbone[j], UucpCost(rng_, true),
                     UucpCost(rng_, true));
      }
    }
    map_.local = map_.backbone.front();
  }

  void AttachBoth(size_t /*hint*/, const std::string& from, const std::string& to,
                  bool long_haul) {
    EmitLinkPair(from, to, UucpCost(rng_, long_haul), UucpCost(rng_, long_haul));
  }

  void MakeRegionals() {
    for (int i = 0; i < config_.regional_hosts; ++i) {
      std::string name = names_.Fresh("");
      ++map_.host_count;
      size_t hint = rng_.Below(file_bodies_.size());
      int backbone_links = 1 + static_cast<int>(rng_.Below(3));
      for (int k = 0; k < backbone_links; ++k) {
        AttachBoth(hint, name, rng_.Pick(map_.backbone), true);
      }
      // Preferential attachment among regionals themselves.
      if (!map_.regionals.empty() && rng_.Chance(0.9)) {
        AttachBoth(hint, name, rng_.Pick(map_.regionals), false);
      }
      if (map_.regionals.size() > 4 && rng_.Chance(0.4)) {
        AttachBoth(hint, name, rng_.Pick(map_.regionals), false);
      }
      map_.regionals.push_back(std::move(name));
    }
  }

  void MakeLeaves() {
    for (int i = 0; i < config_.leaf_hosts; ++i) {
      std::string name = names_.Fresh("");
      ++map_.host_count;
      size_t hint = rng_.Below(file_bodies_.size());
      const std::string& upstream =
          rng_.Chance(0.85) ? rng_.Pick(map_.regionals) : rng_.Pick(map_.backbone);
      if (rng_.Chance(config_.one_way_leaf_rate)) {
        // Calls out but is never called: reachable only via an invented back link.
        EmitLink(HomeFile(name), name, upstream, UucpCost(rng_, false));
      } else {
        AttachBoth(hint, name, upstream, false);
        if (rng_.Chance(0.5)) {
          AttachBoth(hint, name, rng_.Pick(map_.regionals), false);
        }
      }
      map_.leaves.push_back(std::move(name));
    }
  }

  void MakeNets() {
    if (config_.net_count <= 0 || config_.net_member_hosts <= 0) {
      return;
    }
    // One ARPANET-scale clique, the rest CSNET/BITNET-sized.
    std::vector<int> sizes(static_cast<size_t>(config_.net_count), 0);
    int remaining = config_.net_member_hosts;
    sizes[0] = remaining / 2;
    remaining -= sizes[0];
    for (size_t i = 1; i < sizes.size(); ++i) {
      int share = remaining / static_cast<int>(sizes.size() - i);
      sizes[i] = share;
      remaining -= share;
    }
    for (size_t n = 0; n < sizes.size(); ++n) {
      std::string net_name = names_.Fresh("");
      std::transform(net_name.begin(), net_name.end(), net_name.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      std::string decl = net_name + " = @{";
      std::vector<std::string> members;
      for (int m = 0; m < sizes[n]; ++m) {
        std::string member = names_.Fresh("");
        ++map_.host_count;
        if (m > 0) {
          decl += ", ";
        }
        if (m % 12 == 11) {
          decl += "\n\t";  // long member lists wrap in real maps
        }
        decl += member;
        members.push_back(member);
        map_.net_members.push_back(member);
      }
      decl += "}(DEDICATED)";
      size_t hint = rng_.Below(file_bodies_.size());
      Emit(hint, decl);
      ++map_.net_count;
      map_.link_declarations += sizes[n];
      // Explicit gateways on the backbone; entry anywhere else is penalized.
      Emit(hint, "gatewayed {" + net_name + "}");
      int gateway_count = 1 + static_cast<int>(rng_.Below(2));
      for (int g = 0; g < gateway_count; ++g) {
        const std::string& gw = rng_.Pick(map_.backbone);
        // ARPANET-style user@host entry, declared by the gateway's own site file.
        EmitLink(HomeFile(gw), gw, "@" + net_name, "DEMAND");
        Emit(hint, "gateway {" + net_name + "!" + gw + "}");
      }
      // A few dual-homed members keep the two worlds tied together.
      for (int d = 0; d < std::max(1, sizes[n] / 30); ++d) {
        AttachBoth(hint, rng_.Pick(members), rng_.Pick(map_.regionals), false);
      }
      // A handful of UUCP leaves hang *behind* net members: their only route enters
      // the net with '@' and leaves with '!', the ambiguous mixing the paper says is
      // penalized on "only a fraction of a percent" of routes (experiment E11).
      for (int r = 0; r < std::max(1, sizes[n] / 150); ++r) {
        std::string leaf = names_.Fresh("");
        ++map_.host_count;
        AttachBoth(hint, leaf, rng_.Pick(members), false);
        map_.leaves.push_back(std::move(leaf));
      }
    }
  }

  void MakeDomains() {
    for (int d = 0; d < config_.domain_count; ++d) {
      std::string top = "." + names_.Fresh("");
      size_t hint = rng_.Below(file_bodies_.size());
      const std::string& gw = rng_.Pick(map_.backbone);
      EmitLink(HomeFile(gw), gw, top, "DEMAND");
      ++map_.domain_count;
      int subdomains = 1 + static_cast<int>(rng_.Below(3));
      int hosts_per = std::max(1, config_.domain_hosts / std::max(1, config_.domain_count) /
                                      std::max(1, subdomains));
      for (int s = 0; s < subdomains; ++s) {
        std::string sub = "." + names_.Fresh("") + top;  // suffix-structured names
        EmitLink(hint, top, sub, "0");
        ++map_.domain_count;
        std::string decl = sub + "\t";
        std::string first_member;
        for (int h = 0; h < hosts_per; ++h) {
          std::string host = names_.Fresh("");
          ++map_.host_count;
          if (h > 0) {
            decl += ", ";
          }
          decl += host + "(0)";
          if (h == 0) {
            first_member = host;
          }
          map_.domain_members.push_back(host + sub);
          ++map_.link_declarations;
        }
        Emit(hint, decl);
        // Some domain members are dual-homed (an expensive UUCP link besides the
        // domain) and relay to a host of their own — the paper's motown topology:
        // the best route to the member goes via the domain, so continuing to the
        // relayed host is penalized unless the second-best (UUCP) path is kept.
        if (!first_member.empty() && rng_.Chance(0.4)) {
          EmitLinkPair(first_member, rng_.Pick(map_.regionals), "WEEKLY", "WEEKLY");
          std::string behind = names_.Fresh("");
          ++map_.host_count;
          EmitLinkPair(behind, first_member, "DAILY", "DAILY");
          map_.leaves.push_back(std::move(behind));
        }
      }
    }
  }

  void MakeAliases() {
    auto consider = [&](const std::vector<std::string>& hosts) {
      for (const std::string& host : hosts) {
        if (rng_.Chance(config_.alias_fraction)) {
          std::string nickname = names_.Fresh("");
          Emit(rng_.Below(file_bodies_.size()), host + " = " + nickname);
          ++map_.alias_count;
        }
      }
    };
    consider(map_.backbone);
    consider(map_.regionals);
    consider(map_.net_members);
  }

  void MakePrivateCollisions() {
    // Each colliding instance hooks onto a distinct regional: both directions must be
    // declared inside the private file (only there does the name bind to this
    // instance), so reusing a regional would make that regional look collision-y.
    std::vector<std::string> uplinks = map_.regionals;
    rng_.Shuffle(uplinks);
    size_t next_uplink = 0;
    for (int p = 0; p < config_.private_pairs; ++p) {
      std::string name = names_.Collide();
      size_t file_a = rng_.Below(file_bodies_.size());
      size_t file_b = (file_a + 1 + rng_.Below(file_bodies_.size() - 1)) % file_bodies_.size();
      for (size_t file : {file_a, file_b}) {
        const std::string& regional = uplinks[next_uplink++ % uplinks.size()];
        Emit(file, "private {" + name + "}");
        ++map_.private_declarations;
        EmitLink(file, name, regional, "DAILY");
        EmitLink(file, regional, name, "DAILY");
        ++map_.host_count;
      }
    }
  }

  void Finish() {
    for (size_t i = 0; i < file_bodies_.size(); ++i) {
      map_.files.push_back(InputFile{"site" + std::to_string(i) + ".map",
                                     std::move(file_bodies_[i])});
    }
  }

  MapGenConfig config_;
  Rng rng_;
  NameMaker names_;
  std::vector<std::string> file_bodies_;
  GeneratedMap map_;
};

// Million-host generator (--profile usenet-scale).  Same statistical shape as
// Generator — backbone mesh, regionals, leaves, nets, domains — but sized from
// config.scale_hosts, with two structural differences that matter at scale:
//   * the bulk of hosts are domain members declared FULLY QUALIFIED
//     (m123.sub.top(0)), so their interner suffix chains exist and the
//     domain-sharded mapper has a partition key for nearly every node;
//   * names are counter-based (the syllable namespace exhausts near ~700k).
// Domain subtrees carry intra-subdomain UUCP links so each suffix subtree is a
// genuine subgraph, and a small dual-home rate keeps cross-subtree edges alive.
class ScaleGenerator {
 public:
  explicit ScaleGenerator(const MapGenConfig& config)
      : config_(config), rng_(config.seed), names_(&rng_) {
    file_bodies_.resize(static_cast<size_t>(std::max(config.files, 4)));
  }

  GeneratedMap Run() {
    MakeBackbone();
    MakeRegionals();
    MakeDomains();
    MakeNets();
    MakeLeaves();
    MakeAliases();
    Finish();
    return std::move(map_);
  }

 private:
  std::string& FileFor(size_t hint) { return file_bodies_[hint % file_bodies_.size()]; }
  size_t HomeFile(const std::string& host) const {
    return static_cast<size_t>(HashHostName(host)) % file_bodies_.size();
  }

  void Emit(size_t file_hint, const std::string& line) {
    FileFor(file_hint) += line;
    FileFor(file_hint) += '\n';
  }

  void EmitLink(size_t file_hint, const std::string& from, const std::string& to,
                std::string_view cost) {
    std::string& body = FileFor(file_hint);
    body += from;
    body += '\t';
    body += to;
    body += '(';
    body += cost;
    body += ")\n";
    ++map_.link_declarations;
  }

  // Declares both directions in the endpoints' home files; a configurable
  // fraction of pairs is additionally declared dead (one direction), the
  // density knob the audit/dead-relay passes are profiled against.
  void EmitLinkPair(const std::string& from, const std::string& to, bool long_haul) {
    EmitLink(HomeFile(from), from, to, UucpCost(rng_, long_haul));
    EmitLink(HomeFile(to), to, from, UucpCost(rng_, long_haul));
    if (rng_.Chance(config_.dead_link_fraction)) {
      Emit(HomeFile(from), "dead {" + from + "!" + to + "}");
      ++map_.dead_link_declarations;
    }
  }

  std::string CounterName(char prefix) {
    // Base36 keeps million-host names short (map text is the parse workload).
    static constexpr char kDigits[] = "0123456789abcdefghijklmnopqrstuvwxyz";
    uint64_t n = counter_++;
    char buffer[16];
    int at = 16;
    do {
      buffer[--at] = kDigits[n % 36];
      n /= 36;
    } while (n != 0);
    std::string name(1, prefix);
    name.append(buffer + at, static_cast<size_t>(16 - at));
    return name;
  }

  void MakeBackbone() {
    int count = std::clamp(config_.scale_hosts / 4000, 16, 48);
    for (int i = 0; i < count; ++i) {
      map_.backbone.push_back(names_.Fresh("vax"));
      ++map_.host_count;
    }
    for (size_t i = 0; i < map_.backbone.size(); ++i) {
      for (size_t j = i + 1; j < map_.backbone.size(); ++j) {
        if (rng_.Chance(0.5)) {
          EmitLinkPair(map_.backbone[i], map_.backbone[j], true);
        }
      }
    }
    map_.local = map_.backbone.front();
  }

  void MakeRegionals() {
    int count = std::max(config_.scale_hosts / 50, 60);
    map_.regionals.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      std::string name = CounterName('r');
      ++map_.host_count;
      int backbone_links = 1 + static_cast<int>(rng_.Below(2));
      for (int k = 0; k < backbone_links; ++k) {
        EmitLinkPair(name, rng_.Pick(map_.backbone), true);
      }
      if (!map_.regionals.empty() && rng_.Chance(0.8)) {
        EmitLinkPair(name, rng_.Pick(map_.regionals), false);
      }
      map_.regionals.push_back(std::move(name));
    }
  }

  void MakeDomains() {
    int total_members = static_cast<int>(config_.domain_member_fraction *
                                         static_cast<double>(config_.scale_hosts));
    int tops = std::max(config_.top_domains, 1);
    int per_leaf = std::max(config_.members_per_subdomain, 1);
    map_.domain_members.reserve(static_cast<size_t>(total_members));
    for (int t = 0; t < tops; ++t) {
      std::string top = "." + names_.Fresh("");
      size_t hint = rng_.Below(file_bodies_.size());
      // Gateways on the backbone; a second one keeps the subtree 2-connected.
      int gateways = 1 + static_cast<int>(rng_.Below(2));
      for (int g = 0; g < gateways; ++g) {
        const std::string& gw = rng_.Pick(map_.backbone);
        EmitLink(HomeFile(gw), gw, top, "DEMAND");
      }
      ++map_.domain_count;
      int members_here = total_members / tops + (t < total_members % tops ? 1 : 0);
      int leaf_subs = std::max(1, (members_here + per_leaf - 1) / per_leaf);
      for (int s = 0; s < leaf_subs; ++s) {
        // A chain of 1..domain_depth labels; intermediate levels are unique per
        // leaf, so each tree is a star of suffix chains of varying depth.
        int depth = 1 + static_cast<int>(rng_.Below(
                            static_cast<uint64_t>(std::max(config_.domain_depth, 1))));
        std::string parent = top;
        for (int d = 0; d < depth; ++d) {
          std::string sub = CounterName('s') + parent;
          sub.insert(sub.begin(), '.');
          EmitLink(hint, parent, sub, "0");
          ++map_.domain_count;
          parent = std::move(sub);
        }
        int count = std::min(per_leaf, members_here - s * per_leaf);
        if (count <= 0) {
          break;
        }
        std::string decl = parent + "\t";
        size_t first_member = map_.domain_members.size();
        for (int m = 0; m < count; ++m) {
          std::string member = CounterName('m') + parent;
          ++map_.host_count;
          if (m > 0) {
            decl += ", ";
          }
          if (m % 8 == 7) {
            decl += "\n\t";
          }
          decl += member + "(0)";
          ++map_.link_declarations;
          if (rng_.Chance(config_.dead_host_fraction)) {
            Emit(hint, "dead {" + member + "}");
            ++map_.dead_host_declarations;
          }
          map_.domain_members.push_back(std::move(member));
        }
        Emit(hint, decl);
        // Intra-subdomain UUCP mesh: members also call each other directly, so
        // the suffix subtree is a connected subgraph, not a star through the
        // domain node — the edges a per-shard Dijkstra actually walks.
        for (size_t m = first_member + 1; m < map_.domain_members.size(); ++m) {
          if (rng_.Chance(config_.intra_domain_link_rate)) {
            size_t other = first_member + rng_.Below(m - first_member);
            EmitLinkPair(map_.domain_members[m], map_.domain_members[other], false);
          }
        }
        // Dual-homed members: a UUCP link out to a regional — the cross-subtree
        // edges the shard-stitching fixpoint has to reconcile.
        for (size_t m = first_member; m < map_.domain_members.size(); ++m) {
          if (rng_.Chance(config_.dual_home_rate)) {
            EmitLinkPair(map_.domain_members[m], rng_.Pick(map_.regionals), false);
          }
        }
      }
    }
  }

  void MakeNets() {
    int total = static_cast<int>(config_.net_member_fraction *
                                 static_cast<double>(config_.scale_hosts));
    if (config_.net_count <= 0 || total <= 0) {
      return;
    }
    std::vector<int> sizes(static_cast<size_t>(config_.net_count), 0);
    int remaining = total;
    sizes[0] = remaining / 2;
    remaining -= sizes[0];
    for (size_t i = 1; i < sizes.size(); ++i) {
      int share = remaining / static_cast<int>(sizes.size() - i);
      sizes[i] = share;
      remaining -= share;
    }
    for (size_t n = 0; n < sizes.size(); ++n) {
      if (sizes[n] <= 0) {
        continue;
      }
      std::string net_name = names_.Fresh("");
      std::transform(net_name.begin(), net_name.end(), net_name.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      std::string decl = net_name + " = @{";
      for (int m = 0; m < sizes[n]; ++m) {
        std::string member = CounterName('n');
        ++map_.host_count;
        if (m > 0) {
          decl += ", ";
        }
        if (m % 12 == 11) {
          decl += "\n\t";
        }
        decl += member;
        map_.net_members.push_back(std::move(member));
      }
      decl += "}(DEDICATED)";
      size_t hint = rng_.Below(file_bodies_.size());
      Emit(hint, decl);
      ++map_.net_count;
      map_.link_declarations += sizes[n];
      Emit(hint, "gatewayed {" + net_name + "}");
      int gateway_count = 1 + static_cast<int>(rng_.Below(2));
      for (int g = 0; g < gateway_count; ++g) {
        const std::string& gw = rng_.Pick(map_.backbone);
        EmitLink(HomeFile(gw), gw, "@" + net_name, "DEMAND");
        Emit(hint, "gateway {" + net_name + "!" + gw + "}");
      }
      size_t members_start = map_.net_members.size() - static_cast<size_t>(sizes[n]);
      for (int d = 0; d < std::max(1, sizes[n] / 30); ++d) {
        EmitLinkPair(map_.net_members[members_start + rng_.Below(static_cast<uint64_t>(sizes[n]))],
                     rng_.Pick(map_.regionals), false);
      }
    }
  }

  void MakeLeaves() {
    int count = config_.scale_hosts - map_.host_count;
    map_.leaves.reserve(static_cast<size_t>(std::max(count, 0)));
    for (int i = 0; i < count; ++i) {
      std::string name = CounterName('u');
      ++map_.host_count;
      const std::string& upstream =
          rng_.Chance(0.9) ? rng_.Pick(map_.regionals) : rng_.Pick(map_.backbone);
      if (rng_.Chance(config_.one_way_leaf_rate)) {
        EmitLink(HomeFile(name), name, upstream, UucpCost(rng_, false));
      } else {
        EmitLinkPair(name, upstream, false);
      }
      map_.leaves.push_back(std::move(name));
    }
  }

  void MakeAliases() {
    // Aliases over regionals and a slice of domain members; a domain member's
    // nickname is a FLAT name, so the zero-cost alias edge crosses the
    // partition — the tie shape the sharded mapper's refusal logic must see.
    for (const std::string& host : map_.regionals) {
      if (rng_.Chance(config_.alias_fraction)) {
        Emit(rng_.Below(file_bodies_.size()), host + " = " + CounterName('a'));
        ++map_.alias_count;
      }
    }
    size_t stride = map_.domain_members.size() / 200 + 1;
    for (size_t i = 0; i < map_.domain_members.size(); i += stride) {
      if (rng_.Chance(0.5)) {
        Emit(rng_.Below(file_bodies_.size()),
             map_.domain_members[i] + " = " + CounterName('a'));
        ++map_.alias_count;
      }
    }
  }

  void Finish() {
    for (size_t i = 0; i < file_bodies_.size(); ++i) {
      map_.files.push_back(InputFile{"site" + std::to_string(i) + ".map",
                                     std::move(file_bodies_[i])});
    }
  }

  MapGenConfig config_;
  Rng rng_;
  NameMaker names_;
  uint64_t counter_ = 0;
  std::vector<std::string> file_bodies_;
  GeneratedMap map_;
};

}  // namespace

MapGenConfig MapGenConfig::Small() {
  MapGenConfig config;
  config.seed = 42;
  config.backbone_hosts = 8;
  config.regional_hosts = 60;
  config.leaf_hosts = 420;
  config.net_member_hosts = 240;
  config.net_count = 5;
  config.domain_count = 4;
  config.domain_hosts = 24;
  config.private_pairs = 6;
  config.files = 10;
  return config;
}

MapGenConfig MapGenConfig::Usenet1986() { return MapGenConfig(); }

MapGenConfig MapGenConfig::UsenetScale(int hosts) {
  MapGenConfig config;
  config.seed = 2026;
  config.scale_hosts = std::max(hosts, 1000);
  config.net_count = std::clamp(hosts / 20000, 4, 24);
  config.private_pairs = 0;
  config.files = std::clamp(hosts / 500, 20, 2000);
  return config;
}

std::string GeneratedMap::Joined() const {
  std::string out;
  for (const InputFile& file : files) {
    out += file.content;
  }
  return out;
}

GeneratedMap GenerateUsenetMap(const MapGenConfig& config) {
  if (config.scale_hosts > 0) {
    return ScaleGenerator(config).Run();
  }
  return Generator(config).Run();
}

std::vector<std::string> GenerateAddressTrace(const GeneratedMap& map, int count,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> trace;
  trace.reserve(static_cast<size_t>(count));
  auto any_host = [&]() -> const std::string& {
    double roll = rng.Double();
    if (roll < 0.25 && !map.backbone.empty()) {
      return rng.Pick(map.backbone);
    }
    if (roll < 0.55 && !map.regionals.empty()) {
      return rng.Pick(map.regionals);
    }
    if (roll < 0.85 && !map.leaves.empty()) {
      return rng.Pick(map.leaves);
    }
    if (!map.net_members.empty()) {
      return rng.Pick(map.net_members);
    }
    return rng.Pick(map.leaves);
  };
  for (int i = 0; i < count; ++i) {
    double roll = rng.Double();
    if (roll < 0.35) {
      trace.push_back(any_host() + "!user" + std::to_string(rng.Below(100)));
    } else if (roll < 0.55) {
      // USENET reply style: a multi-hop bang path.
      std::string path = any_host();
      int hops = 1 + static_cast<int>(rng.Below(3));
      for (int h = 0; h < hops; ++h) {
        path += "!" + any_host();
      }
      trace.push_back(path + "!user" + std::to_string(rng.Below(100)));
    } else if (roll < 0.70) {
      trace.push_back("user" + std::to_string(rng.Below(100)) + "@" + any_host());
    } else if (roll < 0.85 && !map.domain_members.empty()) {
      trace.push_back(rng.Pick(map.domain_members) + "!user" + std::to_string(rng.Below(100)));
    } else if (roll < 0.95) {
      trace.push_back("user" + std::to_string(rng.Below(100)) + "%" + any_host() + "@" +
                      any_host());
    } else if (roll < 0.98) {
      // Loop test: the same host twice must survive optimization.
      const std::string& host = any_host();
      trace.push_back(host + "!" + any_host() + "!" + host + "!user");
    } else {
      trace.push_back("no-such-host-" + std::to_string(rng.Below(1000)) + "!user");
    }
  }
  return trace;
}

}  // namespace pathalias
