// Domain-sharded parallel mapping for very large maps.
//
// The single-threaded Mapper drains one global heap in strict (cost, hops, name)
// order — exact, but serial by construction.  On USENET-scale maps (100k–1M hosts)
// most shortest-path work is *local*: a host under .cs.rutgers.edu is reached
// through its domain subtree, and only the subtree's boundary (its gateways, nets
// and backbone links) interacts with the rest of the graph.  ShardedMapper exploits
// that structure:
//
//   * the graph is partitioned by domain-suffix subtree — the interner's precomputed
//     suffix chains name the partition (every dotted name walks to its top-level
//     domain; undotted hosts share one "flat" group) — and the groups are bin-packed
//     into N shards;
//   * each round, every shard drains its own heap in parallel (ThreadPool from
//     src/exec).  Intra-shard relaxations apply directly; relaxations that cross a
//     shard boundary are queued as offers in a per-shard outbox;
//   * between rounds a serial coordinator applies all offers (shard-index order,
//     emission order within a shard — deterministic) and the next round begins;
//     rounds repeat until every heap is empty and no offers remain, i.e. a global
//     shortest-path fixpoint over the inter-shard frontier costs;
//   * back-link passes run at global quiescence, exactly where the serial run's
//     pass boundaries fall, so the invented links (and hence the final graph) are
//     identical.
//
// Because shards drain concurrently, labels are *not* extracted in global key
// order; the relax rule is therefore order-independent (label-correcting rather
// than label-setting).  Ties between equal-(cost, hops) parents are resolved by
// the same parent-election rule Mapper::Patch proves correct for the full run:
// the parent with the earlier (cost, hops) key won, equal keys fall to LabelLess
// order, and ties whose full-run winner depends on alias-warped pop order cannot
// be decided locally — the run *refuses* and falls back to the exact single-shard
// mapper.  Fallback is also taken when the map is small, the partition is
// degenerate (one subtree dominates), or non-default mapping options are in play.
// Either way the produced routes are byte-identical to Mapper::Run()'s — the
// golden and fuzz tests, and CI, assert exactly that.

#ifndef SRC_CORE_SHARDED_MAPPER_H_
#define SRC_CORE_SHARDED_MAPPER_H_

#include <cstddef>
#include <string>

#include "src/core/mapper.h"

namespace pathalias {

struct ShardOptions {
  // Number of shards to partition into; <= 1 never engages (plain Mapper runs).
  int shards = 0;
  // Sharding overhead only pays on large maps; below this many nodes the exact
  // single-shard mapper runs.  Tests lower it to force engagement on small maps.
  size_t min_nodes = 4096;
  // If the largest suffix-subtree bin holds more than this share of all nodes the
  // partition is degenerate (a flat 1986-style map, say) and sharding won't help.
  double max_group_share = 0.90;
  // Safety valve: a fixpoint that hasn't converged after this many drain/merge
  // rounds falls back.  Rounds scale with the inter-shard path diameter, which is
  // tiny in practice (single digits on the 100k/1M mapgen maps).
  int max_rounds = 1000;
  // Worker threads (including the caller); 0 = min(shards, hardware width).
  int threads = 0;
};

// What the sharded run did — or why it didn't.  `engaged == false` means the
// exact single-shard mapper produced the result; `fallback_reason` says why.
struct ShardStats {
  bool engaged = false;
  std::string fallback_reason;
  int shards_used = 0;
  size_t groups = 0;               // domain-suffix subtrees found
  size_t flat_nodes = 0;           // nodes with no domain suffix (one shared group)
  size_t largest_shard_nodes = 0;
  size_t rounds = 0;               // parallel drain / serial merge rounds
  size_t cross_offers = 0;         // boundary relaxations merged by the coordinator
};

// Drop-in parallel replacement for Mapper::Run() with a byte-identical-output
// guarantee.  Holds a Mapper internally both for the shared cost model and as the
// fallback path, so a ShardedMapper is always safe to use regardless of map shape.
class ShardedMapper {
 public:
  ShardedMapper(Graph* graph, MapOptions options, ShardOptions shard_options);

  // Maps from graph->local(), in parallel when the map warrants it.  Heap/relax
  // counters in the Result reflect whichever engine ran (the sharded schedule does
  // different — though deterministic — amounts of speculative work); the labels,
  // routes and final per-node state are identical to Mapper::Run()'s either way.
  Mapper::Result Run();

  const ShardStats& stats() const { return stats_; }

 private:
  struct State;  // shard bookkeeping, defined in the .cc

  const char* GateReason() const;
  const char* BuildPartition(State& state);
  PathLabel* MakeLabel(State& state, Node* node);
  void RelaxInto(State& state, PathLabel& from, Link& link);
  void DrainShard(State& state, int shard);
  const char* FirstRefusal(const State& state) const;
  const char* RunRounds(State& state);
  Mapper::Result Fallback(std::string reason);
  Mapper::Result Finalize(State& state, Mapper::Result result);

  Graph* graph_;
  MapOptions options_;
  ShardOptions shard_options_;
  Mapper mapper_;
  ShardStats stats_;
};

}  // namespace pathalias

#endif  // SRC_CORE_SHARDED_MAPPER_H_
