#include "src/core/pathalias.h"

namespace pathalias {

RunResult Run(const std::vector<InputFile>& files, const RunOptions& options,
              Diagnostics* diag) {
  RunResult result;
  result.graph = std::make_unique<Graph>(diag, options.graph);

  Parser parser(result.graph.get());
  parser.ParseFiles(files);

  std::string local = options.local;
  if (local.empty()) {
    local = std::string(parser.first_host());
    if (local.empty()) {
      diag->Error(SourcePos{}, "no hosts declared and no local host named");
      return result;
    }
    diag->Note(SourcePos{},
               "no local host named; defaulting to first declared host '" + local + "'");
  }
  result.graph->SetLocal(local);

  if (options.shard.shards > 1) {
    ShardedMapper mapper(result.graph.get(), options.map, options.shard);
    result.map = mapper.Run();
    result.shard_stats = mapper.stats();
  } else {
    Mapper mapper(result.graph.get(), options.map);
    result.map = mapper.Run();
  }
  for (const Node* unreachable : result.map.unreachable) {
    diag->Warn(SourcePos{},
               std::string(result.graph->NameOf(unreachable)) + " is unreachable");
  }

  RoutePrinter printer(result.map, options.print);
  result.routes = printer.Build();
  result.output = RoutePrinter::Render(result.routes, options.print);
  return result;
}

RunResult RunString(std::string_view map_text, const RunOptions& options, Diagnostics* diag) {
  std::vector<InputFile> files;
  files.push_back(InputFile{"<input>", std::string(map_text)});
  return Run(files, options, diag);
}

}  // namespace pathalias
