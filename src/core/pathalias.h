// Public facade: parse → map → print in one call.
//
// This is the library equivalent of running the pathalias program: feed it map files,
// get back the route list plus everything the phases learned (graph, mapping stats,
// structured routes).  Each phase remains individually usable — see Parser, Mapper and
// RoutePrinter — this header just wires the common pipeline.

#ifndef SRC_CORE_PATHALIAS_H_
#define SRC_CORE_PATHALIAS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/mapper.h"
#include "src/core/route_printer.h"
#include "src/core/sharded_mapper.h"
#include "src/graph/graph.h"
#include "src/parser/parser.h"
#include "src/support/diag.h"

namespace pathalias {

struct RunOptions {
  Graph::Options graph;
  MapOptions map;
  PrintOptions print;
  // shard.shards > 1 maps through ShardedMapper (domain-sharded, parallel,
  // byte-identical output); it falls back to the exact serial mapper on small or
  // degenerate maps — see RunResult::shard_stats for what actually ran.
  ShardOptions shard;
  // The local host (Dijkstra source).  Empty [R]: the first host declared in the input,
  // with a note (the original defaulted to the machine's own UUCP name, which would
  // make output depend on where the tool runs).
  // pathalint: allow(R1): CLI option boundary — set before any input is parsed,
  // so no interner exists yet to key it.
  std::string local;
};

struct RunResult {
  std::unique_ptr<Graph> graph;  // keeps every Node/Link/PathLabel alive
  Mapper::Result map;
  ShardStats shard_stats;  // meaningful when RunOptions::shard requested sharding
  std::vector<RouteEntry> routes;
  std::string output;  // rendered route list
};

// Runs the full pipeline.  Diagnostics accumulate in *diag; parse errors do not abort
// (bad lines are skipped), but a missing local host yields an empty route list.
RunResult Run(const std::vector<InputFile>& files, const RunOptions& options,
              Diagnostics* diag);

// Convenience for tests and examples: a single anonymous input.
RunResult RunString(std::string_view map_text, const RunOptions& options, Diagnostics* diag);

}  // namespace pathalias

#endif  // SRC_CORE_PATHALIAS_H_
