#include "src/core/sharded_mapper.h"

#include <algorithm>
#include <memory>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/support/binary_heap.h"

namespace pathalias {
namespace {

// Mapper.cc keeps its heap order and index hook file-local; the sharded engine
// needs the same order for its per-shard heaps, so it carries its own copies.
struct ShardLabelLess {
  const NameInterner* names = nullptr;

  bool operator()(const PathLabel* a, const PathLabel* b) const {
    if (a->cost != b->cost) {
      return a->cost < b->cost;
    }
    if (a->hops != b->hops) {
      return a->hops < b->hops;
    }
    if (a->node->name != b->node->name) {
      return names->View(a->node->name) < names->View(b->node->name);
    }
    return a->taint < b->taint;
  }
};

struct ShardLabelIndexHook {
  static void SetIndex(PathLabel* label, int32_t index) { label->heap_index = index; }
  static int32_t GetIndex(const PathLabel* label) { return label->heap_index; }
};

struct ShardHeap : BinaryHeap<PathLabel*, ShardLabelLess, ShardLabelIndexHook> {
  using BinaryHeap::BinaryHeap;
};

// The parent-side facts a label's stored state was computed from, snapshotted at
// apply time.  Two jobs:
//   * thread safety — during a parallel drain, tie election must compare against
//     the incumbent parent's key, but that parent may live in another shard and be
//     concurrently rewritten by its owner.  The snapshot is owned by the child's
//     shard, so reads never cross a shard boundary mid-round;
//   * staleness detection — if a re-relaxation over the stored support edge finds
//     the snapshot out of date, the label was built from values that no longer
//     hold (see RelaxInto).
struct Support {
  Cost cost = 0;
  int32_t hops = 0;
  uint8_t taint = 0;
  bool via_alias = false;
};

// A relaxation whose target lives in another shard, deferred to the coordinator.
struct Offer {
  PathLabel* from;
  Link* link;
};

struct ShardState {
  ShardHeap heap;
  std::vector<Node*> members;  // dense local index, graph order within the shard
  std::vector<Offer> outbox;
  size_t pushes = 0;
  size_t pops = 0;
  size_t relaxations = 0;
  const char* refusal = nullptr;

  explicit ShardState(ShardLabelLess less) : heap(less) {}

  void Refuse(const char* reason) {
    if (refusal == nullptr) {
      refusal = reason;
    }
  }
};

}  // namespace

struct ShardedMapper::State {
  std::vector<int32_t> shard_of;        // by node->order
  std::vector<Support> support;         // by node->order, owned by the node's shard
  PathLabel* labels = nullptr;          // arena pool, one slot per node->order
  std::vector<std::unique_ptr<ShardState>> shards;
  exec::ThreadPool* workers = nullptr;
};

ShardedMapper::ShardedMapper(Graph* graph, MapOptions options, ShardOptions shard_options)
    : graph_(graph),
      options_(std::move(options)),
      shard_options_(shard_options),
      mapper_(graph, options_) {}

const char* ShardedMapper::GateReason() const {
  if (shard_options_.shards <= 1) {
    return "shard count <= 1";
  }
  // The parallel schedule reproduces the default mapping mode only: the exactness
  // argument (monotone (cost, hops) keys, parent election at ties) is the one
  // Mapper::Patch relies on, and it needs the same gates.
  if (options_.two_label) {
    return "two-label mode";
  }
  if (!options_.trace.empty()) {
    return "trace requests";
  }
  if (!options_.prefer_fewer_hops) {
    return "hop tie-break disabled";
  }
  if (graph_->local() == nullptr) {
    return "no local host";
  }
  if (graph_->node_count() < shard_options_.min_nodes) {
    return "map below sharding threshold";
  }
  return nullptr;
}

namespace {

// The partition key: the top of a node's domain-suffix subtree.  "m1.cs.rutgers"
// walks its interner suffix chain to ".rutgers"; a top-level domain (".rutgers"
// itself — dotted, but chainless) roots its own group; undotted hosts have no
// chain and share the kNoName ("flat") group.
NameId GroupRoot(const NameInterner& names, const Node& node) {
  NameId last = kNoName;
  for (NameId s = names.Suffix(node.name); s != kNoName; s = names.Suffix(s)) {
    last = s;
  }
  if (last != kNoName) {
    return last;
  }
  std::string_view name = names.View(node.name);
  return (!name.empty() && name.front() == '.') ? node.name : kNoName;
}

}  // namespace

const char* ShardedMapper::BuildPartition(State& state) {
  const NameInterner& names = graph_->names();
  size_t node_count = graph_->node_count();
  state.shard_of.assign(node_count, 0);

  // Groups in first-encounter (graph) order — deterministic input to the packer.
  struct Group {
    NameId root;
    size_t size = 0;
  };
  std::vector<Group> groups;
  std::unordered_map<NameId, size_t> group_index;
  std::vector<size_t> group_of(node_count, 0);
  for (Node* node : graph_->nodes()) {
    NameId root = GroupRoot(names, *node);
    auto [it, inserted] = group_index.try_emplace(root, groups.size());
    if (inserted) {
      groups.push_back(Group{root, 0});
    }
    ++groups[it->second].size;
    group_of[static_cast<size_t>(node->order)] = it->second;
    if (root == kNoName) {
      ++stats_.flat_nodes;
    }
  }
  stats_.groups = groups.size();

  size_t largest_group = 0;
  for (const Group& group : groups) {
    largest_group = std::max(largest_group, group.size);
  }
  if (static_cast<double>(largest_group) >
      shard_options_.max_group_share * static_cast<double>(node_count)) {
    return "degenerate partition (one suffix subtree dominates)";
  }

  // Deterministic greedy bin-packing: groups by size descending (first-encounter
  // order breaks ties), each into the least-loaded shard (lowest index on ties).
  int shard_count = std::min<int>(shard_options_.shards, static_cast<int>(groups.size()));
  std::vector<size_t> order(groups.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return groups[a].size > groups[b].size; });
  std::vector<size_t> load(static_cast<size_t>(shard_count), 0);
  std::vector<int32_t> shard_of_group(groups.size(), 0);
  for (size_t g : order) {
    int best = 0;
    for (int s = 1; s < shard_count; ++s) {
      if (load[static_cast<size_t>(s)] < load[static_cast<size_t>(best)]) {
        best = s;
      }
    }
    shard_of_group[g] = best;
    load[static_cast<size_t>(best)] += groups[g].size;
  }

  ShardLabelLess less{&names};
  state.shards.reserve(static_cast<size_t>(shard_count));
  for (int s = 0; s < shard_count; ++s) {
    state.shards.push_back(std::make_unique<ShardState>(less));
    state.shards.back()->members.reserve(load[static_cast<size_t>(s)]);
  }
  for (Node* node : graph_->nodes()) {
    int32_t shard = shard_of_group[group_of[static_cast<size_t>(node->order)]];
    state.shard_of[static_cast<size_t>(node->order)] = shard;
    state.shards[static_cast<size_t>(shard)]->members.push_back(node);
  }
  stats_.shards_used = shard_count;
  stats_.largest_shard_nodes = *std::max_element(load.begin(), load.end());
  return nullptr;
}

PathLabel* ShardedMapper::MakeLabel(State& state, Node* node) {
  PathLabel* label = new (&state.labels[node->order]) PathLabel();
  label->node = node;
  node->label[0] = label;
  return label;
}

// The order-independent relax rule.  Unlike Mapper::Relax (label-setting: a popped
// label is final, equal-key arrivals lose to whoever came first), shards drain out
// of global key order, so this is label-correcting: every arrival is weighed
// against the stored state on its merits, and the winner of an equal-(cost, hops)
// tie is *elected* by the rule a full run provably follows (see Mapper::Patch's
// header): the parent with the earlier key relaxed first; equal-key parents pop in
// LabelLess order; alias-warped ties (either arrival over an alias edge, or either
// parent's own value reached over one) depend on flood order no local rule can
// reconstruct — those refuse, and the run falls back to the exact serial mapper.
void ShardedMapper::RelaxInto(State& state, PathLabel& from, Link& link) {
  Node* to = link.to;
  if (to->deleted() || from.node->deleted()) {
    return;
  }
  ShardState& owner = *state.shards[static_cast<size_t>(state.shard_of[to->order])];
  ++owner.relaxations;
  uint32_t penalty_bits = 0;
  Cost cost = mapper_.CostOf(from, link, &penalty_bits);
  uint32_t penalties = from.penalties | penalty_bits;
  uint8_t taint = Mapper::TaintAfter(from, *to);
  int32_t hops = from.hops + (link.alias() ? 0 : 1);
  bool from_via_alias = from.via != nullptr && from.via->alias();

  auto apply = [&](PathLabel* label) {
    label->cost = cost;
    label->hops = hops;
    label->parent = &from;
    label->via = &link;
    label->taint = taint;
    label->penalties = penalties;
    Mapper::PropagateSyntax(from, link, *label);
    Support& support = state.support[static_cast<size_t>(to->order)];
    support.cost = from.cost;
    support.hops = from.hops;
    support.taint = from.taint;
    support.via_alias = from_via_alias;
  };
  auto enqueue = [&](PathLabel* label) {
    if (!owner.heap.Contains(label)) {
      owner.heap.Push(label);
      ++owner.pushes;
    }
  };

  PathLabel* label = to->label[0];
  if (label == nullptr) {
    label = MakeLabel(state, to);
    apply(label);
    enqueue(label);
    return;
  }
  if (label->mapped) {
    // Frozen at a back-link pass boundary.  The serial run treats every label from
    // an earlier pass as final ("already mapped"): a cheaper route discovered via
    // invented links does NOT propagate into it — the paper's known 1986 flaw
    // (§Problems), which byte-identity obliges us to reproduce, not repair.
    return;
  }
  if (label->parent == nullptr) {
    return;  // the root label: nothing re-parents it
  }

  bool better = cost < label->cost || (cost == label->cost && hops < label->hops);
  bool equal = cost == label->cost && hops == label->hops;

  if (better) {
    apply(label);
    if (owner.heap.Contains(label)) {
      owner.heap.DecreaseKey(label);
    } else {
      enqueue(label);
    }
    return;
  }

  if (equal) {
    if (label->parent->node == from.node) {
      // Same parent (AddLink dedupes (from, to), so same link too, unless one is
      // an alias edge — and alias vs. real arrivals differ in hops, never tying).
      // Re-apply only if the parent's state actually moved since the stored apply;
      // the field check is what makes the refresh terminate.
      const Support& support = state.support[static_cast<size_t>(to->order)];
      PathLabel probe;
      Mapper::PropagateSyntax(from, link, probe);
      bool changed = label->via != &link || label->taint != taint ||
                     label->penalties != penalties || label->has_left != probe.has_left ||
                     label->has_right != probe.has_right || support.cost != from.cost ||
                     support.hops != from.hops || support.taint != from.taint ||
                     support.via_alias != from_via_alias;
      if (changed) {
        apply(label);  // key unchanged: any heap position stays valid
        enqueue(label);
      }
      return;
    }
    // Distinct parents at an equal key: elect the full run's winner.  The
    // incumbent parent's key/fields come from the child's Support snapshot — never
    // from the (possibly foreign, possibly mid-rewrite) parent label itself.  The
    // incumbent parent's *node* is safe to read: a label's node pointer is set
    // once at creation.
    const Support& support = state.support[static_cast<size_t>(to->order)];
    if (from.parent == label) {
      return;  // cycle echo: the candidate parent is this label's own tree child
    }
    if (support.cost != from.cost || support.hops != from.hops) {
      // Parents at different (cost, hops) popped in that order in the full run.
      bool candidate_first = from.cost < support.cost ||
                             (from.cost == support.cost && from.hops < support.hops);
      if (candidate_first) {
        apply(label);
        enqueue(label);
      }
      return;
    }
    if (link.alias() || (label->via != nullptr && label->via->alias()) ||
        support.via_alias || from_via_alias) {
      owner.Refuse("ambiguous alias tie");
      return;
    }
    // Equal-key parents pop in LabelLess order: cost and hops already tie, so the
    // comparison falls to name, then taint.
    NameId from_name = from.node->name;
    NameId incumbent_name = label->parent->node->name;
    bool candidate_wins =
        from_name != incumbent_name
            ? graph_->names().View(from_name) < graph_->names().View(incumbent_name)
            : from.taint < support.taint;
    if (candidate_wins) {
      apply(label);
      enqueue(label);
    }
    return;
  }

  // Worse — normally a no-op.  But if this arrival travels the label's own stored
  // support edge, the label was built from parent values that have since changed
  // for the worse (a tie election upstream flipped a penalty bit).  Repairing in
  // place can let mutually-supporting stale values survive, so refuse; values are
  // otherwise monotone non-increasing, which is what makes the fixpoint exact.
  if (label->parent == &from && label->via == &link) {
    owner.Refuse("stale support after an upstream tie flip");
  }
}

void ShardedMapper::DrainShard(State& state, int shard) {
  ShardState& self = *state.shards[static_cast<size_t>(shard)];
  while (!self.heap.empty() && self.refusal == nullptr) {
    PathLabel* label = self.heap.PopMin();
    ++self.pops;
    // Intra-shard relaxations apply directly (the target's label, support slot and
    // heap all belong to this shard); boundary relaxations are deferred to the
    // serial coordinator, which owns every shard between rounds.
    for (Link* link = label->node->links; link != nullptr; link = link->next) {
      if (state.shard_of[link->to->order] == shard) {
        RelaxInto(state, *label, *link);
      } else {
        self.outbox.push_back(Offer{label, link});
      }
    }
  }
}

const char* ShardedMapper::FirstRefusal(const State& state) const {
  for (const auto& shard : state.shards) {
    if (shard->refusal != nullptr) {
      return shard->refusal;
    }
  }
  return nullptr;
}

// Parallel drains alternating with serial merges until global quiescence.  The
// merge applies outboxes in shard-index order, emission order within — the whole
// schedule is a deterministic function of the round-start state, so reruns (and
// thread counts) cannot change the outcome, only the wall clock.
const char* ShardedMapper::RunRounds(State& state) {
  for (;;) {
    bool any = false;
    for (const auto& shard : state.shards) {
      if (!shard->heap.empty()) {
        any = true;
        break;
      }
    }
    if (!any) {
      return nullptr;
    }
    if (static_cast<int>(++stats_.rounds) > shard_options_.max_rounds) {
      return "round cap exceeded";
    }
    state.workers->Run(static_cast<int>(state.shards.size()),
                       [&](int shard) { DrainShard(state, shard); });
    if (const char* refusal = FirstRefusal(state)) {
      return refusal;
    }
    for (auto& shard : state.shards) {
      stats_.cross_offers += shard->outbox.size();
      for (const Offer& offer : shard->outbox) {
        RelaxInto(state, *offer.from, *offer.link);
      }
      shard->outbox.clear();
    }
    if (const char* refusal = FirstRefusal(state)) {
      return refusal;
    }
  }
}

Mapper::Result ShardedMapper::Fallback(std::string reason) {
  stats_.engaged = false;
  stats_.fallback_reason = std::move(reason);
  // Mapper::Run resets all per-node mapping state, so a partial sharded attempt
  // leaves nothing behind.  A fallback taken after a back-link pass leaves the
  // invented links in the graph; Run reaches their targets in its first drain
  // instead of its own back-link pass — same labels, same routes, fewer recorded
  // passes.
  return mapper_.Run();
}

Mapper::Result ShardedMapper::Finalize(State& state, Mapper::Result result) {
  // Every label is final: one label per node, reported by that node.  The labels
  // list is in graph order rather than the serial run's creation order — the route
  // printer sorts with a total order, so emission cannot tell the difference.
  for (Node* node : graph_->nodes()) {
    PathLabel* label = node->label[0];
    if (label == nullptr) {
      continue;
    }
    label->mapped = true;
    label->best = true;
    node->cost = label->cost;
    node->hops = label->hops;
    node->parent = label->parent != nullptr ? label->parent->node : nullptr;
    node->parent_link = label->via;
    result.labels.push_back(label);
  }
  result.label_count = result.labels.size();
  result.mapped_labels = result.label_count;
  for (const auto& shard : state.shards) {
    result.heap_pushes += shard->pushes;
    result.heap_pops += shard->pops;
    result.relaxations += shard->relaxations;
  }
  mapper_.CollectFinalStats(result);
  return result;
}

Mapper::Result ShardedMapper::Run() {
  stats_ = ShardStats{};
  if (const char* gate = GateReason()) {
    return Fallback(gate);
  }
  State state;
  if (const char* why = BuildPartition(state)) {
    return Fallback(why);
  }
  stats_.engaged = true;

  Mapper::Result result;
  result.names = &graph_->names();
  for (Node* node : graph_->nodes()) {
    node->label[0] = nullptr;
    node->label[1] = nullptr;
    node->parent = nullptr;
    node->parent_link = nullptr;
    node->cost = kUnreached;
    node->hops = 0;
  }
  // One pool slot per node, from the graph's arena (label lifetime matches the
  // serial mapper's); slots are placement-constructed on first reach.
  state.labels = graph_->arena().NewArray<PathLabel>(graph_->node_count());
  state.support.assign(graph_->node_count(), Support{});

  int width = shard_options_.threads > 0 ? shard_options_.threads
                                         : exec::ThreadPool::HardwareWidth();
  width = std::clamp(width, 1, stats_.shards_used);
  exec::ThreadPool workers(width);
  state.workers = &workers;

  Node* local = graph_->local();
  PathLabel* root = MakeLabel(state, local);
  root->cost = 0;
  root->taint = local->domain() ? 1 : 0;
  ShardState& root_shard = *state.shards[static_cast<size_t>(state.shard_of[local->order])];
  root_shard.heap.Push(root);
  ++root_shard.pushes;

  if (const char* why = RunRounds(state)) {
    return Fallback(why);
  }
  if (options_.back_links) {
    while (result.back_link_passes < static_cast<size_t>(options_.max_back_link_passes)) {
      // Back-link invention happens at global quiescence — the same pass boundary
      // the serial run uses — over node costs synced from the final labels, so the
      // candidate scan and AddLink order are identical to Mapper::Run's.  Every
      // label alive at the boundary is frozen (serial marked it mapped when it
      // popped): later passes may reach *new* nodes through it but never rewrite
      // it, even when an invented link exposes a cheaper route — the 1986
      // label-setting behavior the byte-identity guarantee includes.
      for (Node* node : graph_->nodes()) {
        PathLabel* label = node->label[0];
        if (label != nullptr) {
          label->mapped = true;
        }
        node->cost = label != nullptr ? label->cost : kUnreached;
      }
      size_t invented = mapper_.InventBackLinks(result);
      if (invented == 0) {
        break;
      }
      ++result.back_link_passes;
      // Seed the pass from frozen labels only — the labels that existed at the
      // boundary — exactly the serial run's `label->mapped` seeding filter; labels
      // created mid-loop by these very relaxations are not sources until they
      // drain in the rounds below.
      for (Node* node : graph_->nodes()) {
        PathLabel* label = node->label[0];
        if (label == nullptr || !label->mapped) {
          continue;
        }
        for (Link* link = node->links; link != nullptr; link = link->next) {
          if (link->invented()) {
            RelaxInto(state, *label, *link);
          }
        }
      }
      if (const char* refusal = FirstRefusal(state)) {
        return Fallback(refusal);
      }
      if (const char* why = RunRounds(state)) {
        return Fallback(why);
      }
    }
  }
  return Finalize(state, std::move(result));
}

}  // namespace pathalias
