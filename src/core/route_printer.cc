#include "src/core/route_printer.h"

#include <algorithm>
#include <cassert>

namespace pathalias {
namespace {

// Same ordering the mapper's heap uses; children are visited cheapest-first.  Names
// resolve lazily through the interner carried in the mapping result.
bool LabelBefore(const PathLabel* a, const PathLabel* b, const NameInterner& names) {
  if (a->cost != b->cost) {
    return a->cost < b->cost;
  }
  if (a->hops != b->hops) {
    return a->hops < b->hops;
  }
  if (a->node->name != b->node->name) {
    return names.View(a->node->name) < names.View(b->node->name);
  }
  if (a->taint != b->taint) {
    return a->taint < b->taint;
  }
  // Shadow (private) instances share a NameId and can tie on every field above;
  // creation order makes the sort total, so the emitted order is a function of
  // the mapping alone — not of how the labels vector happened to be laid out.
  // The sharded mapper's byte-identity guarantee rides on this.
  return a->node->order < b->node->order;
}

// The parent's route with %s replaced by host-op-%s (left) or %s-op-host (right).
std::string Splice(const std::string& parent_route, const std::string& name, char op,
                   bool right) {
  size_t marker = parent_route.find("%s");
  assert(marker != std::string::npos);
  std::string replacement;
  if (right) {
    // An address may carry only one '@'; a second right-hand hop inside an existing
    // user@host form uses the "underground syntax" the paper describes
    // (user%inner@outer): the outer relay rewrites the % to an @ on arrival.
    char effective = op;
    if (op == '@' && parent_route.find('@', marker + 2) != std::string::npos) {
      effective = '%';
    }
    replacement = "%s" + std::string(1, effective) + name;
  } else {
    replacement = name + std::string(1, op) + "%s";
  }
  std::string out = parent_route;
  out.replace(marker, 2, replacement);
  return out;
}

struct Frame {
  const PathLabel* label = nullptr;
  // pathalint: allow(R1): print-walk scratch — output text being composed
  // (domainized names), not a key; see RouteEntry::name.
  std::string display_name;
  std::string route;
  // Suffix appended to successor names while descending a domain chain (the domain's
  // own name, already combined with its domain ancestors').
  // pathalint: allow(R1): print-walk scratch — accumulated ".domain" spelling for
  // the subtree being rendered; exists only during output composition.
  std::string domain_suffix;
  // Syntax captured when this placeholder chain was entered.
  char entry_op = kDefaultOp;
  bool entry_right = false;
  Cost first_hop = 0;
};

// The paper's name-appending rule, tolerant of both declaration conventions: split
// names (.rutgers under .edu → append) and fully qualified ones (.rutgers.edu under
// .edu → already carries the suffix, append nothing).
std::string Domainize(std::string_view name, const Node& parent, const std::string& suffix) {
  if (!parent.domain() || suffix.empty()) {
    return std::string(name);
  }
  if (name.size() > suffix.size() && name.ends_with(suffix)) {
    return std::string(name);
  }
  return std::string(name) + suffix;
}

// The preorder traversal's descent step: the frame for `child` given its parent's
// frame.  Factored out so the incremental per-node builder (BuildEntryFor) replays
// the exact same name/route/suffix/syntax logic the full traversal uses.
Frame MakeChildFrame(const Frame& frame, const PathLabel& child, const NameInterner& names) {
  const PathLabel& label = *frame.label;
  const Node& node = *label.node;
  const Link& via = *child.via;
  const Node& child_node = *child.node;
  Frame next;
  next.label = &child;
  next.first_hop = label.parent == nullptr ? child.cost : frame.first_hop;
  if (via.alias()) {
    // Same machine, other name: the route (and any pending domain context) carries
    // over unchanged; only the displayed name differs.
    next.display_name = std::string(names.View(child_node.name));
    next.route = frame.route;
    next.domain_suffix = frame.domain_suffix;
    next.entry_op = frame.entry_op;
    next.entry_right = frame.entry_right;
  } else if (child_node.placeholder()) {
    // "the route to a network is identical to the route to its parent."
    next.route = frame.route;
    next.display_name = std::string(names.View(child_node.name));
    if (node.placeholder()) {
      next.entry_op = frame.entry_op;  // stay with the syntax used at entry
      next.entry_right = frame.entry_right;
    } else {
      next.entry_op = via.op;
      next.entry_right = via.right_syntax();
    }
    if (child_node.domain()) {
      next.domain_suffix = Domainize(names.View(child_node.name), node, frame.domain_suffix);
    }
  } else {
    // A real host: splice it into the parent's route.  Under a domain its name is
    // extended with the accumulated domain suffix first.
    std::string name = Domainize(names.View(child_node.name), node, frame.domain_suffix);
    char op = node.placeholder() ? frame.entry_op : via.op;
    bool right = node.placeholder() ? frame.entry_right : via.right_syntax();
    next.display_name = name;
    next.route = Splice(frame.route, name, op, right);
  }
  return next;
}

bool Printable(const PathLabel& label) {
  const Node& node = *label.node;
  if (!label.best || node.is_private() || node.deleted()) {
    return false;
  }
  if (node.domain()) {
    // "a top level domain, i.e., a domain whose parent is not also a domain, is shown
    // in the output."
    const Node* parent = label.parent != nullptr ? label.parent->node : nullptr;
    return parent != nullptr && !parent->domain();
  }
  return !node.net();
}

}  // namespace

std::vector<RouteEntry> RoutePrinter::Build() {
  std::vector<RouteEntry> entries;
  entries.reserve(map_->mapped_hosts);
  // Attach each mapped label to its parent's child list.  Pushing in ascending
  // order leaves every child list descending, which is exactly the order the
  // traversal wants to push frames (cheapest child ends up on top of the stack)
  // — no per-node child buffer or reversal on the emission path.
  std::vector<PathLabel*> mapped;
  const PathLabel* root = nullptr;
  for (PathLabel* label : map_->labels) {
    label->child = nullptr;
    label->sibling = nullptr;
  }
  for (PathLabel* label : map_->labels) {
    if (!label->mapped) {
      continue;
    }
    if (label->parent == nullptr) {
      root = label;
      continue;
    }
    mapped.push_back(label);
  }
  const NameInterner& names = *map_->names;
  std::sort(mapped.begin(), mapped.end(), [&names](const PathLabel* a, const PathLabel* b) {
    return LabelBefore(a, b, names);
  });
  for (PathLabel* label : mapped) {
    label->sibling = label->parent->child;
    label->parent->child = label;
  }
  if (root == nullptr) {
    return entries;
  }

  std::vector<Frame> stack;
  Frame root_frame;
  root_frame.label = root;
  root_frame.display_name = std::string(names.View(root->node->name));
  root_frame.route = "%s";
  stack.push_back(std::move(root_frame));

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    const PathLabel& label = *frame.label;
    const Node& node = *label.node;

    if (Printable(label)) {
      Cost cost = options_.first_hop_cost ? frame.first_hop : label.cost;
      entries.push_back(RouteEntry{frame.display_name, frame.route, cost, &node});
    }

    // Child lists are descending, so pushing in list order leaves the cheapest
    // child on top of the stack — it is popped (and printed) first.
    for (const PathLabel* child = label.child; child != nullptr; child = child->sibling) {
      stack.push_back(MakeChildFrame(frame, *child, names));
    }
  }
  return entries;
}

std::optional<RouteEntry> RoutePrinter::BuildEntryFor(const PathLabel* label) const {
  if (label == nullptr || !label->mapped || !Printable(*label)) {
    return std::nullopt;
  }
  std::vector<const PathLabel*> chain;  // label up to the root...
  for (const PathLabel* ancestor = label; ancestor != nullptr; ancestor = ancestor->parent) {
    chain.push_back(ancestor);
  }
  const NameInterner& names = *map_->names;
  Frame frame;  // ...then the root's frame walked back down the chain
  frame.label = chain.back();
  frame.display_name = std::string(names.View(chain.back()->node->name));
  frame.route = "%s";
  for (size_t i = chain.size() - 1; i-- > 0;) {
    frame = MakeChildFrame(frame, *chain[i], names);
  }
  Cost cost = options_.first_hop_cost ? frame.first_hop : label->cost;
  return RouteEntry{std::move(frame.display_name), std::move(frame.route), cost, label->node};
}

std::string RoutePrinter::Render(const std::vector<RouteEntry>& entries,
                                 const PrintOptions& options) {
  std::string out;
  for (const RouteEntry& entry : entries) {
    if (options.include_costs) {
      out += std::to_string(entry.cost);
      out += '\t';
    }
    out += entry.name;
    out += '\t';
    out += entry.route;
    out += '\n';
  }
  return out;
}

std::string RoutePrinter::SpliceUser(std::string_view route, std::string_view argument) {
  size_t marker = route.find("%s");
  if (marker == std::string_view::npos) {
    return std::string(route);
  }
  std::string out(route);
  out.replace(marker, 2, argument);
  return out;
}

}  // namespace pathalias
