// Route generation (paper §Printing the routes).
//
// A preorder traversal of the shortest-path tree.  The root (local host) is labeled
// %s; each child's route is the parent's route with %s replaced by host!%s (LEFT
// syntax) or %s@host (RIGHT syntax).  Routes are carried on the traversal stack, never
// stored in nodes — the paper notes that storing them would cost "hundreds of kbytes".
//
// Special cases, all from the paper:
//   * networks: the route to a network is the route to its parent; the net itself is
//     not printed; network→member edges use the syntax "encountered when entering the
//     network";
//   * domains: act like networks, but the domain's name is appended to the name of its
//     successor (caip under .rutgers under .edu prints as caip.rutgers.edu), and a
//     top-level domain — one whose tree parent is not a domain — IS printed, with its
//     parent's route;
//   * aliases: the aliased host inherits the route verbatim (the name in the route is
//     "the one understood to a host's predecessor"), printed under its own name;
//   * private hosts: labeled but not printed; they may still appear inside other
//     hosts' routes as relays.
//
// Output order is preorder with children sorted by (cost, hops, name), which renders
// the paper's 1981 example byte-for-byte.

#ifndef SRC_CORE_ROUTE_PRINTER_H_
#define SRC_CORE_ROUTE_PRINTER_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/mapper.h"
#include "src/graph/graph.h"

namespace pathalias {

struct RouteEntry {
  // pathalint: allow(R1): the output record itself — the domainized display name
  // composed for printing; interner bytes cannot represent the composition.
  std::string name;   // output name (domainized for hosts reached through domains)
  std::string route;  // printf format string containing exactly one %s
  Cost cost = 0;      // total path cost, or first-hop cost under -f
  const Node* node = nullptr;
};

struct PrintOptions {
  bool include_costs = false;  // -c: leading cost column (the paper's example shows it)
  bool first_hop_cost = false;  // -f: report the cost of the first hop, not the total
};

class RoutePrinter {
 public:
  RoutePrinter(const Mapper::Result& map, PrintOptions options)
      : map_(&map), options_(options) {}

  // Produces entries in output order.
  std::vector<RouteEntry> Build();

  // Builds the single entry `label`'s host would contribute to Build()'s output —
  // same display name (domain suffixes included), same route string, same cost — by
  // replaying the frame logic along the label's ancestor chain alone.  Returns
  // nullopt for labels Build() would not print (placeholders, private hosts,
  // non-best labels, unmapped labels).  The incremental pipeline uses this to
  // regenerate only the dirty region's routes.
  std::optional<RouteEntry> BuildEntryFor(const PathLabel* label) const;

  // Tab-separated lines: "name<TAB>route" or "cost<TAB>name<TAB>route" under -c.
  static std::string Render(const std::vector<RouteEntry>& entries, const PrintOptions& options);

  std::string BuildAndRender() { return Render(Build(), options_); }

  // Replaces the %s in `route` with `argument` (what a mailer does with a route).
  static std::string SpliceUser(std::string_view route, std::string_view argument);

 private:
  const Mapper::Result* map_;
  PrintOptions options_;
};

}  // namespace pathalias

#endif  // SRC_CORE_ROUTE_PRINTER_H_
