#include "src/core/mapper.h"

#include <optional>

#include "src/support/binary_heap.h"

namespace pathalias {
namespace {

// Deterministic extraction order: cost, then hop count ("keep paths short"), then name.
// Equal names are equal ids; the string compare only breaks ties between distinct
// names, resolved lazily through the interner.
struct LabelLess {
  const NameInterner* names = nullptr;
  bool prefer_fewer_hops = true;

  bool operator()(const PathLabel* a, const PathLabel* b) const {
    if (a->cost != b->cost) {
      return a->cost < b->cost;
    }
    if (prefer_fewer_hops && a->hops != b->hops) {
      return a->hops < b->hops;
    }
    if (a->node->name != b->node->name) {
      return names->View(a->node->name) < names->View(b->node->name);
    }
    return a->taint < b->taint;
  }
};

struct LabelIndexHook {
  static void SetIndex(PathLabel* label, int32_t index) { label->heap_index = index; }
  static int32_t GetIndex(const PathLabel* label) { return label->heap_index; }
};

}  // namespace

struct MapperHeap : BinaryHeap<PathLabel*, LabelLess, LabelIndexHook> {
  using BinaryHeap::BinaryHeap;
};

Mapper::Mapper(Graph* graph, MapOptions options) : graph_(graph), options_(std::move(options)) {}

uint8_t Mapper::TaintAfter(const PathLabel& prev, const Node& to) {
  return (prev.taint != 0 || to.domain()) ? 1 : 0;
}

void Mapper::PropagateSyntax(const PathLabel& prev, const Link& link, PathLabel& to) {
  to.has_left = prev.has_left;
  to.has_right = prev.has_right;
  if (link.alias() || link.net_member()) {
    return;  // no operator is emitted for these at print time
  }
  if (link.right_syntax()) {
    to.has_right = true;
  } else {
    to.has_left = true;
  }
}

Cost Mapper::CostOf(const PathLabel& prev, const Link& link, uint32_t* penalty_bits) const {
  if (penalty_bits != nullptr) {
    *penalty_bits = 0;
  }
  if (link.alias()) {
    return prev.cost;  // "by definition"
  }
  auto charge = [&](Cost& cost, uint32_t bit) {
    cost += kInfinity;
    if (penalty_bits != nullptr) {
      *penalty_bits |= bit;
    }
  };
  const Node& from = *prev.node;
  const Node& to = *link.to;
  Cost cost = prev.cost + link.cost;
  if (!from.local()) {
    cost += from.adjust;  // adjust {host(n)}: bias on every path through the host
  }
  if (link.dead()) {
    charge(cost, kPenaltyDeadLink);
  }
  if (from.terminal() && !from.local()) {
    charge(cost, kPenaltyDeadHost);  // dead hosts may receive but not relay
  }
  if (to.gatewayed() && !link.gateway() && !link.invented()) {
    if (to.domain()) {
      // A declared link into a domain is an implicit gateway [R], except going up the
      // domain tree, and except when explicit gateways were declared for it.
      // Going *up* the domain tree (".rutgers.edu" into ".edu") is an integer walk of
      // the interner's precomputed suffix chain — no byte comparisons.
      if (graph_->names().HasSuffix(from.name, to.name)) {
        charge(cost, kPenaltyUpDomain);
      } else if ((to.flags & kNodeExplicitGateways) != 0) {
        charge(cost, kPenaltyGateway);
      }
    } else {
      charge(cost, kPenaltyGateway);  // gatewayed network entered anywhere but a gateway
    }
  }
  // "once a path enters a domain, pathalias penalizes further links" — the ARPANET may
  // not be used as a relay.  Placeholder expansion (net/domain to member) is exempt.
  if (prev.taint != 0 && !from.placeholder()) {
    charge(cost, kPenaltyDomainRelay);
  }
  if (!link.net_member()) {  // net→member edges inherit syntax; no mixing possible here
    if (!link.right_syntax() && prev.has_right) {
      // a!user@b never delivers by way of b then a under any parse.
      charge(cost, kPenaltySyntax);
    } else if (link.right_syntax() && prev.has_left && options_.penalize_left_then_right) {
      charge(cost, kPenaltySyntax);
    }
  }
  if (cost < prev.cost) {
    cost = prev.cost;  // Dijkstra invariant: negative adjustments cannot shorten a prefix
  }
  return cost;
}

void Mapper::ApplyTraceRequests() {
  for (const std::string& request : options_.trace) {
    size_t bang = request.find('!');
    if (bang == std::string::npos) {
      if (Node* node = graph_->Find(request)) {
        node->flags |= kNodeTraced;
      } else {
        graph_->diag().Warn(SourcePos{}, "trace target " + request + " is not in the map");
      }
      continue;
    }
    Node* from = graph_->Find(request.substr(0, bang));
    Node* to = graph_->Find(request.substr(bang + 1));
    bool found = false;
    if (from != nullptr && to != nullptr) {
      for (Link* link = from->links; link != nullptr; link = link->next) {
        if (link->to == to) {
          link->flags |= kLinkTraced;
          found = true;
        }
      }
    }
    if (!found) {
      graph_->diag().Warn(SourcePos{}, "trace target link " + request + " is not in the map");
    }
  }
}

PathLabel* Mapper::MakeLabel(Node* node, uint8_t taint) {
  PathLabel* label = graph_->arena().New<PathLabel>();
  label->node = node;
  label->taint = taint;
  result_->labels.push_back(label);
  ++result_->label_count;
  return label;
}

void Mapper::Relax(PathLabel& from, Link& link, MapperHeap& heap, Result& result) {
  Node* to = link.to;
  if (to->deleted() || from.node->deleted()) {
    return;
  }
  ++result.relaxations;
  uint32_t penalty_bits = 0;
  Cost cost = CostOf(from, link, &penalty_bits);
  uint32_t penalties = from.penalties | penalty_bits;
  uint8_t taint = TaintAfter(from, *to);
  // Default mode keeps one label per node and lets the taint bit ride along as node
  // state — the 1986 approximation.  Two-label mode separates the states.
  uint8_t slot = options_.two_label ? taint : 0;
  int32_t hops = from.hops + (link.alias() ? 0 : 1);

  PathLabel* label = to->label[slot];
  const char* outcome = nullptr;
  if (label == nullptr) {
    label = MakeLabel(to, taint);
    to->label[slot] = label;
    label->cost = cost;
    label->hops = hops;
    label->parent = &from;
    label->via = &link;
    label->taint = taint;
    label->penalties = penalties;
    PropagateSyntax(from, link, *label);
    heap.Push(label);
    ++result.heap_pushes;
    outcome = "queued";
  } else if (!label->mapped) {
    if (cost < label->cost ||
        (cost == label->cost && options_.prefer_fewer_hops && hops < label->hops)) {
      label->cost = cost;
      label->hops = hops;
      label->parent = &from;
      label->via = &link;
      label->taint = taint;
      label->penalties = penalties;
      PropagateSyntax(from, link, *label);
      heap.DecreaseKey(label);
      outcome = "improved";
    } else {
      outcome = "kept";
    }
  } else {
    outcome = "already mapped";
  }
  if (from.node->traced() || to->traced() || link.traced()) {
    graph_->diag().Note(
        SourcePos{}, "trace: " + std::string(graph_->NameOf(from.node)) + " -> " +
                         std::string(graph_->NameOf(to)) + " cost " + std::to_string(cost) +
                         " (" + outcome + ")");
  }
}

void Mapper::CollectFinalStats(Result& result) const {
  result.mapped_hosts = 0;
  result.unreachable_hosts = 0;
  result.mixed_syntax_routes = 0;
  result.syntax_penalized_routes = 0;
  result.penalized_routes = 0;
  result.unreachable.clear();
  for (Node* node : graph_->nodes()) {
    if (node->deleted() || node->placeholder()) {
      continue;
    }
    if (node->cost == kUnreached) {
      ++result.unreachable_hosts;
      result.unreachable.push_back(node);
      continue;
    }
    ++result.mapped_hosts;
    for (uint8_t slot = 0; slot < 2; ++slot) {
      PathLabel* label = node->label[slot];
      if (label == nullptr || !label->best) {
        continue;
      }
      if (label->has_left && label->has_right) {
        ++result.mixed_syntax_routes;
      }
      if ((label->penalties & kPenaltySyntax) != 0) {
        ++result.syntax_penalized_routes;
      }
      if (label->penalties != 0) {
        ++result.penalized_routes;
      }
    }
  }
}

size_t Mapper::InventBackLinks(Result& result) {
  size_t invented = 0;
  // Take a snapshot: AddLink would otherwise extend adjacency lists mid-walk.
  std::vector<std::pair<Node*, Link*>> candidates;
  for (Node* node : graph_->nodes()) {
    if (node->deleted() || node->cost != kUnreached || node->placeholder()) {
      continue;
    }
    for (Link* link = node->links; link != nullptr; link = link->next) {
      if (link->alias() || link->dead() || link->to->deleted()) {
        continue;
      }
      if (link->to->cost != kUnreached) {
        candidates.emplace_back(node, link);
      }
    }
  }
  for (auto [node, link] : candidates) {
    Node* neighbor = link->to;
    Link* back = graph_->AddLink(neighbor, node, link->cost, link->op, link->right_syntax(),
                                 SourcePos{}, kLinkInvented);
    if (back != nullptr && back->invented()) {
      ++invented;
    }
  }
  result.invented_links += invented;
  return invented;
}

Mapper::Result Mapper::Run() {
  Result result;
  result.names = &graph_->names();
  result_ = &result;
  Node* local = graph_->local();
  if (local == nullptr) {
    graph_->diag().Error(SourcePos{}, "no local host set before mapping");
    result_ = nullptr;
    return result;
  }
  for (Node* node : graph_->nodes()) {
    node->label[0] = nullptr;
    node->label[1] = nullptr;
    node->parent = nullptr;
    node->parent_link = nullptr;
    node->cost = kUnreached;
    node->hops = 0;
  }
  ApplyTraceRequests();

  // "since the hash table is no longer needed and is guaranteed to be large enough, we
  // use that space instead of allocating a new array."  The interner's retired probe
  // table plays the original hash table's part.
  size_t max_labels = graph_->node_count() * (options_.two_label ? 2 : 1) + 2;
  PathLabel** storage = nullptr;
  size_t capacity = 0;
  if (options_.reuse_hash_table_storage && !graph_->names().stolen()) {
    auto [ptr, bytes] = graph_->names().StealTable();
    if (bytes / sizeof(PathLabel*) >= max_labels) {
      storage = static_cast<PathLabel**>(ptr);
      capacity = bytes / sizeof(PathLabel*);
    } else {
      if (ptr != nullptr) {
        graph_->arena().Donate(ptr, bytes);
      }
      // two_label needs 2v+2 slots but the table only guarantees ~1.27v.  Retired
      // tables from earlier growths (and oversize-allocation tails) sit on the arena's
      // donation list — steal the largest that fits before giving up on reuse.
      auto [donated, donated_bytes] =
          graph_->arena().TakeDonation(max_labels * sizeof(PathLabel*) + alignof(PathLabel*));
      if (donated != nullptr) {
        auto address = reinterpret_cast<uintptr_t>(donated);
        uintptr_t aligned =
            (address + alignof(PathLabel*) - 1) & ~uintptr_t{alignof(PathLabel*) - 1};
        storage = reinterpret_cast<PathLabel**>(aligned);
        capacity = (donated_bytes - (aligned - address)) / sizeof(PathLabel*);
        result.heap_storage_from_donation = true;
      }
    }
  }
  LabelLess less{&graph_->names(), options_.prefer_fewer_hops};
  std::optional<MapperHeap> heap;
  if (storage != nullptr) {
    heap.emplace(storage, capacity, less);
    result.heap_storage_reused = true;
  } else {
    heap.emplace(less);
  }

  PathLabel* root = MakeLabel(local, local->domain() ? 1 : 0);
  uint8_t root_slot = options_.two_label ? root->taint : 0;
  local->label[root_slot] = root;
  root->cost = 0;
  heap->Push(root);
  ++result.heap_pushes;

  auto drain = [&] {
    while (!heap->empty()) {
      PathLabel* label = heap->PopMin();
      ++result.heap_pops;
      label->mapped = true;
      ++result.mapped_labels;
      Node* node = label->node;
      if (node->cost == kUnreached) {
        // First (hence cheapest) label extracted for this node: it reports the route.
        label->best = true;
        node->cost = label->cost;
        node->hops = label->hops;
        node->parent = label->parent != nullptr ? label->parent->node : nullptr;
        node->parent_link = label->via;
      }
      for (Link* link = node->links; link != nullptr; link = link->next) {
        Relax(*label, *link, *heap, result);
      }
    }
  };

  drain();
  if (options_.back_links) {
    while (result.back_link_passes < static_cast<size_t>(options_.max_back_link_passes)) {
      size_t invented = InventBackLinks(result);
      if (invented == 0) {
        break;
      }
      ++result.back_link_passes;
      // Re-relax the invented links from their (already final) mapped endpoints, then
      // resume the normal extraction loop.
      for (Node* node : graph_->nodes()) {
        for (uint8_t slot = 0; slot < 2; ++slot) {
          PathLabel* label = node->label[slot];
          if (label == nullptr || !label->mapped) {
            continue;
          }
          for (Link* link = node->links; link != nullptr; link = link->next) {
            if (link->invented()) {
              Relax(*label, *link, *heap, result);
            }
          }
        }
      }
      drain();
    }
  }

  CollectFinalStats(result);
  if (result.heap_storage_from_donation && storage != nullptr) {
    // The heap has drained; recycle the borrowed region for later arena requests.
    graph_->arena().Donate(storage, capacity * sizeof(PathLabel*));
  }
  result_ = nullptr;
  return result;
}

// --- incremental patching ------------------------------------------------------

struct Mapper::PatchState {
  std::vector<uint8_t> dirty;  // by node->order
  std::vector<Node*> dirty_nodes;
  std::vector<PathLabel*> stack;  // DirtySubtree scratch
  bool reopened = false;
  // First refusal the drain hit, if any: a tie whose full-run winner depends on
  // alias-warped pop order, or a late arrival that invalidates an already-drained
  // label (see Patch's header comment).  Non-null means the patch must refuse.
  const char* refusal = nullptr;

  void Refuse(const char* reason) {
    if (refusal == nullptr) {
      refusal = reason;
    }
  }

  bool IsDirty(const Node* node) const {
    return static_cast<size_t>(node->order) < dirty.size() && dirty[node->order] != 0;
  }
  void MarkDirty(Node* node) {
    dirty[node->order] = 1;
    dirty_nodes.push_back(node);
  }
};

namespace {

void ResetMappingState(Node* node) {
  node->label[0] = nullptr;
  node->label[1] = nullptr;
  node->parent = nullptr;
  node->parent_link = nullptr;
  node->cost = kUnreached;
  node->hops = 0;
}

}  // namespace

void Mapper::DirtySubtree(Node* node, PatchState& state) {
  if (state.IsDirty(node)) {
    return;
  }
  PathLabel* label = node->label[0];
  state.MarkDirty(node);
  ResetMappingState(node);
  if (label == nullptr) {
    return;
  }
  state.stack.clear();
  state.stack.push_back(label);
  while (!state.stack.empty()) {
    PathLabel* current = state.stack.back();
    state.stack.pop_back();
    for (PathLabel* child = current->child; child != nullptr; child = child->sibling) {
      Node* child_node = child->node;
      if (state.IsDirty(child_node)) {
        continue;  // its subtree was reset when it was
      }
      state.MarkDirty(child_node);
      ResetMappingState(child_node);
      state.stack.push_back(child);
    }
  }
}

void Mapper::PatchRelax(PathLabel& from, Link& link, MapperHeap& heap, Result& result,
                        PatchState& state) {
  Node* to = link.to;
  if (to->deleted() || from.node->deleted()) {
    return;
  }
  ++result.relaxations;
  uint32_t penalty_bits = 0;
  Cost cost = CostOf(from, link, &penalty_bits);
  uint32_t penalties = from.penalties | penalty_bits;
  uint8_t taint = TaintAfter(from, *to);
  int32_t hops = from.hops + (link.alias() ? 0 : 1);
  LabelLess less{&graph_->names(), options_.prefer_fewer_hops};

  auto apply = [&](PathLabel* label) {
    label->cost = cost;
    label->hops = hops;
    label->parent = &from;
    label->via = &link;
    label->taint = taint;
    label->penalties = penalties;
    PropagateSyntax(from, link, *label);
  };

  PathLabel* label = to->label[0];
  if (label == nullptr) {
    // First candidate: either a dirty node being recomputed or a previously
    // unreachable placeholder the edits just made reachable — either way it is now
    // part of the patched region (its route may appear).
    if (!state.IsDirty(to)) {
      state.MarkDirty(to);
    }
    label = MakeLabel(to, taint);
    to->label[0] = label;
    apply(label);
    heap.Push(label);
    ++result.heap_pushes;
    return;
  }

  bool better = cost < label->cost ||
                (cost == label->cost && options_.prefer_fewer_hops && hops < label->hops);
  bool equal = cost == label->cost && (!options_.prefer_fewer_hops || hops == label->hops);

  // Full-run winner of an equal-(cost, hops) tie between the existing label's parent
  // and this candidate's (distinct) parent: +1 the candidate, -1 the existing label,
  // 0 undecidable locally (alias-warped pop order; the patch must refuse).  See the
  // header's tie-break proof: parents at different (cost, hops) popped in that
  // order; parents at equal (cost, hops) popped in LabelLess order unless either
  // reached its value over an alias edge (then its pop slot depends on when the
  // alias source popped, which the retained labels do not record).
  auto tie_outcome = [&]() -> int {
    const PathLabel* existing = label->parent;
    if (existing == nullptr) {
      return -1;  // the root label: nothing re-parents it
    }
    // A cycle echo: the candidate parent is this label's own tree child (alias
    // pairs and chains bounce every relaxation straight back).  The child popped
    // after this label did — parenthood fixes pop order — so in the full run its
    // arrival came after the label was final and changed nothing.
    if (from.parent == label) {
      return -1;
    }
    // Parents at different (cost, hops) popped in that order no matter how either
    // was reached — extraction is monotone in (cost, hops) even over alias edges —
    // so the earlier key arrived first and won.  (This also settles alias-cycle
    // echoes: the alias child relaxing back into its parent loses to the parent's
    // strictly earlier original parent.)
    if (existing->cost != from.cost || existing->hops != from.hops) {
      bool candidate_first =
          from.cost < existing->cost ||
          (from.cost == existing->cost && from.hops < existing->hops);
      return candidate_first ? +1 : -1;
    }
    // Parents tie in (cost, hops).  Equal-key pop order is LabelLess order only for
    // labels created before their plateau began draining; an alias edge anywhere in
    // the tie — the arrival edges (equal parent keys force both to be alias edges
    // if either is), or a parent that reached its own value over one — makes the
    // winner depend on flood order the retained labels do not record.
    if (link.alias() || (label->via != nullptr && label->via->alias())) {
      return 0;
    }
    if ((existing->via != nullptr && existing->via->alias()) ||
        (from.via != nullptr && from.via->alias())) {
      return 0;
    }
    return less(&from, existing) ? +1 : -1;
  };

  if (!label->mapped) {
    // Queued (dirty) label.  Unlike Run's first-wins rule, ties resolve by comparing
    // parent labels: relaxation order inside the patch differs from a full run, so
    // the winner must be decided by the graph, not by arrival.  A same-parent
    // candidate refreshes in place: the parent was reopened at unchanged
    // (cost, hops) and its final state must propagate over the stale one.
    if (better) {
      apply(label);
      heap.DecreaseKey(label);
    } else if (equal && label->parent != nullptr) {
      if (label->parent->node == from.node) {
        apply(label);  // (cost, hops) unchanged: the heap position stays valid
      } else {
        switch (tie_outcome()) {
          case +1:
            apply(label);
            break;
          case 0:
            state.Refuse("ambiguous alias tie in the dirty region");
            break;
          default:
            break;
        }
      }
    }
    return;
  }

  if (state.IsDirty(to)) {
    // Drained within this patch.  Mid-drain arrivals were all weighed before the
    // pop (a non-alias candidate's parent pops strictly earlier; alias echoes lose
    // on parent keys), but a node that entered the dirty region mid-drain (a
    // reopened subtree) meets its boundary parents only at the NEXT seeding round —
    // possibly after it popped.  A late equal arrival whose parent the full run
    // provably elected (+1), or whose tie is alias-warped (0), means the drained
    // label kept the wrong parent: refuse.  (-1 is the normal case: the existing
    // parent won.)  A late better arrival is impossible — reopens only improve the
    // region, so every boundary candidate was ≥ the old (hence the new) optimum —
    // but it would be a silent mis-patch, so it refuses defensively too.
    if (better) {
      state.Refuse("late arrival into a reopened region");
    } else if (equal && label->parent != nullptr && label->parent->node != from.node) {
      switch (tie_outcome()) {
        case +1:
          state.Refuse("late arrival into a reopened region");
          break;
        case 0:
          state.Refuse("ambiguous alias tie in the dirty region");
          break;
        default:
          break;
      }
    }
    return;
  }
  // A clean, mapped label the edits now beat (or tie with a parent the full run
  // elects): the full rebuild would have routed it differently.  Reopen it — its old
  // subtree's route strings embed its old route, so the whole subtree re-enters the
  // dirty region — and requeue it under the new candidate.  The outer loop reseeds
  // the new region's boundary before the next drain.
  bool tie_win = false;
  if (!better && equal && label->parent != nullptr && label->parent->node != from.node) {
    switch (tie_outcome()) {
      case +1:
        tie_win = true;
        break;
      case 0:
        state.Refuse("ambiguous alias tie in the dirty region");
        return;
      default:
        break;
    }
  }
  if (!better && !tie_win) {
    return;
  }
  DirtySubtree(to, state);
  PathLabel* fresh = MakeLabel(to, taint);
  to->label[0] = fresh;
  apply(fresh);
  heap.Push(fresh);
  ++result.heap_pushes;
  state.reopened = true;
}

std::optional<std::vector<Node*>> Mapper::Patch(Result& result,
                                                std::span<Node* const> dirty_seeds,
                                                std::string* why) {
  auto refuse = [why](const char* reason) -> std::nullopt_t {
    if (why != nullptr) {
      *why = reason;
    }
    return std::nullopt;
  };
  // --- gates (see header) ---
  if (options_.two_label || !options_.trace.empty() || !options_.prefer_fewer_hops) {
    return refuse("non-default mapping options");
  }
  Node* local = graph_->local();
  if (local == nullptr || local->deleted()) {
    return refuse("no live local host");
  }
  if (result.names != &graph_->names()) {
    return refuse("retained result belongs to another graph");
  }
  if (graph_->invented_link_count() > 0) {
    return refuse("graph holds invented back links");
  }
  for (Node* seed : dirty_seeds) {
    if (seed == local) {
      return refuse("local host is a dirty seed");
    }
  }

  result_ = &result;
  PatchState state;
  state.dirty.assign(graph_->node_count(), 0);

  // Rebuild the old tree's child lists (the route printer may have left its own).
  for (PathLabel* label : result.labels) {
    label->child = nullptr;
    label->sibling = nullptr;
  }
  for (PathLabel* label : result.labels) {
    if (label->mapped && label->parent != nullptr) {
      label->sibling = label->parent->child;
      label->parent->child = label;
    }
  }

  for (Node* seed : dirty_seeds) {
    DirtySubtree(seed, state);
  }

  // Outside the dirty region every label is reused as-is, so the previous result
  // must have been complete there: an unreached clean host means the previous run
  // needed back links (or this graph was never mapped) — global, so bail.  Inside
  // the region unreached is the starting state; the post-drain check below decides.
  for (Node* node : graph_->nodes()) {
    if (!node->deleted() && !node->placeholder() && node->cost == kUnreached &&
        !state.IsDirty(node)) {
      result_ = nullptr;
      return refuse("previous result left hosts unreachable");
    }
  }

  LabelLess less{&graph_->names(), options_.prefer_fewer_hops};
  MapperHeap heap(less);

  // Alternate boundary seeding and draining until no drain reopens clean territory.
  // Seeding relaxes every clean final label across the boundary into the dirty
  // region; the drain is Run's extraction loop with the patch relaxation rule.
  // Re-relaxing an already-drained dirty target is a no-op (mapped, final), so the
  // rescans stay idempotent.
  do {
    for (Node* node : graph_->nodes()) {
      if (node->deleted()) {
        continue;
      }
      // Every FINAL label is a seeding source: clean ones across the boundary, and —
      // after a reopen grows the region — already-drained dirty ones whose earlier
      // relaxations into the reopened nodes were discarded with their labels.
      PathLabel* label = node->label[0];
      if (label == nullptr || !label->mapped) {
        continue;
      }
      for (Link* link = node->links; link != nullptr; link = link->next) {
        if (state.IsDirty(link->to)) {
          PatchRelax(*label, *link, heap, result, state);
        }
      }
    }
    state.reopened = false;
    while (!heap.empty() && state.refusal == nullptr) {
      PathLabel* label = heap.PopMin();
      ++result.heap_pops;
      label->mapped = true;
      Node* node = label->node;
      if (node->cost == kUnreached) {
        label->best = true;
        node->cost = label->cost;
        node->hops = label->hops;
        node->parent = label->parent != nullptr ? label->parent->node : nullptr;
        node->parent_link = label->via;
      }
      for (Link* link = node->links; link != nullptr; link = link->next) {
        PatchRelax(*label, *link, heap, result, state);
      }
    }
  } while (state.reopened && state.refusal == nullptr);

  if (state.refusal != nullptr) {
    result_ = nullptr;
    return refuse(state.refusal);
  }

  // A real host left unreached would need the back-link fixpoint — global, so bail.
  for (Node* node : state.dirty_nodes) {
    if (!node->deleted() && !node->placeholder() && node->cost == kUnreached) {
      result_ = nullptr;
      return refuse("patched region ends unreachable");
    }
  }

  // Rebuild the label list from the nodes (dropping the discarded dirty labels) and
  // recompute the aggregates the labels feed.
  result.labels.clear();
  for (Node* node : graph_->nodes()) {
    if (node->label[0] != nullptr) {
      result.labels.push_back(node->label[0]);
    }
  }
  result.label_count = result.labels.size();
  result.mapped_labels = 0;
  for (PathLabel* label : result.labels) {
    if (label->mapped) {
      ++result.mapped_labels;
    }
  }
  CollectFinalStats(result);
  result_ = nullptr;
  return std::move(state.dirty_nodes);
}

}  // namespace pathalias
