// routedbd: the long-lived route-resolution daemon.
//
// Serves resolve queries from a frozen .pari image over unix-domain and/or UDP
// datagram sockets (wire format: src/net/wire.h), coalescing concurrent clients
// into single batch resolves, deduplicating retransmitted requests, and
// hot-swapping the mapping under live traffic when the map changes:
//
//   SIGHUP                 re-read the --map files and run the routedb-update
//                          pipeline in process (requires <image>.state from
//                          `routedb update --init`); with no --map files, HUP
//                          checks the image file for external replacement
//   image watch            every --watch-interval ms the image file is stat'd;
//                          a rename by an external `routedb update` is picked
//                          up and hot-swapped automatically
//   SIGTERM / SIGINT       finish the current turn (queued requests are
//                          answered) and exit 0, printing final stats
//
// Usage:
//   routedbd --image routes.pari --unix /run/routedb.sock [--udp PORT]
//            [--map FILE]... [--threads N] [--cache-entries M]
//            [--max-reply-bytes B] [--replay-entries R] [--replay-bytes B]
//            [--max-queries-per-turn Q] [--watch-interval MS] [--ready-fd FD]
//
// --ready-fd: a pipe fd the daemon writes one line to once it is serving
// ("ready <udp-port>\n") — how the smoke test and scripts avoid sleep-loops.
//
// Overload: once a turn's coalesced batch reaches --max-queries-per-turn
// queries, further requests that turn get a header-only overloaded reply
// (back off and retransmit) instead of joining the batch.  0 disables.
//
// Fault injection: PATHALIAS_FAILPOINTS in the environment arms named
// failpoints (see src/support/failpoint.h) for chaos testing, e.g.
//   PATHALIAS_FAILPOINTS="rollover.reopen=nth:1" routedbd ...

#include <unistd.h>

#include <charconv>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/net/daemon.h"
#include "src/support/failpoint.h"
#include "src/support/io_retry.h"

namespace {

int Usage() {
  std::cerr << "usage: routedbd --image <routes.pari> [--unix PATH] [--udp PORT]\n"
               "                [--map FILE]... [--threads N] [--cache-entries M]\n"
               "                [--max-reply-bytes B] [--replay-entries R]\n"
               "                [--replay-bytes B] [--max-queries-per-turn Q]\n"
               "                [--watch-interval MS] [--ready-fd FD]\n"
               "at least one of --unix / --udp is required\n";
  return 2;
}

bool ParseUint(const char* flag, const char* text, uint64_t max, uint64_t* out) {
  std::string_view view(text);
  auto [end, errc] = std::from_chars(view.data(), view.data() + view.size(), *out);
  if (errc != std::errc{} || end != view.data() + view.size() || *out > max) {
    std::cerr << "routedbd: " << flag << " needs an integer in [0, " << max << "], got '"
              << text << "'\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pathalias::support::failpoint::ArmFromEnv();
  pathalias::net::DaemonOptions options;
  options.udp_port = -1;
  options.log_reloads = true;  // a daemon's failed rollover belongs in its log
  int ready_fd = -1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "routedbd: " << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    uint64_t number = 0;
    if (arg == "--image") {
      const char* v = value("--image");
      if (v == nullptr) return Usage();
      options.rollover.image_path = v;
    } else if (arg == "--unix") {
      const char* v = value("--unix");
      if (v == nullptr) return Usage();
      options.unix_path = v;
    } else if (arg == "--udp") {
      const char* v = value("--udp");
      if (v == nullptr || !ParseUint("--udp", v, 65535, &number)) return Usage();
      options.udp_port = static_cast<int>(number);
    } else if (arg == "--map") {
      const char* v = value("--map");
      if (v == nullptr) return Usage();
      options.rollover.map_files.emplace_back(v);
    } else if (arg == "--threads") {
      const char* v = value("--threads");
      if (v == nullptr || !ParseUint("--threads", v, 1024, &number)) return Usage();
      options.rollover.engine.threads = static_cast<int>(number);
    } else if (arg == "--cache-entries") {
      const char* v = value("--cache-entries");
      if (v == nullptr || !ParseUint("--cache-entries", v, uint64_t{1} << 30, &number)) {
        return Usage();
      }
      options.rollover.engine.cache_entries = static_cast<size_t>(number);
    } else if (arg == "--max-reply-bytes") {
      const char* v = value("--max-reply-bytes");
      if (v == nullptr ||
          !ParseUint("--max-reply-bytes", v, pathalias::net::kMaxDatagramBytes, &number)) {
        return Usage();
      }
      options.max_reply_bytes = static_cast<size_t>(number);
    } else if (arg == "--replay-entries") {
      const char* v = value("--replay-entries");
      if (v == nullptr || !ParseUint("--replay-entries", v, uint64_t{1} << 20, &number)) {
        return Usage();
      }
      options.replay_entries = static_cast<size_t>(number);
    } else if (arg == "--replay-bytes") {
      const char* v = value("--replay-bytes");
      if (v == nullptr || !ParseUint("--replay-bytes", v, uint64_t{1} << 32, &number)) {
        return Usage();
      }
      options.replay_bytes = static_cast<size_t>(number);
    } else if (arg == "--max-queries-per-turn") {
      const char* v = value("--max-queries-per-turn");
      if (v == nullptr ||
          !ParseUint("--max-queries-per-turn", v, uint64_t{1} << 30, &number)) {
        return Usage();
      }
      options.max_queries_per_turn = static_cast<size_t>(number);
    } else if (arg == "--watch-interval") {
      const char* v = value("--watch-interval");
      if (v == nullptr || !ParseUint("--watch-interval", v, 3600'000, &number)) {
        return Usage();
      }
      options.watch_interval_ms = static_cast<int>(number);
    } else if (arg == "--ready-fd") {
      const char* v = value("--ready-fd");
      if (v == nullptr || !ParseUint("--ready-fd", v, 1 << 20, &number)) return Usage();
      ready_fd = static_cast<int>(number);
    } else {
      std::cerr << "routedbd: unknown option " << arg << "\n";
      return Usage();
    }
  }
  if (options.rollover.image_path.empty()) {
    return Usage();
  }
  if (options.unix_path.empty() && options.udp_port < 0) {
    return Usage();
  }
  // A serving engine without a cache throws away the daemon's main advantage over
  // per-request `routedb resolve`; give it a sensible default.
  if (options.rollover.engine.cache_entries == 0) {
    options.rollover.engine.cache_entries = 4096;
  }

  pathalias::net::Daemon daemon(std::move(options));
  std::string error;
  if (!daemon.Start(&error)) {
    std::cerr << "routedbd: " << error << "\n";
    return 1;
  }
  if (!daemon.InstallSignalHandlers(&error)) {
    std::cerr << "routedbd: " << error << "\n";
    return 1;
  }
  std::cerr << "routedbd: serving";
  if (!daemon.unix_path().empty()) {
    std::cerr << " unix:" << daemon.unix_path();
  }
  if (daemon.udp_port() != 0) {
    std::cerr << " udp:127.0.0.1:" << daemon.udp_port();
  }
  std::cerr << "\n";
  if (ready_fd >= 0) {
    char line[64];
    int wrote = std::snprintf(line, sizeof(line), "ready %u\n", daemon.udp_port());
    if (wrote > 0) {
      pathalias::support::WriteFull(ready_fd, line, static_cast<size_t>(wrote));
    }
    pathalias::support::RetryEintr([&] { return ::close(ready_fd); });
  }

  int exit_code = daemon.Run();
  std::cerr << "routedbd: exiting; " << daemon.stats().ToString() << "\n";
  return exit_code;
}
