// mapgen: emit a synthetic 1986-scale UUCP/USENET map (DESIGN.md §3).
//
// Usage: mapgen [--small] [--profile usenet-scale] [--hosts N] [--depth N]
//               [--seed N] [--dir DIR]
//   --small       the scaled-down test configuration instead of full 1986 scale
//   --profile P   'usenet-1986' (default) or 'usenet-scale' (counter-named,
//                 domain-heavy maps sized by --hosts; see MapGenConfig)
//   --hosts N     total host target for --profile usenet-scale (default 100000)
//   --depth N     max domain-subtree depth for usenet-scale (default 3)
//   --seed N      RNG seed (default 1986; usenet-scale default 2026)
//   --dir D       write one site file per input file into D; default stdout

#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "src/mapgen/mapgen.h"

namespace {

bool ParseInt(std::string_view text, int* out) {
  auto [end, errc] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return errc == std::errc{} && end == text.data() + text.size() && !text.empty();
}

}  // namespace

int main(int argc, char** argv) {
  pathalias::MapGenConfig config = pathalias::MapGenConfig::Usenet1986();
  std::string dir;
  bool seed_set = false;
  bool scale_profile = false;
  int scale_hosts = 100000;
  int depth = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--small") {
      uint64_t seed = config.seed;
      config = pathalias::MapGenConfig::Small();
      config.seed = seed;
    } else if (arg == "--profile" && i + 1 < argc) {
      std::string profile = argv[++i];
      if (profile == "usenet-scale") {
        scale_profile = true;
      } else if (profile != "usenet-1986") {
        std::cerr << "mapgen: unknown profile '" << profile
                  << "' (expected usenet-1986 or usenet-scale)\n";
        return 2;
      }
    } else if (arg == "--hosts" && i + 1 < argc) {
      if (!ParseInt(argv[++i], &scale_hosts) || scale_hosts <= 0) {
        std::cerr << "mapgen: --hosts needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--depth" && i + 1 < argc) {
      if (!ParseInt(argv[++i], &depth) || depth <= 0) {
        std::cerr << "mapgen: --depth needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--seed" && i + 1 < argc) {
      // std::stoull would throw (an uncaught crash) on junk and silently accept
      // trailing garbage; parse strictly and name the flag like the other tools.
      std::string_view text = argv[++i];
      auto [end, errc] =
          std::from_chars(text.data(), text.data() + text.size(), config.seed);
      if (errc != std::errc{} || end != text.data() + text.size() || text.empty()) {
        std::cerr << "mapgen: --seed needs an unsigned 64-bit integer, got '" << text
                  << "'\n";
        return 2;
      }
      seed_set = true;
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      // Name the offender (flag-parity with the other tools) before the usage line.
      if (!arg.empty() && arg[0] == '-') {
        std::cerr << "mapgen: unknown option " << arg << "\n";
      } else {
        std::cerr << "mapgen: unexpected argument " << arg << "\n";
      }
      std::cerr << "usage: mapgen [--small] [--profile usenet-scale] [--hosts N] "
                   "[--depth N] [--seed N] [--dir DIR]\n";
      return 2;
    }
  }
  if (scale_profile) {
    uint64_t seed = config.seed;
    config = pathalias::MapGenConfig::UsenetScale(scale_hosts);
    if (seed_set) {
      config.seed = seed;
    }
    if (depth > 0) {
      config.domain_depth = depth;
    }
  }
  pathalias::GeneratedMap map = pathalias::GenerateUsenetMap(config);
  if (dir.empty()) {
    for (const auto& file : map.files) {
      std::cout << "# ---- " << file.name << " ----\n" << file.content;
    }
  } else {
    std::filesystem::create_directories(dir);
    for (const auto& file : map.files) {
      std::ofstream out(std::filesystem::path(dir) / file.name, std::ios::trunc);
      out << file.content;
    }
  }
  std::cerr << "mapgen: " << map.host_count << " hosts, " << map.link_declarations
            << " link declarations, " << map.net_count << " nets, " << map.domain_count
            << " domains; suggested local host: " << map.local << "\n";
  return 0;
}
