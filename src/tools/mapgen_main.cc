// mapgen: emit a synthetic 1986-scale UUCP/USENET map (DESIGN.md §3).
//
// Usage: mapgen [--small] [--seed N] [--dir DIR]
//   --small   the scaled-down test configuration instead of full 1986 scale
//   --seed N  RNG seed (default 1986)
//   --dir D   write one site file per input file into D; default prints to stdout

#include <charconv>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "src/mapgen/mapgen.h"

int main(int argc, char** argv) {
  pathalias::MapGenConfig config = pathalias::MapGenConfig::Usenet1986();
  std::string dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--small") {
      uint64_t seed = config.seed;
      config = pathalias::MapGenConfig::Small();
      config.seed = seed;
    } else if (arg == "--seed" && i + 1 < argc) {
      // std::stoull would throw (an uncaught crash) on junk and silently accept
      // trailing garbage; parse strictly and name the flag like the other tools.
      std::string_view text = argv[++i];
      auto [end, errc] =
          std::from_chars(text.data(), text.data() + text.size(), config.seed);
      if (errc != std::errc{} || end != text.data() + text.size() || text.empty()) {
        std::cerr << "mapgen: --seed needs an unsigned 64-bit integer, got '" << text
                  << "'\n";
        return 2;
      }
    } else if (arg == "--dir" && i + 1 < argc) {
      dir = argv[++i];
    } else {
      // Name the offender (flag-parity with the other tools) before the usage line.
      if (!arg.empty() && arg[0] == '-') {
        std::cerr << "mapgen: unknown option " << arg << "\n";
      } else {
        std::cerr << "mapgen: unexpected argument " << arg << "\n";
      }
      std::cerr << "usage: mapgen [--small] [--seed N] [--dir DIR]\n";
      return 2;
    }
  }
  pathalias::GeneratedMap map = pathalias::GenerateUsenetMap(config);
  if (dir.empty()) {
    for (const auto& file : map.files) {
      std::cout << "# ---- " << file.name << " ----\n" << file.content;
    }
  } else {
    std::filesystem::create_directories(dir);
    for (const auto& file : map.files) {
      std::ofstream out(std::filesystem::path(dir) / file.name, std::ios::trunc);
      out << file.content;
    }
  }
  std::cerr << "mapgen: " << map.host_count << " hosts, " << map.link_declarations
            << " link declarations, " << map.net_count << " nets, " << map.domain_count
            << " domains; suggested local host: " << map.local << "\n";
  return 0;
}
