// The pathalias command-line tool.
//
// Usage mirrors the original:
//   pathalias [-c] [-f] [-i] [-v] [-l localname] [-d deadarg]... [-t tracearg]...
//             [-o outfile] [--two-label] [--strict-syntax] [--no-back-links] [files...]
//
//   -c            print costs (leading column, as in the paper's example output)
//   -f            report first-hop cost instead of total cost
//   -i            ignore case in host names
//   -l name       the local host (default: first host declared, with a note)
//   -d arg        declare a host ("foo") or link ("foo!bar") dead from the command line
//   -t arg        trace mapping decisions involving a host or link
//   -o file       write routes to file instead of stdout
//   -v            verbose: print phase statistics to stderr
//   --two-label   enable the second-best-path extension (paper §Problems)
//   --strict-syntax  also penalize LEFT-then-RIGHT syntax mixing
//   --no-back-links  do not invent reverse links for unreachable hosts
//   --shards N    map large maps with the domain-sharded parallel mapper (output
//                 is byte-identical to the serial mapper; small or degenerate
//                 maps fall back to it automatically)
//   --incremental DIR  keep per-file parse artifacts in DIR between runs: files
//                 whose bytes are unchanged since the last run skip the lexer and
//                 parser entirely (digest match); output is identical to a plain
//                 run over the same files.  Incompatible with -d/-t/--two-label/
//                 --strict-syntax/--no-back-links (those alter mapping semantics
//                 the retained state does not parameterize).
//   files         map files; "-" or none reads standard input

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/pathalias.h"
#include "src/core/route_printer.h"
#include "src/incr/map_builder.h"
#include "src/incr/state_dir.h"
#include "src/support/failpoint.h"

namespace {

void Usage() {
  std::cerr << "usage: pathalias [-c] [-f] [-i] [-v] [-l localname] [-d deadarg] [-t tracearg]\n"
               "                 [-o outfile] [--two-label] [--strict-syntax] [--no-back-links]\n"
               "                 [--shards N] [--incremental statedir] [files...]\n";
}

std::string ReadStream(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  pathalias::support::failpoint::ArmFromEnv();
  pathalias::RunOptions options;
  std::vector<std::string> dead_args;
  std::vector<std::string> file_names;
  std::string out_file;
  std::string incremental_dir;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto needs_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "pathalias: " << flag << " requires an argument\n";
        Usage();
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "-c") {
      options.print.include_costs = true;
    } else if (arg == "-f") {
      options.print.first_hop_cost = true;
    } else if (arg == "-i") {
      options.graph.ignore_case = true;
    } else if (arg == "-v") {
      verbose = true;
    } else if (arg == "-l") {
      options.local = needs_value("-l");
    } else if (arg == "-d") {
      dead_args.emplace_back(needs_value("-d"));
    } else if (arg == "-t") {
      options.map.trace.emplace_back(needs_value("-t"));
    } else if (arg == "-o") {
      out_file = needs_value("-o");
    } else if (arg == "--two-label") {
      options.map.two_label = true;
    } else if (arg == "--strict-syntax") {
      options.map.penalize_left_then_right = true;
    } else if (arg == "--no-back-links") {
      options.map.back_links = false;
    } else if (arg == "--shards") {
      const char* value = needs_value("--shards");
      char* end = nullptr;
      long shards = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || shards < 0 || shards > 4096) {
        std::cerr << "pathalias: --shards needs a small non-negative integer, got '"
                  << value << "'\n";
        return 2;
      }
      options.shard.shards = static_cast<int>(shards);
    } else if (arg == "--incremental") {
      incremental_dir = needs_value("--incremental");
    } else if (arg == "-h" || arg == "--help") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "pathalias: unknown option " << arg << "\n";
      Usage();
      return 2;
    } else {
      file_names.push_back(arg);
    }
  }

  std::vector<pathalias::InputFile> files;
  if (file_names.empty()) {
    file_names.push_back("-");
  }
  for (const std::string& name : file_names) {
    if (name == "-") {
      files.push_back({"<stdin>", ReadStream(std::cin)});
      continue;
    }
    std::ifstream in(name);
    if (!in) {
      std::cerr << "pathalias: cannot open " << name << "\n";
      return 1;
    }
    files.push_back({name, ReadStream(in)});
  }

  if (!incremental_dir.empty()) {
    if (!dead_args.empty() || !options.map.trace.empty() || options.map.two_label ||
        options.map.penalize_left_then_right || !options.map.back_links) {
      std::cerr << "pathalias: --incremental does not combine with -d, -t, --two-label, "
                   "--strict-syntax, or --no-back-links\n";
      return 2;
    }
    pathalias::incr::MapBuilderOptions builder_options;
    builder_options.local = options.local;
    builder_options.ignore_case = options.graph.ignore_case;
    pathalias::incr::MapBuilder builder(builder_options);
    builder.diag().set_sink([](const pathalias::Diagnostic& diagnostic) {
      if (diagnostic.severity != pathalias::Severity::kNote) {
        std::cerr << pathalias::ToString(diagnostic) << "\n";
      }
    });
    // Reuse retained artifacts when they exist AND were built under the same
    // options; a mismatch (or missing/corrupt state) silently falls back to a full
    // parse and re-seeds the directory.
    std::vector<pathalias::incr::FileArtifact> prior;
    std::string state_error;
    if (auto state = pathalias::incr::LoadStateDir(incremental_dir, &state_error)) {
      if (state->local == builder_options.local &&
          state->ignore_case == builder_options.ignore_case) {
        prior = std::move(state->artifacts);
      }
    }
    size_t reparsed = 0;
    size_t reused = 0;
    bool built = builder.BuildReusing(files, std::move(prior), &reparsed, &reused);
    pathalias::incr::StateDirContents contents;
    contents.local = builder_options.local;
    contents.ignore_case = builder_options.ignore_case;
    contents.artifacts = builder.artifacts();
    if (!pathalias::incr::SaveStateDir(incremental_dir, contents)) {
      std::cerr << "pathalias: cannot save state to " << incremental_dir << "\n";
      return 1;
    }
    if (!built) {
      return 1;
    }
    // Render from the builder's tree with the user's print options: byte-identical
    // to a plain (non-incremental) run over the same inputs.  This is a second
    // traversal (the builder emitted once into routes() already) — deliberate:
    // -f/-c change what Build/Render produce, so the internal emission cannot be
    // reused, and a traversal is milliseconds even at full 1986 scale.
    pathalias::RoutePrinter printer(builder.map(), options.print);
    std::string output = printer.BuildAndRender();
    if (out_file.empty()) {
      std::cout << output;
    } else {
      std::ofstream out(out_file, std::ios::trunc);
      if (!out) {
        std::cerr << "pathalias: cannot write " << out_file << "\n";
        return 1;
      }
      out << output;
    }
    if (verbose) {
      std::cerr << "pathalias: incremental: " << reused << " file(s) reused, " << reparsed
                << " reparsed; " << builder.routes().size() << " routes (local "
                << builder.local_name() << ")\n";
    }
    return builder.diag().error_count() == 0 ? 0 : 1;
  }

  // Command-line dead declarations become a synthetic trailing input file, which is
  // how the original's -d behaved (it post-processes the parsed map).
  if (!dead_args.empty()) {
    std::string body;
    for (const std::string& arg : dead_args) {
      body += "dead {" + arg + "}\n";
    }
    files.push_back({"<command line>", body});
  }

  pathalias::Diagnostics diag;
  diag.set_sink([](const pathalias::Diagnostic& diagnostic) {
    if (diagnostic.severity != pathalias::Severity::kNote) {
      std::cerr << pathalias::ToString(diagnostic) << "\n";
    }
  });

  pathalias::RunResult result = pathalias::Run(files, options, &diag);

  if (out_file.empty()) {
    std::cout << result.output;
  } else {
    std::ofstream out(out_file, std::ios::trunc);
    if (!out) {
      std::cerr << "pathalias: cannot write " << out_file << "\n";
      return 1;
    }
    out << result.output;
  }

  if (verbose) {
    const auto& stats = result.map;
    if (options.shard.shards > 1) {
      const auto& shard = result.shard_stats;
      if (shard.engaged) {
        std::cerr << "pathalias: sharded mapping: " << shard.shards_used << " shards over "
                  << shard.groups << " domain groups (" << shard.flat_nodes
                  << " flat nodes, largest shard " << shard.largest_shard_nodes
                  << " nodes), " << shard.rounds << " rounds, " << shard.cross_offers
                  << " cross-shard offers\n";
      } else {
        std::cerr << "pathalias: sharded mapping fell back to serial: "
                  << shard.fallback_reason << "\n";
      }
    }
    std::cerr << "pathalias: " << result.graph->node_count() << " nodes, "
              << result.graph->link_count() << " links\n"
              << "pathalias: mapped " << stats.mapped_hosts << " hosts ("
              << stats.mapped_labels << " labels), " << stats.unreachable_hosts
              << " unreachable, " << stats.invented_links << " links invented in "
              << stats.back_link_passes << " back-link passes\n"
              << "pathalias: " << stats.heap_pushes << " heap pushes, " << stats.heap_pops
              << " pops, " << stats.relaxations << " relaxations"
              << (stats.heap_storage_reused ? " (heap built in retired hash table)" : "")
              << "\n"
              << "pathalias: " << stats.mixed_syntax_routes << " mixed-syntax routes ("
              << stats.syntax_penalized_routes << " penalized for ambiguity), "
              << stats.penalized_routes << " routes carrying some penalty\n";
  }
  return diag.error_count() == 0 ? 0 : 1;
}
