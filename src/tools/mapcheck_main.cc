// mapcheck: lint UUCP map files before feeding them to pathalias.
//
// Usage: mapcheck [-q] [files...]        ("-" or no files reads standard input)
//   -q  only print findings, skip the summary block
//
// Exit status: 0 clean, 1 problems found, 2 usage / I/O errors.  Parse errors are
// reported by the parser itself; this tool adds the semantic lints (name collisions,
// one-way links, unenterable networks, ...) described in src/graph/audit.h.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/graph/audit.h"
#include "src/parser/parser.h"

int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-q") {
      quiet = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cerr << "usage: mapcheck [-q] [files...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "mapcheck: unknown option " << arg << "\n";
      return 2;
    } else {
      names.push_back(arg);
    }
  }
  if (names.empty()) {
    names.push_back("-");
  }

  pathalias::Diagnostics diag;
  diag.set_sink([](const pathalias::Diagnostic& diagnostic) {
    std::cerr << pathalias::ToString(diagnostic) << "\n";
  });
  pathalias::Graph graph(&diag);
  pathalias::Parser parser(&graph);
  for (const std::string& name : names) {
    std::ostringstream buffer;
    if (name == "-") {
      buffer << std::cin.rdbuf();
      parser.ParseFile(pathalias::InputFile{"<stdin>", buffer.str()});
      continue;
    }
    std::ifstream in(name);
    if (!in) {
      std::cerr << "mapcheck: cannot open " << name << "\n";
      return 2;
    }
    buffer << in.rdbuf();
    parser.ParseFile(pathalias::InputFile{name, buffer.str()});
  }

  pathalias::AuditReport report = pathalias::AuditGraph(graph);
  if (quiet) {
    for (const pathalias::AuditFinding& finding : report.findings) {
      std::cout << "[" << pathalias::ToString(finding.severity) << "/" << finding.category
                << "] " << finding.message << "\n";
    }
  } else {
    std::cout << report.ToString();
  }
  return report.clean() && diag.error_count() == 0 ? 0 : 1;
}
