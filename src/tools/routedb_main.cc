// routedb: convert pathalias output into a constant database and query it.
//
// The paper (§Output): "a separate program may be used to convert this file into a
// format appropriate for rapid database retrieval."  This is that program, plus the
// query side a delivery agent would call.  Two on-disk formats are supported: the cdb
// image (parsed back into a live RouteSet at open) and the .pari frozen route image
// (mmap'd and queried in place — no re-parsing, no re-interning; see src/image/).
//
// Usage:
//   routedb build  <routes.txt> <routes.cdb>    build the cdb database
//   routedb freeze <routes.txt> <routes.pari>   freeze the mmap-able route image
//   routedb get   [--image] <db> <host>         print the raw route for a host
//   routedb resolve [--image] <db> <address>... resolve full addresses (domain-suffix
//                                               lookup, rightmost-known rewriting)
//   routedb update --init [--local NAME] <routes.pari> <map-files...>
//                                               parse the map, freeze the image, and
//                                               record per-file parse artifacts in
//                                               <routes.pari>.state for later updates
//   routedb update [--remove FILE]... [--stats] <routes.pari> [changed-map-files...]
//                                               re-parse only the named (changed)
//                                               files, patch the retained pipeline
//                                               state, rewrite the image atomically,
//                                               and report patch vs rebuild; with no
//                                               changed files at all, report
//                                               "nothing to do" and leave image and
//                                               state untouched.  --stats adds a
//                                               breakdown (rebuild_reason, alias/
//                                               flag/host-state edit counts)
//   routedb batch [--image] [--threads N] [--cache-entries M] [--chunk-lines L]
//                 [--stats] <db> [hosts.txt]    bulk host lookup, one per line (stdin
//                                               if no file): "host<TAB>route-key" per
//                                               hit, "host<TAB>*miss*" per miss;
//                                               malformed queries are reported with
//                                               their line number and skipped.
//                                               Input streams through the engine in
//                                               chunks of L lines (default 65536), so
//                                               memory stays bounded on arbitrarily
//                                               large inputs.  --threads N shards
//                                               each chunk across N threads (0 = all
//                                               cores); --cache-entries M gives each
//                                               shard an M-entry result cache (warm
//                                               across chunks); output is
//                                               byte-identical at any setting.
//                                               --stats adds an execution summary
//                                               line on stderr.
//   routedb query --socket PATH | --port UDPPORT [--timeout MS] [--retries N]
//                 [--id ID] <host>...           ask a running routedbd (see
//                                               src/net/wire.h): sends one datagram
//                                               request, retransmits the SAME id on
//                                               timeout (the daemon dedups), re-asks
//                                               the tail after a truncated reply.
//                                               Output per host: "host<TAB>via<TAB>
//                                               route" on a hit, "host<TAB>*miss*"
//                                               otherwise.

#include <unistd.h>

#include <algorithm>
#include <charconv>
#include <ctime>
#include <fstream>
#include <iostream>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/exec/batch_engine.h"
#include "src/image/frozen_route_set.h"
#include "src/image/image_format.h"
#include "src/image/image_writer.h"
#include "src/incr/map_builder.h"
#include "src/incr/state_dir.h"
#include "src/net/socket.h"
#include "src/net/wire.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"
#include "src/support/failpoint.h"

namespace {

int Usage() {
  std::cerr << "usage: routedb build <routes.txt> <routes.cdb>\n"
               "       routedb freeze <routes.txt> <routes.pari>\n"
               "       routedb update --init [--local NAME] <routes.pari> <map-files...>\n"
               "       routedb update [--remove FILE]... [--stats] <routes.pari> "
               "[changed-map-files...]\n"
               "       routedb get [--image] <db> <host>\n"
               "       routedb resolve [--image] <db> <address>...\n"
               "       routedb batch [--image] [--threads N] [--cache-entries M] "
               "[--chunk-lines L] [--stats] <db> [hosts.txt]\n"
               "       routedb query (--socket PATH | --port UDPPORT) [--timeout MS] "
               "[--retries N] [--id ID] <host>...\n";
  return 2;
}

// The publish generation stamped in an existing image's header, or nullopt when
// the file is missing/short/not a .pari image.  Pre-generation images read 0.
std::optional<uint64_t> ReadImageGeneration(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  pathalias::image::ImageHeader header;
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    return std::nullopt;
  }
  if (header.magic != pathalias::image::kMagic) {
    return std::nullopt;
  }
  return header.generation;
}

// The batch execution knobs, shared by the live and --image paths.
struct BatchFlags {
  int threads = 1;
  size_t cache_entries = 0;
  size_t chunk_lines = 65536;  // stdin/file streaming granularity (bounded memory)
  bool stats = false;
};

// A valid batch query is a non-empty run of printable, non-blank ASCII (host names and
// domain keys are).  Anything else gets a per-line diagnostic instead of poisoning the
// rest of the batch.
const char* QueryDefect(const std::string& line) {
  for (unsigned char c : line) {
    if (c == ' ' || c == '\t') {
      return "contains whitespace";
    }
    if (c < 0x21 || c > 0x7e) {
      return "contains a control or non-ASCII byte";
    }
  }
  return nullptr;
}

// Echoing a malformed line verbatim would corrupt the 2-column TSV output (that is
// what made it malformed); tabs and control/non-ASCII bytes become '?' so downstream
// `cut -f2`-style joins still see exactly two fields.
std::string SanitizeForTsv(const std::string& line) {
  std::string out = line;
  for (char& c : out) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (byte == '\t' || byte < 0x20 || byte > 0x7e) {
      c = '?';
    }
  }
  return out;
}

// Bulk delivery scan: the well-formed queries go through the sharded batch engine;
// malformed lines are reported with their line number and skipped.  Output is one
// line per input line (misses and malformed queries included), so the stream stays
// aligned with the input for downstream joins — and is byte-identical at every
// --threads/--cache-entries/--chunk-lines setting (the engine guarantees the first
// two; chunking only changes how many lines are in memory at once, never the
// per-line result).  Input is consumed in chunks of flags.chunk_lines lines, the
// ONE engine persisting across chunks (shard caches stay warm), so a
// pipe-a-billion-lines-through-it run holds one chunk, not the whole input.
template <typename RouteSourceT>
int RunBatch(const RouteSourceT& routes, std::istream& in, const char* input_name,
             const BatchFlags& flags) {
  pathalias::exec::BatchEngineOptions engine_options;
  engine_options.threads = flags.threads;
  engine_options.cache_entries = flags.cache_entries;
  pathalias::exec::BasicBatchEngine<RouteSourceT> engine(&routes, engine_options);

  const size_t chunk_lines = flags.chunk_lines == 0 ? 1 : flags.chunk_lines;
  std::vector<std::string> hosts;
  std::vector<int> line_numbers;
  std::vector<std::pair<int, std::string>> malformed;  // line number, sanitized text
  std::vector<std::string_view> queries;
  std::vector<pathalias::BatchLookup> results;
  std::string line;
  int line_number = 0;
  size_t total_queries = 0;
  size_t total_resolved = 0;
  size_t malformed_count = 0;
  bool eof = false;
  while (!eof) {
    hosts.clear();
    line_numbers.clear();
    malformed.clear();
    size_t buffered = 0;  // counts malformed lines too: they are buffered as well
    while (buffered < chunk_lines) {
      if (!std::getline(in, line)) {
        eof = true;
        break;
      }
      ++line_number;
      if (line.empty()) {
        continue;
      }
      ++buffered;
      if (const char* defect = QueryDefect(line)) {
        std::cerr << "routedb: " << input_name << ":" << line_number
                  << ": malformed query (" << defect << "); skipped\n";
        malformed.emplace_back(line_number, SanitizeForTsv(line));
        ++malformed_count;
        continue;
      }
      hosts.push_back(line);
      line_numbers.push_back(line_number);
    }
    if (hosts.empty() && malformed.empty()) {
      continue;  // a chunk of blank lines right before EOF
    }
    queries.assign(hosts.begin(), hosts.end());
    results.assign(queries.size(), pathalias::BatchLookup{});
    total_resolved += engine.ResolveBatch(queries, results);
    total_queries += queries.size();
    size_t next_malformed = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      // Interleave the malformed lines back at their original positions.
      while (next_malformed < malformed.size() &&
             malformed[next_malformed].first < line_numbers[i]) {
        std::cout << malformed[next_malformed].second << "\t*malformed*\n";
        ++next_malformed;
      }
      if (results[i].route.ok()) {
        std::cout << queries[i] << "\t" << routes.names().View(results[i].via) << "\n";
      } else {
        std::cout << queries[i] << "\t*miss*\n";
      }
    }
    while (next_malformed < malformed.size()) {
      std::cout << malformed[next_malformed].second << "\t*malformed*\n";
      ++next_malformed;
    }
  }
  std::cerr << "routedb: " << total_resolved << "/" << total_queries << " resolved";
  if (malformed_count > 0) {
    std::cerr << ", " << malformed_count << " malformed";
  }
  std::cerr << "\n";
  if (flags.stats) {
    // Opt-in so default stderr stays byte-identical across execution settings.
    const pathalias::exec::BatchEngineStats& stats = engine.stats();
    std::cerr << "routedb: " << engine.shards() << " shard(s), "
              << engine.cache_entries_per_shard() << " cache entries/shard, "
              << stats.cache_hits << "/" << stats.cache_lookups << " cache hits\n";
  }
  return 0;
}

template <typename RouteSourceT>
int RunGet(const RouteSourceT& routes, const char* host) {
  pathalias::RouteView route = routes.FindRouteView(std::string_view(host));
  if (!route.ok()) {
    std::cerr << "routedb: no route to " << host << "\n";
    return 1;
  }
  std::cout << route.route << "\n";
  return 0;
}

template <typename RouteSourceT>
int RunResolve(const RouteSourceT& routes, const std::vector<const char*>& addresses) {
  pathalias::ResolveOptions options;
  options.optimize = pathalias::ResolveOptions::Optimize::kRightmostKnown;
  pathalias::BasicResolver<RouteSourceT> resolver(&routes, options);
  int failures = 0;
  for (const char* address : addresses) {
    pathalias::Resolution resolution = resolver.Resolve(address);
    if (resolution.ok) {
      std::cout << address << "\t" << resolution.route << "\t(via " << resolution.via
                << ")\n";
    } else {
      std::cout << address << "\t*error* " << resolution.error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// Dispatches get/resolve/batch to the cdb-backed RouteSet or the mmap'd image.
// `operands` holds the positional arguments after the database path.
template <typename RouteSourceT>
int RunQueryCommand(const std::string& command, const RouteSourceT& routes,
                    const std::vector<const char*>& operands, const BatchFlags& flags) {
  if (command == "get") {
    return RunGet(routes, operands.front());
  }
  if (command == "resolve") {
    return RunResolve(routes, operands);
  }
  if (operands.empty()) {
    return RunBatch(routes, std::cin, "<stdin>", flags);
  }
  std::ifstream in(operands.front());
  if (!in) {
    std::cerr << "routedb: cannot open " << operands.front() << "\n";
    return 1;
  }
  return RunBatch(routes, in, operands.front(), flags);
}

// The incremental image pipeline: map files → MapBuilder → refrozen .pari, with the
// per-file parse artifacts retained in <image>.state between invocations.
//
// A one-shot process has no retained shortest-path tree, so the update first
// replays + maps the PREVIOUS state (no lexing — that is the win at this
// granularity) and then patches to the new one; the patch pass is what yields the
// per-edit delta report (dirty nodes, routes changed) an operator reads for blast
// radius.  The patch path's full wall-clock advantage belongs to process-resident
// builders (see the incremental_update benchmark), not this CLI.
int RunUpdate(int argc, char** argv) {
  bool init = false;
  bool stats_requested = false;
  std::string local;
  std::vector<std::string> removed;
  std::vector<const char*> positional;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--init") {
      init = true;
    } else if (arg == "--stats") {
      stats_requested = true;
    } else if (arg == "--local") {
      if (i + 1 >= argc) {
        return Usage();
      }
      local = argv[++i];
    } else if (arg == "--remove") {
      if (i + 1 >= argc) {
        return Usage();
      }
      removed.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "routedb: unknown option " << arg << "\n";
      return Usage();
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty() || (init && positional.size() < 2)) {
    return Usage();
  }
  if (init && stats_requested) {
    // There is no patch/rebuild decision on the init path, so a silent no-op
    // --stats would mislead scripted callers expecting the breakdown line.
    std::cerr << "routedb: --stats does not apply to update --init\n";
    return 2;
  }
  std::string image_path = positional.front();
  std::string state_dir = image_path + ".state";

  std::vector<pathalias::InputFile> files;
  for (size_t i = 1; i < positional.size(); ++i) {
    std::ifstream in(positional[i]);
    if (!in) {
      std::cerr << "routedb: cannot open " << positional[i] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({positional[i], std::move(buffer).str()});
  }

  pathalias::incr::MapBuilderOptions builder_options;
  builder_options.local = local;

  if (!init) {
    pathalias::incr::UpdateStats stats;
    std::string error;
    auto state = pathalias::incr::LoadStateDir(state_dir, &error);
    if (!state.has_value()) {
      std::cerr << "routedb: cannot load " << state_dir << " (" << error
                << "); run routedb update --init first\n";
      return 1;
    }
    if (!local.empty() && local != state->local) {
      std::cerr << "routedb: state was built with local '" << state->local
                << "'; re-run --init to change it\n";
      return 1;
    }
    if (files.empty() && removed.empty()) {
      // Nothing to apply: leave the image and the state directory byte-for-byte
      // (and mtime-for-mtime) alone instead of rebuilding, refreezing, and
      // rewriting the manifest for a no-op.  (Flag validation above still runs —
      // a conflicting --local must not be swallowed by the fast path.)
      std::cerr << "routedb: nothing to do (no changed files); " << image_path
                << " left untouched\n";
      if (stats_requested) {
        // Keep the scripted contract: --stats always emits the breakdown line,
        // here the trivial all-zero patch.
        std::cerr << "routedb: update stats: patched=1 rebuilt=0 rebuild_reason=\"\" "
                     "alias_edits=0 link_flag_edits=0 host_state_edits=0 "
                     "region_has_aliases=0\n";
      }
      return 0;
    }
    builder_options.local = state->local;
    builder_options.ignore_case = state->ignore_case;
    pathalias::incr::MapBuilder builder(builder_options);
    builder.diag().set_sink([](const pathalias::Diagnostic& diagnostic) {
      if (diagnostic.severity != pathalias::Severity::kNote) {
        std::cerr << pathalias::ToString(diagnostic) << "\n";
      }
    });
    if (!builder.BuildFromArtifacts(std::move(state->artifacts))) {
      std::cerr << "routedb: retained state no longer builds; re-run --init\n";
      return 1;
    }
    stats = builder.Update(files, removed);
    if (!builder.valid()) {
      std::cerr << "routedb: update left no buildable map\n";
      return 1;
    }
    // Generation pairing.  A state stamp that disagrees with the image's means
    // the previous publish tore between the two renames; that is safe to heal
    // here — this update re-freezes the WHOLE image from the state just loaded,
    // so both files leave this run paired — but the operator should know.
    std::optional<uint64_t> image_generation = ReadImageGeneration(image_path);
    if (image_generation.has_value() && *image_generation != 0 &&
        state->image_generation != 0 && *image_generation != state->image_generation) {
      std::cerr << "routedb: warning: " << image_path << " is generation "
                << *image_generation << " but " << state_dir << " is generation "
                << state->image_generation
                << " (torn update?); republishing both in step\n";
    }
    uint64_t next_generation =
        std::max(image_generation.value_or(0), state->image_generation) + 1;
    std::string publish_error;
    if (!pathalias::image::ImageWriter::Refreeze(builder.routes(), image_path,
                                                 next_generation, &publish_error)) {
      std::cerr << "routedb: cannot rewrite " << image_path << ": " << publish_error
                << "\n";
      return 1;
    }
    pathalias::incr::StateDirContents contents;
    contents.local = builder.options().local;
    contents.ignore_case = builder.options().ignore_case;
    contents.image_generation = next_generation;
    contents.artifacts = builder.artifacts();
    if (!pathalias::incr::SaveStateDir(state_dir, contents)) {
      std::cerr << "routedb: cannot save " << state_dir << "\n";
      return 1;
    }
    std::cerr << "routedb: " << (stats.patched ? "patched" : "rebuilt") << " ("
              << stats.files_reparsed << " file(s) reparsed, " << stats.files_unchanged
              << " unchanged";
    if (stats.patched) {
      std::cerr << ", " << stats.dirty_nodes << " dirty node(s)";
    } else {
      std::cerr << ", reason: " << stats.rebuild_reason;
    }
    std::cerr << "); " << stats.routes_changed << " route(s) changed, "
              << builder.routes().size() << " total\n";
    if (stats_requested) {
      // Opt-in breakdown of what the patch absorbed (or why it could not), keyed
      // the same way UpdateStats::rebuild_reason is counted in CI and benchmarks.
      std::cerr << "routedb: update stats: patched=" << (stats.patched ? 1 : 0)
                << " rebuilt=" << (stats.patched ? 0 : 1) << " rebuild_reason=\""
                << stats.rebuild_reason << "\" alias_edits=" << stats.alias_edits
                << " link_flag_edits=" << stats.link_flag_edits
                << " host_state_edits=" << stats.host_state_edits
                << " region_has_aliases=" << (stats.region_has_aliases ? 1 : 0) << "\n";
    }
    // The image and state were written (a bad line skips one declaration, pathalias
    // style), but an automated updater must see that the inputs were not clean.
    if (builder.diag().error_count() > 0) {
      std::cerr << "routedb: update completed with " << builder.diag().error_count()
                << " parse error(s); the rewritten image omits the malformed "
                   "declarations\n";
      return 1;
    }
    return 0;
  }

  pathalias::incr::MapBuilder builder(builder_options);
  builder.diag().set_sink([](const pathalias::Diagnostic& diagnostic) {
    if (diagnostic.severity != pathalias::Severity::kNote) {
      std::cerr << pathalias::ToString(diagnostic) << "\n";
    }
  });
  if (!builder.Build(files)) {
    std::cerr << "routedb: no routes could be built\n";
    return 1;
  }
  std::string publish_error;
  if (!pathalias::image::ImageWriter::Refreeze(builder.routes(), image_path,
                                               /*generation=*/1, &publish_error)) {
    std::cerr << "routedb: cannot write " << image_path << ": " << publish_error << "\n";
    return 1;
  }
  pathalias::incr::StateDirContents contents;
  contents.local = builder_options.local;
  contents.ignore_case = builder_options.ignore_case;
  contents.image_generation = 1;
  contents.artifacts = builder.artifacts();
  if (!pathalias::incr::SaveStateDir(state_dir, contents)) {
    std::cerr << "routedb: cannot save " << state_dir << "\n";
    return 1;
  }
  std::cerr << "routedb: initialized " << state_dir << " (" << files.size()
            << " file(s)); froze " << builder.routes().size() << " routes (local "
            << builder.local_name() << ")\n";
  if (builder.diag().error_count() > 0) {
    std::cerr << "routedb: init completed with " << builder.diag().error_count()
              << " parse error(s); the frozen image omits the malformed declarations\n";
    return 1;
  }
  return 0;
}

bool ParseCount(const char* flag, const char* text, uint64_t max, uint64_t* out);

// The routedbd client: one datagram request for all the hosts, retransmit-on-
// timeout with the SAME request id (the daemon's replay buffer makes the answer
// idempotent), and truncated replies drive a re-ask of the unanswered tail under
// a new id.  See src/net/wire.h for the full contract.
int RunQuery(int argc, char** argv) {
  std::string socket_path;
  int udp_port = -1;
  uint64_t timeout_ms = 1000;
  uint64_t retries = 4;
  uint64_t request_id = 0;
  bool id_set = false;
  std::vector<std::string_view> hosts;
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    uint64_t number = 0;
    if (arg == "--socket" || arg == "--port" || arg == "--timeout" ||
        arg == "--retries" || arg == "--id") {
      if (i + 1 >= argc) {
        return Usage();
      }
      const char* value = argv[++i];
      if (arg == "--socket") {
        socket_path = value;
      } else if (arg == "--port") {
        if (!ParseCount("--port", value, 65535, &number)) {
          return 2;
        }
        udp_port = static_cast<int>(number);
      } else if (arg == "--timeout") {
        if (!ParseCount("--timeout", value, 3600'000, &number)) {
          return 2;
        }
        timeout_ms = number;
      } else if (arg == "--retries") {
        if (!ParseCount("--retries", value, 1000, &number)) {
          return 2;
        }
        retries = number;
      } else {
        if (!ParseCount("--id", value, ~uint64_t{0} >> 1, &number)) {
          return 2;
        }
        request_id = number;
        id_set = true;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::cerr << "routedb: unknown option " << arg << "\n";
      return Usage();
    } else {
      hosts.push_back(arg);
    }
  }
  if (hosts.empty() || (socket_path.empty() == (udp_port < 0))) {
    return Usage();  // exactly one of --socket / --port, plus at least one host
  }
  if (!id_set) {
    // Uniqueness, not unpredictability: pid ⊕ time keeps two concurrent clients
    // on one machine from colliding in the daemon's (peer, id) dedup space —
    // and the peer address already differs anyway.
    request_id = (static_cast<uint64_t>(::getpid()) << 32) ^
                 static_cast<uint64_t>(::time(nullptr));
    if (request_id == 0) {
      request_id = 1;
    }
  }

  namespace net = pathalias::net;
  std::string error;
  std::optional<net::DatagramSocket> socket;
  net::PeerAddress server;
  if (!socket_path.empty()) {
    // A unix datagram client must bind its own path to be replyable.
    std::string client_path =
        socket_path + ".q" + std::to_string(static_cast<long>(::getpid()));
    socket = net::DatagramSocket::ClientForUnix(client_path, &error);
    server = net::DatagramSocket::UnixPeer(socket_path);
  } else {
    socket = net::DatagramSocket::ClientUdp(&error);
    server = net::DatagramSocket::UdpPeer(0x7f000001u, static_cast<uint16_t>(udp_port));
  }
  if (!socket.has_value()) {
    std::cerr << "routedb: " << error << "\n";
    return 1;
  }

  std::vector<char> buffer(net::kMaxDatagramBytes);
  std::string request;
  int failures = 0;
  size_t answered = 0;  // hosts [0, answered) are printed and final
  while (answered < hosts.size()) {
    size_t window = std::min(hosts.size() - answered, net::kMaxQueriesPerRequest);
    std::span<const std::string_view> asking(hosts.data() + answered, window);
    if (!net::EncodeRequest(request_id, asking, &request)) {
      std::cerr << "routedb: query violates protocol bounds (name too long?)\n";
      return 1;
    }
    net::DecodedReply reply;
    bool got_reply = false;
    for (uint64_t attempt = 0; attempt <= retries && !got_reply; ++attempt) {
      bool dropped = false;
      if (!socket->SendTo(request, server, &dropped, &error)) {
        if (!dropped) {
          std::cerr << "routedb: " << error << "\n";
          return 1;
        }
        // Dropped (daemon gone or buffer full): fall through to the timeout wait
        // and retransmit — indistinguishable from a lost datagram.
      }
      if (!socket->WaitReadable(static_cast<int>(timeout_ms))) {
        continue;  // timeout: retransmit the same id
      }
      net::PeerAddress from;
      bool got_one = false;
      ssize_t got = socket->Recv(buffer.data(), buffer.size(), &from, &got_one, &error);
      if (!got_one) {
        continue;
      }
      std::string_view datagram(buffer.data(), static_cast<size_t>(got));
      if (!net::DecodeReply(datagram, &reply, &error) || reply.request_id != request_id) {
        continue;  // stray or stale datagram; keep waiting out this attempt's budget
      }
      if ((reply.flags & net::kReplyFlagOverloaded) != 0) {
        // The daemon shed this request under load: nothing was resolved.  Back
        // off briefly and retransmit the SAME id (it is not in the daemon's
        // replay buffer, so the retry gets a real resolve).  Costs an attempt,
        // so a permanently-overloaded daemon still ends in "no reply".
        ::usleep(static_cast<useconds_t>(std::min<uint64_t>(timeout_ms, 50) * 1000));
        continue;
      }
      got_reply = true;
    }
    if (!got_reply) {
      std::cerr << "routedb: no reply from "
                << (socket_path.empty() ? "127.0.0.1:" + std::to_string(udp_port)
                                        : socket_path)
                << " after " << (retries + 1) << " attempt(s)\n";
      return 1;
    }
    if ((reply.flags & net::kReplyFlagBadRequest) != 0) {
      std::cerr << "routedb: daemon rejected the request as malformed\n";
      return 1;
    }
    for (const net::ReplyResult& result : reply.results) {
      std::string_view host = hosts[answered];
      switch (result.status) {
        case net::kResultExact:
        case net::kResultSuffix:
          std::cout << host << "\t" << result.via << "\t" << result.route << "\n";
          break;
        case net::kResultMiss:
          std::cout << host << "\t*miss*\n";
          ++failures;
          break;
        case net::kResultMalformed:
          std::cout << host << "\t*malformed*\n";
          ++failures;
          break;
        case net::kResultTruncated:
        default:
          // This single answer exceeded the daemon's reply budget entirely.
          std::cout << host << "\t*truncated*\n";
          ++failures;
          break;
      }
      ++answered;
    }
    if (reply.results.empty()) {
      // A non-truncated empty reply would loop forever; treat as protocol error.
      std::cerr << "routedb: empty reply\n";
      return 1;
    }
    // Truncated (or > kMaxQueriesPerRequest hosts): re-ask the tail under a NEW id
    // — the daemon's dedup must not replay the truncated answer.
    ++request_id;
  }
  return failures == 0 ? 0 : 1;
}

// Parses the integer operand of --threads / --cache-entries; false on junk.
bool ParseCount(const char* flag, const char* text, uint64_t max, uint64_t* out) {
  std::string_view view(text);
  auto [end, errc] = std::from_chars(view.data(), view.data() + view.size(), *out);
  if (errc != std::errc{} || end != view.data() + view.size() || *out > max) {
    std::cerr << "routedb: " << flag << " needs an integer in [0, " << max << "], got '"
              << text << "'\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pathalias::support::failpoint::ArmFromEnv();
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "build" || command == "freeze") {
    if (argc != 4) {
      return Usage();
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "routedb: cannot open " << argv[2] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pathalias::Diagnostics diag;
    pathalias::RouteSet routes = pathalias::RouteSet::FromText(buffer.str(), &diag);
    if (command == "build") {
      if (!routes.WriteCdbFile(argv[3])) {
        std::cerr << "routedb: cannot write " << argv[3] << "\n";
        return 1;
      }
      std::cerr << "routedb: " << routes.size() << " routes written\n";
      return 0;
    }
    if (!pathalias::image::ImageWriter::WriteFile(routes, argv[3])) {
      std::cerr << "routedb: cannot write " << argv[3] << "\n";
      return 1;
    }
    // Re-open with the checksum pass: a freeze that cannot be read back is a failure
    // now, not at delivery time.
    std::string error;
    auto reopened = pathalias::FrozenImage::Open(
        argv[3], pathalias::image::ImageView::Verify::kChecksum, &error);
    if (!reopened) {
      std::cerr << "routedb: frozen image fails verification: " << error << "\n";
      return 1;
    }
    std::cerr << "routedb: " << routes.size() << " routes ("
              << reopened->routes().names().size() << " names) frozen\n";
    return 0;
  }
  if (command == "update") {
    return RunUpdate(argc, argv);
  }
  if (command == "query") {
    return RunQuery(argc, argv);
  }
  if (command == "get" || command == "resolve" || command == "batch") {
    bool use_image = false;
    BatchFlags flags;
    std::vector<const char*> positional;  // db path, then the command's operands
    for (int i = 2; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg == "--image") {
        use_image = true;
        continue;
      }
      if (arg == "--threads" || arg == "--cache-entries" || arg == "--chunk-lines" ||
          arg == "--stats") {
        if (command != "batch") {
          std::cerr << "routedb: " << arg << " only applies to batch\n";
          return 2;
        }
        if (arg == "--stats") {
          flags.stats = true;
          continue;
        }
        if (i + 1 >= argc) {
          return Usage();
        }
        uint64_t value = 0;
        if (arg == "--threads") {
          // 0 = all hardware threads; cap at a sanity bound, not the hardware.
          if (!ParseCount("--threads", argv[++i], 1024, &value)) {
            return 2;
          }
          flags.threads = static_cast<int>(value);
        } else if (arg == "--chunk-lines") {
          // 0 would buffer nothing; treat it as the minimum useful chunk.
          if (!ParseCount("--chunk-lines", argv[++i], uint64_t{1} << 30, &value)) {
            return 2;
          }
          flags.chunk_lines = std::max<size_t>(1, static_cast<size_t>(value));
        } else {
          if (!ParseCount("--cache-entries", argv[++i], uint64_t{1} << 30, &value)) {
            return 2;
          }
          flags.cache_entries = static_cast<size_t>(value);
        }
        continue;
      }
      // Single-dash junk is an error too, not a path (parity with the other tools:
      // "routedb get -x db host" must not try to open a database named "-x").
      if (!arg.empty() && arg[0] == '-' && arg != "-") {
        std::cerr << "routedb: unknown option " << arg << "\n";
        return Usage();
      }
      positional.push_back(argv[i]);
    }
    if (positional.empty()) {
      return Usage();
    }
    const char* db_path = positional.front();
    std::vector<const char*> operands(positional.begin() + 1, positional.end());
    // get/resolve need at least one operand; batch's operand is optional (stdin).
    if (command != "batch" && operands.empty()) {
      return Usage();
    }
    if (use_image) {
      std::string error;
      // A batch run walks most of the image: tell the kernel up front.  get/resolve
      // touch a handful of pages; faulting them on demand is cheaper.
      bool readahead = command == "batch";
      auto image = pathalias::FrozenImage::Open(
          db_path, pathalias::image::ImageView::Verify::kStructure, &error, readahead);
      if (!image) {
        std::cerr << "routedb: cannot read " << db_path
                  << (error.empty() ? "" : ": " + error) << "\n";
        return 1;
      }
      return RunQueryCommand(command, image->routes(), operands, flags);
    }
    auto routes = pathalias::RouteSet::OpenCdbFile(db_path);
    if (!routes) {
      std::cerr << "routedb: cannot read " << db_path << "\n";
      return 1;
    }
    return RunQueryCommand(command, *routes, operands, flags);
  }
  return Usage();
}
