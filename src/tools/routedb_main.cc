// routedb: convert pathalias output into a constant database and query it.
//
// The paper (§Output): "a separate program may be used to convert this file into a
// format appropriate for rapid database retrieval."  This is that program, plus the
// query side a delivery agent would call.
//
// Usage:
//   routedb build <routes.txt> <routes.cdb>     build the database
//   routedb get   <routes.cdb> <host>           print the raw route for a host
//   routedb resolve <routes.cdb> <address>...   resolve full addresses (domain-suffix
//                                               lookup, rightmost-known rewriting)
//   routedb batch <routes.cdb> [hosts.txt]      bulk host lookup, one per line (stdin
//                                               if no file): "host<TAB>route-key" per
//                                               hit, "host<TAB>*miss*" per miss

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace {

int Usage() {
  std::cerr << "usage: routedb build <routes.txt> <routes.cdb>\n"
               "       routedb get <routes.cdb> <host>\n"
               "       routedb resolve <routes.cdb> <address>...\n"
               "       routedb batch <routes.cdb> [hosts.txt]\n";
  return 2;
}

// Bulk delivery scan: the whole list goes through Resolver::ResolveBatch in one call.
int RunBatch(const pathalias::RouteSet& routes, std::istream& in) {
  std::vector<std::string> hosts;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      hosts.push_back(line);
    }
  }
  std::vector<std::string_view> queries(hosts.begin(), hosts.end());
  std::vector<pathalias::BatchLookup> results(queries.size());
  pathalias::Resolver resolver(&routes, pathalias::ResolveOptions{});
  size_t resolved = resolver.ResolveBatch(queries, results);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (results[i].route != nullptr) {
      std::cout << queries[i] << "\t" << routes.names().View(results[i].via) << "\n";
    } else {
      std::cout << queries[i] << "\t*miss*\n";
    }
  }
  std::cerr << "routedb: " << resolved << "/" << queries.size() << " resolved\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "build") {
    if (argc != 4) {
      return Usage();
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "routedb: cannot open " << argv[2] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pathalias::Diagnostics diag;
    pathalias::RouteSet routes = pathalias::RouteSet::FromText(buffer.str(), &diag);
    if (!routes.WriteCdbFile(argv[3])) {
      std::cerr << "routedb: cannot write " << argv[3] << "\n";
      return 1;
    }
    std::cerr << "routedb: " << routes.size() << " routes written\n";
    return 0;
  }
  if (command == "batch") {
    if (argc != 3 && argc != 4) {
      return Usage();
    }
    auto routes = pathalias::RouteSet::OpenCdbFile(argv[2]);
    if (!routes) {
      std::cerr << "routedb: cannot read " << argv[2] << "\n";
      return 1;
    }
    if (argc == 3) {
      return RunBatch(*routes, std::cin);
    }
    std::ifstream in(argv[3]);
    if (!in) {
      std::cerr << "routedb: cannot open " << argv[3] << "\n";
      return 1;
    }
    return RunBatch(*routes, in);
  }
  if (command == "get" || command == "resolve") {
    if (argc < 4) {
      return Usage();
    }
    auto routes = pathalias::RouteSet::OpenCdbFile(argv[2]);
    if (!routes) {
      std::cerr << "routedb: cannot read " << argv[2] << "\n";
      return 1;
    }
    if (command == "get") {
      const pathalias::Route* route = routes->Find(argv[3]);
      if (route == nullptr) {
        std::cerr << "routedb: no route to " << argv[3] << "\n";
        return 1;
      }
      std::cout << route->route << "\n";
      return 0;
    }
    pathalias::ResolveOptions options;
    options.optimize = pathalias::ResolveOptions::Optimize::kRightmostKnown;
    pathalias::Resolver resolver(&*routes, options);
    int failures = 0;
    for (int i = 3; i < argc; ++i) {
      pathalias::Resolution resolution = resolver.Resolve(argv[i]);
      if (resolution.ok) {
        std::cout << argv[i] << "\t" << resolution.route << "\t(via " << resolution.via
                  << ")\n";
      } else {
        std::cout << argv[i] << "\t*error* " << resolution.error << "\n";
        ++failures;
      }
    }
    return failures == 0 ? 0 : 1;
  }
  return Usage();
}
