// routedb: convert pathalias output into a constant database and query it.
//
// The paper (§Output): "a separate program may be used to convert this file into a
// format appropriate for rapid database retrieval."  This is that program, plus the
// query side a delivery agent would call.
//
// Usage:
//   routedb build <routes.txt> <routes.cdb>     build the database
//   routedb get   <routes.cdb> <host>           print the raw route for a host
//   routedb resolve <routes.cdb> <address>...   resolve full addresses (domain-suffix
//                                               lookup, rightmost-known rewriting)

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace {

int Usage() {
  std::cerr << "usage: routedb build <routes.txt> <routes.cdb>\n"
               "       routedb get <routes.cdb> <host>\n"
               "       routedb resolve <routes.cdb> <address>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "build") {
    if (argc != 4) {
      return Usage();
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "routedb: cannot open " << argv[2] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pathalias::Diagnostics diag;
    pathalias::RouteSet routes = pathalias::RouteSet::FromText(buffer.str(), &diag);
    if (!routes.WriteCdbFile(argv[3])) {
      std::cerr << "routedb: cannot write " << argv[3] << "\n";
      return 1;
    }
    std::cerr << "routedb: " << routes.size() << " routes written\n";
    return 0;
  }
  if (command == "get" || command == "resolve") {
    if (argc < 4) {
      return Usage();
    }
    auto routes = pathalias::RouteSet::OpenCdbFile(argv[2]);
    if (!routes) {
      std::cerr << "routedb: cannot read " << argv[2] << "\n";
      return 1;
    }
    if (command == "get") {
      const pathalias::Route* route = routes->Find(argv[3]);
      if (route == nullptr) {
        std::cerr << "routedb: no route to " << argv[3] << "\n";
        return 1;
      }
      std::cout << route->route << "\n";
      return 0;
    }
    pathalias::ResolveOptions options;
    options.optimize = pathalias::ResolveOptions::Optimize::kRightmostKnown;
    pathalias::Resolver resolver(&*routes, options);
    int failures = 0;
    for (int i = 3; i < argc; ++i) {
      pathalias::Resolution resolution = resolver.Resolve(argv[i]);
      if (resolution.ok) {
        std::cout << argv[i] << "\t" << resolution.route << "\t(via " << resolution.via
                  << ")\n";
      } else {
        std::cout << argv[i] << "\t*error* " << resolution.error << "\n";
        ++failures;
      }
    }
    return failures == 0 ? 0 : 1;
  }
  return Usage();
}
