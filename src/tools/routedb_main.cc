// routedb: convert pathalias output into a constant database and query it.
//
// The paper (§Output): "a separate program may be used to convert this file into a
// format appropriate for rapid database retrieval."  This is that program, plus the
// query side a delivery agent would call.  Two on-disk formats are supported: the cdb
// image (parsed back into a live RouteSet at open) and the .pari frozen route image
// (mmap'd and queried in place — no re-parsing, no re-interning; see src/image/).
//
// Usage:
//   routedb build  <routes.txt> <routes.cdb>    build the cdb database
//   routedb freeze <routes.txt> <routes.pari>   freeze the mmap-able route image
//   routedb get   [--image] <db> <host>         print the raw route for a host
//   routedb resolve [--image] <db> <address>... resolve full addresses (domain-suffix
//                                               lookup, rightmost-known rewriting)
//   routedb batch [--image] <db> [hosts.txt]    bulk host lookup, one per line (stdin
//                                               if no file): "host<TAB>route-key" per
//                                               hit, "host<TAB>*miss*" per miss;
//                                               malformed queries are reported with
//                                               their line number and skipped

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/image/frozen_route_set.h"
#include "src/image/image_writer.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace {

int Usage() {
  std::cerr << "usage: routedb build <routes.txt> <routes.cdb>\n"
               "       routedb freeze <routes.txt> <routes.pari>\n"
               "       routedb get [--image] <db> <host>\n"
               "       routedb resolve [--image] <db> <address>...\n"
               "       routedb batch [--image] <db> [hosts.txt]\n";
  return 2;
}

// A valid batch query is a non-empty run of printable, non-blank ASCII (host names and
// domain keys are).  Anything else gets a per-line diagnostic instead of poisoning the
// rest of the batch.
const char* QueryDefect(const std::string& line) {
  for (unsigned char c : line) {
    if (c == ' ' || c == '\t') {
      return "contains whitespace";
    }
    if (c < 0x21 || c > 0x7e) {
      return "contains a control or non-ASCII byte";
    }
  }
  return nullptr;
}

// Echoing a malformed line verbatim would corrupt the 2-column TSV output (that is
// what made it malformed); tabs and control/non-ASCII bytes become '?' so downstream
// `cut -f2`-style joins still see exactly two fields.
std::string SanitizeForTsv(const std::string& line) {
  std::string out = line;
  for (char& c : out) {
    unsigned char byte = static_cast<unsigned char>(c);
    if (byte == '\t' || byte < 0x20 || byte > 0x7e) {
      c = '?';
    }
  }
  return out;
}

// Bulk delivery scan: the well-formed queries go through ResolveBatch in one call;
// malformed lines are reported with their line number and skipped.  Output is one line
// per input line (misses and malformed queries included), so the stream stays aligned
// with the input for downstream joins.
template <typename RouteSourceT>
int RunBatch(const RouteSourceT& routes, std::istream& in, const char* input_name) {
  std::vector<std::string> hosts;
  std::vector<int> line_numbers;
  std::vector<std::pair<int, std::string>> malformed;  // line number, raw text
  std::string line;
  int line_number = 0;
  size_t malformed_count = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    if (const char* defect = QueryDefect(line)) {
      std::cerr << "routedb: " << input_name << ":" << line_number << ": malformed query ("
                << defect << "); skipped\n";
      malformed.emplace_back(line_number, SanitizeForTsv(line));
      ++malformed_count;
      continue;
    }
    hosts.push_back(line);
    line_numbers.push_back(line_number);
  }
  std::vector<std::string_view> queries(hosts.begin(), hosts.end());
  std::vector<pathalias::BatchLookup> results(queries.size());
  pathalias::BasicResolver<RouteSourceT> resolver(&routes, pathalias::ResolveOptions{});
  size_t resolved = resolver.ResolveBatch(queries, results);
  size_t next_malformed = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    // Interleave the malformed lines back at their original positions.
    while (next_malformed < malformed.size() &&
           malformed[next_malformed].first < line_numbers[i]) {
      std::cout << malformed[next_malformed].second << "\t*malformed*\n";
      ++next_malformed;
    }
    if (results[i].route.ok()) {
      std::cout << queries[i] << "\t" << routes.names().View(results[i].via) << "\n";
    } else {
      std::cout << queries[i] << "\t*miss*\n";
    }
  }
  while (next_malformed < malformed.size()) {
    std::cout << malformed[next_malformed].second << "\t*malformed*\n";
    ++next_malformed;
  }
  std::cerr << "routedb: " << resolved << "/" << queries.size() << " resolved";
  if (malformed_count > 0) {
    std::cerr << ", " << malformed_count << " malformed";
  }
  std::cerr << "\n";
  return 0;
}

template <typename RouteSourceT>
int RunGet(const RouteSourceT& routes, const char* host) {
  pathalias::RouteView route = routes.FindRouteView(std::string_view(host));
  if (!route.ok()) {
    std::cerr << "routedb: no route to " << host << "\n";
    return 1;
  }
  std::cout << route.route << "\n";
  return 0;
}

template <typename RouteSourceT>
int RunResolve(const RouteSourceT& routes, int argc, char** argv, int first) {
  pathalias::ResolveOptions options;
  options.optimize = pathalias::ResolveOptions::Optimize::kRightmostKnown;
  pathalias::BasicResolver<RouteSourceT> resolver(&routes, options);
  int failures = 0;
  for (int i = first; i < argc; ++i) {
    pathalias::Resolution resolution = resolver.Resolve(argv[i]);
    if (resolution.ok) {
      std::cout << argv[i] << "\t" << resolution.route << "\t(via " << resolution.via
                << ")\n";
    } else {
      std::cout << argv[i] << "\t*error* " << resolution.error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

// Dispatches get/resolve/batch to the cdb-backed RouteSet or the mmap'd image.
template <typename RouteSourceT>
int RunQueryCommand(const std::string& command, const RouteSourceT& routes, int argc,
                    char** argv, int first) {
  if (command == "get") {
    return RunGet(routes, argv[first]);
  }
  if (command == "resolve") {
    return RunResolve(routes, argc, argv, first);
  }
  if (first >= argc) {
    return RunBatch(routes, std::cin, "<stdin>");
  }
  std::ifstream in(argv[first]);
  if (!in) {
    std::cerr << "routedb: cannot open " << argv[first] << "\n";
    return 1;
  }
  return RunBatch(routes, in, argv[first]);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "build" || command == "freeze") {
    if (argc != 4) {
      return Usage();
    }
    std::ifstream in(argv[2]);
    if (!in) {
      std::cerr << "routedb: cannot open " << argv[2] << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pathalias::Diagnostics diag;
    pathalias::RouteSet routes = pathalias::RouteSet::FromText(buffer.str(), &diag);
    if (command == "build") {
      if (!routes.WriteCdbFile(argv[3])) {
        std::cerr << "routedb: cannot write " << argv[3] << "\n";
        return 1;
      }
      std::cerr << "routedb: " << routes.size() << " routes written\n";
      return 0;
    }
    if (!pathalias::image::ImageWriter::WriteFile(routes, argv[3])) {
      std::cerr << "routedb: cannot write " << argv[3] << "\n";
      return 1;
    }
    // Re-open with the checksum pass: a freeze that cannot be read back is a failure
    // now, not at delivery time.
    std::string error;
    auto reopened = pathalias::FrozenImage::Open(
        argv[3], pathalias::image::ImageView::Verify::kChecksum, &error);
    if (!reopened) {
      std::cerr << "routedb: frozen image fails verification: " << error << "\n";
      return 1;
    }
    std::cerr << "routedb: " << routes.size() << " routes ("
              << reopened->routes().names().size() << " names) frozen\n";
    return 0;
  }
  if (command == "get" || command == "resolve" || command == "batch") {
    int arg = 2;
    bool use_image = arg < argc && std::string(argv[arg]) == "--image";
    if (use_image) {
      ++arg;
    }
    if (arg >= argc) {
      return Usage();
    }
    const char* db_path = argv[arg++];
    // get/resolve need at least one operand; batch's operand is optional (stdin).
    if (command != "batch" && arg >= argc) {
      return Usage();
    }
    if (use_image) {
      std::string error;
      auto image = pathalias::FrozenImage::Open(
          db_path, pathalias::image::ImageView::Verify::kStructure, &error);
      if (!image) {
        std::cerr << "routedb: cannot read " << db_path
                  << (error.empty() ? "" : ": " + error) << "\n";
        return 1;
      }
      return RunQueryCommand(command, image->routes(), argc, argv, arg);
    }
    auto routes = pathalias::RouteSet::OpenCdbFile(db_path);
    if (!routes) {
      std::cerr << "routedb: cannot read " << db_path << "\n";
      return 1;
    }
    return RunQueryCommand(command, *routes, argc, argv, arg);
  }
  return Usage();
}
