// The hand-built scanner (paper §Parsing).
//
// "Since our input tokens are easy to recognize, we built a simple scanner and cut the
// overall run time by 40%."  This is that scanner: a single pass over the input buffer,
// names returned as string_views into it (zero copies), one switch per character class.
//
// Handled here: '#' comments to end of line, backslash-newline splicing, CRLF input,
// and raw capture of parenthesized cost expressions.

#ifndef SRC_PARSER_LEXER_H_
#define SRC_PARSER_LEXER_H_

#include <string_view>

#include "src/parser/scanner.h"
#include "src/parser/token.h"

namespace pathalias {

class Lexer final : public Scanner {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Token Next() override;
  std::string_view CaptureParenBody() override;
  int line() const override { return line_; }

 private:
  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace pathalias

#endif  // SRC_PARSER_LEXER_H_
