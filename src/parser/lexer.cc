#include "src/parser/lexer.h"

namespace pathalias {

Token Lexer::Next() {
  for (;;) {
    if (pos_ >= input_.size()) {
      return Token{TokenKind::kEnd, {}, line_, 0};
    }
    char c = input_[pos_];
    switch (c) {
      case ' ':
      case '\t':
      case '\r':
        ++pos_;
        continue;
      case '\\':
        if (PeekAt(1) == '\n') {  // line splice
          pos_ += 2;
          ++line_;
          continue;
        }
        ++pos_;
        return Token{TokenKind::kBad, input_.substr(pos_ - 1, 1), line_, 0};
      case '#':
        while (pos_ < input_.size() && input_[pos_] != '\n') {
          ++pos_;
        }
        continue;
      case '\n': {
        Token token{TokenKind::kNewline, input_.substr(pos_, 1), line_, 0};
        ++pos_;
        ++line_;
        return token;
      }
      case ',':
        ++pos_;
        return Token{TokenKind::kComma, input_.substr(pos_ - 1, 1), line_, 0};
      case '{':
        ++pos_;
        return Token{TokenKind::kLBrace, input_.substr(pos_ - 1, 1), line_, 0};
      case '}':
        ++pos_;
        return Token{TokenKind::kRBrace, input_.substr(pos_ - 1, 1), line_, 0};
      case '(':
        ++pos_;
        return Token{TokenKind::kLParen, input_.substr(pos_ - 1, 1), line_, 0};
      case ')':
        ++pos_;
        return Token{TokenKind::kRParen, input_.substr(pos_ - 1, 1), line_, 0};
      case '=':
        ++pos_;
        return Token{TokenKind::kEquals, input_.substr(pos_ - 1, 1), line_, 0};
      case '!':
      case '@':
      case ':':
      case '%':
        ++pos_;
        return Token{TokenKind::kOp, input_.substr(pos_ - 1, 1), line_, c};
      default:
        break;
    }
    if (IsNameChar(c)) {
      size_t start = pos_;
      while (pos_ < input_.size() && IsNameChar(input_[pos_])) {
        ++pos_;
      }
      return Token{TokenKind::kName, input_.substr(start, pos_ - start), line_, 0};
    }
    ++pos_;
    return Token{TokenKind::kBad, input_.substr(pos_ - 1, 1), line_, 0};
  }
}

std::string_view Lexer::CaptureParenBody() {
  size_t start = pos_;
  int depth = 1;
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth == 0) {
        std::string_view body = input_.substr(start, pos_ - start);
        ++pos_;
        return body;
      }
    } else if (c == '\n') {
      ++line_;
    }
    ++pos_;
  }
  return input_.substr(start);  // unterminated; parser reports it
}

}  // namespace pathalias
