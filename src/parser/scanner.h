// Scanner interface.
//
// The paper reports that a lex-generated scanner consumed half of pathalias's total run
// time, and that replacing it with a simple hand-built scanner "cut the overall run time
// by 40%".  To let experiment E4 reproduce that comparison, the parser is written
// against this interface; the production Lexer and the baseline SlowScanner both
// implement it.

#ifndef SRC_PARSER_SCANNER_H_
#define SRC_PARSER_SCANNER_H_

#include <string_view>

#include "src/parser/token.h"

namespace pathalias {

class Scanner {
 public:
  virtual ~Scanner() = default;

  // Produces the next token.  Returns kEnd forever once input is exhausted.
  virtual Token Next() = 0;

  // Called when the parser has just consumed a kLParen: scans raw text to the matching
  // close parenthesis (nesting-aware), consumes it, and returns the body — the cost
  // expression evaluator takes over from there.
  virtual std::string_view CaptureParenBody() = 0;

  // Current 1-based line (for diagnostics on capture errors).
  virtual int line() const = 0;
};

}  // namespace pathalias

#endif  // SRC_PARSER_SCANNER_H_
