#include "src/parser/parser.h"

#include <array>

#include "src/graph/cost.h"

namespace pathalias {
namespace {

constexpr std::array<std::string_view, 6> kKeywords = {
    "private", "dead", "delete", "adjust", "gatewayed", "gateway",
};

bool IsKeyword(std::string_view name) {
  for (std::string_view keyword : kKeywords) {
    if (name == keyword) {
      return true;
    }
  }
  return false;
}

}  // namespace

int Parser::ParseFile(std::string_view file_name, Scanner& scanner) {
  scanner_ = &scanner;
  file_name_ = std::string(file_name);
  graph_->BeginFile(file_name);
  Advance();
  while (!At(TokenKind::kEnd)) {
    ParseLine();
  }
  graph_->EndFile();
  scanner_ = nullptr;
  return accepted_;
}

int Parser::ParseFile(const InputFile& file) {
  Lexer lexer(file.content);
  return ParseFile(file.name, lexer);
}

int Parser::ParseFiles(const std::vector<InputFile>& files) {
  int total = 0;
  for (const InputFile& file : files) {
    total += ParseFile(file);
  }
  return total;
}

void Parser::Advance() {
  token_ = scanner_->Next();
  if (token_.kind == TokenKind::kName) {
    // Intern at tokenization: this is the single point where a name's bytes are hashed
    // and copied.  Everything downstream — graph, mapper, printer — handles the id.
    token_.id = graph_->InternName(token_.text);
  }
}

SourcePos Parser::Here() const { return SourcePos{file_name_, token_.line}; }

void Parser::ErrorHere(std::string message) { graph_->diag().Error(Here(), std::move(message)); }

void Parser::SyncToNewline() {
  while (!At(TokenKind::kNewline) && !At(TokenKind::kEnd)) {
    Advance();
  }
}

void Parser::SkipNewlines() {
  while (At(TokenKind::kNewline)) {
    Advance();
  }
}

void Parser::ParseLine() {
  SkipNewlines();
  if (At(TokenKind::kEnd)) {
    return;
  }
  if (!At(TokenKind::kName)) {
    ErrorHere("expected a host name at the start of a declaration");
    SyncToNewline();
    return;
  }
  Token name = token_;
  Advance();
  if (IsKeyword(name.text) && At(TokenKind::kLBrace)) {
    if (ParseKeywordDeclaration(name)) {
      ++accepted_;
    }
    return;
  }
  if (At(TokenKind::kEquals)) {
    ParseEqualsDeclaration(name);
    return;
  }
  ParseHostDeclaration(name);
}

void Parser::ParseHostDeclaration(Token name) {
  Node* from = graph_->Intern(name.id);
  if (recorder_ != nullptr) {
    recorder_->RecordIntern(name.text);
    recorder_->RecordHostDecl(name.text);
  }
  if (first_host_ == kNoName && !IsDomainName(name.text)) {
    first_host_ = name.id;
  }
  if (At(TokenKind::kNewline) || At(TokenKind::kEnd)) {
    ++accepted_;  // a bare host declaration: known but unconnected
    return;
  }
  for (;;) {
    LinkSpec spec = ParseLinkSpec();
    if (!spec.ok) {
      SyncToNewline();
      return;
    }
    Node* to = graph_->Intern(spec.id);
    graph_->AddLink(from, to, spec.cost, spec.op, spec.right, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(spec.name);
      recorder_->RecordLink(name.text, spec.name, spec.cost, spec.op, spec.right);
    }
    if (At(TokenKind::kComma)) {
      Advance();
      SkipNewlines();  // a trailing comma continues the declaration on the next line
      if (At(TokenKind::kEnd)) {
        break;
      }
      continue;
    }
    if (At(TokenKind::kNewline) || At(TokenKind::kEnd)) {
      break;
    }
    ErrorHere("expected ',' or end of line after a link");
    SyncToNewline();
    return;
  }
  ++accepted_;
}

Parser::LinkSpec Parser::ParseLinkSpec() {
  LinkSpec spec;
  bool leading_op = false;
  if (At(TokenKind::kOp)) {
    // Leading operator: the host appears on the right of it (user@host style).
    spec.op = token_.op;
    spec.right = true;
    leading_op = true;
    Advance();
  }
  if (!At(TokenKind::kName)) {
    ErrorHere("expected a host name in link");
    return spec;
  }
  spec.name = token_.text;
  spec.id = token_.id;
  Advance();
  if (At(TokenKind::kOp)) {
    if (leading_op) {
      ErrorHere("link has routing operators on both sides of the host name");
      return spec;
    }
    spec.op = token_.op;
    spec.right = false;
    Advance();
  }
  spec.cost = ParseOptionalCost(kDefaultCost);
  spec.ok = true;
  return spec;
}

Cost Parser::ParseOptionalCost(Cost fallback, bool* had_cost) {
  if (had_cost != nullptr) {
    *had_cost = false;
  }
  if (!At(TokenKind::kLParen)) {
    return fallback;
  }
  int open_line = token_.line;
  std::string_view body = scanner_->CaptureParenBody();
  Advance();
  CostParse parsed = EvalCostExpression(body);
  if (!parsed.value) {
    graph_->diag().Error(SourcePos{file_name_, open_line}, parsed.error);
    return fallback;
  }
  if (had_cost != nullptr) {
    *had_cost = true;
  }
  return *parsed.value;
}

void Parser::ParseEqualsDeclaration(Token name) {
  Advance();  // consume '='
  char op = kDefaultOp;
  bool right = false;
  bool have_op = false;
  if (At(TokenKind::kOp)) {
    // Operator before the brace: members are addressed user-op-host (right syntax).
    op = token_.op;
    right = true;
    have_op = true;
    Advance();
  }
  if (At(TokenKind::kLBrace)) {
    Advance();
    SkipNewlines();
    std::vector<Node*> members;
    std::vector<std::string_view> member_names;
    bool bad = false;
    while (!At(TokenKind::kRBrace)) {
      if (At(TokenKind::kEnd)) {
        ErrorHere("unterminated network member list");
        return;
      }
      if (!At(TokenKind::kName)) {
        ErrorHere("expected a member host name in network declaration");
        SyncToNewline();
        bad = true;
        break;
      }
      members.push_back(graph_->Intern(token_.id));
      member_names.push_back(token_.text);
      if (recorder_ != nullptr) {
        recorder_->RecordIntern(token_.text);
      }
      Advance();
      if (At(TokenKind::kComma)) {
        Advance();
      }
      SkipNewlines();
    }
    if (bad) {
      return;
    }
    Advance();  // consume '}'
    if (!have_op && At(TokenKind::kOp)) {
      op = token_.op;
      right = false;
      Advance();
    }
    Cost cost = ParseOptionalCost(kDefaultCost);
    Node* net = graph_->Intern(name.id);
    graph_->DeclareNet(net, members, cost, op, right, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(name.text);
      recorder_->RecordNet(name.text, member_names, cost, op, right);
    }
    ++accepted_;
    return;
  }
  if (have_op) {
    ErrorHere("routing operator is only valid before a network member list");
    SyncToNewline();
    return;
  }
  if (At(TokenKind::kName)) {
    // name = other: the two names refer to the same machine.  The interns are
    // sequenced explicitly: node-creation order must not depend on argument
    // evaluation order (replay reproduces this exact sequence).
    Node* a = graph_->Intern(name.id);
    Node* b = graph_->Intern(token_.id);
    graph_->AddAlias(a, b, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(name.text);
      recorder_->RecordIntern(token_.text);
      recorder_->RecordAlias(name.text, token_.text);
    }
    Advance();
    ++accepted_;
    return;
  }
  ErrorHere("expected an alias name or '{' after '='");
  SyncToNewline();
}

bool Parser::ParseKeywordDeclaration(const Token& name) {
  Advance();  // consume '{'
  SkipNewlines();
  if (name.text == "private") {
    ParsePrivateBody();
  } else if (name.text == "dead") {
    ParseDeadBody();
  } else if (name.text == "delete") {
    ParseDeleteBody();
  } else if (name.text == "adjust") {
    ParseAdjustBody();
  } else if (name.text == "gatewayed") {
    ParseGatewayedBody();
  } else {
    ParseGatewayBody();
  }
  if (!At(TokenKind::kRBrace)) {
    ErrorHere("expected '}' to close '" + std::string(name.text) + "' declaration");
    SyncToNewline();
    return false;
  }
  Advance();
  return true;
}

void Parser::ParsePrivateBody() {
  while (At(TokenKind::kName)) {
    graph_->DeclarePrivate(token_.id, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordPrivate(token_.text);
    }
    Advance();
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

void Parser::ParseDeadBody() {
  while (At(TokenKind::kName)) {
    Token first = token_;
    Advance();
    if (At(TokenKind::kOp)) {
      Advance();
      if (!At(TokenKind::kName)) {
        ErrorHere("expected a host name after '!' in dead link");
        return;
      }
      Node* from = graph_->Intern(first.id);
      Node* to = graph_->Intern(token_.id);
      graph_->MarkDeadLink(from, to, Here());
      if (recorder_ != nullptr) {
        recorder_->RecordIntern(first.text);
        recorder_->RecordIntern(token_.text);
        recorder_->RecordDeadLink(first.text, token_.text);
      }
      Advance();
    } else {
      graph_->MarkDeadHost(graph_->Intern(first.id), Here());
      if (recorder_ != nullptr) {
        recorder_->RecordIntern(first.text);
        recorder_->RecordDeadHost(first.text);
      }
    }
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

void Parser::ParseDeleteBody() {
  while (At(TokenKind::kName)) {
    graph_->DeleteHost(graph_->Intern(token_.id), Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(token_.text);
      recorder_->RecordDelete(token_.text);
    }
    Advance();
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

void Parser::ParseAdjustBody() {
  while (At(TokenKind::kName)) {
    Node* host = graph_->Intern(token_.id);
    std::string_view host_name = token_.text;
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(host_name);
    }
    Advance();
    bool had_cost = false;
    Cost amount = ParseOptionalCost(0, &had_cost);
    if (!had_cost) {
      ErrorHere("adjust requires a parenthesized cost, e.g. adjust {host(+100)}");
      return;
    }
    graph_->AdjustHost(host, amount, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordAdjust(host_name, amount);
    }
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

void Parser::ParseGatewayedBody() {
  while (At(TokenKind::kName)) {
    graph_->MarkGatewayed(graph_->Intern(token_.id), Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(token_.text);
      recorder_->RecordGatewayed(token_.text);
    }
    Advance();
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

void Parser::ParseGatewayBody() {
  while (At(TokenKind::kName)) {
    Token net = token_;
    Advance();
    if (!At(TokenKind::kOp)) {
      ErrorHere("gateway declarations use net!host pairs");
      return;
    }
    Advance();
    if (!At(TokenKind::kName)) {
      ErrorHere("expected a gateway host name after '!'");
      return;
    }
    Node* net_node = graph_->Intern(net.id);
    Node* gateway = graph_->Intern(token_.id);
    graph_->MarkGatewayLink(net_node, gateway, Here());
    if (recorder_ != nullptr) {
      recorder_->RecordIntern(net.text);
      recorder_->RecordIntern(token_.text);
      recorder_->RecordGatewayLink(net.text, token_.text);
    }
    Advance();
    if (At(TokenKind::kComma)) {
      Advance();
    }
    SkipNewlines();
  }
}

}  // namespace pathalias
