// Recursive-descent parser for the pathalias input language (paper §Input, §Parsing).
//
// The original used yacc with syntax-directed translation; the grammar is small enough
// that recursive descent expresses it directly (and keeps the scanner comparison of
// experiment E4 free of parser-generator noise).  Grammar reference: DESIGN.md §2.
//
// Error recovery is line-based, matching the data's reality ("often contradictory and
// error-filled"): a malformed declaration is reported and skipped through the next
// newline; parsing always continues.

#ifndef SRC_PARSER_PARSER_H_
#define SRC_PARSER_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/graph/graph.h"
#include "src/parser/lexer.h"
#include "src/parser/parse_recorder.h"
#include "src/parser/scanner.h"

namespace pathalias {

// One input map file.  Site maps are distributed per-machine; file identity matters
// because private-name scope and duplicate-link severity are per-file.
struct InputFile {
  // pathalint: allow(R1): input boundary — the OS-supplied map-file path, used
  // for per-file scope and diagnostics; it exists before any interner does.
  std::string name;
  std::string content;
};

class Parser {
 public:
  explicit Parser(Graph* graph) : graph_(graph) {}

  // Mirrors every graph mutation to `recorder` (see parse_recorder.h); nullptr stops
  // recording.  The incremental pipeline records per-file artifacts this way.
  void set_recorder(ParseRecorder* recorder) { recorder_ = recorder; }

  // Parses one file through the given scanner.  Errors are reported to the graph's
  // diagnostics; returns the number of declarations accepted.
  int ParseFile(std::string_view file_name, Scanner& scanner);

  // Convenience: parse with the production Lexer.
  int ParseFile(const InputFile& file);
  int ParseFiles(const std::vector<InputFile>& files);

  // First host declared across all parsed files: the default local host when the
  // caller provides none [R].  Resolves through the graph's interner.
  std::string_view first_host() const {
    return first_host_ == kNoName ? std::string_view() : graph_->NameOf(first_host_);
  }

 private:
  struct LinkSpec {
    // pathalint: allow(R1): pre-interning token — a view into the scanner's
    // buffer held only until the link is committed, at which point `id` rules.
    std::string_view name;
    NameId id = kNoName;
    char op = kDefaultOp;
    bool right = false;
    Cost cost = kDefaultCost;
    bool ok = false;
  };

  // --- token plumbing ---
  void Advance();
  bool At(TokenKind kind) const { return token_.kind == kind; }
  SourcePos Here() const;
  void ErrorHere(std::string message);
  void SyncToNewline();
  void SkipNewlines();

  // --- productions ---
  void ParseLine();
  void ParseHostDeclaration(Token name);
  void ParseEqualsDeclaration(Token name);  // alias or network
  bool ParseKeywordDeclaration(const Token& name);
  LinkSpec ParseLinkSpec();
  // Parses "(expr)" if present; returns fallback otherwise.
  Cost ParseOptionalCost(Cost fallback, bool* had_cost = nullptr);

  void ParsePrivateBody();
  void ParseDeadBody();
  void ParseDeleteBody();
  void ParseAdjustBody();
  void ParseGatewayedBody();
  void ParseGatewayBody();

  Graph* graph_;
  ParseRecorder* recorder_ = nullptr;
  Scanner* scanner_ = nullptr;
  // pathalint: allow(R1): diagnostics only — error messages cite the input file
  // path; it is never a routing name and never interned.
  std::string file_name_;
  Token token_;
  NameId first_host_ = kNoName;
  int accepted_ = 0;
};

}  // namespace pathalias

#endif  // SRC_PARSER_PARSER_H_
