// Lexical tokens of the pathalias input language.

#ifndef SRC_PARSER_TOKEN_H_
#define SRC_PARSER_TOKEN_H_

#include <cstdint>
#include <string_view>

#include "src/support/interner.h"

namespace pathalias {

enum class TokenKind : uint8_t {
  kName,     // host / network / domain / keyword name
  kComma,    // ,
  kLBrace,   // {
  kRBrace,   // }
  kLParen,   // (   (opens a cost expression; body is captured raw)
  kRParen,   // )   (only seen on stray closers; cost capture consumes the matching one)
  kEquals,   // =
  kOp,       // routing operator: one of ! @ : %
  kNewline,  // end of a declaration
  kEnd,      // end of input
  kBad,      // unrecognized byte
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;  // name text, or the single punctuation character
  int line = 0;           // 1-based
  char op = 0;            // for kOp: the operator character
  NameId id = kNoName;    // for kName: interned id (filled by the parser's Advance)
};

// Characters legal in host/net/domain names.  UUCP names use letters, digits and a few
// punctuation marks; '.' also spells domains, '-' appears in net names like UNC-dwarf.
inline bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
         c == '.' || c == '-' || c == '_' || c == '+';
}

// Routing operator characters ("network characters" in the original's terms).
inline bool IsOpChar(char c) { return c == '!' || c == '@' || c == ':' || c == '%'; }

}  // namespace pathalias

#endif  // SRC_PARSER_TOKEN_H_
