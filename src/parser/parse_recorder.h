// ParseRecorder: a tap on the parser's graph-mutation stream.
//
// The incremental pipeline (src/incr) needs each input file's declarations in a
// replayable, graph-independent form.  Rather than a second parser, the production
// Parser dual-writes: every call it makes into Graph is mirrored, in order, to an
// optional recorder.  Replaying the recorded stream against any Graph — in the same
// file order — performs the exact same sequence of Graph calls a fresh parse would,
// which is what makes replay-built graphs equivalent to parse-built ones by
// construction.
//
// The interface lives in the parser layer (not src/incr) so the dependency points
// downward; src/incr implements it.  Names are passed as views into the file content
// being parsed: valid for the duration of the enclosing ParseFile call only.

#ifndef SRC_PARSER_PARSE_RECORDER_H_
#define SRC_PARSER_PARSE_RECORDER_H_

#include <string_view>
#include <vector>

#include "src/graph/cost.h"

namespace pathalias {

class ParseRecorder {
 public:
  virtual ~ParseRecorder() = default;

  // Mirrors graph_->Intern(name): find-or-create the visible node.  Emitted for every
  // name the parser resolves, in resolution order, so replay reproduces node-creation
  // order (and thus shadow-chain order) exactly.
  virtual void RecordIntern(std::string_view name) = 0;

  // The name opened a host declaration line — the "first declared host" bookkeeping
  // that provides the default local host.  Follows the name's RecordIntern.
  virtual void RecordHostDecl(std::string_view name) = 0;

  // Mirrors graph_->AddLink(from, to, ...) from a host declaration's link list.
  virtual void RecordLink(std::string_view from, std::string_view to, Cost cost, char op,
                          bool right) = 0;

  // Mirrors graph_->AddAlias(a, b).
  virtual void RecordAlias(std::string_view a, std::string_view b) = 0;

  // Mirrors graph_->DeclareNet(net, members, ...).
  virtual void RecordNet(std::string_view net, const std::vector<std::string_view>& members,
                         Cost cost, char op, bool right) = 0;

  // Mirror the keyword declarations.
  virtual void RecordPrivate(std::string_view name) = 0;
  virtual void RecordDeadHost(std::string_view name) = 0;
  virtual void RecordDeadLink(std::string_view from, std::string_view to) = 0;
  virtual void RecordDelete(std::string_view name) = 0;
  virtual void RecordAdjust(std::string_view name, Cost amount) = 0;
  virtual void RecordGatewayed(std::string_view name) = 0;
  virtual void RecordGatewayLink(std::string_view net, std::string_view gateway) = 0;
};

}  // namespace pathalias

#endif  // SRC_PARSER_PARSE_RECORDER_H_
