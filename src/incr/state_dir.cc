#include "src/incr/state_dir.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "src/support/durable_file.h"
#include "src/support/failpoint.h"

namespace pathalias {
namespace incr {
namespace {

namespace fs = std::filesystem;

// v1: local / ignore_case / files.  v2 adds a generation line (the image publish
// generation) between ignore_case and files; v1 loads back as generation 0.
constexpr int kManifestVersion = 2;

// Slot index + digest of the serialized bytes: content-addressed, so a re-save
// never overwrites a payload an older manifest still references (unless the bytes
// are identical, in which case overwriting is a no-op).
std::string ArtifactFileName(size_t index, uint64_t bytes_digest) {
  char name[48];
  std::snprintf(name, sizeof(name), "%04zu-%016llx.pai", index,
                static_cast<unsigned long long>(bytes_digest));
  return name;
}

// Durable temp + fsync + rename + parent-dir fsync: a crash mid-save leaves the
// previous version intact, and a completed save survives power loss.
bool WriteFileAtomically(const fs::path& path, std::string_view bytes) {
  std::string error;
  return support::PublishFileDurably(path.string(), bytes, "state.publish", &error);
}

std::optional<std::string> ReadWholeFile(const fs::path& path) {
  if (support::failpoint::Inject("state.read")) {
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return std::nullopt;
  }
  return std::move(buffer).str();
}

}  // namespace

bool SaveStateDir(const std::string& dir, const StateDirContents& contents) {
  std::error_code ec;
  fs::create_directories(fs::path(dir) / "artifacts", ec);
  if (ec) {
    return false;
  }
  // Payloads are content-addressed and written via temp+rename, so a save torn at
  // ANY point leaves the previous manifest's payload set intact and readable; the
  // manifest rename below is the single commit point.
  std::unordered_set<std::string> referenced;
  std::string manifest;
  manifest += "pathalias-state " + std::to_string(kManifestVersion) + "\n";
  manifest += "local\t" + contents.local + "\n";
  manifest += "ignore_case\t" + std::string(contents.ignore_case ? "1" : "0") + "\n";
  manifest += "generation\t" + std::to_string(contents.image_generation) + "\n";
  manifest += "files\t" + std::to_string(contents.artifacts.size()) + "\n";
  for (size_t i = 0; i < contents.artifacts.size(); ++i) {
    const FileArtifact& artifact = contents.artifacts[i];
    std::string bytes = SerializeArtifact(artifact);
    std::string file_name = ArtifactFileName(i, DigestBytes(bytes));
    fs::path payload_path = fs::path(dir) / "artifacts" / file_name;
    // Content-addressed: an existing file already holds exactly these bytes, so a
    // 1-file update writes one payload, not the whole map's worth.
    if (!fs::exists(payload_path, ec) && !WriteFileAtomically(payload_path, bytes)) {
      return false;
    }
    manifest += std::to_string(artifact.digest) + "\t" + file_name + "\t" +
                artifact.file_name + "\n";
    referenced.insert(std::move(file_name));
  }
  if (!WriteFileAtomically(fs::path(dir) / "manifest", manifest)) {
    return false;
  }
  // Now that the new manifest is committed, drop payloads nothing references.
  // Best-effort: a leftover file is dead weight, never a correctness problem.
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(dir) / "artifacts", ec)) {
    std::string name = entry.path().filename().string();
    if (name.ends_with(".pai") && !referenced.contains(name)) {
      fs::remove(entry.path(), ec);
    }
  }
  return true;
}

std::optional<StateDirContents> LoadStateDir(const std::string& dir, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<StateDirContents> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  std::optional<std::string> manifest = ReadWholeFile(fs::path(dir) / "manifest");
  if (!manifest.has_value()) {
    return fail("cannot read manifest");
  }
  std::istringstream in(*manifest);
  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "pathalias-state" || version < 1) {
    return fail("unrecognized manifest header");
  }
  if (version > kManifestVersion) {
    return fail("manifest version " + std::to_string(version) +
                " is newer than this binary understands — rebuild the state dir");
  }
  StateDirContents contents;
  std::string line;
  std::getline(in, line);  // finish the header line
  auto next_field = [&](std::string_view key, std::string* value) {
    if (!std::getline(in, line)) {
      return false;
    }
    size_t tab = line.find('\t');
    if (tab == std::string::npos || std::string_view(line).substr(0, tab) != key) {
      return false;
    }
    *value = line.substr(tab + 1);
    return true;
  };
  std::string field;
  if (!next_field("local", &contents.local)) {
    return fail("manifest missing local host");
  }
  if (!next_field("ignore_case", &field)) {
    return fail("manifest missing ignore_case");
  }
  contents.ignore_case = field == "1";
  if (version >= 2) {
    if (!next_field("generation", &field)) {
      return fail("manifest missing generation");
    }
    try {
      contents.image_generation = std::stoull(field);
    } catch (...) {
      return fail("malformed generation");
    }
  }
  if (!next_field("files", &field)) {
    return fail("manifest missing file count");
  }
  size_t count = 0;
  try {
    count = std::stoul(field);
  } catch (...) {
    return fail("malformed file count");
  }
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) {
      return fail("manifest truncated");
    }
    size_t tab1 = line.find('\t');
    size_t tab2 = tab1 == std::string::npos ? std::string::npos : line.find('\t', tab1 + 1);
    if (tab2 == std::string::npos) {
      return fail("malformed manifest line");
    }
    uint64_t digest = 0;
    try {
      digest = std::stoull(line.substr(0, tab1));
    } catch (...) {
      return fail("malformed digest");
    }
    std::string artifact_file = line.substr(tab1 + 1, tab2 - tab1 - 1);
    std::string input_name = line.substr(tab2 + 1);
    std::optional<std::string> bytes = ReadWholeFile(fs::path(dir) / "artifacts" / artifact_file);
    if (!bytes.has_value()) {
      return fail("cannot read artifact " + artifact_file);
    }
    std::optional<FileArtifact> artifact = DeserializeArtifact(*bytes);
    if (!artifact.has_value() || artifact->digest != digest ||
        artifact->file_name != input_name) {
      return fail("artifact " + artifact_file + " does not match its manifest entry");
    }
    contents.artifacts.push_back(std::move(*artifact));
  }
  return contents;
}

}  // namespace incr
}  // namespace pathalias
