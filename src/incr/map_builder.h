// MapBuilder: the incremental parse→build→map→emit pipeline.
//
// A MapBuilder owns what the batch pipeline recomputes from scratch on every run:
// the per-file parse artifacts (src/incr/artifact.h), the live Graph, the retained
// Mapper result (the shortest-path tree), and the emitted RouteSet.  Build() runs the
// full pipeline once; Update() takes the changed files and brings everything to the
// state a from-scratch rebuild of the edited inputs would produce, by the cheapest
// sound route available:
//
//   1. digest check — files whose bytes didn't change are not even re-lexed;
//   2. in-place patch — when every changed file holds diffable declarations (hosts,
//      links, aliases, and the dead/delete/adjust/gatewayed/gateway keywords — nets
//      and private scoping are the remaining exceptions) and the gates below hold,
//      the artifact diff yields the touched (from, to) pairs, host states, alias
//      pairs, and orphaned/new names; effective winners (costs, dead/gateway/
//      net-member link flags, terminal/deleted/gatewayed host flags, adjust sums)
//      are recomputed across all files; the live graph is patched (links added,
//      removed, recosted, reflagged; alias edges added/removed; host state set;
//      nodes retired/revived), Mapper::Patch recomputes just the affected region,
//      RoutePrinter::BuildEntryFor regenerates just the dirty routes, and
//      RouteSet::ApplyDelta swaps them in;
//   3. replay rebuild — otherwise the retained artifacts replay into a fresh graph
//      (skipping the lexer for every unchanged file) and the map/emit phases run in
//      full; the resulting entries still land through ApplyDelta, so route-set
//      NameIds stay stable and the dirty-id list stays precise.
//
// Golden equivalence: after any Build/Update sequence, routes() is content-identical
// (ToSortedText byte-identical) to a from-scratch pipeline over the current inputs —
// the randomized-edit fuzz test enforces this per edit.  The patch path is forced
// back to a replay rebuild whenever a gate it depends on fails; the reasons surface
// in UpdateStats::rebuild_reason and are documented in the README ("when a full
// rebuild is still forced").
//
// Cache coherence: dirty_route_ids() after each update is exactly the set of route
// keys whose bytes changed, in the RouteSet's stable interner space — what a serving
// layer feeds to exec::BasicBatchEngine::AdoptRoutes after refreezing an image
// (ids survive the freeze), making flush-the-world unnecessary.  Serving engines
// read frozen images or their own RouteSet instance, never this builder's live
// routes() (ApplyDelta reallocates under any concurrent reader).

#ifndef SRC_INCR_MAP_BUILDER_H_
#define SRC_INCR_MAP_BUILDER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/mapper.h"
#include "src/graph/graph.h"
#include "src/incr/artifact.h"
#include "src/route_db/route_db.h"
#include "src/support/diag.h"

namespace pathalias {
namespace incr {

struct MapBuilderOptions {
  // The Dijkstra source.  Empty: the first host declared across the inputs (the
  // same default the batch pipeline applies), re-derived after every update.
  // pathalint: allow(R1): options boundary — caller-supplied spelling captured
  // before the builder's first graph (and interner) exists.
  std::string local;
  bool ignore_case = false;  // -i; fixed for the builder's lifetime
};

struct UpdateStats {
  bool patched = false;         // true: in-place patch; false: replay rebuild ran
  std::string rebuild_reason;   // set when !patched
  size_t files_reparsed = 0;    // digest mismatch: lexer + parser ran
  size_t files_unchanged = 0;   // digest match among the files offered
  size_t dirty_nodes = 0;       // mapper region size (patched only)
  size_t routes_changed = 0;    // routes actually replaced/erased
  // Non-plain work the in-place patch absorbed (all zero on a replay rebuild, and
  // on updates that only touched plain host/link declarations):
  size_t alias_edits = 0;       // alias edge pairs added to / removed from the live graph
  size_t link_flag_edits = 0;   // dead/gateway/net-member link-flag changes applied
  size_t host_state_edits = 0;  // terminal/deleted/gatewayed/adjust host changes applied
  // The re-mapped dirty region contained alias edges — the patch path ran where the
  // old alias gate would have forced a replay (patched only).
  bool region_has_aliases = false;
};

class MapBuilder {
 public:
  explicit MapBuilder(MapBuilderOptions options);

  MapBuilder(const MapBuilder&) = delete;
  MapBuilder& operator=(const MapBuilder&) = delete;

  // Full pipeline over `files` (parse → artifacts → graph → map → routes).
  // False if no local host could be determined; diagnostics explain.
  bool Build(const std::vector<InputFile>& files);

  // Same, from pre-parsed artifacts (the state-dir load path: no lexing at all).
  bool BuildFromArtifacts(std::vector<FileArtifact> artifacts);

  // Full build over `files`, reusing any artifact in `prior` whose digest matches —
  // the one-shot CLI flow (`pathalias --incremental`): unchanged files skip the
  // lexer and parser entirely, then one replay + map + emit runs.  The counters
  // (when non-null) report how many files were actually reparsed vs reused.
  bool BuildReusing(const std::vector<InputFile>& files, std::vector<FileArtifact> prior,
                    size_t* files_reparsed = nullptr, size_t* files_reused = nullptr);

  // Applies edits: `changed` holds new/updated file contents (unknown names are
  // appended as new files, in order), `removed` names files to drop.  Everything
  // else is reused from the retained artifacts.
  UpdateStats Update(const std::vector<InputFile>& changed,
                     const std::vector<std::string>& removed = {});

  bool valid() const { return valid_; }
  const RouteSet& routes() const { return routes_; }
  // Route keys changed by the last Build/Update, in routes().names() id space.
  const std::vector<NameId>& dirty_route_ids() const { return dirty_route_ids_; }
  const std::vector<FileArtifact>& artifacts() const { return artifacts_; }
  const std::string& local_name() const { return local_name_; }
  const MapBuilderOptions& options() const { return options_; }
  const Graph* graph() const { return graph_.get(); }
  const Mapper::Result& map() const { return map_; }
  Diagnostics& diag() { return diag_; }

 private:
  struct LinkDecl {
    Cost cost;
    char op;
    bool right;
    bool operator==(const LinkDecl&) const = default;
  };
  // The effective (post duplicate-resolution, post keyword-declaration) link state
  // for a touched pair: absent, or a winner plus the declaration-derived flags.
  struct PairState {
    bool present = false;
    LinkDecl winner{0, kDefaultOp, false};
    bool dead = false;        // a dead {a!b} found the link declared
    bool gateway = false;     // a gateway {net!host} sanctioned (or created) it
    bool net_member = false;  // a net declaration generated it (net → member)
  };
  // The effective declaration-derived state of a touched host.
  struct HostState {
    bool dead = false;           // dead {a}: terminal
    bool deleted = false;        // delete {a}
    bool gatewayed = false;      // gatewayed {a} or gateway {a!...}
    bool explicit_gateways = false;  // gateway {a!...}
    Cost adjust = 0;             // adjust {a(n)} sum
    bool operator==(const HostState&) const = default;
  };

  // Replays artifacts_ into a fresh graph, maps, emits, and diffs into routes_.
  bool FullRebuild();
  // The in-place path; false when any gate fails (reason in *why), in which case
  // the caller falls back to FullRebuild().
  bool TryPatch(const std::vector<size_t>& changed_indices,
                const std::vector<FileArtifact>& old_artifacts, UpdateStats* stats,
                std::string* why);
  // Re-derives the effective local host name from artifacts_; empty when none.
  std::string ComputeLocalName() const;
  // Applies printer `entries` (a full emission) to routes_ via ApplyDelta and
  // refreshes the emitted-name bookkeeping.
  void CommitFullEmission(const std::vector<RouteEntry>& entries);
  // Per-artifact symbol→NameId resolution against the current graph's interner.
  const std::vector<NameId>& SymbolIds(size_t artifact_index);

  MapBuilderOptions options_;
  Diagnostics diag_;
  bool valid_ = false;

  std::vector<FileArtifact> artifacts_;
  // Lazily resolved symbol ids per artifact; entries tagged with graph_generation_.
  std::vector<std::pair<uint64_t, std::vector<NameId>>> symbol_ids_;
  uint64_t graph_generation_ = 0;

  std::unique_ptr<Graph> graph_;
  Mapper::Result map_;
  // pathalint: allow(R1): survives interner replacement — every full rebuild
  // discards the graph and its interner, so a NameId would dangle; the builder
  // re-derives the id from these bytes after each rebuild.
  std::string local_name_;

  RouteSet routes_;
  std::vector<NameId> dirty_route_ids_;
  // node->order → display name currently in routes_ ("" = not emitted), plus a
  // name→count census to detect display-name collisions (two nodes printing the
  // same name), which the delta path cannot reproduce ("later preorder entry wins").
  std::vector<std::string> emitted_by_order_;
  std::unordered_map<std::string, uint32_t> emitted_count_;
  bool emitted_collision_ = false;
  // Names retired from the live graph (refcount reached zero); revived on re-add.
  std::unordered_set<NameId> retired_names_;
};

}  // namespace incr
}  // namespace pathalias

#endif  // SRC_INCR_MAP_BUILDER_H_
