// StateDir: the on-disk form of a MapBuilder's retained artifacts.
//
// Layout (all files under one directory):
//   manifest            text header: format version, local host, ignore_case, then
//                       one line per input file — digest, artifact file, input name
//   artifacts/NNNN.pai  serialized FileArtifact (src/incr/artifact.h), in file order
//
// The manifest is written last, via durable temp-file + fsync + rename (see
// src/support/durable_file.h), so a crashed save leaves the previous state
// readable.  Digests live in both the manifest and the artifact bodies; Load
// verifies they agree and rejects the directory wholesale on any mismatch (a
// state dir is a cache — the inputs can always rebuild it).
//
// Manifest format version 2 adds a `generation` line (the publish generation of
// the image this state accompanies); version-1 directories still load, reading
// back generation 0.  Unrecognized future versions are rejected with a clean
// rebuild-needed error, never parsed on faith.
//
// Consumers: `pathalias --incremental <dir>` (skip lexing unchanged inputs across
// invocations) and `routedb update <image> <changed-files...>` (which keeps the
// state beside the image at <image>.state).

#ifndef SRC_INCR_STATE_DIR_H_
#define SRC_INCR_STATE_DIR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/incr/artifact.h"

namespace pathalias {
namespace incr {

struct StateDirContents {
  // pathalint: allow(R1): manifest serialization record — bytes round-tripped
  // through the on-disk state dir, read back before any interner is rebuilt.
  std::string local;        // the effective local host the state was built with
  bool ignore_case = false;
  // Publish generation of the .pari image this state was saved alongside
  // (ImageHeader::generation).  0 = unstamped: a v1 manifest, or a state dir
  // that does not accompany an image.  Consumers that pair a state dir with an
  // image (RolloverController, routedb update) compare the two stamps and
  // treat a mismatch as a torn update — rebuild, never mix-and-match.
  uint64_t image_generation = 0;
  std::vector<FileArtifact> artifacts;
};

// Writes `contents` under `dir` (created if missing).  False on any I/O failure.
bool SaveStateDir(const std::string& dir, const StateDirContents& contents);

// Reads a state directory back.  nullopt (with *error set) on missing/corrupt
// manifest, unreadable artifacts, or digest disagreement.
std::optional<StateDirContents> LoadStateDir(const std::string& dir, std::string* error);

}  // namespace incr
}  // namespace pathalias

#endif  // SRC_INCR_STATE_DIR_H_
