#include "src/incr/map_builder.h"

#include <algorithm>

#include "src/core/route_printer.h"

namespace pathalias {
namespace incr {
namespace {

// (from, to) NameId pair packed for hashing; ids are 32-bit by construction.
uint64_t PairKey(NameId from, NameId to) {
  return (static_cast<uint64_t>(from) << 32) | static_cast<uint64_t>(to);
}

MapOptions IncrementalMapOptions() {
  MapOptions options;
  // The probe table must survive mapping: updates keep interning names into the
  // live graph, and Mapper::Patch's exactness proof requires the default
  // prefer_fewer_hops tie-break anyway (it is the default; spelled out because the
  // pipeline depends on it).
  options.reuse_hash_table_storage = false;
  options.prefer_fewer_hops = true;
  return options;
}

}  // namespace

MapBuilder::MapBuilder(MapBuilderOptions options) : options_(std::move(options)) {}

bool MapBuilder::Build(const std::vector<InputFile>& files) {
  std::vector<FileArtifact> artifacts;
  artifacts.reserve(files.size());
  for (const InputFile& file : files) {
    // Errors surface once, in BuildFromArtifacts (which also covers artifacts that
    // arrive pre-parsed from a state dir or a digest-matched reuse).
    artifacts.push_back(ParseFileToArtifact(file, nullptr));
  }
  return BuildFromArtifacts(std::move(artifacts));
}

bool MapBuilder::BuildReusing(const std::vector<InputFile>& files,
                              std::vector<FileArtifact> prior, size_t* files_reparsed,
                              size_t* files_reused) {
  std::unordered_map<std::string, size_t> prior_index;
  for (size_t i = 0; i < prior.size(); ++i) {
    prior_index[prior[i].file_name] = i;
  }
  size_t reparsed = 0;
  size_t reused = 0;
  std::vector<FileArtifact> merged;
  merged.reserve(files.size());
  for (const InputFile& file : files) {
    auto it = prior_index.find(file.name);
    if (it != prior_index.end() && prior[it->second].digest == DigestBytes(file.content)) {
      merged.push_back(std::move(prior[it->second]));
      ++reused;
    } else {
      merged.push_back(ParseFileToArtifact(file, nullptr));  // reported below
      ++reparsed;
    }
  }
  if (files_reparsed != nullptr) {
    *files_reparsed = reparsed;
  }
  if (files_reused != nullptr) {
    *files_reused = reused;
  }
  return BuildFromArtifacts(std::move(merged));
}

bool MapBuilder::BuildFromArtifacts(std::vector<FileArtifact> artifacts) {
  artifacts_ = std::move(artifacts);
  symbol_ids_.assign(artifacts_.size(), {0, {}});
  // Stored parse errors re-surface every time an artifact set enters a builder: a
  // broken input stays broken (and the exit code stays non-zero) no matter how
  // many digest-matched runs reuse its artifact.
  for (const FileArtifact& artifact : artifacts_) {
    artifact.ReportStoredErrors(&diag_);
  }
  valid_ = FullRebuild();
  return valid_;
}

std::string MapBuilder::ComputeLocalName() const {
  if (!options_.local.empty()) {
    return options_.local;
  }
  for (const FileArtifact& artifact : artifacts_) {
    if (artifact.first_host != kNoSymbol) {
      return std::string(artifact.Symbol(artifact.first_host));
    }
  }
  return std::string();
}

const std::vector<NameId>& MapBuilder::SymbolIds(size_t artifact_index) {
  auto& [generation, ids] = symbol_ids_[artifact_index];
  if (generation != graph_generation_ || ids.size() != artifacts_[artifact_index].symbols.size()) {
    const FileArtifact& artifact = artifacts_[artifact_index];
    ids.resize(artifact.symbols.size());
    for (size_t i = 0; i < artifact.symbols.size(); ++i) {
      ids[i] = graph_->InternName(artifact.symbols[i]);
    }
    generation = graph_generation_;
  }
  return ids;
}

bool MapBuilder::FullRebuild() {
  ++graph_generation_;
  retired_names_.clear();
  graph_ = std::make_unique<Graph>(&diag_, Graph::Options{.ignore_case = options_.ignore_case});
  for (const FileArtifact& artifact : artifacts_) {
    ReplayArtifact(artifact, graph_.get());
  }
  local_name_ = ComputeLocalName();
  if (local_name_.empty()) {
    diag_.Error(SourcePos{}, "no hosts declared and no local host named");
    map_ = Mapper::Result{};
    CommitFullEmission({});
    return false;
  }
  graph_->SetLocal(local_name_);

  Mapper mapper(graph_.get(), IncrementalMapOptions());
  map_ = mapper.Run();
  for (const Node* unreachable : map_.unreachable) {
    diag_.Warn(SourcePos{}, std::string(graph_->NameOf(unreachable)) + " is unreachable");
  }

  RoutePrinter printer(map_, PrintOptions{});
  CommitFullEmission(printer.Build());
  return true;
}

void MapBuilder::CommitFullEmission(const std::vector<RouteEntry>& entries) {
  // Reduce the emission to its effective content ("later adds replace earlier
  // ones", matching RouteSet::FromEntries) before diffing against the held set.
  std::unordered_map<std::string_view, size_t> last;  // name → index of winning entry
  for (size_t i = 0; i < entries.size(); ++i) {
    last[entries[i].name] = i;
  }
  std::vector<std::string> erases;
  for (const Route& route : routes_.routes()) {
    std::string_view name = routes_.NameOf(route);
    if (!last.contains(name)) {
      erases.emplace_back(name);
    }
  }
  std::vector<RouteUpsert> upserts;  // in emission order, one per winning entry
  for (size_t i = 0; i < entries.size(); ++i) {
    if (last[entries[i].name] == i) {
      upserts.push_back(RouteUpsert{entries[i].name, entries[i].route, entries[i].cost});
    }
  }
  dirty_route_ids_ = routes_.ApplyDelta(upserts, erases);

  emitted_by_order_.assign(graph_ != nullptr ? graph_->node_count() : 0, std::string());
  emitted_count_.clear();
  emitted_collision_ = false;
  for (const RouteEntry& entry : entries) {
    if (entry.node != nullptr) {
      emitted_by_order_[entry.node->order] = entry.name;
    }
    if (++emitted_count_[entry.name] > 1) {
      emitted_collision_ = true;
    }
  }
}

UpdateStats MapBuilder::Update(const std::vector<InputFile>& changed,
                               const std::vector<std::string>& removed) {
  UpdateStats stats;

  std::unordered_map<std::string, size_t> index_by_name;  // owned keys: artifacts_ moves
  for (size_t i = 0; i < artifacts_.size(); ++i) {
    index_by_name[artifacts_[i].file_name] = i;
  }

  // Merge: reparse real changes, note unchanged ones, blank out removals.  Old
  // artifacts are kept aside for the declaration diff.
  std::vector<size_t> changed_indices;
  std::vector<FileArtifact> old_artifacts;  // parallel to changed_indices
  for (const InputFile& file : changed) {
    auto it = index_by_name.find(file.name);
    if (it != index_by_name.end() &&
        artifacts_[it->second].digest == DigestBytes(file.content)) {
      ++stats.files_unchanged;
      continue;
    }
    FileArtifact fresh = ParseFileToArtifact(file, &diag_);
    ++stats.files_reparsed;
    if (it != index_by_name.end()) {
      changed_indices.push_back(it->second);
      old_artifacts.push_back(std::move(artifacts_[it->second]));
      artifacts_[it->second] = std::move(fresh);
      symbol_ids_[it->second] = {0, {}};  // the cached resolution described the old file
    } else {
      changed_indices.push_back(artifacts_.size());
      old_artifacts.push_back(FileArtifact{});  // added file: empty old side
      artifacts_.push_back(std::move(fresh));
      symbol_ids_.emplace_back(0, std::vector<NameId>{});
      index_by_name[artifacts_.back().file_name] = artifacts_.size() - 1;
    }
  }
  std::vector<size_t> removed_indices;
  for (const std::string& name : removed) {
    auto it = index_by_name.find(name);
    if (it == index_by_name.end()) {
      continue;
    }
    changed_indices.push_back(it->second);
    old_artifacts.push_back(std::move(artifacts_[it->second]));
    FileArtifact blank;
    blank.file_name = name;  // keeps its slot until the diff commits, then dropped
    artifacts_[it->second] = std::move(blank);
    symbol_ids_[it->second] = {0, {}};
    removed_indices.push_back(it->second);
  }

  auto drop_removed_slots = [&] {
    if (removed_indices.empty()) {
      return;
    }
    std::sort(removed_indices.begin(), removed_indices.end());
    for (auto it = removed_indices.rbegin(); it != removed_indices.rend(); ++it) {
      artifacts_.erase(artifacts_.begin() + static_cast<long>(*it));
      symbol_ids_.erase(symbol_ids_.begin() + static_cast<long>(*it));
    }
  };

  if (changed_indices.empty()) {
    stats.patched = true;  // nothing to do is the cheapest patch of all
    dirty_route_ids_.clear();
    return stats;
  }

  std::string why;
  if (valid_ && TryPatch(changed_indices, old_artifacts, &stats, &why)) {
    stats.patched = true;
    drop_removed_slots();
    return stats;
  }

  stats.patched = false;
  stats.rebuild_reason = valid_ ? why : "no valid prior build";
  // An aborted patch may have counted edits it applied before refusing; the replay
  // recomputes everything, so the breakdown reports zero in-place work.
  stats.alias_edits = 0;
  stats.link_flag_edits = 0;
  stats.host_state_edits = 0;
  stats.region_has_aliases = false;
  drop_removed_slots();
  valid_ = FullRebuild();
  stats.routes_changed = dirty_route_ids_.size();
  return stats;
}

bool MapBuilder::TryPatch(const std::vector<size_t>& changed_indices,
                          const std::vector<FileArtifact>& old_artifacts, UpdateStats* stats,
                          std::string* why) {
  if (emitted_collision_) {
    *why = "display-name collision in current output";
    return false;
  }
  // Patching never changes the Dijkstra source; a default-local drift means the
  // rebuilt pipeline would root the tree elsewhere.
  if (ComputeLocalName() != local_name_) {
    *why = "default local host changed";
    return false;
  }
  // Nets and private scoping are the declaration forms the diff still cannot patch:
  // net membership edges interleave with plain links under replay-order duplicate
  // resolution AND mint placeholder topology, and private names make NameId-keyed
  // diffing ambiguous.  Everything else — links, aliases, and the keyword
  // declarations — diffs below.
  constexpr uint32_t kUndiffable = (1u << static_cast<uint8_t>(OpKind::kNet)) |
                                   (1u << static_cast<uint8_t>(OpKind::kPrivate));
  for (size_t i = 0; i < changed_indices.size(); ++i) {
    if (((old_artifacts[i].kind_mask | artifacts_[changed_indices[i]].kind_mask) &
         kUndiffable) != 0) {
      *why = "changed file declares a net or private names";
      return false;
    }
  }

  // --- declaration diff (all by NameId against the live interner) ---
  //
  // Link-affecting declarations are tagged with their file slot and kept in order:
  // at equal minimum cost the global winner is the FIRST declaration in file order,
  // dead {a!b} only latches onto a link already declared, and gateway {net!host}
  // creates the link at zero cost only when nothing declared it yet — so a
  // declaration migrating or reordering between changed files is a change even when
  // the concatenated values match.  Host-state declarations (dead/delete/adjust/
  // gatewayed/gateway) and alias pairs are order-independent, so those diff as
  // per-side aggregates.
  struct PairDecl {
    uint8_t kind;   // 0 = link declaration, 1 = dead {a!b}, 2 = gateway {net!host}
    LinkDecl link;  // meaningful for kind 0 only
    bool operator==(const PairDecl&) const = default;
  };
  struct DeclList {
    std::vector<std::pair<uint32_t, PairDecl>> old_decls;
    std::vector<std::pair<uint32_t, PairDecl>> new_decls;
  };
  struct HostDiff {
    HostState old_state;
    HostState new_state;
  };
  std::unordered_map<uint64_t, DeclList> touched;  // pair → this-file declaration lists
  std::unordered_map<NameId, HostDiff> touched_hosts;
  std::unordered_map<uint64_t, std::pair<uint32_t, uint32_t>>
      touched_aliases;  // unordered pair → (old, new) declaration counts
  std::unordered_set<NameId> old_mentions;
  std::unordered_set<NameId> new_mentions;

  auto resolve = [&](const FileArtifact& artifact) {
    std::vector<NameId> ids(artifact.symbols.size());
    for (size_t i = 0; i < artifact.symbols.size(); ++i) {
      ids[i] = graph_->InternName(artifact.symbols[i]);
    }
    return ids;
  };
  auto collect = [&](const FileArtifact& artifact, const std::vector<NameId>& ids,
                     uint32_t file_slot, bool old_side) {
    auto pair_decl = [&](NameId from, NameId to, PairDecl decl) {
      DeclList& list = touched[PairKey(from, to)];
      (old_side ? list.old_decls : list.new_decls).emplace_back(file_slot, decl);
    };
    auto host_state = [&](NameId id) -> HostState& {
      HostDiff& diff = touched_hosts[id];
      return old_side ? diff.old_state : diff.new_state;
    };
    for (const Op& op : artifact.ops) {
      switch (op.kind) {
        case OpKind::kIntern:
          (old_side ? old_mentions : new_mentions).insert(ids[op.a]);
          break;
        case OpKind::kLink:
          if (ids[op.a] != ids[op.b]) {  // self links are rejected at graph level
            pair_decl(ids[op.a], ids[op.b],
                      PairDecl{0, LinkDecl{op.cost, op.op, op.right != 0}});
          }
          break;
        case OpKind::kDeadLink:
          if (ids[op.a] != ids[op.b]) {
            pair_decl(ids[op.a], ids[op.b], PairDecl{1, LinkDecl{0, kDefaultOp, false}});
          }
          break;
        case OpKind::kGatewayLink: {
          // gateway {net!host} flags (or creates) the host→net link and marks the
          // net gatewayed with explicit gateways.
          NameId net = ids[op.a];
          NameId gateway = ids[op.b];
          if (net != gateway) {
            pair_decl(gateway, net, PairDecl{2, LinkDecl{0, kDefaultOp, false}});
          }
          HostState& host = host_state(net);
          host.gatewayed = true;
          host.explicit_gateways = true;
          break;
        }
        case OpKind::kDeadHost:
          host_state(ids[op.a]).dead = true;
          break;
        case OpKind::kDelete:
          host_state(ids[op.a]).deleted = true;
          break;
        case OpKind::kAdjust:
          host_state(ids[op.a]).adjust += op.cost;
          break;
        case OpKind::kGatewayed:
          host_state(ids[op.a]).gatewayed = true;
          break;
        case OpKind::kAlias: {
          NameId a = ids[op.a];
          NameId b = ids[op.b];
          if (a != b) {  // self aliases are rejected at graph level
            auto& counts = touched_aliases[PairKey(std::min(a, b), std::max(a, b))];
            (old_side ? counts.first : counts.second) += 1;
          }
          break;
        }
        default:
          break;  // kHostDecl has no graph state; kNet/kPrivate were gated out above
      }
    }
  };
  for (size_t i = 0; i < changed_indices.size(); ++i) {
    uint32_t slot = static_cast<uint32_t>(changed_indices[i]);
    std::vector<NameId> old_ids = resolve(old_artifacts[i]);
    collect(old_artifacts[i], old_ids, slot, /*old_side=*/true);
    const FileArtifact& fresh = artifacts_[changed_indices[i]];
    std::vector<NameId> new_ids = resolve(fresh);
    collect(fresh, new_ids, slot, /*old_side=*/false);
  }
  // Drop pairs whose per-file declaration sequence is unchanged (their global winner
  // cannot have moved), hosts whose per-side aggregates match (order-independent
  // state), and alias pairs declared on both sides (presence is the whole state).
  for (auto it = touched.begin(); it != touched.end();) {
    it = it->second.old_decls == it->second.new_decls ? touched.erase(it) : std::next(it);
  }
  for (auto it = touched_hosts.begin(); it != touched_hosts.end();) {
    it = it->second.old_state == it->second.new_state ? touched_hosts.erase(it)
                                                      : std::next(it);
  }
  for (auto it = touched_aliases.begin(); it != touched_aliases.end();) {
    it = (it->second.first > 0) == (it->second.second > 0) ? touched_aliases.erase(it)
                                                           : std::next(it);
  }

  // Shadowed (private) names make name-keyed diffing ambiguous — two nodes answer
  // to the same NameId depending on file scope.
  auto pair_shadowed = [&](uint64_t key) {
    return graph_->HasShadowedName(static_cast<NameId>(key >> 32)) ||
           graph_->HasShadowedName(static_cast<NameId>(key & 0xffffffffu));
  };
  for (const auto& [key, lists] : touched) {
    if (pair_shadowed(key)) {
      *why = "changed link touches a shadowed (private) name";
      return false;
    }
  }
  for (const auto& [id, diff] : touched_hosts) {
    if (graph_->HasShadowedName(id)) {
      *why = "changed declaration touches a shadowed (private) name";
      return false;
    }
  }
  for (const auto& [key, counts] : touched_aliases) {
    if (pair_shadowed(key)) {
      *why = "changed alias touches a shadowed (private) name";
      return false;
    }
  }

  // --- global scan: effective winners for touched pairs, effective host states,
  // alias presence, and reference counts for orphan candidates.  Cross-references
  // that used to gate the patch (dead/gateway/net declarations elsewhere touching a
  // changed pair) are folded into the winner state machines instead: the scan walks
  // every artifact in file order, so ordering-sensitive semantics (dead only
  // latches a declared link, gateway creates one only when absent, cheapest-first-
  // at-min wins) reproduce replay exactly. ---
  std::unordered_set<NameId> orphan_candidates;
  for (NameId id : old_mentions) {
    if (!new_mentions.contains(id)) {
      orphan_candidates.insert(id);
    }
  }
  std::unordered_map<uint64_t, PairState> winners;
  winners.reserve(touched.size());
  for (const auto& [key, lists] : touched) {
    winners.emplace(key, PairState{});
  }
  std::unordered_map<NameId, HostState> host_winners;
  host_winners.reserve(touched_hosts.size());
  for (const auto& [id, diff] : touched_hosts) {
    host_winners.emplace(id, HostState{});
  }
  std::unordered_set<uint64_t> alias_present;  // touched alias pairs declared anywhere
  std::unordered_set<NameId> still_referenced;
  const size_t artifact_count = artifacts_.size();
  for (size_t index = 0; index < artifact_count; ++index) {
    const FileArtifact& artifact = artifacts_[index];
    if (artifact.ops.empty()) {
      continue;
    }
    const std::vector<NameId>& ids = SymbolIds(index);
    auto link_candidate = [&](NameId from, NameId to, Cost cost, char op_char, bool right,
                              bool net_member) {
      auto it = winners.find(PairKey(from, to));
      if (it == winners.end()) {
        return;
      }
      if (cost < 0) {
        cost = 0;  // AddLink clamps; the winner must too
      }
      PairState& state = it->second;
      if (!state.present || cost < state.winner.cost) {
        state.present = true;
        state.winner = LinkDecl{cost, op_char, right};
      }
      if (net_member) {
        state.net_member = true;  // flags accrete even on a losing duplicate
      }
    };
    auto touched_host = [&](NameId id) -> HostState* {
      auto it = host_winners.find(id);
      return it == host_winners.end() ? nullptr : &it->second;
    };
    for (const Op& op : artifact.ops) {
      switch (op.kind) {
        case OpKind::kIntern:
        case OpKind::kPrivate:
          if (orphan_candidates.contains(ids[op.a])) {
            still_referenced.insert(ids[op.a]);
          }
          break;
        case OpKind::kLink:
          link_candidate(ids[op.a], ids[op.b], op.cost, op.op, op.right != 0,
                         /*net_member=*/false);
          break;
        case OpKind::kDeadLink: {
          // dead {a!b} latches onto the a→b link only if something declared it
          // before this point (MarkDeadLink warns and ignores otherwise).
          auto it = winners.find(PairKey(ids[op.a], ids[op.b]));
          if (it != winners.end() && it->second.present) {
            it->second.dead = true;
          }
          break;
        }
        case OpKind::kGatewayLink: {
          // gateway {net!host} flags the host→net link, creating it at zero cost if
          // nothing declared it yet, and marks the net gatewayed with explicit
          // gateways.
          NameId net = ids[op.a];
          NameId gateway = ids[op.b];
          if (net != gateway) {
            auto it = winners.find(PairKey(gateway, net));
            if (it != winners.end()) {
              PairState& state = it->second;
              if (!state.present) {
                state.present = true;
                state.winner = LinkDecl{0, kDefaultOp, false};
              }
              state.gateway = true;
            }
          }
          if (HostState* host = touched_host(net)) {
            host->gatewayed = true;
            host->explicit_gateways = true;
          }
          break;
        }
        case OpKind::kDeadHost:
          if (HostState* host = touched_host(ids[op.a])) {
            host->dead = true;
          }
          break;
        case OpKind::kDelete:
          if (HostState* host = touched_host(ids[op.a])) {
            host->deleted = true;
          }
          break;
        case OpKind::kAdjust:
          if (HostState* host = touched_host(ids[op.a])) {
            host->adjust += op.cost;
          }
          break;
        case OpKind::kGatewayed:
          if (HostState* host = touched_host(ids[op.a])) {
            host->gatewayed = true;
          }
          break;
        case OpKind::kAlias:
          if (ids[op.a] != ids[op.b]) {
            uint64_t key = PairKey(std::min(ids[op.a], ids[op.b]),
                                   std::max(ids[op.a], ids[op.b]));
            if (touched_aliases.contains(key)) {
              alias_present.insert(key);
            }
          }
          break;
        case OpKind::kNet: {
          // A net declaration's generated edges (member→net at cost, net→member at
          // zero with the net-member flag) take part in duplicate resolution like
          // any plain link, so they feed the winner machine for touched pairs.
          NameId net = ids[op.a];
          for (uint32_t m = 0; m < op.member_count; ++m) {
            NameId member = ids[artifact.net_members[op.member_offset + m]];
            if (member != net) {
              link_candidate(member, net, op.cost, op.op, op.right != 0,
                             /*net_member=*/false);
              link_candidate(net, member, 0, op.op, op.right != 0, /*net_member=*/true);
            }
            if (orphan_candidates.contains(member)) {
              still_referenced.insert(member);
            }
          }
          if (orphan_candidates.contains(net)) {
            still_referenced.insert(net);
          }
          break;
        }
        default:
          // kHostDecl follows a kIntern for the same name in the same artifact, so
          // the mention accounting above covers it.
          break;
      }
    }
  }

  std::vector<NameId> orphans;
  for (NameId id : orphan_candidates) {
    if (!still_referenced.contains(id)) {
      orphans.push_back(id);
    }
  }
  std::sort(orphans.begin(), orphans.end());
  for (NameId id : orphans) {
    if (graph_->HasShadowedName(id)) {
      *why = "orphaned name is shadowed (private)";
      return false;
    }
  }

  // --- apply the graph delta and collect mapper seeds ---
  std::vector<Node*> seeds;
  std::unordered_set<const Node*> seeded;
  auto seed = [&](Node* node) {
    if (node != nullptr && seeded.insert(node).second) {
      seeds.push_back(node);
    }
  };
  auto intern_node = [&](NameId id) {
    Node* node = graph_->Intern(id);
    if (retired_names_.erase(id) > 0) {
      graph_->ReviveNode(node);
      seed(node);
    }
    return node;
  };
  // Hash-map iteration orders node creation; sort the keys so new-node creation
  // order (and with it every order-keyed structure) is reproducible run to run.
  auto sorted_keys = [](const auto& map) {
    std::vector<typename std::decay_t<decltype(map)>::key_type> keys;
    keys.reserve(map.size());
    for (const auto& [key, value] : map) {
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };

  constexpr uint32_t kLinkDeclFlags = kLinkDead | kLinkGateway | kLinkNetMember;
  for (uint64_t key : sorted_keys(winners)) {
    const PairState& state = winners[key];
    NameId from_id = static_cast<NameId>(key >> 32);
    NameId to_id = static_cast<NameId>(key & 0xffffffffu);
    Node* from = intern_node(from_id);
    Node* to = intern_node(to_id);
    Link* existing = graph_->FindLink(from, to);
    uint32_t decl_flags = (state.dead ? kLinkDead : 0u) |
                          (state.gateway ? kLinkGateway : 0u) |
                          (state.net_member ? kLinkNetMember : 0u);
    bool changed_state;
    bool flags_changed = false;
    if (!state.present) {
      changed_state = graph_->RemoveLink(from, to);
    } else if (existing == nullptr) {
      changed_state = graph_->SetLinkState(from, to, state.winner.cost, state.winner.op,
                                           state.winner.right, decl_flags) != nullptr;
      flags_changed = decl_flags != 0;
    } else {
      flags_changed = (existing->flags & kLinkDeclFlags) != decl_flags;
      changed_state = existing->cost != state.winner.cost || existing->op != state.winner.op ||
                      existing->right_syntax() != state.winner.right || flags_changed;
      if (changed_state) {
        graph_->SetLinkState(from, to, state.winner.cost, state.winner.op, state.winner.right,
                             decl_flags);
      }
    }
    if (changed_state) {
      if (flags_changed) {
        ++stats->link_flag_edits;
      }
      // A link INTO the local host never participates in a route: no candidate can
      // beat the root label's cost 0, so the edit is output-invisible and seeding
      // the root (which the mapper rightly refuses) would force a pointless rebuild.
      if (to != graph_->local()) {
        seed(to);
      }
      // A node the patch just created (or revived) has no label yet; it must enter
      // the dirty region so the drain maps it — or refuses, matching the back-link
      // fixpoint a rebuild would run.
      if (from->label[0] == nullptr) {
        seed(from);
      }
    }
  }

  constexpr uint32_t kHostDeclFlags =
      kNodeTerminal | kNodeDeleted | kNodeGatewayed | kNodeExplicitGateways;
  for (NameId id : sorted_keys(host_winners)) {
    const HostState& state = host_winners[id];
    Node* node = intern_node(id);
    if (node == graph_->local() && state.deleted) {
      *why = "local host deleted";
      return false;
    }
    // Domains are born gatewayed (CreateNode/ReviveNode), independent of decls.
    uint32_t flags = (state.dead ? kNodeTerminal : 0u) | (state.deleted ? kNodeDeleted : 0u) |
                     ((state.gatewayed || node->domain()) ? kNodeGatewayed : 0u) |
                     (state.explicit_gateways ? kNodeExplicitGateways : 0u);
    if ((node->flags & kHostDeclFlags) == flags && node->adjust == state.adjust) {
      continue;
    }
    graph_->SetHostState(node, flags, state.adjust);
    ++stats->host_state_edits;
    // Terminal/adjust/gatewayed state on the local host never alters a route
    // (CostOf skips the local side of every such check), so it applies seedlessly;
    // a deleted local bailed above.
    if (node != graph_->local()) {
      seed(node);
    }
  }

  for (uint64_t key : sorted_keys(touched_aliases)) {
    NameId a_id = static_cast<NameId>(key >> 32);
    NameId b_id = static_cast<NameId>(key & 0xffffffffu);
    bool want = alias_present.contains(key);
    Node* a = intern_node(a_id);
    Node* b = intern_node(b_id);
    if (want == (graph_->FindAlias(a, b) != nullptr)) {
      continue;
    }
    if (want) {
      graph_->AddAlias(a, b, SourcePos{});
    } else {
      graph_->RemoveAlias(a, b);
    }
    ++stats->alias_edits;
    // Each endpoint gains or loses an in-edge; an alias edge into the local host is
    // output-invisible (nothing beats the root label at zero cost and zero hops).
    if (a != graph_->local()) {
      seed(a);
    }
    if (b != graph_->local()) {
      seed(b);
    }
  }

  for (NameId id : orphans) {
    if (Node* node = graph_->Find(id)) {
      if (node == graph_->local()) {
        *why = "local host orphaned";
        return false;
      }
      graph_->RetireNode(node);
      retired_names_.insert(id);
      seed(node);
    }
  }

  if (seeds.empty()) {
    stats->dirty_nodes = 0;
    stats->routes_changed = 0;
    dirty_route_ids_.clear();
    return true;  // declarations shuffled without changing effective state
  }
  // Hash-map iteration seeded the list; sort so the patch (and therefore the route
  // set's insertion order) is reproducible run to run.
  std::sort(seeds.begin(), seeds.end(),
            [](const Node* a, const Node* b) { return a->order < b->order; });

  Mapper mapper(graph_.get(), IncrementalMapOptions());
  std::string patch_why;
  std::optional<std::vector<Node*>> dirty = mapper.Patch(map_, seeds, &patch_why);
  if (!dirty.has_value()) {
    *why = "mapper patch refused: " + patch_why;
    return false;
  }
  for (Node* node : *dirty) {
    if (stats->region_has_aliases) {
      break;
    }
    for (Link* link = node->links; link != nullptr; link = link->next) {
      if (link->alias()) {
        stats->region_has_aliases = true;
        break;
      }
    }
  }

  // --- emit the dirty region's routes ---
  if (emitted_by_order_.size() < graph_->node_count()) {
    emitted_by_order_.resize(graph_->node_count());
  }
  RoutePrinter printer(map_, PrintOptions{});
  std::vector<RouteUpsert> upserts;
  std::vector<std::string> erases;
  for (Node* node : *dirty) {
    std::string& old_name = emitted_by_order_[node->order];
    std::optional<RouteEntry> entry = printer.BuildEntryFor(node->label[0]);
    if (entry.has_value()) {
      if (old_name != entry->name) {
        if (!old_name.empty()) {
          erases.push_back(old_name);
          if (auto it = emitted_count_.find(old_name); it != emitted_count_.end()) {
            if (--it->second == 0) {
              emitted_count_.erase(it);
            }
          }
        }
        if (++emitted_count_[entry->name] > 1) {
          // Two live nodes now print the same name; "later preorder wins" cannot be
          // reproduced by a delta.  The full emission handles it (and latches
          // emitted_collision_ so later updates skip straight to replay).
          *why = "patch would create a display-name collision";
          return false;
        }
        old_name = entry->name;
      }
      upserts.push_back(RouteUpsert{entry->name, std::move(entry->route), entry->cost});
    } else if (!old_name.empty()) {
      erases.push_back(old_name);
      if (auto it = emitted_count_.find(old_name); it != emitted_count_.end()) {
        if (--it->second == 0) {
          emitted_count_.erase(it);
        }
      }
      old_name.clear();
    }
  }
  dirty_route_ids_ = routes_.ApplyDelta(upserts, erases);
  stats->dirty_nodes = dirty->size();
  stats->routes_changed = dirty_route_ids_.size();
  return true;
}

}  // namespace incr
}  // namespace pathalias
