#include "src/incr/artifact.h"

#include <cstring>
#include <unordered_map>

#include "src/parser/parse_recorder.h"

namespace pathalias {
namespace incr {
namespace {

// Builds a FileArtifact from the parser's mutation stream.  Symbols are deduplicated
// by exact bytes (case normalization is the replay-side graph's business).
class ArtifactRecorder : public ParseRecorder {
 public:
  explicit ArtifactRecorder(FileArtifact* artifact) : artifact_(artifact) {}

  void RecordIntern(std::string_view name) override {
    Push(Op{.kind = OpKind::kIntern, .a = SymbolOf(name)});
  }
  void RecordHostDecl(std::string_view name) override {
    uint32_t symbol = SymbolOf(name);
    Push(Op{.kind = OpKind::kHostDecl, .a = symbol});
    if (artifact_->first_host == kNoSymbol && !IsDomainName(name)) {
      artifact_->first_host = symbol;
    }
  }
  void RecordLink(std::string_view from, std::string_view to, Cost cost, char op,
                  bool right) override {
    Push(Op{.kind = OpKind::kLink,
            .right = static_cast<uint8_t>(right ? 1 : 0),
            .op = op,
            .a = SymbolOf(from),
            .b = SymbolOf(to),
            .cost = cost});
  }
  void RecordAlias(std::string_view a, std::string_view b) override {
    Push(Op{.kind = OpKind::kAlias, .a = SymbolOf(a), .b = SymbolOf(b)});
  }
  void RecordNet(std::string_view net, const std::vector<std::string_view>& members,
                 Cost cost, char op, bool right) override {
    Op record{.kind = OpKind::kNet,
              .right = static_cast<uint8_t>(right ? 1 : 0),
              .op = op,
              .a = SymbolOf(net),
              .member_offset = static_cast<uint32_t>(artifact_->net_members.size()),
              .member_count = static_cast<uint32_t>(members.size()),
              .cost = cost};
    for (std::string_view member : members) {
      artifact_->net_members.push_back(SymbolOf(member));
    }
    Push(record);
  }
  void RecordPrivate(std::string_view name) override {
    Push(Op{.kind = OpKind::kPrivate, .a = SymbolOf(name)});
  }
  void RecordDeadHost(std::string_view name) override {
    Push(Op{.kind = OpKind::kDeadHost, .a = SymbolOf(name)});
  }
  void RecordDeadLink(std::string_view from, std::string_view to) override {
    Push(Op{.kind = OpKind::kDeadLink, .a = SymbolOf(from), .b = SymbolOf(to)});
  }
  void RecordDelete(std::string_view name) override {
    Push(Op{.kind = OpKind::kDelete, .a = SymbolOf(name)});
  }
  void RecordAdjust(std::string_view name, Cost amount) override {
    Push(Op{.kind = OpKind::kAdjust, .a = SymbolOf(name), .cost = amount});
  }
  void RecordGatewayed(std::string_view name) override {
    Push(Op{.kind = OpKind::kGatewayed, .a = SymbolOf(name)});
  }
  void RecordGatewayLink(std::string_view net, std::string_view gateway) override {
    Push(Op{.kind = OpKind::kGatewayLink, .a = SymbolOf(net), .b = SymbolOf(gateway)});
  }

 private:
  uint32_t SymbolOf(std::string_view name) {
    auto [it, inserted] =
        index_.try_emplace(std::string(name), static_cast<uint32_t>(artifact_->symbols.size()));
    if (inserted) {
      artifact_->symbols.emplace_back(name);
    }
    return it->second;
  }

  void Push(Op op) {
    if (op.kind != OpKind::kIntern && op.kind != OpKind::kHostDecl &&
        op.kind != OpKind::kLink) {
      artifact_->plain_links = false;
    }
    artifact_->kind_mask |= 1u << static_cast<uint8_t>(op.kind);
    artifact_->ops.push_back(op);
  }

  FileArtifact* artifact_;
  std::unordered_map<std::string, uint32_t> index_;
};

// --- serialization helpers (little-endian fixed-width) ---

void PutU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void PutU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void PutI64(std::string* out, int64_t value) { PutU64(out, static_cast<uint64_t>(value)); }

struct ByteReader {
  const char* cursor;
  const char* end;

  bool Read(void* out, size_t n) {
    if (static_cast<size_t>(end - cursor) < n) {
      return false;
    }
    std::memcpy(out, cursor, n);
    cursor += n;
    return true;
  }
  bool U32(uint32_t* out) { return Read(out, sizeof(*out)); }
  bool U64(uint64_t* out) { return Read(out, sizeof(*out)); }
  bool I64(int64_t* out) { return Read(out, sizeof(*out)); }
};

constexpr char kArtifactMagic[4] = {'P', 'A', 'i', '1'};

}  // namespace

void FileArtifact::ReportStoredErrors(Diagnostics* diag) const {
  for (const ParseError& error : errors) {
    diag->Error(SourcePos{file_name, static_cast<int>(error.line)}, error.message);
  }
}

uint64_t DigestBytes(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char byte : bytes) {
    hash = (hash ^ byte) * 0x00000100000001B3ull;
  }
  return hash;
}

FileArtifact ParseFileToArtifact(const InputFile& file, Diagnostics* diag) {
  FileArtifact artifact;
  artifact.file_name = file.name;
  artifact.digest = DigestBytes(file.content);
  ArtifactRecorder recorder(&artifact);
  // The scratch graph exists only to satisfy the parser; declarations land in the
  // recorder.  Errors (with their positions) are forwarded to the caller; warnings
  // and notes are replay's business (see the header).
  Diagnostics scratch_diag;
  scratch_diag.set_sink([diag, &artifact](const Diagnostic& diagnostic) {
    if (diagnostic.severity != Severity::kError) {
      return;
    }
    artifact.errors.push_back(
        ParseError{static_cast<uint32_t>(diagnostic.pos.line), diagnostic.message});
    if (diag != nullptr) {
      diag->Report(diagnostic.severity, diagnostic.pos, diagnostic.message);
    }
  });
  Graph scratch(&scratch_diag);
  Parser parser(&scratch);
  parser.set_recorder(&recorder);
  parser.ParseFile(file);
  return artifact;
}

void ReplayArtifact(const FileArtifact& artifact, Graph* graph) {
  // Resolve symbols once per replay: one hash per unique name, then every op is
  // integer-indexed.  Interning here does not create nodes, exactly like the
  // tokenizer's InternName.
  std::vector<NameId> ids(artifact.symbols.size());
  for (size_t i = 0; i < artifact.symbols.size(); ++i) {
    ids[i] = graph->InternName(artifact.symbols[i]);
  }
  graph->BeginFile(artifact.file_name);
  SourcePos here{artifact.file_name, 0};
  for (const Op& op : artifact.ops) {
    switch (op.kind) {
      case OpKind::kIntern:
        graph->Intern(ids[op.a]);
        break;
      case OpKind::kHostDecl:
        break;  // default-local bookkeeping lives in FileArtifact::first_host
      case OpKind::kLink:
        graph->AddLink(graph->Intern(ids[op.a]), graph->Intern(ids[op.b]), op.cost, op.op,
                       op.right != 0, here);
        break;
      case OpKind::kAlias: {
        Node* a = graph->Intern(ids[op.a]);
        Node* b = graph->Intern(ids[op.b]);
        graph->AddAlias(a, b, here);
        break;
      }
      case OpKind::kNet: {
        std::vector<Node*> members;
        members.reserve(op.member_count);
        for (uint32_t i = 0; i < op.member_count; ++i) {
          members.push_back(graph->Intern(ids[artifact.net_members[op.member_offset + i]]));
        }
        graph->DeclareNet(graph->Intern(ids[op.a]), members, op.cost, op.op, op.right != 0,
                          here);
        break;
      }
      case OpKind::kPrivate:
        graph->DeclarePrivate(ids[op.a], here);
        break;
      case OpKind::kDeadHost:
        graph->MarkDeadHost(graph->Intern(ids[op.a]), here);
        break;
      case OpKind::kDeadLink: {
        Node* from = graph->Intern(ids[op.a]);
        Node* to = graph->Intern(ids[op.b]);
        graph->MarkDeadLink(from, to, here);
        break;
      }
      case OpKind::kDelete:
        graph->DeleteHost(graph->Intern(ids[op.a]), here);
        break;
      case OpKind::kAdjust:
        graph->AdjustHost(graph->Intern(ids[op.a]), op.cost, here);
        break;
      case OpKind::kGatewayed:
        graph->MarkGatewayed(graph->Intern(ids[op.a]), here);
        break;
      case OpKind::kGatewayLink: {
        Node* net = graph->Intern(ids[op.a]);
        Node* gateway = graph->Intern(ids[op.b]);
        graph->MarkGatewayLink(net, gateway, here);
        break;
      }
    }
  }
  graph->EndFile();
}

std::string SerializeArtifact(const FileArtifact& artifact) {
  std::string out;
  out.append(kArtifactMagic, sizeof(kArtifactMagic));
  PutU64(&out, artifact.digest);
  PutU32(&out, static_cast<uint32_t>(artifact.file_name.size()));
  out.append(artifact.file_name);
  PutU32(&out, artifact.first_host);
  PutU32(&out, artifact.plain_links ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(artifact.symbols.size()));
  for (const std::string& symbol : artifact.symbols) {
    PutU32(&out, static_cast<uint32_t>(symbol.size()));
    out.append(symbol);
  }
  PutU32(&out, static_cast<uint32_t>(artifact.net_members.size()));
  for (uint32_t member : artifact.net_members) {
    PutU32(&out, member);
  }
  PutU32(&out, static_cast<uint32_t>(artifact.ops.size()));
  for (const Op& op : artifact.ops) {
    PutU32(&out, (static_cast<uint32_t>(op.kind)) | (static_cast<uint32_t>(op.right) << 8) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(op.op)) << 16));
    PutU32(&out, op.a);
    PutU32(&out, op.b);
    PutU32(&out, op.member_offset);
    PutU32(&out, op.member_count);
    PutI64(&out, op.cost);
  }
  PutU32(&out, static_cast<uint32_t>(artifact.errors.size()));
  for (const ParseError& error : artifact.errors) {
    PutU32(&out, error.line);
    PutU32(&out, static_cast<uint32_t>(error.message.size()));
    out.append(error.message);
  }
  return out;
}

std::optional<FileArtifact> DeserializeArtifact(std::string_view bytes) {
  ByteReader reader{bytes.data(), bytes.data() + bytes.size()};
  char magic[4];
  if (!reader.Read(magic, sizeof(magic)) || std::memcmp(magic, kArtifactMagic, 4) != 0) {
    return std::nullopt;
  }
  FileArtifact artifact;
  uint32_t name_size = 0;
  if (!reader.U64(&artifact.digest) || !reader.U32(&name_size)) {
    return std::nullopt;
  }
  if (static_cast<size_t>(reader.end - reader.cursor) < name_size) {
    return std::nullopt;
  }
  artifact.file_name.assign(reader.cursor, name_size);
  reader.cursor += name_size;
  uint32_t plain = 0;
  uint32_t symbol_count = 0;
  if (!reader.U32(&artifact.first_host) || !reader.U32(&plain) || !reader.U32(&symbol_count)) {
    return std::nullopt;
  }
  artifact.plain_links = plain != 0;
  // Counts come from the file: bound every one by the bytes that could possibly
  // back it BEFORE allocating, so a corrupt payload is a nullopt, not a bad_alloc.
  auto remaining = [&reader] { return static_cast<size_t>(reader.end - reader.cursor); };
  if (symbol_count > remaining() / sizeof(uint32_t)) {
    return std::nullopt;  // each symbol carries at least its 4-byte length
  }
  artifact.symbols.reserve(symbol_count);
  for (uint32_t i = 0; i < symbol_count; ++i) {
    uint32_t size = 0;
    if (!reader.U32(&size) || static_cast<size_t>(reader.end - reader.cursor) < size) {
      return std::nullopt;
    }
    artifact.symbols.emplace_back(reader.cursor, size);
    reader.cursor += size;
  }
  uint32_t member_count = 0;
  if (!reader.U32(&member_count) || member_count > remaining() / sizeof(uint32_t)) {
    return std::nullopt;
  }
  artifact.net_members.resize(member_count);
  for (uint32_t i = 0; i < member_count; ++i) {
    if (!reader.U32(&artifact.net_members[i])) {
      return std::nullopt;
    }
  }
  constexpr size_t kOpBytes = 5 * sizeof(uint32_t) + sizeof(int64_t);
  uint32_t op_count = 0;
  if (!reader.U32(&op_count) || op_count > remaining() / kOpBytes) {
    return std::nullopt;
  }
  artifact.ops.reserve(op_count);
  for (uint32_t i = 0; i < op_count; ++i) {
    uint32_t packed = 0;
    Op op;
    int64_t cost = 0;
    if (!reader.U32(&packed) || !reader.U32(&op.a) || !reader.U32(&op.b) ||
        !reader.U32(&op.member_offset) || !reader.U32(&op.member_count) || !reader.I64(&cost)) {
      return std::nullopt;
    }
    if ((packed & 0xff) > static_cast<uint32_t>(OpKind::kGatewayLink)) {
      return std::nullopt;
    }
    op.kind = static_cast<OpKind>(packed & 0xff);
    op.right = static_cast<uint8_t>((packed >> 8) & 0xff);
    op.op = static_cast<char>((packed >> 16) & 0xff);
    op.cost = static_cast<Cost>(cost);
    // Symbol references must stay inside the table; a truncated or foreign file must
    // not become out-of-bounds indexing later.
    auto valid_symbol = [&](uint32_t symbol) {
      return symbol == kNoSymbol || symbol < symbol_count;
    };
    if (!valid_symbol(op.a) || !valid_symbol(op.b) ||
        static_cast<uint64_t>(op.member_offset) + op.member_count > member_count) {
      return std::nullopt;
    }
    artifact.kind_mask |= 1u << static_cast<uint8_t>(op.kind);
    artifact.ops.push_back(op);
  }
  for (uint32_t member : artifact.net_members) {
    if (member >= symbol_count) {
      return std::nullopt;
    }
  }
  uint32_t error_count = 0;
  if (!reader.U32(&error_count) || error_count > remaining() / (2 * sizeof(uint32_t))) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < error_count; ++i) {
    ParseError error;
    uint32_t size = 0;
    if (!reader.U32(&error.line) || !reader.U32(&size) ||
        static_cast<size_t>(reader.end - reader.cursor) < size) {
      return std::nullopt;
    }
    error.message.assign(reader.cursor, size);
    reader.cursor += size;
    artifact.errors.push_back(std::move(error));
  }
  return artifact;
}

}  // namespace incr
}  // namespace pathalias
