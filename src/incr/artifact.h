// Per-file parse artifacts: the unit of incremental map building.
//
// A FileArtifact is one input file reduced to (a) a content digest and (b) the exact
// sequence of Graph calls parsing it performed, with every name lifted into a
// file-local symbol table.  Artifacts are what MapBuilder retains between updates:
// an unchanged digest means the lexer and parser never run again for that file, and
// replaying the retained op stream — for every file, in file order — performs the
// same Graph call sequence a from-scratch parse of all files would.  That makes
// replay-built graphs equivalent to parse-built ones by construction, which is the
// foundation the incremental pipeline's golden-equivalence guarantee rests on.
//
// Ops reference names by symbol index; symbols store the bytes as written (case
// normalization happens at replay, through the target graph's interner, so artifacts
// compose with -i).  kIntern ops reproduce node-creation order — including private
// shadow-chain order — not just declaration content.

#ifndef SRC_INCR_ARTIFACT_H_
#define SRC_INCR_ARTIFACT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/graph/cost.h"
#include "src/graph/graph.h"
#include "src/parser/parser.h"
#include "src/support/diag.h"

namespace pathalias {
namespace incr {

inline constexpr uint32_t kNoSymbol = 0xffffffffu;

// FNV-1a over the raw file bytes: the digest that decides "unchanged, skip reparse".
uint64_t DigestBytes(std::string_view bytes);

enum class OpKind : uint8_t {
  kIntern = 0,      // a: find-or-create the visible node (mirrors Graph::Intern)
  kHostDecl = 1,    // a: opened a host declaration (default-local bookkeeping)
  kLink = 2,        // a -> b at cost/op/right
  kAlias = 3,       // a = b
  kNet = 4,         // a = {members at member_offset..+member_count} (cost/op/right)
  kPrivate = 5,     // private {a}
  kDeadHost = 6,    // dead {a}
  kDeadLink = 7,    // dead {a!b}
  kDelete = 8,      // delete {a}
  kAdjust = 9,      // adjust {a(cost)}
  kGatewayed = 10,  // gatewayed {a}
  kGatewayLink = 11,  // gateway {a!b} (a = net, b = gateway host)
};

struct Op {
  OpKind kind = OpKind::kIntern;
  uint8_t right = 0;
  char op = kDefaultOp;
  uint32_t a = kNoSymbol;  // symbol index
  uint32_t b = kNoSymbol;  // second symbol (kLink/kAlias/kDeadLink/kGatewayLink)
  uint32_t member_offset = 0;  // kNet: into FileArtifact::net_members
  uint32_t member_count = 0;
  Cost cost = 0;
};

struct ParseError {
  uint32_t line = 0;
  std::string message;
};

struct FileArtifact {
  // pathalint: allow(R1): replay-artifact identity — the input file path as
  // serialized to the state dir; diagnostics and staleness checks, not routing.
  std::string file_name;
  uint64_t digest = 0;
  // pathalint: allow(R1): the artifact's own symbol table — serialized bytes as
  // written in the source file; replay re-interns them into whatever interner
  // the rebuilt graph owns, so the artifact must carry the raw spelling.
  std::vector<std::string> symbols;   // unique names, first-use order, bytes as written
  std::vector<Op> ops;                // the replay stream, in parse order
  std::vector<uint32_t> net_members;  // pooled member symbol indices for kNet ops
  // Parse errors the original lex+parse reported, retained so a digest-matched
  // REUSE of this artifact re-reports them: "the file is still broken" must not
  // decay into a silent success just because the bytes didn't change.
  std::vector<ParseError> errors;
  // First non-domain host-declaration symbol (the file's default-local candidate).
  uint32_t first_host = kNoSymbol;
  // True when ops are only kIntern/kHostDecl/kLink.  Retained for serialization
  // compatibility; the patch path now classifies by kind_mask instead (aliases and
  // the keyword declarations are diffable — only nets and private scoping are not).
  bool plain_links = true;
  // Bitmask of the OpKinds present in `ops` (bit = 1u << kind).  Derived — computed
  // at record time and recomputed after deserialization, never serialized.
  uint32_t kind_mask = 0;

  bool HasOp(OpKind kind) const { return (kind_mask & (1u << static_cast<uint8_t>(kind))) != 0; }

  std::string_view Symbol(uint32_t index) const { return symbols[index]; }
  // Re-reports the retained parse errors (used when the artifact is reused).
  void ReportStoredErrors(Diagnostics* diag) const;
};

// Lexes and parses `file` into an artifact without touching any long-lived graph
// (a scratch graph absorbs the side effects).  Parse ERRORS go to *diag with their
// file:line positions; malformed declarations are skipped exactly as a production
// parse skips them.  Graph-level warnings (duplicate links, clamped costs, ...) are
// swallowed here — the scratch graph sees one file in isolation, so they would be
// both incomplete (cross-file duplicates invisible) and double-reported once the
// replay raises them against the full graph.  Replay is their single source.
FileArtifact ParseFileToArtifact(const InputFile& file, Diagnostics* diag);

// Replays the artifact into `graph` — BeginFile, the recorded Graph calls in order,
// EndFile.  The artifact's own `first_host` field carries the default-local
// candidate (already filtered to non-domain names, as the parser filters).
void ReplayArtifact(const FileArtifact& artifact, Graph* graph);

// Binary (de)serialization for the state directory.  The format is versioned and
// self-contained; Load returns nullopt on any structural mismatch.
std::string SerializeArtifact(const FileArtifact& artifact);
std::optional<FileArtifact> DeserializeArtifact(std::string_view bytes);

}  // namespace incr
}  // namespace pathalias

#endif  // SRC_INCR_ARTIFACT_H_
