// Prime machinery backing the hash table's growth policies (paper §Hash table
// management).
//
// The paper's final design sizes the host table with "a Fibonacci sequence of primes
// (more or less)": each size is the smallest prime no smaller than the sum of the two
// previous sizes, so successive sizes grow by roughly the golden ratio — the same δ the
// authors had earlier obtained from the αH/αL low/high-water scheme.

#ifndef SRC_SUPPORT_PRIMES_H_
#define SRC_SUPPORT_PRIMES_H_

#include <cstdint>
#include <vector>

namespace pathalias {

// Deterministic Miller–Rabin, exact for all 64-bit inputs.
bool IsPrime(uint64_t n);

// Smallest prime >= n.  n == 0 or 1 yields 2.
uint64_t NextPrime(uint64_t n);

// The paper's "Fibonacci sequence of primes (more or less)": p0 = 3, p1 = 5,
// p(i) = NextPrime(p(i-1) + p(i-2)).  Grows by ~the golden ratio.
class FibonacciPrimes {
 public:
  FibonacciPrimes() = default;

  // Next size in the sequence strictly greater than `current` (so rehashing always
  // grows, even if `current` is not itself a member of the sequence).
  uint64_t NextSize(uint64_t current);

  // The first `count` members of the sequence.
  static std::vector<uint64_t> Sequence(int count);

 private:
  uint64_t prev_ = 0;
  uint64_t cur_ = 0;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_PRIMES_H_
