// On-disk constant database for route retrieval.
//
// The paper (§Output): "output from pathalias is a simple linear file ... If desired, a
// separate program may be used to convert this file into a format appropriate for rapid
// database retrieval."  This is that format: an immutable key→value store with O(1)
// lookups, in the spirit of the dbm files 1986 sites used (and of djb's later cdb).
//
// Layout (all integers little-endian uint64):
//   [0]  magic "PAcdb1\0\0"
//   [8]  slot_count   (prime)
//   [16] record_count
//   [24] slots_offset (byte offset of the slot array)
//   [32] records: repeated { u32 key_len, u32 value_len, key bytes, value bytes }
//   [slots_offset] slots: repeated { u64 hash, u64 record_offset }   offset 0 == empty
//
// Probing reuses the pathalias hash (shifts/XORs, double hashing with the paper's
// secondary function) so the on-disk table has the same ~2-probes-at-0.79 behavior the
// in-memory table is tuned for; we build it at load factor 0.5 for headroom.

#ifndef SRC_SUPPORT_CDB_H_
#define SRC_SUPPORT_CDB_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pathalias {

class CdbWriter {
 public:
  CdbWriter() = default;

  // Adds or replaces a key.  Later calls win, matching "rebuild the DB from a fresh
  // pathalias run" semantics.
  void Put(std::string_view key, std::string_view value);

  size_t size() const { return records_.size(); }

  // Serializes the database; returns false on I/O failure.
  bool WriteFile(const std::string& path) const;

  // Serializes to an in-memory buffer (tests, and CdbReader::FromBuffer).
  std::string WriteBuffer() const;

 private:
  struct Record {
    std::string key;
    std::string value;
  };

  std::vector<Record> records_;
  std::unordered_map<std::string, size_t> index_;
};

class CdbReader {
 public:
  // Loads the whole file; returns std::nullopt on I/O error or corrupt image.
  static std::optional<CdbReader> Open(const std::string& path);
  static std::optional<CdbReader> FromBuffer(std::string buffer);

  // O(1) expected: hash, probe, compare.
  std::optional<std::string_view> Get(std::string_view key) const;

  uint64_t record_count() const { return record_count_; }
  uint64_t slot_count() const { return slot_count_; }

  // Calls fn(key, value) for every record in insertion order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    uint64_t offset = 32;
    for (uint64_t i = 0; i < record_count_; ++i) {
      uint32_t key_len = ReadU32(offset);
      uint32_t value_len = ReadU32(offset + 4);
      std::string_view key(buffer_.data() + offset + 8, key_len);
      std::string_view value(buffer_.data() + offset + 8 + key_len, value_len);
      fn(key, value);
      offset += 8 + key_len + value_len;
    }
  }

 private:
  explicit CdbReader(std::string buffer) : buffer_(std::move(buffer)) {}

  bool Validate();
  uint32_t ReadU32(uint64_t offset) const;
  uint64_t ReadU64(uint64_t offset) const;

  std::string buffer_;
  uint64_t slot_count_ = 0;
  uint64_t record_count_ = 0;
  uint64_t slots_offset_ = 0;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_CDB_H_
