// Interned symbol table: the one owner of every host/domain name string.
//
// The paper spends a whole section on symbol handling because name strings are the
// dominant cost of mapping.  This module pushes that observation through the entire
// pipeline: a name is interned exactly once (at tokenization) and every layer above —
// graph, mapper, route printer, route database, resolver — traffics in dense `NameId`
// handles.  Whether two names denote the same object collapses to an integer compare;
// id → string_view back-resolution is O(1) and only happens lazily, at output time.
//
// The table is open addressing with double hashing in the style of
// src/support/hash_table.h (same primary/secondary hashes, same Fibonacci-prime growth,
// same αH = 0.79 high-water mark), with two additions:
//   * each slot caches 32 bits of the key's hash, so probe collisions are filtered
//     without touching the string bytes;
//   * interning a dotted name precomputes its domain-suffix chain: interning
//     "caip.rutgers.edu" also interns ".rutgers.edu" and ".edu" and records the links,
//     so a resolver's suffix walk (paper §Domains lookup order) and the mapper's
//     up-the-domain-tree test are id-chasing, never substring re-hashing.
//
// The paper's retired-table trick is preserved: once parsing is done the probe table
// can be stolen (StealTable) to hold the shortest-path heap.  Ids, views and suffix
// chains survive the theft; string → id lookups degrade to a linear scan, which only
// rare post-mapping probes take.
//
// The interner can also run *frozen*: AdoptFrozen points it at entry/slot/byte arrays
// laid out by src/image's ImageWriter (typically an mmap'd .pari file).  A frozen
// interner answers Find/View/Suffix against the mapping with zero copies and zero
// allocations; Intern and StealTable are forbidden.  The frozen record types below are
// the on-disk layout — fixed-width, offset-based, no pointers — shared by the writer,
// the image validator, and the adopt mode.

#ifndef SRC_SUPPORT_INTERNER_H_
#define SRC_SUPPORT_INTERNER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/arena.h"
#include "src/support/fastmod.h"
#include "src/support/primes.h"

namespace pathalias {

// Dense handle for an interned name.  Ids are assigned in first-intern order and are
// stable for the interner's lifetime (rehashing moves slots, never ids).
using NameId = uint32_t;
inline constexpr NameId kNoName = std::numeric_limits<uint32_t>::max();

class NameInterner {
 public:
  struct Options {
    bool fold_case = false;      // normalize ASCII upper case away (-i)
    bool suffix_chains = true;   // precompute domain-suffix chains for dotted names
    uint64_t initial_capacity = 0;
  };

  // Write-side (Intern) accounting only.  Const lookups — Find/View/Suffix, on a live
  // or frozen table — mutate nothing, not even these counters, so any number of
  // threads may read one interner (typically one shared .pari mapping) concurrently
  // with no synchronization.  Interning concurrently with anything is still a race.
  struct Stats {
    uint64_t accesses = 0;  // Intern calls
    uint64_t probes = 0;    // slot inspections on their behalf
    uint64_t rehashes = 0;  // table growths
  };

  // One name record in frozen layout: everything the live Entry holds, with the char
  // pointer replaced by an offset into a shared NUL-terminated byte pool.
  struct FrozenEntry {
    uint64_t hash;          // full probe hash, as HashName computed it at intern time
    uint32_t bytes_offset;  // into the name-byte pool; the name is NUL-terminated there
    uint32_t length;
    NameId suffix;          // domain-suffix chain link, or kNoName
    uint32_t reserved;
  };
  static_assert(sizeof(FrozenEntry) == 24);

  // One probe-table slot in frozen layout — bit-identical to the live table's slots.
  struct alignas(8) FrozenSlot {
    NameId id;      // kNoName == empty
    uint32_t hash;  // low 32 bits of the entry's probe hash
  };
  static_assert(sizeof(FrozenSlot) == 8);

  // A complete frozen table: pointers into externally owned (typically mmap'd) memory
  // that must outlive the adopting interner.
  struct FrozenView {
    const char* name_bytes = nullptr;
    size_t name_bytes_size = 0;
    const FrozenEntry* entries = nullptr;
    uint32_t entry_count = 0;
    const FrozenSlot* slots = nullptr;
    uint64_t table_capacity = 0;
    bool fold_case = false;
  };

  NameInterner();  // owns a private arena
  explicit NameInterner(Options options);
  // Shares `arena` (which must outlive the interner); names and tables live there.
  NameInterner(Arena* arena, Options options);

  NameInterner(NameInterner&&) = default;
  NameInterner& operator=(NameInterner&&) = default;
  NameInterner(const NameInterner&) = delete;
  NameInterner& operator=(const NameInterner&) = delete;

  // The one definition of the interner's case normalization (-i folds ASCII upper
  // case away).  Public so layers that must agree with interned bytes — e.g. the
  // batch engine's shard hash — fold identically instead of re-implementing it.
  static char FoldChar(char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }

  // A read-only interner running directly over frozen-layout arrays (see FrozenView).
  // The backing memory must outlive the result.  Intern/StealTable are forbidden on
  // the result; Find/View/Suffix/HasSuffix work without copying or allocating.
  static NameInterner AdoptFrozen(const FrozenView& view);
  bool frozen() const { return frozen_.entries != nullptr; }

  // Returns the id for `name`, interning (and case-normalizing) it if new.
  // Forbidden on a frozen interner (asserts; degrades to Find in release builds).
  NameId Intern(std::string_view name);

  // Read-only lookup: the id for `name`, or kNoName.  Never allocates and never
  // writes (see Stats): safe to call from many threads against one table.
  NameId Find(std::string_view name) const;

  // O(1) back-resolution.  The view/pointer is NUL-terminated, case-normalized, and
  // stable for the interner's lifetime.
  std::string_view View(NameId id) const {
    if (frozen()) {
      const FrozenEntry& entry = frozen_.entries[id];
      return {frozen_.name_bytes + entry.bytes_offset, entry.length};
    }
    const Entry& entry = entries_[id];
    return {entry.chars, entry.length};
  }
  const char* CStr(NameId id) const {
    return frozen() ? frozen_.name_bytes + frozen_.entries[id].bytes_offset
                    : entries_[id].chars;
  }

  // The next link of `id`'s precomputed domain-suffix chain: for "caip.rutgers.edu"
  // that is ".rutgers.edu", then ".edu", then kNoName.
  NameId Suffix(NameId id) const {
    return frozen() ? frozen_.entries[id].suffix : entries_[id].suffix;
  }

  // The full probe hash recorded for `id` at intern time — what ImageWriter freezes so
  // an adopted table probes identically without ever re-hashing a string.
  uint64_t HashOf(NameId id) const {
    return frozen() ? frozen_.entries[id].hash : entries_[id].hash;
  }
  // The probe hash for arbitrary bytes, folded exactly like the stored copies —
  // hashing a window of queries up front is stage 1 of the resolver's software
  // pipeline (the per-byte shift/xor chains of different queries are independent,
  // so a block of HashOf calls overlaps where one-at-a-time hashing serializes).
  uint64_t HashOf(std::string_view name) const { return HashName(name); }
  bool fold_case() const { return options_.fold_case; }

  // --- Pipelined (prefetch-aware) probing ------------------------------------
  //
  // Find() is one dependent-miss chain: slot -> entry -> name bytes.  The calls
  // below break it into resumable steps so a batch caller can keep K probes in
  // flight, issuing a __builtin_prefetch for the line each step will touch one
  // step (K lane-advances) before touching it.  The step sequence visits exactly
  // the slots ProbeFor visits and applies the same filters (slot hash32, then
  // byte equality — plus the stored full hash, a pure narrowing of the same
  // filter), so the outcome is identical to Find(name) for every input.

  // A resumable double-hashing probe position.  `hash` is HashOf(name).
  struct ProbeCursor {
    uint64_t index = 0;
    uint64_t stride = 0;
    uint64_t hash = 0;
  };

  // True when the table supports slot-level probing: a live table with slots, or
  // a non-empty frozen one.  False (empty, stolen) means callers must fall back
  // to Find(), which handles the degraded modes.
  bool can_probe() const {
    if (frozen()) {
      return frozen_.entry_count > 0 && frozen_.table_capacity >= 5;
    }
    return !stolen_ && capacity_ >= 5;
  }

  ProbeCursor BeginProbe(uint64_t hash) const {
    // Same geometry as ProbeFor — slot k mod T, the paper's secondary hash
    // T-2-(k mod T-2) in [1, T-2] — but both remainders go through precomputed
    // magic reciprocals (see fastmod.h): the hardware divider does not pipeline,
    // so two DIVs per probe sequence would serialize the in-flight window that
    // ResolveBatchPipelined exists to overlap.
    return ProbeCursor{fast_index_.Mod(hash),
                       fast_stride_.divisor() - fast_stride_.Mod(hash), hash};
  }

  // Prefetches the cursor's next probe position(s).  Depth is deliberately 1:
  // although the stride is fixed at BeginProbe (so deeper positions are
  // address-computable up front), measured end-to-end batch throughput REGRESSES
  // at depth 2-3 — most probes stop at the first slot, so deeper prefetches are
  // mostly wasted bandwidth and page walks.
  static constexpr uint64_t kProbePrefetchDepth = 1;
  void PrefetchSlot(const ProbeCursor& cursor) const {
    const Slot* slots = probe_slots();
    const uint64_t capacity = table_capacity();
    uint64_t index = cursor.index;
    for (uint64_t step = 0; step < kProbePrefetchDepth; ++step) {
      __builtin_prefetch(slots + index);
      index += cursor.stride;
      if (index >= capacity) {
        index -= capacity;
      }
    }
  }

  enum class ProbeOutcome : uint8_t {
    kEmpty,      // the name is not in the table; the probe is over
    kCandidate,  // slot hash32 matched: verify `*candidate`'s bytes next
    kCollision,  // occupied by a different hash: cursor advanced, probe again
  };

  // Inspects exactly one slot (which PrefetchSlot should have been called for one
  // pipeline round earlier) and advances the cursor past it on kCandidate and
  // kCollision, so a rejected candidate resumes the probe exactly where ProbeFor
  // would.
  ProbeOutcome ProbeStep(ProbeCursor* cursor, NameId* candidate) const {
    const Slot& slot = probe_slots()[cursor->index];
    if (slot.id == kNoName) {
      return ProbeOutcome::kEmpty;
    }
    cursor->index += cursor->stride;
    if (cursor->index >= table_capacity()) {
      cursor->index -= table_capacity();
    }
    if (slot.hash == static_cast<uint32_t>(cursor->hash)) {
      *candidate = slot.id;
      return ProbeOutcome::kCandidate;
    }
    return ProbeOutcome::kCollision;
  }

  // The candidate-verification split: prefetch the entry record, filter on the
  // stored full hash (a superset of the slot's 32-bit filter, so rejections here
  // are exactly ProbeFor's byte-compare rejections), prefetch the name bytes,
  // compare the bytes.  Each step touches one line the previous step prefetched.
  void PrefetchEntry(NameId id) const {
    __builtin_prefetch(frozen() ? static_cast<const void*>(frozen_.entries + id)
                                : static_cast<const void*>(entries_.data() + id));
  }
  bool CandidateHashMatches(NameId id, uint64_t hash) const { return HashOf(id) == hash; }
  void PrefetchNameBytes(NameId id) const { __builtin_prefetch(CStr(id)); }
  bool CandidateEquals(NameId id, std::string_view name) const {
    if (options_.fold_case) {
      return EqualName(id, name);  // byte-by-byte, folding the query as it goes
    }
    // Word-wide compare: host names are 5-25 bytes, where libc memcmp's call
    // and dispatch overhead rivals the compare itself.  Candidates here have
    // already matched 64 hash bits, so equality is the overwhelmingly common
    // outcome and the loop nearly always runs to completion.
    std::string_view stored = View(id);
    if (stored.size() != name.size()) {
      return false;
    }
    const char* a = stored.data();
    const char* b = name.data();
    size_t n = name.size();
    for (; n >= 8; a += 8, b += 8, n -= 8) {
      uint64_t wa;
      uint64_t wb;
      __builtin_memcpy(&wa, a, 8);
      __builtin_memcpy(&wb, b, 8);
      if (wa != wb) {
        return false;
      }
    }
    for (; n > 0; ++a, ++b, --n) {
      if (*a != *b) {
        return false;
      }
    }
    return true;
  }

  // Find with the hash precomputed by HashOf(name): identical outcome, one hash
  // pass saved.  Handles every mode Find handles (frozen, stolen, empty).
  NameId FindPrehashed(std::string_view name, uint64_t hash) const;

  // True if `id`'s name ends with the dot-prefixed domain `suffix` — an integer walk
  // of the chain, no byte comparisons.  A name is not a suffix of itself.
  bool HasSuffix(NameId id, NameId suffix) const {
    for (NameId s = Suffix(id); s != kNoName; s = Suffix(s)) {
      if (s == suffix) {
        return true;
      }
    }
    return false;
  }

  size_t size() const { return frozen() ? frozen_.entry_count : entries_.size(); }
  uint64_t table_capacity() const { return frozen() ? frozen_.table_capacity : capacity_; }
  double load_factor() const {
    uint64_t capacity = table_capacity();
    return capacity == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(capacity);
  }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  bool stolen() const { return stolen_; }
  Arena& arena() { return *arena_; }  // live interners only; a frozen one has no arena

  // Relinquishes the probe table (the mapper builds the shortest-path heap in it).
  // Ids, View and Suffix keep working; Find/Intern fall back to a linear scan.
  // Forbidden on a frozen interner.
  std::pair<void*, size_t> StealTable();

  static constexpr double kHighWater = 0.79;

 private:
  struct Entry {
    const char* chars;  // NUL-terminated, arena-owned, already case-normalized
    uint32_t length;
    NameId suffix;      // domain-suffix chain link, or kNoName
    uint64_t hash;      // full probe hash; growth reinserts without touching strings
  };

  // The live table uses the frozen slot layout directly (8-byte, 8-aligned so a stolen
  // table can hold a PathLabel* heap), which is what makes freezing a straight copy.
  using Slot = FrozenSlot;

  NameInterner(const FrozenView& view, Options options);  // AdoptFrozen backend

  // The probe table in whichever mode is active; only valid when can_probe().
  const Slot* probe_slots() const { return frozen() ? frozen_.slots : slots_; }

  uint64_t HashName(std::string_view name) const;
  bool EqualName(NameId id, std::string_view name) const;
  // Index of the slot holding `name` (hash `k`), or of the empty slot where it belongs.
  // `stats` is where probe counts accrue: &stats_ on the Intern path, nullptr on the
  // const Find path (which must stay mutation-free for concurrent readers).
  uint64_t ProbeFor(const Slot* slots, uint64_t capacity, std::string_view name,
                    uint64_t k, Stats* stats) const;
  void Rehash(uint64_t new_capacity);
  NameId LinearFind(std::string_view name) const;

  // Recomputes the probe-geometry reciprocals after any table_capacity() change
  // (growth rehash, frozen adoption).  A capacity below the can_probe() floor
  // leaves them stale, which is harmless: BeginProbe requires can_probe().
  void RefreshProbeDivisors() {
    uint64_t capacity = table_capacity();
    if (capacity >= 5) {
      fast_index_.Reset(capacity);
      fast_stride_.Reset(capacity - 2);
    }
  }

  std::unique_ptr<Arena> owned_arena_;
  Arena* arena_ = nullptr;
  Options options_;
  Slot* slots_ = nullptr;
  uint64_t capacity_ = 0;
  FastMod fast_index_;   // reciprocal of table_capacity()
  FastMod fast_stride_;  // reciprocal of table_capacity() - 2
  std::vector<Entry> entries_;
  FibonacciPrimes growth_;
  FrozenView frozen_;  // non-null entries => adopt-read-only mode
  bool stolen_ = false;
  Stats stats_;  // write-side only; const lookups never touch it (concurrent readers)
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_INTERNER_H_
