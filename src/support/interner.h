// Interned symbol table: the one owner of every host/domain name string.
//
// The paper spends a whole section on symbol handling because name strings are the
// dominant cost of mapping.  This module pushes that observation through the entire
// pipeline: a name is interned exactly once (at tokenization) and every layer above —
// graph, mapper, route printer, route database, resolver — traffics in dense `NameId`
// handles.  Whether two names denote the same object collapses to an integer compare;
// id → string_view back-resolution is O(1) and only happens lazily, at output time.
//
// The table is open addressing with double hashing in the style of
// src/support/hash_table.h (same primary/secondary hashes, same Fibonacci-prime growth,
// same αH = 0.79 high-water mark), with two additions:
//   * each slot caches 32 bits of the key's hash, so probe collisions are filtered
//     without touching the string bytes;
//   * interning a dotted name precomputes its domain-suffix chain: interning
//     "caip.rutgers.edu" also interns ".rutgers.edu" and ".edu" and records the links,
//     so a resolver's suffix walk (paper §Domains lookup order) and the mapper's
//     up-the-domain-tree test are id-chasing, never substring re-hashing.
//
// The paper's retired-table trick is preserved: once parsing is done the probe table
// can be stolen (StealTable) to hold the shortest-path heap.  Ids, views and suffix
// chains survive the theft; string → id lookups degrade to a linear scan, which only
// rare post-mapping probes take.
//
// The interner can also run *frozen*: AdoptFrozen points it at entry/slot/byte arrays
// laid out by src/image's ImageWriter (typically an mmap'd .pari file).  A frozen
// interner answers Find/View/Suffix against the mapping with zero copies and zero
// allocations; Intern and StealTable are forbidden.  The frozen record types below are
// the on-disk layout — fixed-width, offset-based, no pointers — shared by the writer,
// the image validator, and the adopt mode.

#ifndef SRC_SUPPORT_INTERNER_H_
#define SRC_SUPPORT_INTERNER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "src/support/arena.h"
#include "src/support/primes.h"

namespace pathalias {

// Dense handle for an interned name.  Ids are assigned in first-intern order and are
// stable for the interner's lifetime (rehashing moves slots, never ids).
using NameId = uint32_t;
inline constexpr NameId kNoName = std::numeric_limits<uint32_t>::max();

class NameInterner {
 public:
  struct Options {
    bool fold_case = false;      // normalize ASCII upper case away (-i)
    bool suffix_chains = true;   // precompute domain-suffix chains for dotted names
    uint64_t initial_capacity = 0;
  };

  // Write-side (Intern) accounting only.  Const lookups — Find/View/Suffix, on a live
  // or frozen table — mutate nothing, not even these counters, so any number of
  // threads may read one interner (typically one shared .pari mapping) concurrently
  // with no synchronization.  Interning concurrently with anything is still a race.
  struct Stats {
    uint64_t accesses = 0;  // Intern calls
    uint64_t probes = 0;    // slot inspections on their behalf
    uint64_t rehashes = 0;  // table growths
  };

  // One name record in frozen layout: everything the live Entry holds, with the char
  // pointer replaced by an offset into a shared NUL-terminated byte pool.
  struct FrozenEntry {
    uint64_t hash;          // full probe hash, as HashName computed it at intern time
    uint32_t bytes_offset;  // into the name-byte pool; the name is NUL-terminated there
    uint32_t length;
    NameId suffix;          // domain-suffix chain link, or kNoName
    uint32_t reserved;
  };
  static_assert(sizeof(FrozenEntry) == 24);

  // One probe-table slot in frozen layout — bit-identical to the live table's slots.
  struct alignas(8) FrozenSlot {
    NameId id;      // kNoName == empty
    uint32_t hash;  // low 32 bits of the entry's probe hash
  };
  static_assert(sizeof(FrozenSlot) == 8);

  // A complete frozen table: pointers into externally owned (typically mmap'd) memory
  // that must outlive the adopting interner.
  struct FrozenView {
    const char* name_bytes = nullptr;
    size_t name_bytes_size = 0;
    const FrozenEntry* entries = nullptr;
    uint32_t entry_count = 0;
    const FrozenSlot* slots = nullptr;
    uint64_t table_capacity = 0;
    bool fold_case = false;
  };

  NameInterner();  // owns a private arena
  explicit NameInterner(Options options);
  // Shares `arena` (which must outlive the interner); names and tables live there.
  NameInterner(Arena* arena, Options options);

  NameInterner(NameInterner&&) = default;
  NameInterner& operator=(NameInterner&&) = default;
  NameInterner(const NameInterner&) = delete;
  NameInterner& operator=(const NameInterner&) = delete;

  // The one definition of the interner's case normalization (-i folds ASCII upper
  // case away).  Public so layers that must agree with interned bytes — e.g. the
  // batch engine's shard hash — fold identically instead of re-implementing it.
  static char FoldChar(char c) {
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }

  // A read-only interner running directly over frozen-layout arrays (see FrozenView).
  // The backing memory must outlive the result.  Intern/StealTable are forbidden on
  // the result; Find/View/Suffix/HasSuffix work without copying or allocating.
  static NameInterner AdoptFrozen(const FrozenView& view);
  bool frozen() const { return frozen_.entries != nullptr; }

  // Returns the id for `name`, interning (and case-normalizing) it if new.
  // Forbidden on a frozen interner (asserts; degrades to Find in release builds).
  NameId Intern(std::string_view name);

  // Read-only lookup: the id for `name`, or kNoName.  Never allocates and never
  // writes (see Stats): safe to call from many threads against one table.
  NameId Find(std::string_view name) const;

  // O(1) back-resolution.  The view/pointer is NUL-terminated, case-normalized, and
  // stable for the interner's lifetime.
  std::string_view View(NameId id) const {
    if (frozen()) {
      const FrozenEntry& entry = frozen_.entries[id];
      return {frozen_.name_bytes + entry.bytes_offset, entry.length};
    }
    const Entry& entry = entries_[id];
    return {entry.chars, entry.length};
  }
  const char* CStr(NameId id) const {
    return frozen() ? frozen_.name_bytes + frozen_.entries[id].bytes_offset
                    : entries_[id].chars;
  }

  // The next link of `id`'s precomputed domain-suffix chain: for "caip.rutgers.edu"
  // that is ".rutgers.edu", then ".edu", then kNoName.
  NameId Suffix(NameId id) const {
    return frozen() ? frozen_.entries[id].suffix : entries_[id].suffix;
  }

  // The full probe hash recorded for `id` at intern time — what ImageWriter freezes so
  // an adopted table probes identically without ever re-hashing a string.
  uint64_t HashOf(NameId id) const {
    return frozen() ? frozen_.entries[id].hash : entries_[id].hash;
  }
  bool fold_case() const { return options_.fold_case; }

  // True if `id`'s name ends with the dot-prefixed domain `suffix` — an integer walk
  // of the chain, no byte comparisons.  A name is not a suffix of itself.
  bool HasSuffix(NameId id, NameId suffix) const {
    for (NameId s = Suffix(id); s != kNoName; s = Suffix(s)) {
      if (s == suffix) {
        return true;
      }
    }
    return false;
  }

  size_t size() const { return frozen() ? frozen_.entry_count : entries_.size(); }
  uint64_t table_capacity() const { return frozen() ? frozen_.table_capacity : capacity_; }
  double load_factor() const {
    uint64_t capacity = table_capacity();
    return capacity == 0 ? 0.0 : static_cast<double>(size()) / static_cast<double>(capacity);
  }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  bool stolen() const { return stolen_; }
  Arena& arena() { return *arena_; }  // live interners only; a frozen one has no arena

  // Relinquishes the probe table (the mapper builds the shortest-path heap in it).
  // Ids, View and Suffix keep working; Find/Intern fall back to a linear scan.
  // Forbidden on a frozen interner.
  std::pair<void*, size_t> StealTable();

  static constexpr double kHighWater = 0.79;

 private:
  struct Entry {
    const char* chars;  // NUL-terminated, arena-owned, already case-normalized
    uint32_t length;
    NameId suffix;      // domain-suffix chain link, or kNoName
    uint64_t hash;      // full probe hash; growth reinserts without touching strings
  };

  // The live table uses the frozen slot layout directly (8-byte, 8-aligned so a stolen
  // table can hold a PathLabel* heap), which is what makes freezing a straight copy.
  using Slot = FrozenSlot;

  NameInterner(const FrozenView& view, Options options);  // AdoptFrozen backend

  uint64_t HashName(std::string_view name) const;
  bool EqualName(NameId id, std::string_view name) const;
  // Index of the slot holding `name` (hash `k`), or of the empty slot where it belongs.
  // `stats` is where probe counts accrue: &stats_ on the Intern path, nullptr on the
  // const Find path (which must stay mutation-free for concurrent readers).
  uint64_t ProbeFor(const Slot* slots, uint64_t capacity, std::string_view name,
                    uint64_t k, Stats* stats) const;
  void Rehash(uint64_t new_capacity);
  NameId LinearFind(std::string_view name) const;

  std::unique_ptr<Arena> owned_arena_;
  Arena* arena_ = nullptr;
  Options options_;
  Slot* slots_ = nullptr;
  uint64_t capacity_ = 0;
  std::vector<Entry> entries_;
  FibonacciPrimes growth_;
  FrozenView frozen_;  // non-null entries => adopt-read-only mode
  bool stolen_ = false;
  Stats stats_;  // write-side only; const lookups never touch it (concurrent readers)
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_INTERNER_H_
