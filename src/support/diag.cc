#include "src/support/diag.h"

#include <sstream>

namespace pathalias {

std::string_view ToString(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string ToString(const Diagnostic& diagnostic) {
  std::ostringstream out;
  if (!diagnostic.pos.file.empty()) {
    out << diagnostic.pos.file << ":";
    if (diagnostic.pos.line > 0) {
      out << diagnostic.pos.line << ":";
    }
    out << " ";
  }
  out << ToString(diagnostic.severity) << ": " << diagnostic.message;
  return out.str();
}

void Diagnostics::Report(Severity severity, SourcePos pos, std::string message) {
  Diagnostic diagnostic{severity, std::move(pos), std::move(message)};
  if (severity == Severity::kError) {
    ++error_count_;
  } else if (severity == Severity::kWarning) {
    ++warning_count_;
  }
  if (sink_) {
    sink_(diagnostic);
  }
  diagnostics_.push_back(std::move(diagnostic));
}

bool Diagnostics::Mentions(std::string_view needle) const {
  for (const Diagnostic& diagnostic : diagnostics_) {
    if (diagnostic.message.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string Diagnostics::ToString() const {
  std::string out;
  for (const Diagnostic& diagnostic : diagnostics_) {
    out += pathalias::ToString(diagnostic);
    out += '\n';
  }
  return out;
}

void Diagnostics::Clear() {
  diagnostics_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace pathalias
