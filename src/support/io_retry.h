// Short-I/O and EINTR discipline for raw file descriptors, shared by the daemon
// (src/net) and any tool that talks to pipes or sockets directly.
//
// POSIX read/write may transfer fewer bytes than asked (pipes, sockets, signals)
// and may fail with EINTR without transferring anything.  Every raw syscall site
// in this codebase goes through these helpers so the retry policy lives in one
// place: retry on EINTR always, loop on short transfers until the full count is
// moved or a real error/EOF ends it.  Datagram sockets are different — a datagram
// sends or receives whole or not at all — so src/net/socket.h wraps sendto/recvfrom
// with RetryEintr directly rather than a transfer loop.
//
// Long-running tools must also ignore SIGPIPE: a peer closing its socket between
// our poll and our send must surface as EPIPE from the syscall (handled, counted),
// not kill the process.  Filters (pathalias, routedb batch) keep the default — for
// a pipeline, dying silently on a closed pipe is the correct UNIX behavior.

#ifndef SRC_SUPPORT_IO_RETRY_H_
#define SRC_SUPPORT_IO_RETRY_H_

#include <cerrno>
#include <cstddef>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

namespace pathalias {
namespace support {

// Retries `call` (any syscall-shaped callable returning a signed count) until it
// returns something other than -1/EINTR.  The one-liner that keeps every call
// site honest about interrupted syscalls.
template <typename Call>
auto RetryEintr(Call&& call) -> decltype(call()) {
  decltype(call()) result;
  do {
    result = call();
  } while (result < 0 && errno == EINTR);
  return result;
}

#if defined(__unix__) || defined(__APPLE__)

// Reads exactly `count` bytes unless EOF or a real error intervenes.  Returns the
// number of bytes actually read: `count` on success, less on EOF, -1 on error
// (errno set; never EINTR).
inline ssize_t ReadFull(int fd, void* buffer, size_t count) {
  char* out = static_cast<char*>(buffer);
  size_t done = 0;
  while (done < count) {
    ssize_t n = RetryEintr([&] { return ::read(fd, out + done, count - done); });
    if (n < 0) {
      return -1;
    }
    if (n == 0) {
      break;  // EOF
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

// Writes exactly `count` bytes or fails: returns `count` on success, -1 on error
// (errno set; never EINTR, and a short write is retried, not returned).
inline ssize_t WriteFull(int fd, const void* buffer, size_t count) {
  const char* in = static_cast<const char*>(buffer);
  size_t done = 0;
  while (done < count) {
    ssize_t n = RetryEintr([&] { return ::write(fd, in + done, count - done); });
    if (n < 0) {
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

// For daemons: a peer disappearing mid-send must be an errno, not a process death.
inline void IgnoreSigpipe() { ::signal(SIGPIPE, SIG_IGN); }

#endif  // __unix__ || __APPLE__

}  // namespace support
}  // namespace pathalias

#endif  // SRC_SUPPORT_IO_RETRY_H_
