// Failpoints: named fault-injection sites for everything syscall-adjacent.
//
// A failpoint is a name checked at a fallible site ("image.publish.rename",
// "net.send", ...).  Production never arms any, so the cost of a site is ONE
// relaxed atomic load and a predicted-not-taken branch — the global armed count
// is zero and Inject() returns false before the name is even looked at.  Tests
// and chaos harnesses arm schedules by name, programmatically or through the
// PATHALIAS_FAILPOINTS environment variable, and the armed site then simulates
// the failure deterministically: Inject() returns true with errno set to the
// configured value, and the call site takes exactly the error path a real
// short write / failed rename / ENOSPC would have taken.
//
// Schedules (deterministic — runs replay exactly given the same arming):
//   off        never fire (keeps the hit counter running)
//   once       fire on the 1st hit after arming, then never again
//   always     fire on every hit
//   nth:N      fire exactly on the Nth hit (1-based), once
//   every:N    fire on every Nth hit (N, 2N, 3N, ...)
//   times:N    fire on the first N hits
// plus an optional errno override: "errno:ENOSPC" (or a raw number).  Default
// injected errno is EIO.  Hits are counted from the moment of arming.
//
// Spec strings (the env-var form): semicolon-separated entries, each
// "name=schedule[,errno:E]", e.g.
//   PATHALIAS_FAILPOINTS="image.publish.rename=nth:2,errno:ENOSPC;net.send=every:3"
//
// Thread-safety: the fast path is a relaxed atomic; everything behind it takes
// one global mutex, so arming/inspecting from a test thread while a daemon
// thread hits sites is safe (and TSan-clean).

#ifndef SRC_SUPPORT_FAILPOINT_H_
#define SRC_SUPPORT_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace pathalias {
namespace support {
namespace failpoint {

namespace detail {
extern std::atomic<uint32_t> g_armed_count;  // failpoints currently armed
bool InjectSlow(std::string_view name);
}  // namespace detail

// The site check.  True means "simulate failure here" — errno has been set to
// the schedule's errno and the fire was counted.  False costs one relaxed load
// when nothing is armed anywhere in the process.
inline bool Inject(std::string_view name) {
  // memory_order: relaxed — pure fast-path gate: zero means "skip the slow
  // path", and a racing Arm is only obliged to affect Injects that start after
  // it; any nonzero reading takes the registry mutex in InjectSlow, which is
  // what actually orders the schedule state.
  if (detail::g_armed_count.load(std::memory_order_relaxed) == 0) [[likely]] {
    return false;
  }
  return detail::InjectSlow(name);
}

// Arms `name` with `schedule` (grammar above).  False with *error on a
// malformed schedule.  Re-arming an armed name replaces its schedule and
// resets its hit/fire counters.
bool Arm(std::string_view name, std::string_view schedule, std::string* error = nullptr);

// Arms every "name=schedule" entry in a semicolon-separated list.  False with
// *error on the first malformed entry (earlier entries stay armed).
bool ArmFromSpec(std::string_view spec, std::string* error = nullptr);

// Arms from $PATHALIAS_FAILPOINTS if set.  Returns the number of failpoints
// armed; complains to stderr (and keeps going) on a malformed spec, because a
// tool must not turn a typo'd chaos schedule into silent no-chaos.
size_t ArmFromEnv();

// Disarms `name` (its counters remain readable until Reset).
void Disarm(std::string_view name);

// Disarms everything and forgets all counters — test-teardown hygiene.
void Reset();

// Counters for assertions: hits = Inject() calls while armed (or off),
// fires = hits that returned true.  Unknown names read as zero.
uint64_t Hits(std::string_view name);
uint64_t Fires(std::string_view name);

}  // namespace failpoint
}  // namespace support
}  // namespace pathalias

#endif  // SRC_SUPPORT_FAILPOINT_H_
