#include "src/support/primes.h"

namespace pathalias {
namespace {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((static_cast<__uint128_t>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) {
      result = MulMod(result, base, m);
    }
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

// One Miller–Rabin round; returns true if n passes for witness a.
bool MillerRabinRound(uint64_t n, uint64_t a, uint64_t d, int r) {
  uint64_t x = PowMod(a, d, n);
  if (x == 1 || x == n - 1) {
    return true;
  }
  for (int i = 0; i < r - 1; ++i) {
    x = MulMod(x, x, n);
    if (x == n - 1) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) {
    return false;
  }
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull, 31ull}) {
    if (n % p == 0) {
      return n == p;
    }
  }
  // n is odd and > 31*31 is not guaranteed, but trial division above already handled all
  // composites < 37*37 with a factor <= 31; remaining small values are prime.
  if (n < 37 * 37) {
    return true;
  }
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is exact for all n < 2^64 (Sinclair / Feitsma-verified set).
  for (uint64_t a : {2ull, 325ull, 9375ull, 28178ull, 450775ull, 9780504ull, 1795265022ull}) {
    if (a % n == 0) {
      continue;
    }
    if (!MillerRabinRound(n, a, d, r)) {
      return false;
    }
  }
  return true;
}

uint64_t NextPrime(uint64_t n) {
  if (n <= 2) {
    return 2;
  }
  if ((n & 1) == 0) {
    ++n;
  }
  while (!IsPrime(n)) {
    n += 2;
  }
  return n;
}

uint64_t FibonacciPrimes::NextSize(uint64_t current) {
  if (prev_ == 0) {
    prev_ = 3;
    cur_ = 5;
  }
  // Walk the sequence forward until it exceeds `current`.
  while (cur_ <= current) {
    uint64_t next = NextPrime(prev_ + cur_);
    prev_ = cur_;
    cur_ = next;
  }
  return cur_;
}

std::vector<uint64_t> FibonacciPrimes::Sequence(int count) {
  std::vector<uint64_t> out;
  uint64_t prev = 3;
  uint64_t cur = 5;
  for (int i = 0; i < count; ++i) {
    if (i == 0) {
      out.push_back(prev);
    } else if (i == 1) {
      out.push_back(cur);
    } else {
      uint64_t next = NextPrime(prev + cur);
      prev = cur;
      cur = next;
      out.push_back(cur);
    }
  }
  return out;
}

}  // namespace pathalias
