// Diagnostics sink used by every phase (parsing, mapping, printing).
//
// pathalias's input is a merge of thousands of independently maintained site files; the
// paper stresses that the data are "often contradictory and error-filled".  Errors must
// therefore be *collected and attributed* (file:line), never thrown: a bad declaration
// skips one line, not the whole 28,000-link map.

#ifndef SRC_SUPPORT_DIAG_H_
#define SRC_SUPPORT_DIAG_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace pathalias {

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// Returns "note" / "warning" / "error".
std::string_view ToString(Severity severity);

// A position in one of the input map files.  `line` is 1-based; 0 means "no line
// information" (e.g. a problem detected during mapping rather than parsing).
struct SourcePos {
  std::string file;
  int line = 0;

  bool operator==(const SourcePos&) const = default;
};

struct Diagnostic {
  Severity severity = Severity::kNote;
  SourcePos pos;
  std::string message;
};

// Renders "file:line: severity: message" (omitting empty components).
std::string ToString(const Diagnostic& diagnostic);

// Accumulates diagnostics.  Optionally forwards each one to a sink as it arrives (the
// CLI uses this to stream to stderr); library callers usually inspect the vector.
class Diagnostics {
 public:
  using Sink = std::function<void(const Diagnostic&)>;

  Diagnostics() = default;

  // Streams every future diagnostic to `sink` in addition to recording it.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void Report(Severity severity, SourcePos pos, std::string message);

  void Note(SourcePos pos, std::string message) {
    Report(Severity::kNote, std::move(pos), std::move(message));
  }
  void Warn(SourcePos pos, std::string message) {
    Report(Severity::kWarning, std::move(pos), std::move(message));
  }
  void Error(SourcePos pos, std::string message) {
    Report(Severity::kError, std::move(pos), std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  int error_count() const { return error_count_; }
  int warning_count() const { return warning_count_; }
  bool ok() const { return error_count_ == 0; }

  // True if any recorded diagnostic's message contains `needle` (test convenience).
  bool Mentions(std::string_view needle) const;

  // All diagnostics, one rendered line each.
  std::string ToString() const;

  void Clear();

 private:
  std::vector<Diagnostic> diagnostics_;
  Sink sink_;
  int error_count_ = 0;
  int warning_count_ = 0;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_DIAG_H_
