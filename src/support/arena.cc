#include "src/support/arena.h"

#include <cstring>

namespace pathalias {
namespace {

constexpr size_t AlignUp(size_t value, size_t align) { return (value + align - 1) & ~(align - 1); }

char* AlignPtr(char* p, size_t align) {
  auto v = reinterpret_cast<uintptr_t>(p);
  v = (v + align - 1) & ~static_cast<uintptr_t>(align - 1);
  return reinterpret_cast<char*>(v);
}

// A partially filled buffer worth keeping when a large request arrives.
constexpr size_t kKeepBufferMin = 1024;

}  // namespace

Arena::Arena(size_t block_size) : block_size_(block_size < 1024 ? 1024 : block_size) {}

Arena::~Arena() {
  Block* block = blocks_;
  while (block != nullptr) {
    Block* next = block->next;
    ::operator delete(static_cast<void*>(block));
    block = next;
  }
}

Arena::Region Arena::ObtainRegion(size_t size) {
  // Prefer a donated region that fits (discarded hash tables; paper §Hash table
  // management).  Linear scan is fine: donations number in the tens.
  for (size_t i = 0; i < donated_.size(); ++i) {
    if (static_cast<size_t>(donated_[i].end - donated_[i].begin) >= size) {
      Region region = donated_[i];
      donated_.erase(donated_.begin() + static_cast<ptrdiff_t>(i));
      ++stats_.donations_reused;
      return region;
    }
  }
  size_t usable = block_size_;
  if (size > usable) {
    usable = size;  // oversize request gets a dedicated block
    ++stats_.oversize_count;
  }
  void* raw = ::operator new(sizeof(Block) + usable);
  auto* block = static_cast<Block*>(raw);
  block->next = blocks_;
  block->size = usable;
  blocks_ = block;
  ++stats_.block_count;
  stats_.bytes_reserved += sizeof(Block) + usable;
  char* begin = reinterpret_cast<char*>(block) + sizeof(Block);
  return Region{begin, begin + usable};
}

void* Arena::Allocate(size_t size, size_t align) {
  if (size == 0) {
    size = 1;
  }
  stats_.bytes_requested += size;
  ++stats_.allocation_count;
  if (trace_ != nullptr) {
    trace_->push_back(static_cast<uint32_t>(size));
  }
  char* aligned = AlignPtr(cursor_, align);
  if (aligned == nullptr || aligned + size > limit_) {
    // Worst case a fresh region loses (align - 1) bytes to alignment.
    size_t needed = AlignUp(size, align) + align;
    if (size >= block_size_ / 4 &&
        cursor_ != nullptr && static_cast<size_t>(limit_ - cursor_) >= kKeepBufferMin) {
      // Large request while the current buffer still has useful room: serve it from a
      // dedicated region and keep carving small objects from the current buffer ("no
      // attempt to re-use freed space" does not mean throwing live buffers away).
      Region region = ObtainRegion(needed);
      char* p = AlignPtr(region.begin, align);
      char* tail = p + size;
      if (static_cast<size_t>(region.end - tail) >= 64) {
        donated_.push_back(Region{tail, region.end});
      }
      return p;
    }
    Region region = ObtainRegion(needed);
    cursor_ = region.begin;
    limit_ = region.end;
    aligned = AlignPtr(cursor_, align);
  }
  cursor_ = aligned + size;
  return aligned;
}

char* Arena::InternString(std::string_view text) {
  char* storage = static_cast<char*>(Allocate(text.size() + 1, 1));
  std::memcpy(storage, text.data(), text.size());
  storage[text.size()] = '\0';
  return storage;
}

std::pair<void*, size_t> Arena::TakeDonation(size_t min_size) {
  size_t best = donated_.size();
  size_t best_size = 0;
  for (size_t i = 0; i < donated_.size(); ++i) {
    size_t size = static_cast<size_t>(donated_[i].end - donated_[i].begin);
    if (size >= min_size && size > best_size) {
      best = i;
      best_size = size;
    }
  }
  if (best == donated_.size()) {
    return {nullptr, 0};
  }
  Region region = donated_[best];
  donated_.erase(donated_.begin() + static_cast<ptrdiff_t>(best));
  ++stats_.donations_taken;
  return {region.begin, best_size};
}

void Arena::Donate(void* region, size_t size) {
  ++stats_.donations;
  if (region == nullptr || size < 64) {
    return;  // too small to be worth tracking
  }
  donated_.push_back(Region{static_cast<char*>(region), static_cast<char*>(region) + size});
}

}  // namespace pathalias
