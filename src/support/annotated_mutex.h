// Lock types the clang thread-safety analysis can see through.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes, so
// code locking through them is invisible to -Wthread-safety: a GUARDED_BY
// member would warn on every access, held lock or not.  These thin wrappers
// re-export exactly the std behavior with the attributes attached — zero
// state beyond the std object, every method a forwarding inline — so
// annotated code costs nothing and the analysis sees every acquire/release.
//
// Usage (see src/exec/thread_pool.h for the worked example):
//   support::Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   support::CondVar cv_;
//   ...
//   support::MutexLock lock(mu_);
//   while (!ready_) cv_.Wait(lock);   // spell waits as explicit loops: the
//   value_ = 1;                       // analysis checks this function's body,
//                                     // not a predicate lambda's
//
// CondVar::Wait releases the mutex while parked and re-holds it before
// returning, like std::condition_variable::wait; the analysis models the lock
// as held across the call, which is exactly what the caller may assume at
// every statement it can observe.

#ifndef SRC_SUPPORT_ANNOTATED_MUTEX_H_
#define SRC_SUPPORT_ANNOTATED_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/support/thread_annotations.h"

namespace pathalias {
namespace support {

class CondVar;

// std::mutex with the "mutex" capability attribute.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;  // MutexLock owns the underlying unique_lock
  std::mutex mu_;
};

// Scoped lock over a Mutex; the one way this repo takes a lock (a bare
// Lock/Unlock pair cannot be condvar-waited on and is easy to unbalance).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() RELEASE() {}  // lock_'s destructor performs the unlock

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;  // Wait needs the unique_lock to park on
  std::unique_lock<std::mutex> lock_;
};

// std::condition_variable over Mutex/MutexLock.  No predicate overloads on
// purpose: the wait loop belongs in the caller, where the analysis can check
// the guarded accesses in the predicate (a lambda body is analyzed as its own
// function and would not inherit the held-locks set).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Caller must hold `lock`; parked threads release it and re-hold on wakeup.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace support
}  // namespace pathalias

#endif  // SRC_SUPPORT_ANNOTATED_MUTEX_H_
