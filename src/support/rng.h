// Deterministic pseudo-random number generation for the synthetic map generator and the
// property-test harnesses.  Every benchmark and test seeds explicitly, so runs are
// byte-for-byte reproducible across machines — a requirement for regenerating the
// paper's tables.
//
// splitmix64 seeds xoshiro256**; both are public-domain constructions.

#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

namespace pathalias {

inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (uint64_t& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform in [0, 1).
  double Double() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  bool Chance(double probability) { return Double() < probability; }

  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Below(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_RNG_H_
