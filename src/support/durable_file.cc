#include "src/support/durable_file.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "src/support/failpoint.h"
#include "src/support/io_retry.h"

namespace pathalias {
namespace support {

namespace {

std::string Describe(std::string_view step, const std::string& path) {
  std::string message;
  message.reserve(step.size() + path.size() + 64);
  message.append(step);
  message.append(" '");
  message.append(path);
  message.append("': ");
  message.append(std::strerror(errno));
  return message;
}

std::string FailpointName(std::string_view prefix, std::string_view step) {
  std::string name;
  name.reserve(prefix.size() + 1 + step.size());
  name.append(prefix);
  name.push_back('.');
  name.append(step);
  return name;
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

#if defined(__unix__) || defined(__APPLE__)

bool PublishFileDurably(const std::string& path, std::string_view bytes,
                        std::string_view failpoint_prefix, std::string* error) {
  const std::string temp_path = path + ".tmp";

  int fd = -1;
  if (failpoint::Inject(FailpointName(failpoint_prefix, "open"))) {
    fd = -1;
  } else {
    fd = RetryEintr([&] { return ::open(temp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644); });
  }
  if (fd < 0) {
    if (error != nullptr) *error = Describe("open", temp_path);
    return false;
  }

  bool wrote = false;
  if (failpoint::Inject(FailpointName(failpoint_prefix, "write"))) {
    // Simulate the real torn state: half the payload lands, then the error.
    int injected = errno;
    (void)WriteFull(fd, bytes.data(), bytes.size() / 2);
    errno = injected;
  } else {
    wrote = WriteFull(fd, bytes.data(), bytes.size()) == static_cast<ssize_t>(bytes.size());
  }
  if (!wrote) {
    if (error != nullptr) *error = Describe("write", temp_path);
    ::close(fd);
    ::unlink(temp_path.c_str());
    return false;
  }

  // fsync BEFORE rename: the rename must not publish a name whose data blocks
  // are still queued — a crash after the rename would then expose a torn file
  // at the published path, which is exactly the state this helper forbids.
  bool synced = !failpoint::Inject(FailpointName(failpoint_prefix, "fsync")) &&
                RetryEintr([&] { return ::fsync(fd); }) == 0;
  if (!synced) {
    if (error != nullptr) *error = Describe("fsync", temp_path);
    ::close(fd);
    ::unlink(temp_path.c_str());
    return false;
  }

  bool closed = !failpoint::Inject(FailpointName(failpoint_prefix, "close")) &&
                RetryEintr([&] { return ::close(fd); }) == 0;
  if (!closed) {
    if (error != nullptr) *error = Describe("close", temp_path);
    ::unlink(temp_path.c_str());
    return false;
  }

  bool renamed = !failpoint::Inject(FailpointName(failpoint_prefix, "rename")) &&
                 std::rename(temp_path.c_str(), path.c_str()) == 0;
  if (!renamed) {
    if (error != nullptr) *error = Describe("rename", temp_path);
    ::unlink(temp_path.c_str());
    return false;
  }

  // Make the directory entry durable.  The content is already committed — a
  // failure here is reported (caller may retry), but the published path is
  // valid either way, so there is nothing to roll back.
  const std::string dir = ParentDir(path);
  int dir_fd = RetryEintr([&] { return ::open(dir.c_str(), O_RDONLY); });
  bool dir_synced = dir_fd >= 0 &&
                    !failpoint::Inject(FailpointName(failpoint_prefix, "dirsync")) &&
                    RetryEintr([&] { return ::fsync(dir_fd); }) == 0;
  if (dir_fd >= 0) ::close(dir_fd);
  if (!dir_synced) {
    if (error != nullptr) *error = Describe("fsync directory", dir);
    return false;
  }
  return true;
}

#else  // !unix: fall back to stdio temp+rename (no durability guarantee).

bool PublishFileDurably(const std::string& path, std::string_view bytes,
                        std::string_view failpoint_prefix, std::string* error) {
  const std::string temp_path = path + ".tmp";
  std::FILE* f = std::fopen(temp_path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = Describe("open", temp_path);
    return false;
  }
  size_t written = bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fclose(f) == 0;
  if (!ok) {
    if (error != nullptr) *error = Describe("write", temp_path);
    std::remove(temp_path.c_str());
    return false;
  }
  // pathalint: allow(R4): non-unix stdio fallback — the chaos/failpoint suite
  // exercises the unix path above; this branch offers no durability to inject
  // failures into and stays failpoint-free by design.
  if (std::rename(temp_path.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = Describe("rename", temp_path);
    std::remove(temp_path.c_str());
    return false;
  }
  (void)failpoint_prefix;
  return true;
}

#endif

}  // namespace support
}  // namespace pathalias
