// The paper's memory allocator (§Memory allocation woes).
//
// pathalias's allocation pattern is extreme: essentially everything (nodes, links,
// interned names, hash tables) is allocated while parsing and nothing is freed until the
// program exits.  The paper found that "a buffered sbrk scheme for allocation, with no
// attempt to re-use freed space, gives superior performance in both time and space" and
// that coalescing allocators "simply waste time (and space)".  For portability to
// segmented architectures the original obtained its buffers from malloc instead of sbrk;
// we obtain them from ::operator new, which preserves the same structure.
//
// The one deliberate exception to "never reuse": discarded hash tables (4–32 KiB each)
// are donated back to the arena and satisfy later block requests (paper: "they are
// placed on a list and made available to our memory allocator for later use").
//
// Objects allocated here must be trivially destructible; the arena releases raw storage
// only.  RAII lives at this boundary: destroying the Arena releases everything at once.

#ifndef SRC_SUPPORT_ARENA_H_
#define SRC_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace pathalias {

class Arena {
 public:
  // The original used a 64 KiB buffer: small segments were the portability constraint.
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `size` bytes aligned to `align` (power of two).  Never fails softly: throws
  // std::bad_alloc on OS exhaustion, like the allocators it wraps.
  void* Allocate(size_t size, size_t align = alignof(std::max_align_t));

  // Placement-constructs a T in arena storage.  T must be trivially destructible
  // because ~Arena frees storage without running destructors.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is released without running destructors");
    void* storage = Allocate(sizeof(T), alignof(T));
    return ::new (storage) T(std::forward<Args>(args)...);
  }

  // Uninitialized array of T.
  template <typename T>
  T* NewArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is released without running destructors");
    return static_cast<T*>(Allocate(sizeof(T) * count, alignof(T)));
  }

  // NUL-terminated copy of `text` in arena storage (host names live here).
  char* InternString(std::string_view text);

  // Makes `size` bytes at `region` (previously handed out by this arena, e.g. a
  // discarded hash table) available to satisfy future requests.  The arena still owns
  // the underlying block; donation only recycles the span.
  void Donate(void* region, size_t size);

  // Removes and returns the largest donated region of at least `min_size` bytes, or
  // {nullptr, 0} if none qualifies.  The mapper uses this when the interner's retired
  // probe table (~1.27v slots) cannot hold the two_label heap (2v+2 slots): retired
  // tables from earlier growths live on the donation list and may be big enough.
  // Donate() the region back when done with it.
  std::pair<void*, size_t> TakeDonation(size_t min_size);

  struct Stats {
    size_t bytes_requested = 0;   // sum of Allocate() sizes
    size_t bytes_reserved = 0;    // total block storage obtained from the OS
    size_t block_count = 0;       // OS blocks, including oversize ones
    size_t oversize_count = 0;    // requests larger than the block size
    size_t donations = 0;         // Donate() calls
    size_t donations_reused = 0;  // donated regions that served later requests
    size_t donations_taken = 0;   // donated regions handed back out via TakeDonation()
    size_t allocation_count = 0;  // Allocate() calls
  };
  const Stats& stats() const { return stats_; }

  // When set, every Allocate() size is appended to *trace — used by the allocator
  // benchmark (E5) to replay pathalias's real allocation pattern through baselines.
  void set_trace(std::vector<uint32_t>* trace) { trace_ = trace; }

 private:
  struct Block {
    Block* next;
    size_t size;  // usable bytes following the header
  };

  struct Region {
    char* begin;
    char* end;
  };

  // Produces a region of at least `size` bytes, from the donation list if possible,
  // otherwise from a fresh OS block.
  Region ObtainRegion(size_t size);

  size_t block_size_;
  char* cursor_ = nullptr;
  char* limit_ = nullptr;
  Block* blocks_ = nullptr;
  std::vector<Region> donated_;
  Stats stats_;
  std::vector<uint32_t>* trace_ = nullptr;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_ARENA_H_
