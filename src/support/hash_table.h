// Host-name hash table (paper §Hash table management).
//
// Open addressing with double hashing.  The integer key k comes from bit-level shifts
// and exclusive-ors over the name.  The primary hash is k mod T (T prime); for the
// secondary the paper rejects the textbook 1+(k mod T-2) — which showed "anomalous
// behavior (that we cannot explain)" — in favor of its inverse T-2-(k mod T-2).  Both
// are provided here as policies so experiment E6 can compare them.
//
// The table cannot know the host count in advance, so it rehashes: when the load factor
// exceeds αH = 0.79 (chosen for a predicted 2 probes per access at full load) a larger
// prime table is allocated and entries reinserted.  Growth policies (experiment E7):
//   * FibonacciGrowth  — the paper's final scheme, sizes follow a Fibonacci sequence of
//     primes, i.e. growth ≈ the golden ratio.
//   * ArithmeticGrowth — the earlier αL = 0.49 low-water scheme over an arithmetic
//     candidate list (equivalent δ = αH/αL ≈ 1.61).
//   * GeometricGrowth  — δ = 2 (the Aho–Hopcroft–Ullman suggestion the paper rejects as
//     wasting space).
//
// Discarded tables are donated back to the arena; the final table's slot array can be
// stolen outright to hold the shortest-path heap (paper: "since the hash table is no
// longer needed and is guaranteed to be large enough, we use that space instead").

#ifndef SRC_SUPPORT_HASH_TABLE_H_
#define SRC_SUPPORT_HASH_TABLE_H_

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <utility>

#include "src/support/arena.h"
#include "src/support/primes.h"

namespace pathalias {

// "we calculate an integer key k using bit-level shifts and exclusive-ors"
inline uint64_t HashHostName(std::string_view name) {
  uint64_t k = 0x5061746841ull;  // arbitrary nonzero seed ("PathA")
  for (unsigned char c : name) {
    k ^= c;
    k ^= k << 13;
    k ^= k >> 7;
    k ^= k << 17;
  }
  return k;
}

// The paper's secondary hash: T-2-(k mod T-2), range [1, T-2].
struct PaperSecondaryHash {
  uint64_t operator()(uint64_t k, uint64_t t) const { return t - 2 - (k % (t - 2)); }
};

// Knuth's oft-suggested secondary hash: 1+(k mod T-2), range [1, T-2].
struct KnuthSecondaryHash {
  uint64_t operator()(uint64_t k, uint64_t t) const { return 1 + (k % (t - 2)); }
};

struct FibonacciGrowth {
  uint64_t Next(uint64_t capacity, uint64_t /*size*/) { return sequence.NextSize(capacity); }
  FibonacciPrimes sequence;
};

struct GeometricGrowth {
  uint64_t Next(uint64_t capacity, uint64_t /*size*/) { return NextPrime(capacity * 2 + 1); }
};

struct ArithmeticGrowth {
  static constexpr double kLowWater = 0.49;
  // Candidate sizes are primes just above multiples of `step`; pick the smallest
  // candidate whose load would sit below the low-water mark.
  uint64_t Next(uint64_t capacity, uint64_t size) {
    uint64_t needed = static_cast<uint64_t>(static_cast<double>(size) / kLowWater) + 1;
    if (needed <= capacity) {
      needed = capacity + 1;
    }
    uint64_t candidate = ((needed + step - 1) / step) * step;
    uint64_t prime = NextPrime(candidate + 1);
    return prime > capacity ? prime : NextPrime(capacity + 2);
  }
  uint64_t step = 512;
};

// Maps interned, NUL-terminated names to values of type V (pathalias stores Node*).
// There is no erase: pathalias never removes a host once declared (private-name scoping
// is layered above via shadow chains, see Graph).
template <typename V, typename Secondary = PaperSecondaryHash, typename Growth = FibonacciGrowth>
class HashTable {
 public:
  static constexpr double kHighWater = 0.79;

  struct Slot {
    const char* key;  // interned; nullptr == empty
    V value;
  };

  struct ProbeStats {
    uint64_t accesses = 0;       // Find/Insert calls
    uint64_t probes = 0;         // slot inspections on behalf of accesses
    uint64_t rehashes = 0;       // table growths
    uint64_t rehash_moves = 0;   // entries reinserted during growth
    uint64_t rehash_probes = 0;  // slot inspections during growth
  };

  explicit HashTable(Arena* arena, uint64_t initial_capacity = 0)
      : arena_(arena), capacity_(0), size_(0) {
    if (initial_capacity > 0) {
      Rehash(NextPrime(initial_capacity < 5 ? 5 : initial_capacity));
      stats_.rehashes = 0;  // initial sizing is not a growth event
    }
  }

  HashTable(const HashTable&) = delete;
  HashTable& operator=(const HashTable&) = delete;

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return capacity_; }
  double load_factor() const {
    return capacity_ == 0 ? 0.0 : static_cast<double>(size_) / static_cast<double>(capacity_);
  }
  const ProbeStats& probe_stats() const { return stats_; }
  void ResetProbeStats() { stats_ = ProbeStats{}; }
  bool stolen() const { return stolen_; }

  // Returns the value for `key`, or nullptr if absent.
  V* Find(std::string_view key) {
    assert(!stolen_);
    ++stats_.accesses;
    if (capacity_ == 0) {
      return nullptr;
    }
    uint64_t index = ProbeFor(key, /*counting=*/true);
    return slots_[index].key != nullptr ? &slots_[index].value : nullptr;
  }

  // Inserts an interned key.  Returns false (and leaves the table unchanged) if the key
  // is already present.  `key` must outlive the table — intern it in the arena first.
  bool Insert(const char* key, V value) {
    assert(!stolen_);
    ++stats_.accesses;
    if (capacity_ == 0 ||
        static_cast<double>(size_ + 1) > kHighWater * static_cast<double>(capacity_)) {
      Rehash(growth_.Next(capacity_ < 5 ? 5 : capacity_, size_ + 1));
    }
    uint64_t index = ProbeFor(key, /*counting=*/true);
    if (slots_[index].key != nullptr) {
      return false;
    }
    slots_[index].key = key;
    slots_[index].value = value;
    ++size_;
    return true;
  }

  // Calls fn(key, value) for every occupied slot, in table order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    assert(!stolen_);
    for (uint64_t i = 0; i < capacity_; ++i) {
      if (slots_[i].key != nullptr) {
        fn(slots_[i].key, slots_[i].value);
      }
    }
  }

  // Relinquishes the slot array (the paper builds the shortest-path heap in it).  The
  // table becomes unusable; storage remains owned by the arena.
  std::pair<void*, size_t> StealSlots() {
    assert(!stolen_);
    stolen_ = true;
    void* storage = slots_;
    size_t bytes = static_cast<size_t>(capacity_) * sizeof(Slot);
    slots_ = nullptr;
    capacity_ = 0;
    size_ = 0;
    return {storage, bytes};
  }

 private:
  // Index of the slot holding `key`, or of the empty slot where it belongs.
  uint64_t ProbeFor(std::string_view key, bool counting) {
    uint64_t k = HashHostName(key);
    uint64_t index = k % capacity_;
    uint64_t stride = secondary_(k, capacity_);
    for (;;) {
      if (counting) {
        ++stats_.probes;
      } else {
        ++stats_.rehash_probes;
      }
      const char* occupant = slots_[index].key;
      if (occupant == nullptr || key == std::string_view(occupant)) {
        return index;
      }
      index += stride;
      if (index >= capacity_) {
        index -= capacity_;
      }
    }
  }

  void Rehash(uint64_t new_capacity) {
    assert(new_capacity > size_ && new_capacity >= 5);
    Slot* old_slots = slots_;
    uint64_t old_capacity = capacity_;
    slots_ = arena_->NewArray<Slot>(new_capacity);
    std::memset(static_cast<void*>(slots_), 0, new_capacity * sizeof(Slot));
    capacity_ = new_capacity;
    ++stats_.rehashes;
    for (uint64_t i = 0; i < old_capacity; ++i) {
      if (old_slots[i].key == nullptr) {
        continue;
      }
      uint64_t index = ProbeFor(old_slots[i].key, /*counting=*/false);
      slots_[index] = old_slots[i];
      ++stats_.rehash_moves;
    }
    if (old_slots != nullptr) {
      // "Rather than freeing the old tables ... they are placed on a list and made
      // available to our memory allocator for later use."
      arena_->Donate(old_slots, old_capacity * sizeof(Slot));
    }
  }

  Arena* arena_;
  Slot* slots_ = nullptr;
  uint64_t capacity_;
  uint64_t size_;
  bool stolen_ = false;
  Secondary secondary_;
  Growth growth_;
  mutable ProbeStats stats_;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_HASH_TABLE_H_
