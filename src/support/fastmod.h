// Exact remainder by a runtime divisor without the hardware divider.
//
// The probe geometry computes two remainders of a 64-bit hash per probe sequence
// (slot index: k mod T; double-hash stride: k mod T-2, see NameInterner::BeginProbe).
// A 64-bit DIV is 20-40 cycles and — decisive for the software-pipelined batch
// resolver — the divider is the one core resource that does not pipeline, so
// remainders from independent in-flight lookups serialize behind each other no
// matter how many are in flight.  Precomputing a 128-bit magic reciprocal per
// divisor turns each remainder into three multiplies (fully pipelined, ~1/cycle
// throughput), which is what lets a window of K probes actually overlap.
//
// Method (Lemire, Kaser & Kurz, "Faster remainders when the divisor is a
// constant", 2019, generalized to 64-bit dividends): with
//     M = floor((2^128 - 1) / d) + 1
// the remainder of any 64-bit n is the high 64 bits of (M * n mod 2^128) * d.
// The identity is exact for every divisor d >= 1 (d = 1 wraps M to 0 and the
// pipeline collapses to the correct n % 1 == 0); d = 0 is undefined, as for %.
// fastmod_test.cc checks the full divisor family the interner uses (the
// FibonacciPrimes capacities and their T-2 companions) plus powers of two and
// random divisors against the hardware remainder.

#ifndef SRC_SUPPORT_FASTMOD_H_
#define SRC_SUPPORT_FASTMOD_H_

#include <cstdint>

namespace pathalias {

class FastMod {
 public:
  FastMod() = default;
  explicit FastMod(uint64_t divisor) { Reset(divisor); }

  void Reset(uint64_t divisor) {
    divisor_ = divisor;
    magic_ = divisor == 0 ? 0 : ~__uint128_t{0} / divisor + 1;
  }

  // n % divisor, exactly.  Precondition: divisor >= 1.
  uint64_t Mod(uint64_t n) const {
    const __uint128_t lowbits = magic_ * n;
    const uint64_t hi = static_cast<uint64_t>(lowbits >> 64);
    const uint64_t lo = static_cast<uint64_t>(lowbits);
    const __uint128_t cross = (static_cast<__uint128_t>(lo) * divisor_) >> 64;
    return static_cast<uint64_t>((static_cast<__uint128_t>(hi) * divisor_ + cross) >> 64);
  }

  uint64_t divisor() const { return divisor_; }

 private:
  uint64_t divisor_ = 0;
  __uint128_t magic_ = 0;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_FASTMOD_H_
