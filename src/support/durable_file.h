// Crash-safe single-file publish: write-temp, fsync, rename, fsync-parent.
//
// The invariant callers buy: after PublishFileDurably returns true, the bytes
// are at `path` and survive a crash/power-cut; if it returns false (or the
// process dies anywhere inside), `path` holds either its previous content or
// the new content in full — never a short or torn file.  The commit point is
// the rename; everything before it targets `path + ".tmp"`, and the temp file
// is fsynced before the rename so the commit can't publish a name whose data
// blocks are still in flight.  The parent directory is fsynced after the
// rename so the new directory entry itself is durable.
//
// Every fallible step is a failpoint site (see src/support/failpoint.h), named
// `<failpoint_prefix>.{open,write,fsync,close,rename,dirsync}`.  The `.write`
// site simulates the nastiest case — a SHORT write (half the bytes land, then
// the error) — so tests prove the published path is immune to exactly the torn
// state a real ENOSPC mid-write leaves in the temp file.

#ifndef SRC_SUPPORT_DURABLE_FILE_H_
#define SRC_SUPPORT_DURABLE_FILE_H_

#include <string>
#include <string_view>

namespace pathalias {
namespace support {

bool PublishFileDurably(const std::string& path, std::string_view bytes,
                        std::string_view failpoint_prefix, std::string* error);

}  // namespace support
}  // namespace pathalias

#endif  // SRC_SUPPORT_DURABLE_FILE_H_
