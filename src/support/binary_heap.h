// Implicit binary heap (paper §Calculating shortest paths).
//
// The priority queue behind the sparse Dijkstra variant.  Two properties are specific
// to pathalias:
//   * decrease-key: when a cheaper candidate path to a queued vertex is found, its cost
//     drops and the heap property is restored by sifting up from the vertex's current
//     position — so each element carries its heap index via an IndexHook (the original
//     stores it in the node structure).
//   * adopted storage: the heap is built inside the retired hash table's slot array
//     ("we use that space instead of allocating a new array").  An owned-storage mode
//     exists for standalone use.
//
// Slot 0 is unused; index 0 therefore doubles as the "not in heap" sentinel, which is
// exactly how the mapper distinguishes unmapped from queued vertices.

#ifndef SRC_SUPPORT_BINARY_HEAP_H_
#define SRC_SUPPORT_BINARY_HEAP_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pathalias {

// IndexHook contract:
//   static void SetIndex(T element, int32_t index);
//   static int32_t GetIndex(T element);
template <typename T, typename Less, typename IndexHook>
class BinaryHeap {
 public:
  // Owned storage.
  explicit BinaryHeap(Less less = Less()) : less_(less), owned_(1), slots_(owned_.data()) {
    capacity_ = owned_.size();
  }

  // Adopted storage: `storage` provides room for `capacity` elements (must be >= the
  // maximum live size + 1, for the unused slot 0).
  BinaryHeap(T* storage, size_t capacity, Less less = Less())
      : less_(less), slots_(storage), capacity_(capacity) {
    assert(capacity >= 2);
  }

  BinaryHeap(const BinaryHeap&) = delete;
  BinaryHeap& operator=(const BinaryHeap&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Push(T element) {
    assert(IndexHook::GetIndex(element) == 0);
    if (size_ + 1 >= capacity_) {
      Grow();
    }
    ++size_;
    slots_[size_] = element;
    IndexHook::SetIndex(element, static_cast<int32_t>(size_));
    SiftUp(size_);
  }

  T PopMin() {
    assert(size_ > 0);
    T minimum = slots_[1];
    IndexHook::SetIndex(minimum, 0);
    T last = slots_[size_];
    --size_;
    if (size_ > 0) {
      slots_[1] = last;
      IndexHook::SetIndex(last, 1);
      SiftDown(1);
    }
    return minimum;
  }

  // Restores the heap property after `element`'s key decreased in place.
  void DecreaseKey(T element) {
    int32_t index = IndexHook::GetIndex(element);
    assert(index > 0 && static_cast<size_t>(index) <= size_);
    assert(slots_[index] == element);
    SiftUp(static_cast<size_t>(index));
  }

  bool Contains(T element) const {
    int32_t index = IndexHook::GetIndex(element);
    return index > 0 && static_cast<size_t>(index) <= size_ && slots_[index] == element;
  }

 private:
  void Grow() {
    assert(!owned_.empty() && "adopted-storage heap exceeded its capacity");
    owned_.resize(owned_.size() * 2 + 8);
    slots_ = owned_.data();
    capacity_ = owned_.size();
  }

  void SiftUp(size_t index) {
    T element = slots_[index];
    while (index > 1) {
      size_t parent = index / 2;
      if (!less_(element, slots_[parent])) {
        break;
      }
      slots_[index] = slots_[parent];
      IndexHook::SetIndex(slots_[index], static_cast<int32_t>(index));
      index = parent;
    }
    slots_[index] = element;
    IndexHook::SetIndex(element, static_cast<int32_t>(index));
  }

  void SiftDown(size_t index) {
    T element = slots_[index];
    for (;;) {
      size_t child = index * 2;
      if (child > size_) {
        break;
      }
      if (child + 1 <= size_ && less_(slots_[child + 1], slots_[child])) {
        ++child;
      }
      if (!less_(slots_[child], element)) {
        break;
      }
      slots_[index] = slots_[child];
      IndexHook::SetIndex(slots_[index], static_cast<int32_t>(index));
      index = child;
    }
    slots_[index] = element;
    IndexHook::SetIndex(element, static_cast<int32_t>(index));
  }

  Less less_;
  std::vector<T> owned_;  // empty when storage is adopted
  T* slots_ = nullptr;
  size_t capacity_ = 0;
  size_t size_ = 0;
};

}  // namespace pathalias

#endif  // SRC_SUPPORT_BINARY_HEAP_H_
