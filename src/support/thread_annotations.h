// Clang thread-safety-analysis annotations, no-ops everywhere else.
//
// These macros attach compile-time locking contracts to types, members, and
// functions: which mutex guards a member, which lock a function requires, what
// a scoped guard acquires.  Under clang with -Wthread-safety (the clang-lint CI
// leg builds with -Wthread-safety -Wthread-safety-beta promoted to errors, see
// docs/INVARIANTS.md#i7) violations — touching a GUARDED_BY member without its
// mutex, returning with a lock held, double-acquire — are build errors in every
// path of every function, including paths no test executes.  Under gcc and
// other compilers every macro expands to nothing.
//
// The vocabulary mirrors the LLVM/Abseil convention
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the names read as
// the ecosystem expects.  Annotate with the repo's own lock types
// (support::Mutex / support::MutexLock in annotated_mutex.h) — std::mutex
// carries no capability attributes in libstdc++, so the analysis cannot see
// through it.
//
// How to annotate a new mutex (the README "Static analysis" section shows a
// worked example):
//   1. declare the lock as support::Mutex, not std::mutex;
//   2. tag every member it protects with GUARDED_BY(mu_);
//   3. lock through support::MutexLock (scoped) or Lock/Unlock (annotated);
//   4. tag helper functions that expect the lock held with REQUIRES(mu_),
//      and public entry points that must NOT hold it with EXCLUDES(mu_).

#ifndef SRC_SUPPORT_THREAD_ANNOTATIONS_H_
#define SRC_SUPPORT_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PATHALIAS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PATHALIAS_THREAD_ANNOTATION_(x)  // no-op: gcc has no thread-safety analysis
#endif

// A type that is a lock ("capability").  The string names the capability kind
// in diagnostics; "mutex" is the conventional value.
#define CAPABILITY(x) PATHALIAS_THREAD_ANNOTATION_(capability(x))

// A RAII type whose constructor acquires a capability and whose destructor
// releases it (support::MutexLock).
#define SCOPED_CAPABILITY PATHALIAS_THREAD_ANNOTATION_(scoped_lockable)

// Data member readable/writable only while holding the named mutex.
#define GUARDED_BY(x) PATHALIAS_THREAD_ANNOTATION_(guarded_by(x))

// Pointer member whose *pointee* is protected by the named mutex (the pointer
// itself may be read freely).
#define PT_GUARDED_BY(x) PATHALIAS_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations, for deadlock diagnosis across multiple mutexes.
#define ACQUIRED_BEFORE(...) PATHALIAS_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) PATHALIAS_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// The function may only be called with the named capabilities already held
// (and does not release them).
#define REQUIRES(...) PATHALIAS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  PATHALIAS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires/releases the named capabilities itself (a Lock or
// Unlock method, or a function that locks internally and returns still holding).
#define ACQUIRE(...) PATHALIAS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  PATHALIAS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) PATHALIAS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  PATHALIAS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function attempts the acquire; the first argument is the return value
// that means success.
#define TRY_ACQUIRE(...) PATHALIAS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// The function must be called WITHOUT the named capabilities held (it acquires
// them internally and releases before returning) — the anti-deadlock contract
// for public entry points.
#define EXCLUDES(...) PATHALIAS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (for code the analysis cannot
// follow, e.g. a lock taken on the other side of a callback boundary).
#define ASSERT_CAPABILITY(x) PATHALIAS_THREAD_ANNOTATION_(assert_capability(x))

// The function returns a reference to the named capability (accessor pattern).
#define RETURN_CAPABILITY(x) PATHALIAS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function.  Every use must say
// why in an adjacent comment; pathalint's fixture corpus keeps the list honest.
#define NO_THREAD_SAFETY_ANALYSIS PATHALIAS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SRC_SUPPORT_THREAD_ANNOTATIONS_H_
