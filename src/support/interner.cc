#include "src/support/interner.h"

#include <cassert>
#include <cstring>

namespace pathalias {

// Case folding lives in the header now (NameInterner::FoldChar) so the batch
// engine's shard hash can normalize identically; member bodies below call it
// unqualified.

NameInterner::NameInterner() : NameInterner(Options{}) {}

NameInterner::NameInterner(Options options)
    : owned_arena_(std::make_unique<Arena>()), arena_(owned_arena_.get()), options_(options) {
  if (options_.initial_capacity > 0) {
    Rehash(NextPrime(options_.initial_capacity < 5 ? 5 : options_.initial_capacity));
    stats_.rehashes = 0;  // initial sizing is not a growth event
  }
}

NameInterner::NameInterner(Arena* arena, Options options) : arena_(arena), options_(options) {
  if (options_.initial_capacity > 0) {
    Rehash(NextPrime(options_.initial_capacity < 5 ? 5 : options_.initial_capacity));
    stats_.rehashes = 0;
  }
}

NameInterner::NameInterner(const FrozenView& view, Options options)
    : options_(options), frozen_(view) {
  RefreshProbeDivisors();
}

NameInterner NameInterner::AdoptFrozen(const FrozenView& view) {
  Options options;
  options.fold_case = view.fold_case;
  return NameInterner(view, options);
}

uint64_t NameInterner::HashName(std::string_view name) const {
  // The paper's bit-level shift/xor key, folded to match the stored normalization.
  uint64_t k = 0x5061746841ull;
  if (options_.fold_case) {
    for (char c : name) {
      k ^= static_cast<unsigned char>(FoldChar(c));
      k ^= k << 13;
      k ^= k >> 7;
      k ^= k << 17;
    }
  } else {
    for (unsigned char c : name) {
      k ^= c;
      k ^= k << 13;
      k ^= k >> 7;
      k ^= k << 17;
    }
  }
  return k;
}

bool NameInterner::EqualName(NameId id, std::string_view name) const {
  std::string_view stored = View(id);
  if (stored.size() != name.size()) {
    return false;
  }
  if (!options_.fold_case) {
    return std::memcmp(stored.data(), name.data(), name.size()) == 0;
  }
  for (size_t i = 0; i < stored.size(); ++i) {
    if (stored[i] != FoldChar(name[i])) {
      return false;
    }
  }
  return true;
}

uint64_t NameInterner::ProbeFor(const Slot* slots, uint64_t capacity, std::string_view name,
                                uint64_t k, Stats* stats) const {
  uint64_t index = k % capacity;
  // The paper's secondary hash: T-2-(k mod T-2), range [1, T-2].
  uint64_t stride = capacity - 2 - (k % (capacity - 2));
  const uint32_t hash32 = static_cast<uint32_t>(k);
  for (;;) {
    if (stats != nullptr) {
      ++stats->probes;
    }
    const Slot& slot = slots[index];
    if (slot.id == kNoName || (slot.hash == hash32 && EqualName(slot.id, name))) {
      return index;
    }
    index += stride;
    if (index >= capacity) {
      index -= capacity;
    }
  }
}

void NameInterner::Rehash(uint64_t new_capacity) {
  assert(new_capacity > entries_.size() && new_capacity >= 5);
  Slot* old_slots = slots_;
  uint64_t old_capacity = capacity_;
  slots_ = arena_->NewArray<Slot>(new_capacity);
  for (uint64_t i = 0; i < new_capacity; ++i) {
    slots_[i] = Slot{kNoName, 0};
  }
  capacity_ = new_capacity;
  RefreshProbeDivisors();
  ++stats_.rehashes;
  // Reinsert by cached hash: id stability means no string is ever re-hashed or
  // re-compared during growth (slots carry their full probe identity).
  for (uint64_t i = 0; i < old_capacity; ++i) {
    if (old_slots[i].id == kNoName) {
      continue;
    }
    uint64_t k = entries_[old_slots[i].id].hash;
    uint64_t index = k % capacity_;
    uint64_t stride = capacity_ - 2 - (k % (capacity_ - 2));
    while (slots_[index].id != kNoName) {
      index += stride;
      if (index >= capacity_) {
        index -= capacity_;
      }
    }
    slots_[index] = old_slots[i];
  }
  if (old_slots != nullptr) {
    // "they are placed on a list and made available to our memory allocator"
    arena_->Donate(old_slots, old_capacity * sizeof(Slot));
  }
}

NameId NameInterner::LinearFind(std::string_view name) const {
  size_t count = size();
  for (size_t id = 0; id < count; ++id) {
    if (EqualName(static_cast<NameId>(id), name)) {
      return static_cast<NameId>(id);
    }
  }
  return kNoName;
}

NameId NameInterner::Find(std::string_view name) const {
  // No stats here: the const lookup path writes nothing, which is what lets any
  // number of reader threads share one table (or one mmap'd image) lock-free.
  if (frozen()) {
    if (frozen_.entry_count == 0 || frozen_.table_capacity < 5) {
      return kNoName;
    }
    uint64_t index =
        ProbeFor(frozen_.slots, frozen_.table_capacity, name, HashName(name), nullptr);
    return frozen_.slots[index].id;
  }
  if (stolen_) {
    return LinearFind(name);
  }
  if (capacity_ == 0) {
    return kNoName;
  }
  uint64_t index = ProbeFor(slots_, capacity_, name, HashName(name), nullptr);
  return slots_[index].id;  // kNoName when the probe stopped at an empty slot
}

NameId NameInterner::FindPrehashed(std::string_view name, uint64_t hash) const {
  // Find(name) with the hash already computed (callers batch HashOf up front).
  // Same degraded modes, same const/no-stats discipline, same outcome.
  if (frozen()) {
    if (frozen_.entry_count == 0 || frozen_.table_capacity < 5) {
      return kNoName;
    }
    uint64_t index = ProbeFor(frozen_.slots, frozen_.table_capacity, name, hash, nullptr);
    return frozen_.slots[index].id;
  }
  if (stolen_) {
    return LinearFind(name);
  }
  if (capacity_ == 0) {
    return kNoName;
  }
  uint64_t index = ProbeFor(slots_, capacity_, name, hash, nullptr);
  return slots_[index].id;
}

NameId NameInterner::Intern(std::string_view name) {
  assert(!frozen() && "Intern on a frozen (read-only) interner");
  if (frozen()) {
    return Find(name);  // release-mode degradation: read-only lookup
  }
  ++stats_.accesses;
  // One hash per intern: HashName folds exactly like the stored copy, so `k` is also
  // the normalized entry's probe hash below.
  uint64_t k = HashName(name);
  if (stolen_) {
    // Degraded mode after the heap stole the table: ids and views still work, new
    // names append without a probe table.  Rare (post-mapping) by construction.
    NameId existing = LinearFind(name);
    if (existing != kNoName) {
      return existing;
    }
  } else {
    if (capacity_ == 0 || static_cast<double>(entries_.size() + 1) >
                              kHighWater * static_cast<double>(capacity_)) {
      Rehash(growth_.NextSize(capacity_ < 5 ? 5 : capacity_));
    }
    uint64_t index = ProbeFor(slots_, capacity_, name, k, &stats_);
    if (slots_[index].id != kNoName) {
      return slots_[index].id;
    }
    slots_[index] = Slot{static_cast<NameId>(entries_.size()), static_cast<uint32_t>(k)};
  }

  // Normalized, NUL-terminated copy in the arena; the interner is the one owner.
  char* chars = static_cast<char*>(arena_->Allocate(name.size() + 1, 1));
  if (options_.fold_case) {
    for (size_t i = 0; i < name.size(); ++i) {
      chars[i] = FoldChar(name[i]);
    }
  } else {
    std::memcpy(chars, name.data(), name.size());
  }
  chars[name.size()] = '\0';
  NameId id = static_cast<NameId>(entries_.size());
  entries_.push_back(Entry{chars, static_cast<uint32_t>(name.size()), kNoName, k});

  if (options_.suffix_chains) {
    // Precompute the domain-suffix chain: ".rutgers.edu" for "caip.rutgers.edu", and
    // so on recursively.  Suffixes are strictly shorter, so this terminates; interning
    // may rehash, so re-index entries_ after the recursive call.
    std::string_view stored{chars, name.size()};
    size_t dot = stored.find('.', 1);
    if (dot != std::string_view::npos) {
      NameId suffix = Intern(stored.substr(dot));
      entries_[id].suffix = suffix;
    }
  }
  return id;
}

std::pair<void*, size_t> NameInterner::StealTable() {
  assert(!frozen() && "StealTable on a frozen (read-only) interner");
  assert(!stolen_);
  if (frozen()) {
    return {nullptr, 0};
  }
  stolen_ = true;
  void* storage = slots_;
  size_t bytes = static_cast<size_t>(capacity_) * sizeof(Slot);
  slots_ = nullptr;
  capacity_ = 0;
  return {storage, bytes};
}

}  // namespace pathalias
