#include "src/support/cdb.h"

#include <cstring>
#include <fstream>

#include "src/support/hash_table.h"
#include "src/support/primes.h"

namespace pathalias {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'c', 'd', 'b', '1', '\0', '\0'};
constexpr uint64_t kHeaderSize = 32;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PatchU64(std::string& out, uint64_t offset, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[offset + static_cast<uint64_t>(i)] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

}  // namespace

void CdbWriter::Put(std::string_view key, std::string_view value) {
  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    records_[it->second].value = std::string(value);
    return;
  }
  index_.emplace(std::string(key), records_.size());
  records_.push_back(Record{std::string(key), std::string(value)});
}

std::string CdbWriter::WriteBuffer() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  uint64_t slot_count = NextPrime(records_.size() * 2 + 5);
  AppendU64(out, slot_count);
  AppendU64(out, records_.size());
  AppendU64(out, 0);  // slots_offset patched below

  std::vector<uint64_t> offsets;
  offsets.reserve(records_.size());
  for (const Record& record : records_) {
    offsets.push_back(out.size());
    AppendU32(out, static_cast<uint32_t>(record.key.size()));
    AppendU32(out, static_cast<uint32_t>(record.value.size()));
    out += record.key;
    out += record.value;
  }

  uint64_t slots_offset = out.size();
  PatchU64(out, 24, slots_offset);
  std::vector<std::pair<uint64_t, uint64_t>> slots(slot_count, {0, 0});
  PaperSecondaryHash secondary;
  for (size_t i = 0; i < records_.size(); ++i) {
    uint64_t k = HashHostName(records_[i].key);
    uint64_t index = k % slot_count;
    uint64_t stride = secondary(k, slot_count);
    while (slots[index].second != 0) {
      index += stride;
      if (index >= slot_count) {
        index -= slot_count;
      }
    }
    slots[index] = {k, offsets[i]};
  }
  for (const auto& [hash, offset] : slots) {
    AppendU64(out, hash);
    AppendU64(out, offset);
  }
  return out;
}

bool CdbWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  std::string buffer = WriteBuffer();
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  return static_cast<bool>(out);
}

uint32_t CdbReader::ReadU32(uint64_t offset) const {
  uint32_t v = 0;
  std::memcpy(&v, buffer_.data() + offset, sizeof(v));
  return v;
}

uint64_t CdbReader::ReadU64(uint64_t offset) const {
  uint64_t v = 0;
  std::memcpy(&v, buffer_.data() + offset, sizeof(v));
  return v;
}

bool CdbReader::Validate() {
  if (buffer_.size() < kHeaderSize || std::memcmp(buffer_.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  slot_count_ = ReadU64(8);
  record_count_ = ReadU64(16);
  slots_offset_ = ReadU64(24);
  if (slot_count_ < 5 || slots_offset_ < kHeaderSize ||
      slots_offset_ + slot_count_ * 16 != buffer_.size()) {
    return false;
  }
  return true;
}

std::optional<CdbReader> CdbReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::string buffer((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return FromBuffer(std::move(buffer));
}

std::optional<CdbReader> CdbReader::FromBuffer(std::string buffer) {
  CdbReader reader(std::move(buffer));
  if (!reader.Validate()) {
    return std::nullopt;
  }
  return reader;
}

std::optional<std::string_view> CdbReader::Get(std::string_view key) const {
  uint64_t k = HashHostName(key);
  uint64_t index = k % slot_count_;
  uint64_t stride = PaperSecondaryHash{}(k, slot_count_);
  for (uint64_t probes = 0; probes < slot_count_; ++probes) {
    uint64_t hash = ReadU64(slots_offset_ + index * 16);
    uint64_t offset = ReadU64(slots_offset_ + index * 16 + 8);
    if (offset == 0) {
      return std::nullopt;
    }
    if (hash == k) {
      uint32_t key_len = ReadU32(offset);
      uint32_t value_len = ReadU32(offset + 4);
      std::string_view stored_key(buffer_.data() + offset + 8, key_len);
      if (stored_key == key) {
        return std::string_view(buffer_.data() + offset + 8 + key_len, value_len);
      }
    }
    index += stride;
    if (index >= slot_count_) {
      index -= slot_count_;
    }
  }
  return std::nullopt;
}

}  // namespace pathalias
