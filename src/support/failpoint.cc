#include "src/support/failpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "src/support/annotated_mutex.h"
#include "src/support/thread_annotations.h"

namespace pathalias {
namespace support {
namespace failpoint {

namespace detail {
std::atomic<uint32_t> g_armed_count{0};
}  // namespace detail

namespace {

enum class Mode : uint8_t { kOff, kOnce, kAlways, kNth, kEvery, kTimes };

struct Entry {
  Mode mode = Mode::kOff;
  uint64_t n = 0;        // parameter for kNth / kEvery / kTimes
  int error_number = EIO;
  bool armed = false;    // counts toward g_armed_count
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  Mutex mu;
  std::unordered_map<std::string, Entry> entries GUARDED_BY(mu);
};

// Leaked on purpose: failpoints may be consulted from static destructors.
Registry& TheRegistry() {
  static Registry* r = new Registry;
  return *r;
}

bool ShouldFire(Entry& e) {
  ++e.hits;
  switch (e.mode) {
    case Mode::kOff:
      return false;
    case Mode::kOnce:
      return e.hits == 1;
    case Mode::kAlways:
      return true;
    case Mode::kNth:
      return e.hits == e.n;
    case Mode::kEvery:
      return e.n != 0 && e.hits % e.n == 0;
    case Mode::kTimes:
      return e.hits <= e.n;
  }
  return false;
}

bool ParseUint(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseErrno(std::string_view text, int* out) {
  static const struct { const char* name; int value; } kNames[] = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"ENOENT", ENOENT},
      {"EACCES", EACCES}, {"EAGAIN", EAGAIN}, {"EINTR", EINTR},
      {"EMFILE", EMFILE}, {"ENOMEM", ENOMEM}, {"EPIPE", EPIPE},
      {"EINVAL", EINVAL}, {"EROFS", EROFS},   {"EDQUOT", EDQUOT},
      {"EFBIG", EFBIG},   {"ENXIO", ENXIO},   {"EBADF", EBADF},
      {"ECONNREFUSED", ECONNREFUSED},         {"EMSGSIZE", EMSGSIZE},
  };
  for (const auto& k : kNames) {
    if (text == k.name) {
      *out = k.value;
      return true;
    }
  }
  uint64_t raw = 0;
  if (ParseUint(text, &raw) && raw > 0 && raw < 4096) {
    *out = static_cast<int>(raw);
    return true;
  }
  return false;
}

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Parses "mode[,errno:E]" into *out (counters untouched).  The schedule
// grammar is documented in failpoint.h.
bool ParseSchedule(std::string_view schedule, Entry* out, std::string* error) {
  Entry e;
  bool saw_mode = false;
  std::string_view rest = schedule;
  while (!rest.empty()) {
    size_t comma = rest.find(',');
    std::string_view part = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    if (part.empty()) continue;

    if (part.substr(0, 6) == "errno:") {
      if (!ParseErrno(part.substr(6), &e.error_number)) {
        SetError(error, "failpoint: unknown errno '" + std::string(part.substr(6)) + "'");
        return false;
      }
      continue;
    }

    size_t colon = part.find(':');
    std::string_view mode_name = part.substr(0, colon);
    std::string_view arg = colon == std::string_view::npos ? std::string_view{} : part.substr(colon + 1);
    uint64_t n = 0;
    if (mode_name == "off" && arg.empty()) {
      e.mode = Mode::kOff;
    } else if (mode_name == "once" && arg.empty()) {
      e.mode = Mode::kOnce;
    } else if (mode_name == "always" && arg.empty()) {
      e.mode = Mode::kAlways;
    } else if (mode_name == "nth" && ParseUint(arg, &n) && n > 0) {
      e.mode = Mode::kNth;
      e.n = n;
    } else if (mode_name == "every" && ParseUint(arg, &n) && n > 0) {
      e.mode = Mode::kEvery;
      e.n = n;
    } else if (mode_name == "times" && ParseUint(arg, &n) && n > 0) {
      e.mode = Mode::kTimes;
      e.n = n;
    } else {
      SetError(error, "failpoint: bad schedule term '" + std::string(part) + "'");
      return false;
    }
    saw_mode = true;
  }
  if (!saw_mode) {
    SetError(error, "failpoint: empty schedule");
    return false;
  }
  *out = e;
  return true;
}

}  // namespace

namespace detail {

bool InjectSlow(std::string_view name) {
  Registry& r = TheRegistry();
  int fire_errno = 0;
  {
    MutexLock lock(r.mu);
    auto it = r.entries.find(std::string(name));
    if (it == r.entries.end() || !it->second.armed) return false;
    Entry& e = it->second;
    if (!ShouldFire(e)) return false;
    ++e.fires;
    fire_errno = e.error_number;
  }
  errno = fire_errno;
  return true;
}

}  // namespace detail

bool Arm(std::string_view name, std::string_view schedule, std::string* error) {
  if (name.empty()) {
    SetError(error, "failpoint: empty name");
    return false;
  }
  Entry parsed;
  if (!ParseSchedule(schedule, &parsed, error)) return false;
  parsed.armed = true;
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  Entry& slot = r.entries[std::string(name)];
  // memory_order: relaxed — g_armed_count is a hint, not a publication: a site
  // that reads a stale zero misses at most the racing Arm, and any site that
  // sees nonzero re-checks under r.mu in InjectSlow.
  if (!slot.armed) detail::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  slot = parsed;
  return true;
}

bool ArmFromSpec(std::string_view spec, std::string* error) {
  std::string_view rest = spec;
  while (!rest.empty()) {
    size_t semi = rest.find(';');
    std::string_view item = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{} : rest.substr(semi + 1);
    // Trim spaces so "a=once; b=always" reads naturally.
    while (!item.empty() && (item.front() == ' ' || item.front() == '\t')) item.remove_prefix(1);
    while (!item.empty() && (item.back() == ' ' || item.back() == '\t')) item.remove_suffix(1);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      SetError(error, "failpoint: expected name=schedule in '" + std::string(item) + "'");
      return false;
    }
    if (!Arm(item.substr(0, eq), item.substr(eq + 1), error)) return false;
  }
  return true;
}

size_t ArmFromEnv() {
  const char* spec = std::getenv("PATHALIAS_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') return 0;
  std::string error;
  if (!ArmFromSpec(spec, &error)) {
    std::fprintf(stderr, "warning: PATHALIAS_FAILPOINTS: %s\n", error.c_str());
  }
  // memory_order: relaxed — a count snapshot for the caller's log line; no
  // other memory depends on its value.
  return detail::g_armed_count.load(std::memory_order_relaxed);
}

void Disarm(std::string_view name) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.entries.find(std::string(name));
  if (it == r.entries.end() || !it->second.armed) return;
  it->second.armed = false;
  // memory_order: relaxed — see Arm: the count is advisory, the registry state
  // it summarizes is published by r.mu.
  detail::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void Reset() {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  uint32_t armed = 0;
  for (const auto& [name, e] : r.entries) {
    if (e.armed) ++armed;
  }
  r.entries.clear();
  // memory_order: relaxed — see Arm: the count is advisory, the registry state
  // it summarizes is published by r.mu.
  detail::g_armed_count.fetch_sub(armed, std::memory_order_relaxed);
}

uint64_t Hits(std::string_view name) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.entries.find(std::string(name));
  return it == r.entries.end() ? 0 : it->second.hits;
}

uint64_t Fires(std::string_view name) {
  Registry& r = TheRegistry();
  MutexLock lock(r.mu);
  auto it = r.entries.find(std::string(name));
  return it == r.entries.end() ? 0 : it->second.fires;
}

}  // namespace failpoint
}  // namespace support
}  // namespace pathalias
