// The .pari frozen route image — on-disk layout.
//
// One relocatable flat-binary file holding a frozen NameInterner and a frozen RouteSet:
// the whole route database a mailer needs, in a form it can open with mmap and read in
// place.  Nothing in the file is a pointer; every reference is an offset from the start
// of the file (sections) or from the start of a byte pool (names, route strings), so
// the image is valid at whatever address the kernel maps it.
//
//   ┌────────────────────┐ 0
//   │ ImageHeader        │ magic "PARI", version, endian marker, checksum, counts,
//   │ (128 bytes)        │ section offsets/sizes
//   ├────────────────────┤ names_offset            (8-aligned)
//   │ FrozenEntry[n]     │ per-name: probe hash, byte-pool offset, length, suffix id
//   ├────────────────────┤ slots_offset
//   │ FrozenSlot[T]      │ the interner's open-addressing probe table (prime T)
//   ├────────────────────┤ routes_offset
//   │ FrozenRoute[r]     │ per-route: key NameId, route-pool offset/length, cost
//   ├────────────────────┤ by_name_offset
//   │ uint32_t[n]        │ NameId -> route index + 1 (0 = this name has no route)
//   ├────────────────────┤ name_bytes_offset
//   │ char[...]          │ NUL-terminated, case-normalized name bytes
//   ├────────────────────┤ route_bytes_offset
//   │ char[...]          │ NUL-terminated route format strings ("duke!phs!%s")
//   └────────────────────┘ file_size
//
// The interner sections reuse NameInterner::FrozenEntry/FrozenSlot verbatim (the live
// probe table already stores slots in frozen layout), so adoption is pointer assignment:
// ImageView validates the buffer, FrozenRouteSet points a read-only interner at it, and
// every Find/Suffix/View runs against the mapping — no re-interning, no copies.
//
// Integrity: the header carries an endian marker (an image written on a little-endian
// host reads back swapped on a big-endian one and is rejected), a structural validation
// pass (section bounds, id ranges, pool termination — O(n) integer checks), and an
// FNV-1a checksum over the payload for callers that want corruption detection before
// trusting the bytes.

#ifndef SRC_IMAGE_IMAGE_FORMAT_H_
#define SRC_IMAGE_IMAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/graph/cost.h"
#include "src/support/interner.h"

namespace pathalias {
namespace image {

inline constexpr uint32_t kMagic = 0x49524150;         // "PARI" when read as LE bytes
inline constexpr uint32_t kVersion = 1;
inline constexpr uint32_t kEndianMarker = 0x01020304;  // reads 0x04030201 when foreign

// Header flags (mirror the interner options the image was frozen with).
inline constexpr uint32_t kFlagFoldCase = 1u << 0;
inline constexpr uint32_t kFlagSuffixChains = 1u << 1;

struct ImageHeader {
  uint32_t magic;
  uint32_t version;
  uint32_t endian;
  uint32_t flags;
  uint64_t file_size;  // total image size in bytes, header included
  uint64_t checksum;   // FNV-1a 64 over the whole image with this field held at zero

  uint32_t name_count;   // interned names (routes + domain-suffix chains)
  uint32_t route_count;
  uint64_t table_capacity;  // probe-table slots; prime, >= 5 (0 only when name_count==0)

  uint64_t names_offset;        // NameInterner::FrozenEntry[name_count]
  uint64_t slots_offset;        // NameInterner::FrozenSlot[table_capacity]
  uint64_t routes_offset;       // FrozenRoute[route_count]
  uint64_t by_name_offset;      // uint32_t[name_count]
  uint64_t name_bytes_offset;   // char[name_bytes_size]
  uint64_t name_bytes_size;
  uint64_t route_bytes_offset;  // char[route_bytes_size]
  uint64_t route_bytes_size;

  // Publish generation: incremented on every refreeze and mirrored into the
  // image's .state manifest, so a consumer can tell whether an image and a
  // state dir were published together.  Images written before this field read
  // back as generation 0 (the bytes were reserved and zeroed), which every
  // consumer treats as "unstamped — trust the bytes, not the pairing".
  uint64_t generation;

  uint8_t reserved[8];  // pads the header to 128 bytes; zeroed
};
static_assert(sizeof(ImageHeader) == 128);

// One route record in frozen layout (the Route struct with the owned string replaced
// by an offset into the route-byte pool).
struct FrozenRoute {
  uint32_t name;          // NameId of the key (host or ".domain")
  uint32_t route_offset;  // into the route-byte pool; NUL-terminated there
  uint32_t route_length;
  uint32_t reserved;
  int64_t cost;           // Cost; -1 when the source had no cost column
};
static_assert(sizeof(FrozenRoute) == 24);

// FNV-1a, 64-bit: small, dependency-free, and fast enough that verifying a full image
// is still far cheaper than re-parsing the text it replaced.
inline uint64_t Fnv1a(std::string_view bytes, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t hash = seed;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x00000100000001b3ull;
  }
  return hash;
}

inline constexpr size_t AlignUp8(size_t value) { return (value + 7) & ~size_t{7}; }

}  // namespace image
}  // namespace pathalias

#endif  // SRC_IMAGE_IMAGE_FORMAT_H_
