#include "src/image/frozen_route_set.h"

namespace pathalias {

std::optional<FrozenImage> FrozenImage::Open(const std::string& path,
                                             image::ImageView::Verify verify,
                                             std::string* error, bool readahead) {
  std::optional<image::MappedFile> file = image::MappedFile::Open(path, readahead);
  if (!file) {
    if (error != nullptr) {
      *error = "cannot open or read " + path;
    }
    return std::nullopt;
  }
  std::optional<image::ImageView> view = image::ImageView::Adopt(file->bytes(), verify, error);
  if (!view) {
    return std::nullopt;
  }
  return FrozenImage(std::move(*file), *view);
}

}  // namespace pathalias
