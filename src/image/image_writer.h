// ImageWriter: freeze a live NameInterner + RouteSet into a .pari image.
//
// Freezing walks the route set once, lays every name and route string into offset-based
// pools, rebuilds the probe table from the hashes the interner recorded at intern time
// (so freezing works even after the mapper stole the live table), and stamps the header
// with the checksum.  The output is position-independent: mmap it anywhere and hand it
// to ImageView / FrozenRouteSet.

#ifndef SRC_IMAGE_IMAGE_WRITER_H_
#define SRC_IMAGE_IMAGE_WRITER_H_

#include <string>

#include "src/route_db/route_db.h"

namespace pathalias {
namespace image {

class ImageWriter {
 public:
  // Serializes `routes` (and the interner that owns its keys) into a .pari buffer,
  // stamped with `generation` (see ImageHeader::generation; 0 = unstamped).
  static std::string Freeze(const RouteSet& routes, uint64_t generation = 0);

  // Freeze() straight to a file, crash-safely: temp + fsync + rename + parent-dir
  // fsync (support::PublishFileDurably), so `path` is never observable short or
  // torn.  Returns false on I/O failure with *error describing the failed step.
  static bool WriteFile(const RouteSet& routes, const std::string& path,
                        uint64_t generation = 0, std::string* error = nullptr);

  // Rewrites an existing image in place from a patched RouteSet.  Same durable
  // temp+rename commit as WriteFile: a reader that opened (and mmap'd) the old
  // image keeps its intact mapping while new opens see the fresh routes — the
  // update step of the incremental pipeline.  A crash at any point leaves the
  // old image intact or the new one complete, never a torn file at `path`.
  static bool Refreeze(const RouteSet& routes, const std::string& path,
                       uint64_t generation = 0, std::string* error = nullptr);
};

}  // namespace image
}  // namespace pathalias

#endif  // SRC_IMAGE_IMAGE_WRITER_H_
