// ImageWriter: freeze a live NameInterner + RouteSet into a .pari image.
//
// Freezing walks the route set once, lays every name and route string into offset-based
// pools, rebuilds the probe table from the hashes the interner recorded at intern time
// (so freezing works even after the mapper stole the live table), and stamps the header
// with the checksum.  The output is position-independent: mmap it anywhere and hand it
// to ImageView / FrozenRouteSet.

#ifndef SRC_IMAGE_IMAGE_WRITER_H_
#define SRC_IMAGE_IMAGE_WRITER_H_

#include <string>

#include "src/route_db/route_db.h"

namespace pathalias {
namespace image {

class ImageWriter {
 public:
  // Serializes `routes` (and the interner that owns its keys) into a .pari buffer.
  static std::string Freeze(const RouteSet& routes);

  // Freeze() straight to a file.  Returns false on I/O failure.
  static bool WriteFile(const RouteSet& routes, const std::string& path);

  // Rewrites an existing image in place from a patched RouteSet: freeze to a
  // temporary sibling, then rename over `path`, so a reader that opened (and
  // mmap'd) the old image keeps its intact mapping while new opens see the fresh
  // routes — the update step of the incremental pipeline.
  static bool Refreeze(const RouteSet& routes, const std::string& path);
};

}  // namespace image
}  // namespace pathalias

#endif  // SRC_IMAGE_IMAGE_WRITER_H_
