// FrozenRouteSet: the image-backed route database.
//
// The consumer-facing half of the frozen image subsystem: a RouteSet-shaped object
// whose names, probe table, and routes all live in a validated .pari buffer.  It
// satisfies the Resolver's RouteSource contract (names() + FindRouteView()), so
// BasicResolver<FrozenRouteSet> — and therefore ResolveBatch — runs directly against
// the mapping: open + mmap + resolve, no re-parsing, no re-interning, no allocation.
//
// FrozenImage bundles the pieces for the common case: open a file, validate it, own
// the mapping, expose the FrozenRouteSet.

#ifndef SRC_IMAGE_FROZEN_ROUTE_SET_H_
#define SRC_IMAGE_FROZEN_ROUTE_SET_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/image/image_view.h"
#include "src/image/mapped_file.h"
#include "src/route_db/route_db.h"
#include "src/support/interner.h"

namespace pathalias {

class FrozenRouteSet {
 public:
  // Adopts a validated view.  The buffer behind `view` must outlive this object.
  explicit FrozenRouteSet(const image::ImageView& view)
      : names_(NameInterner::AdoptFrozen(view.interner_view())),
        routes_(view.routes()),
        by_name_(view.by_name()),
        route_bytes_(view.route_bytes()),
        name_count_(view.name_count()),
        route_count_(view.route_count()) {}

  // The RouteSource contract (same shape as RouteSet's).
  const NameInterner& names() const { return names_; }
  RouteView FindRouteView(NameId id) const {
    if (id >= name_count_ || by_name_[id] == 0) {
      return RouteView{};
    }
    const image::FrozenRoute& route = routes_[by_name_[id] - 1];
    return RouteView{route.name,
                     std::string_view(route_bytes_ + route.route_offset, route.route_length),
                     route.cost};
  }
  RouteView FindRouteView(std::string_view name) const {
    NameId id = names_.Find(name);
    return id == kNoName ? RouteView{} : FindRouteView(id);
  }

  // The pipelined resolver's FindRouteView split (same shape as RouteSet's): the
  // by-name index slot, then — once HasRoute says yes — the frozen route record,
  // each prefetched one pipeline round before it is read.
  bool HasRoute(NameId id) const { return id < name_count_ && by_name_[id] != 0; }
  void PrefetchFind(NameId id) const {
    if (id < name_count_) {
      __builtin_prefetch(by_name_ + id);
    }
  }
  void PrefetchRoute(NameId id) const {
    if (id < name_count_ && by_name_[id] != 0) {
      __builtin_prefetch(routes_ + (by_name_[id] - 1));
    }
  }

  // Route `index` in frozen order (the live set's insertion order), for iteration.
  RouteView RouteAt(uint32_t index) const {
    const image::FrozenRoute& route = routes_[index];
    return RouteView{route.name,
                     std::string_view(route_bytes_ + route.route_offset, route.route_length),
                     route.cost};
  }
  std::string_view NameOf(const RouteView& route) const { return names_.View(route.name); }

  size_t size() const { return route_count_; }
  bool empty() const { return route_count_ == 0; }

 private:
  NameInterner names_;  // frozen (read-only) mode: points into the image buffer
  const image::FrozenRoute* routes_;
  const uint32_t* by_name_;
  const char* route_bytes_;
  uint32_t name_count_;
  uint32_t route_count_;
};

// Owns an open .pari file end to end: the mapping, the validated view, the route set.
// Movable; the mapping's address (and thus every pointer in routes()) survives moves.
class FrozenImage {
 public:
  // `readahead` forwards to MappedFile::Open — ask for it when the image is about
  // to serve a bulk batch (routedb's --image paths do), skip it for one-off gets.
  static std::optional<FrozenImage> Open(
      const std::string& path,
      image::ImageView::Verify verify = image::ImageView::Verify::kStructure,
      std::string* error = nullptr, bool readahead = false);

  const FrozenRouteSet& routes() const { return set_; }
  const image::ImageView& view() const { return view_; }
  bool memory_mapped() const { return file_.memory_mapped(); }

 private:
  FrozenImage(image::MappedFile file, const image::ImageView& view)
      : file_(std::move(file)), view_(view), set_(view_) {}

  image::MappedFile file_;
  image::ImageView view_;
  FrozenRouteSet set_;
};

}  // namespace pathalias

#endif  // SRC_IMAGE_FROZEN_ROUTE_SET_H_
