// MappedFile: a read-only file mapping with a heap-buffer fallback.
//
// The zero-startup open path: mmap the .pari file and read it in place, paying page
// faults only for the bytes a query actually touches.  Where mmap is unavailable (or
// fails — network filesystems, zero-length files), the file is read into an owned
// buffer instead; callers see the same string_view either way.

#ifndef SRC_IMAGE_MAPPED_FILE_H_
#define SRC_IMAGE_MAPPED_FILE_H_

#include <optional>
#include <string>
#include <string_view>

namespace pathalias {
namespace image {

class MappedFile {
 public:
  // With `readahead` the mapping is announced to the kernel as about-to-be-needed
  // (madvise(MADV_WILLNEED)) so page-ins overlap the caller's first probes instead
  // of serializing behind them — the right call for a batch run that will touch
  // most of the image, the wrong one for a single lookup (first slice of the
  // ROADMAP "image generation v2" item).  Advisory: failure is ignored, and the
  // heap-buffer fallback reads everything eagerly anyway.
  static std::optional<MappedFile> Open(const std::string& path, bool readahead = false);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  // Stable for the life of the MappedFile, including across moves (the mapping's
  // address does not change when the owning object does).
  std::string_view bytes() const {
    return mapped_ != nullptr ? std::string_view(mapped_, size_) : std::string_view(buffer_);
  }
  bool memory_mapped() const { return mapped_ != nullptr; }

 private:
  MappedFile() = default;

  char* mapped_ = nullptr;  // mmap'd region, or nullptr when using the fallback buffer
  size_t size_ = 0;
  std::string buffer_;  // fallback when mmap is unavailable
};

}  // namespace image
}  // namespace pathalias

#endif  // SRC_IMAGE_MAPPED_FILE_H_
