// ImageView: validate a frozen route image and adopt it in place.
//
// An ImageView is a non-owning, typed window over a .pari buffer (usually an mmap'd
// file, sometimes an in-memory string).  Adopt() checks the buffer before any section
// pointer is handed out; after it succeeds, every accessor is a pointer into the
// caller's buffer — zero copies, zero allocations, no fixups.

#ifndef SRC_IMAGE_IMAGE_VIEW_H_
#define SRC_IMAGE_IMAGE_VIEW_H_

#include <optional>
#include <string>
#include <string_view>

#include "src/image/image_format.h"
#include "src/support/interner.h"

namespace pathalias {
namespace image {

class ImageView {
 public:
  enum class Verify {
    // Structural checks only: header identity (magic/version/endianness), section
    // bounds and alignment, id ranges, pool termination.  O(records) integer work;
    // never touches the byte pools beyond their last byte — this is the zero-startup
    // open path.
    kStructure,
    // Structure plus the FNV-1a payload checksum: detects bit rot anywhere in the
    // image at the cost of one streaming read.
    kChecksum,
  };

  // Validates `buffer` and returns a view into it, or nullopt with a human-readable
  // reason in *error.  The buffer must outlive the view (and anything adopted from it).
  static std::optional<ImageView> Adopt(std::string_view buffer, Verify verify,
                                        std::string* error);

  const ImageHeader& header() const { return *header_; }
  uint32_t name_count() const { return header_->name_count; }
  uint32_t route_count() const { return header_->route_count; }

  // The interner sections, packaged for NameInterner::AdoptFrozen.
  NameInterner::FrozenView interner_view() const;

  const FrozenRoute* routes() const { return routes_; }
  const uint32_t* by_name() const { return by_name_; }
  const char* route_bytes() const { return route_bytes_; }

 private:
  ImageView() = default;

  const ImageHeader* header_ = nullptr;
  const NameInterner::FrozenEntry* names_ = nullptr;
  const NameInterner::FrozenSlot* slots_ = nullptr;
  const FrozenRoute* routes_ = nullptr;
  const uint32_t* by_name_ = nullptr;
  const char* name_bytes_ = nullptr;
  const char* route_bytes_ = nullptr;
};

}  // namespace image
}  // namespace pathalias

#endif  // SRC_IMAGE_IMAGE_VIEW_H_
