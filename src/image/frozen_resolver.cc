// Instantiates the resolver for the image-backed FrozenRouteSet.  Lives on the image
// side of the boundary: route_db forward-declares FrozenRouteSet (resolver.h) but
// never includes this subsystem.

#include "src/image/frozen_route_set.h"
#include "src/route_db/resolver_impl.h"

namespace pathalias {

template class BasicResolver<FrozenRouteSet>;

}  // namespace pathalias
