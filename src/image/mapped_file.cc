#include "src/image/mapped_file.h"

#include <cstdio>
#include <utility>

#include "src/support/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#define PATHALIAS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pathalias {
namespace image {
namespace {

bool ReadWholeFile(const std::string& path, std::string* out) {
  if (support::failpoint::Inject("image.read")) {
    return false;
  }
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    return false;
  }
  char chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    out->append(chunk, n);
  }
  bool ok = std::ferror(in) == 0;
  std::fclose(in);
  return ok;
}

}  // namespace

std::optional<MappedFile> MappedFile::Open(const std::string& path, bool readahead) {
  MappedFile file;
  if (support::failpoint::Inject("image.open")) {
    return std::nullopt;
  }
#ifdef PATHALIAS_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st;
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      // An armed "image.mmap" exercises the degraded path below: mmap failure
      // falls back to reading the whole file, never to a failed open.
      void* mapped = support::failpoint::Inject("image.mmap")
                         ? MAP_FAILED
                         : ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                                  MAP_PRIVATE, fd, 0);
      if (mapped != MAP_FAILED) {
        file.mapped_ = static_cast<char*>(mapped);
        file.size_ = static_cast<size_t>(st.st_size);
        if (readahead) {
          // Advisory only: an unsupported advice value must not fail the open.
          (void)::madvise(file.mapped_, file.size_, MADV_WILLNEED);
        }
      }
    }
    ::close(fd);
    if (file.mapped_ != nullptr) {
      return file;
    }
  }
#else
  (void)readahead;  // the eager-read fallback is its own readahead
#endif
  if (!ReadWholeFile(path, &file.buffer_)) {
    return std::nullopt;
  }
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#ifdef PATHALIAS_HAVE_MMAP
    if (mapped_ != nullptr) {
      ::munmap(mapped_, size_);
    }
#endif
    mapped_ = std::exchange(other.mapped_, nullptr);
    size_ = std::exchange(other.size_, 0);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

MappedFile::~MappedFile() {
#ifdef PATHALIAS_HAVE_MMAP
  if (mapped_ != nullptr) {
    ::munmap(mapped_, size_);
  }
#endif
}

}  // namespace image
}  // namespace pathalias
