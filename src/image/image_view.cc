#include "src/image/image_view.h"

#include <cstring>

namespace pathalias {
namespace image {
namespace {

bool Fail(std::string* error, const char* reason) {
  if (error != nullptr) {
    *error = reason;
  }
  return false;
}

// A section of `count` records of `record_size` bytes at `offset`: inside the file,
// 8-aligned, and free of overflow in the count * size product.
bool SectionOk(const ImageHeader& header, uint64_t offset, uint64_t count,
               uint64_t record_size) {
  if (offset % 8 != 0 || offset < sizeof(ImageHeader) || offset > header.file_size) {
    return false;
  }
  if (record_size != 0 && count > (header.file_size - offset) / record_size) {
    return false;
  }
  return true;
}

}  // namespace

std::optional<ImageView> ImageView::Adopt(std::string_view buffer, Verify verify,
                                          std::string* error) {
  if (buffer.size() < sizeof(ImageHeader)) {
    Fail(error, "image smaller than its header");
    return std::nullopt;
  }
  if (reinterpret_cast<uintptr_t>(buffer.data()) % 8 != 0) {
    // mmap and heap buffers are always 8-aligned; a misaligned buffer means the caller
    // sliced into the middle of something.
    Fail(error, "image buffer is not 8-byte aligned");
    return std::nullopt;
  }
  ImageHeader header;  // copy: the buffer is not guaranteed aligned for uint64_t reads
  std::memcpy(&header, buffer.data(), sizeof(header));

  if (header.magic != kMagic) {
    Fail(error, "bad magic (not a .pari image)");
    return std::nullopt;
  }
  if (header.endian != kEndianMarker) {
    Fail(error, "endianness mismatch (image written on a foreign-endian host)");
    return std::nullopt;
  }
  if (header.version != kVersion) {
    Fail(error, "unsupported image version");
    return std::nullopt;
  }
  if (header.file_size != buffer.size()) {
    Fail(error, "file size mismatch (truncated or padded image)");
    return std::nullopt;
  }
  if ((header.flags & ~(kFlagFoldCase | kFlagSuffixChains)) != 0) {
    Fail(error, "unknown header flags");
    return std::nullopt;
  }

  const uint32_t n = header.name_count;
  const uint32_t r = header.route_count;
  if (!SectionOk(header, header.names_offset, n, sizeof(NameInterner::FrozenEntry)) ||
      !SectionOk(header, header.slots_offset, header.table_capacity,
                 sizeof(NameInterner::FrozenSlot)) ||
      !SectionOk(header, header.routes_offset, r, sizeof(FrozenRoute)) ||
      !SectionOk(header, header.by_name_offset, n, sizeof(uint32_t)) ||
      !SectionOk(header, header.name_bytes_offset, header.name_bytes_size, 1) ||
      !SectionOk(header, header.route_bytes_offset, header.route_bytes_size, 1)) {
    Fail(error, "section out of bounds");
    return std::nullopt;
  }
  if (n > 0 && (header.table_capacity < 5 || header.table_capacity <= n)) {
    // Strictly larger than n: the double-hash probe loop terminates only if the table
    // is guaranteed an empty slot.
    Fail(error, "probe table too small for the name set");
    return std::nullopt;
  }
  if (r > n) {
    Fail(error, "more routes than names");
    return std::nullopt;
  }

  ImageView view;
  view.header_ = reinterpret_cast<const ImageHeader*>(buffer.data());
  const char* base = buffer.data();
  view.names_ =
      reinterpret_cast<const NameInterner::FrozenEntry*>(base + header.names_offset);
  view.slots_ =
      reinterpret_cast<const NameInterner::FrozenSlot*>(base + header.slots_offset);
  view.routes_ = reinterpret_cast<const FrozenRoute*>(base + header.routes_offset);
  view.by_name_ = reinterpret_cast<const uint32_t*>(base + header.by_name_offset);
  view.name_bytes_ = base + header.name_bytes_offset;
  view.route_bytes_ = base + header.route_bytes_offset;

  // Record-level invariants: every offset/length/id a reader will chase stays inside
  // its pool, and every string is NUL-terminated where the reader expects it to be.
  for (uint32_t id = 0; id < n; ++id) {
    const NameInterner::FrozenEntry& entry = view.names_[id];
    if (entry.length >= header.name_bytes_size ||
        entry.bytes_offset > header.name_bytes_size - entry.length - 1) {
      Fail(error, "name entry points outside the name pool");
      return std::nullopt;
    }
    if (view.name_bytes_[entry.bytes_offset + entry.length] != '\0') {
      Fail(error, "name entry is not NUL-terminated");
      return std::nullopt;
    }
    if (entry.suffix != kNoName && entry.suffix >= n) {
      Fail(error, "name entry has an out-of-range suffix id");
      return std::nullopt;
    }
    if (view.by_name_[id] > r) {
      Fail(error, "by-name index points past the route section");
      return std::nullopt;
    }
  }
  uint64_t occupied_slots = 0;
  for (uint64_t i = 0; i < header.table_capacity; ++i) {
    if (view.slots_[i].id != kNoName) {
      if (view.slots_[i].id >= n) {
        Fail(error, "probe slot holds an out-of-range name id");
        return std::nullopt;
      }
      ++occupied_slots;
    }
  }
  if (occupied_slots != n) {
    // Exactly one slot per name; anything else means a tampered table — and a table
    // with no empty slots would make the probe loop non-terminating.
    Fail(error, "probe table occupancy does not match the name count");
    return std::nullopt;
  }
  for (uint32_t i = 0; i < r; ++i) {
    const FrozenRoute& route = view.routes_[i];
    if (route.name >= n) {
      Fail(error, "route keyed by an out-of-range name id");
      return std::nullopt;
    }
    if (route.route_length >= header.route_bytes_size ||
        route.route_offset > header.route_bytes_size - route.route_length - 1) {
      Fail(error, "route points outside the route pool");
      return std::nullopt;
    }
    if (view.route_bytes_[route.route_offset + route.route_length] != '\0') {
      Fail(error, "route string is not NUL-terminated");
      return std::nullopt;
    }
  }

  if (verify == Verify::kChecksum) {
    // The stored checksum was computed with its own field zeroed; reproduce that.
    ImageHeader zeroed = header;
    zeroed.checksum = 0;
    uint64_t actual = Fnv1a(
        std::string_view(reinterpret_cast<const char*>(&zeroed), sizeof(zeroed)));
    actual = Fnv1a(buffer.substr(sizeof(ImageHeader)), actual);
    if (actual != header.checksum) {
      Fail(error, "checksum mismatch (corrupted image)");
      return std::nullopt;
    }
  }
  return view;
}

NameInterner::FrozenView ImageView::interner_view() const {
  NameInterner::FrozenView view;
  view.name_bytes = name_bytes_;
  view.name_bytes_size = header_->name_bytes_size;
  view.entries = names_;
  view.entry_count = header_->name_count;
  view.slots = slots_;
  view.table_capacity = header_->table_capacity;
  view.fold_case = (header_->flags & kFlagFoldCase) != 0;
  return view;
}

}  // namespace image
}  // namespace pathalias
