#include "src/image/image_writer.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/image/image_format.h"
#include "src/support/durable_file.h"
#include "src/support/primes.h"

namespace pathalias {
namespace image {
namespace {

void AppendPadding(std::string& out, size_t alignment_target) {
  while (out.size() < alignment_target) {
    out.push_back('\0');
  }
}

template <typename T>
void AppendRecords(std::string& out, const std::vector<T>& records) {
  if (!records.empty()) {
    out.append(reinterpret_cast<const char*>(records.data()), records.size() * sizeof(T));
  }
}

}  // namespace

std::string ImageWriter::Freeze(const RouteSet& routes, uint64_t generation) {
  const NameInterner& names = routes.names();
  const uint32_t name_count = static_cast<uint32_t>(names.size());
  const uint32_t route_count = static_cast<uint32_t>(routes.size());

  // Name pool + entries, in id order (ids are the on-disk keys; order is identity).
  std::string name_bytes;
  std::vector<NameInterner::FrozenEntry> entries;
  entries.reserve(name_count);
  for (uint32_t id = 0; id < name_count; ++id) {
    std::string_view name = names.View(id);
    NameInterner::FrozenEntry entry;
    entry.hash = names.HashOf(id);
    entry.bytes_offset = static_cast<uint32_t>(name_bytes.size());
    entry.length = static_cast<uint32_t>(name.size());
    entry.suffix = names.Suffix(id);
    entry.reserved = 0;
    entries.push_back(entry);
    name_bytes.append(name);
    name_bytes.push_back('\0');
  }
  assert(name_bytes.size() <= UINT32_MAX && "name pool exceeds the u32 offset space");

  // Probe table, rebuilt from the recorded hashes with the interner's own insertion
  // scheme (double hashing, stride T-2-(k mod T-2)).  Rebuilding rather than copying
  // keeps freezing independent of the live table's fate (StealTable) and packs the
  // frozen table at its own high-water mark regardless of growth history.
  uint64_t capacity = NextPrime(
      static_cast<uint64_t>(static_cast<double>(name_count) / NameInterner::kHighWater) + 2);
  if (capacity < 5) {
    capacity = 5;
  }
  std::vector<NameInterner::FrozenSlot> slots(capacity,
                                              NameInterner::FrozenSlot{kNoName, 0});
  for (uint32_t id = 0; id < name_count; ++id) {
    uint64_t k = entries[id].hash;
    uint64_t index = k % capacity;
    uint64_t stride = capacity - 2 - (k % (capacity - 2));
    while (slots[index].id != kNoName) {
      index += stride;
      if (index >= capacity) {
        index -= capacity;
      }
    }
    slots[index] = NameInterner::FrozenSlot{id, static_cast<uint32_t>(k)};
  }

  // Route records + pool, and the NameId -> route index.
  std::string route_bytes;
  std::vector<FrozenRoute> frozen_routes;
  frozen_routes.reserve(route_count);
  std::vector<uint32_t> by_name(name_count, 0);
  for (const Route& route : routes.routes()) {
    FrozenRoute record;
    record.name = route.name;
    record.route_offset = static_cast<uint32_t>(route_bytes.size());
    record.route_length = static_cast<uint32_t>(route.route.size());
    record.reserved = 0;
    record.cost = route.cost;
    by_name[route.name] = static_cast<uint32_t>(frozen_routes.size()) + 1;
    frozen_routes.push_back(record);
    route_bytes.append(route.route);
    route_bytes.push_back('\0');
  }
  assert(route_bytes.size() <= UINT32_MAX && "route pool exceeds the u32 offset space");

  // Lay out sections: fixed-width records first (all 8-aligned), byte pools last.
  ImageHeader header;
  std::memset(&header, 0, sizeof(header));
  header.magic = kMagic;
  header.version = kVersion;
  header.endian = kEndianMarker;
  header.flags = names.fold_case() ? kFlagFoldCase : 0;
  header.flags |= kFlagSuffixChains;  // Intern always records chains for dotted names
  header.name_count = name_count;
  header.route_count = route_count;
  header.table_capacity = capacity;
  header.generation = generation;

  size_t offset = sizeof(ImageHeader);
  header.names_offset = offset;
  offset = AlignUp8(offset + entries.size() * sizeof(NameInterner::FrozenEntry));
  header.slots_offset = offset;
  offset = AlignUp8(offset + slots.size() * sizeof(NameInterner::FrozenSlot));
  header.routes_offset = offset;
  offset = AlignUp8(offset + frozen_routes.size() * sizeof(FrozenRoute));
  header.by_name_offset = offset;
  offset = AlignUp8(offset + by_name.size() * sizeof(uint32_t));
  header.name_bytes_offset = offset;
  header.name_bytes_size = name_bytes.size();
  offset = AlignUp8(offset + name_bytes.size());
  header.route_bytes_offset = offset;
  header.route_bytes_size = route_bytes.size();
  offset += route_bytes.size();
  header.file_size = offset;

  std::string out;
  out.reserve(offset);
  out.append(sizeof(ImageHeader), '\0');  // checksum is stamped after the payload
  AppendRecords(out, entries);
  AppendPadding(out, header.slots_offset);
  AppendRecords(out, slots);
  AppendPadding(out, header.routes_offset);
  AppendRecords(out, frozen_routes);
  AppendPadding(out, header.by_name_offset);
  AppendRecords(out, by_name);
  AppendPadding(out, header.name_bytes_offset);
  out.append(name_bytes);
  AppendPadding(out, header.route_bytes_offset);
  out.append(route_bytes);
  assert(out.size() == header.file_size);

  // Checksum the whole image — header included, with the checksum field held at zero —
  // so a flipped header bit (flags, counts, offsets) is as detectable as payload rot.
  header.checksum = 0;
  std::memcpy(out.data(), &header, sizeof(header));
  header.checksum = Fnv1a(out);
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

bool ImageWriter::WriteFile(const RouteSet& routes, const std::string& path,
                            uint64_t generation, std::string* error) {
  std::string buffer = Freeze(routes, generation);
  return support::PublishFileDurably(path, buffer, "image.publish", error);
}

bool ImageWriter::Refreeze(const RouteSet& routes, const std::string& path,
                           uint64_t generation, std::string* error) {
  // The durable publish IS the refreeze discipline: freeze to `path + ".tmp"`,
  // fsync, rename over `path`, fsync the directory.  Concurrent readers keep
  // their old mapping; a crash anywhere leaves old-or-new, never torn.
  return WriteFile(routes, path, generation, error);
}

}  // namespace image
}  // namespace pathalias
