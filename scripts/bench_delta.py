#!/usr/bin/env python3
"""Compare two BENCH_resolver.json files and print a markdown delta table.

Usage: bench_delta.py [--gate] <committed.json> <fresh.json>

Walks both documents, pairs up every numeric leaf present in both (dotted paths;
list elements are matched by index), and prints one row per metric with the
relative change.  Throughput-like metrics (queries_per_second, speedup, hit_rate,
*_per_second) regress when they go DOWN; latency-like metrics (*_ms, *_us, *_ns,
*_bytes — the daemon_latency percentiles among them) regress when they go UP.
Peak-RSS metrics (*_rss_kb) are deliberately report-only: they appear in the
table but never earn a warning and never trip --gate — ru_maxrss is a monotone
process-wide high-water mark, and map/workload growth moves it legitimately.
Regressions beyond the threshold get a warning marker so they stand out in the CI
job summary — the job does not fail on them (runner hardware varies); the table is
the reviewable artifact.  `--gate` flips that: exit 1 when any metric regressed,
for local before/after runs on the SAME machine where the numbers are comparable.

A benchmark section present in only one of the two files is normal, not an error:
a newly landed benchmark has no committed baseline on its first CI run, and a
retired one lingers in the baseline until re-recorded.  One-sided sections are
reported as such (and their leaves kept out of the metric noise); the diff only
covers ground both files share.

Exit status: 0 always, unless an input file is missing or unparsable.
"""

import json
import sys

THRESHOLD = 0.10  # relative change that earns a warning marker

LOWER_IS_BETTER = ("_ms", "_us", "_ns", "_bytes")
HIGHER_IS_BETTER = ("_per_second", "speedup", "hit_rate", "resolved", "queries")
REPORT_ONLY = ("_rss_kb",)  # peak RSS: recorded for the reviewer, never gated


def numeric_leaves(node, prefix=""):
    """Yields (dotted_path, value) for every int/float leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from numeric_leaves(value, f"{prefix}{key}.")
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from numeric_leaves(value, f"{prefix}{index}.")
    elif isinstance(node, bool):
        return  # bools are ints in Python; not metrics
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), node


def direction(path):
    leaf = path.rsplit(".", 1)[-1]
    if any(leaf.endswith(suffix) for suffix in REPORT_ONLY):
        return 0
    if any(leaf.endswith(suffix) for suffix in LOWER_IS_BETTER):
        return -1  # an increase is a regression
    if any(leaf.endswith(suffix) or leaf == suffix.strip("_") for suffix in HIGHER_IS_BETTER):
        return +1  # a decrease is a regression
    return 0  # counts and configuration: report, never flag


def fmt(value):
    if isinstance(value, float) and value != int(value):
        return f"{value:,.3f}"
    return f"{int(value):,}"


def main():
    argv = sys.argv[1:]
    gate = "--gate" in argv
    argv = [arg for arg in argv if arg != "--gate"]
    if len(argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    try:
        with open(argv[0]) as committed_file:
            committed = json.load(committed_file)
        with open(argv[1]) as fresh_file:
            fresh = json.load(fresh_file)
    except (OSError, json.JSONDecodeError) as error:
        sys.stderr.write(f"bench_delta: {error}\n")
        return 2

    committed_leaves = dict(numeric_leaves(committed))
    fresh_leaves = dict(numeric_leaves(fresh))
    shared = [path for path in committed_leaves if path in fresh_leaves]

    committed_sections = set(committed) if isinstance(committed, dict) else set()
    fresh_sections = set(fresh) if isinstance(fresh, dict) else set()
    new_sections = sorted(fresh_sections - committed_sections)
    retired_sections = sorted(committed_sections - fresh_sections)

    print("### BENCH_resolver.json: committed vs this build\n")
    if new_sections:
        print("> ℹ️ new benchmark section(s) with no committed baseline yet "
              "(recorded, not diffed): "
              + ", ".join(f"`{name}`" for name in new_sections) + "\n")
    if retired_sections:
        print("> ℹ️ section(s) only in the committed baseline (not produced by "
              "this build): "
              + ", ".join(f"`{name}`" for name in retired_sections) + "\n")
    hw_path = "parallel_batch.hardware_threads"
    if committed_leaves.get(hw_path) != fresh_leaves.get(hw_path):
        print(f"> ⚠️ **hardware mismatch**: committed numbers came from a "
              f"{committed_leaves.get(hw_path)}-thread machine, this run has "
              f"{fresh_leaves.get(hw_path)} — scaling and throughput rows are not "
              f"comparable; treat this table as a re-baseline, not a regression check.\n")
    print("| metric | committed | fresh | delta |")
    print("|---|---:|---:|---:|")
    warnings = 0
    for path in shared:
        old, new = committed_leaves[path], fresh_leaves[path]
        if old == 0:
            delta_text = "n/a" if new != 0 else "0%"
            marker = ""
        else:
            delta = (new - old) / old
            sign = direction(path)
            regressed = sign != 0 and sign * delta < -THRESHOLD
            warnings += regressed
            marker = " ⚠️" if regressed else ""
            delta_text = f"{delta:+.1%}"
        print(f"| `{path}` | {fmt(old)} | {fmt(new)} | {delta_text}{marker} |")

    # New individual metrics inside SHARED sections; whole new sections were
    # already announced above and would only add noise here.
    only_fresh = sorted(path for path in set(fresh_leaves) - set(committed_leaves)
                        if path.split(".", 1)[0] not in new_sections)
    if only_fresh:
        print(f"\n{len(only_fresh)} new metric(s) not in the committed file: "
              + ", ".join(f"`{path}`" for path in only_fresh[:10])
              + ("…" if len(only_fresh) > 10 else ""))
    if warnings:
        print(f"\n⚠️ {warnings} metric(s) regressed by more than {THRESHOLD:.0%}.")
    else:
        print("\nNo metric regressed by more than "
              f"{THRESHOLD:.0%} (runner-to-runner noise notwithstanding).")
    return 1 if gate and warnings else 0


if __name__ == "__main__":
    sys.exit(main())
