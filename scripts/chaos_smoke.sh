#!/usr/bin/env bash
# Chaos smoke of routedbd's graceful degradation, using only the shipped
# binaries and the PATHALIAS_FAILPOINTS environment hook:
#
#   1. routedb update --init          build the frozen image + state dir
#   2. routedbd (failpoints ARMED) &  the daemon's first publish attempts fail
#   3. SIGHUP under a rename fault    the rollover fails; the daemon must log
#                                     it, stay alive, and keep the OLD route
#   4. SIGHUP again                   the publish lands but the armed reopen
#                                     fault blocks the swap; the image watch
#                                     sees the on-disk image ahead of the served
#                                     one and self-heals — same pid throughout
#   5. external update + watch        plain `routedb update` (unarmed: the
#                                     failpoints live only in the daemon's env)
#                                     replaces the image; the watch picks it up
#   6. SIGTERM                        clean exit (status 0)
#
# Usage: chaos_smoke.sh <routedb-bin> <routedbd-bin> [workdir]
# Exits nonzero on the first broken step.

set -euo pipefail

ROUTEDB=${1:?usage: chaos_smoke.sh <routedb-bin> <routedbd-bin> [workdir]}
ROUTEDBD=${2:?usage: chaos_smoke.sh <routedb-bin> <routedbd-bin> [workdir]}
DIR=${3:-$(mktemp -d)}
IMAGE="$DIR/routes.pari"
SOCK="$DIR/routedbd.sock"
DAEMON_PID=""

say() { printf 'chaos_smoke: %s\n' "$*"; }
fail() { say "FAIL: $*"; exit 1; }

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

route_of() {
  "$ROUTEDB" query --socket "$SOCK" --timeout 2000 "$1" | awk -F'\t' '{print $3}'
}

expect_route() {
  local host=$1 want=$2 got
  got=$(route_of "$host") || fail "query for $host failed"
  [[ "$got" == "$want" ]] || fail "route for $host: got '$got', want '$want'"
  say "route for $host = $got"
}

# --- 1. build the image (leafc reachable via far) ---
mkdir -p "$DIR"
printf 'hub\tmid(100), far(400)\n' > "$DIR/core.map"
printf 'mid\thub(100), leafa(50), leafb(60)\n' > "$DIR/mid.map"
printf 'far\thub(400), leafc(10)\nleafc\tfar(10)\n' > "$DIR/far.map"
"$ROUTEDB" update --init --local hub "$IMAGE" \
    "$DIR/core.map" "$DIR/mid.map" "$DIR/far.map"
say "image built: $IMAGE"

# --- 2. start the daemon with an armed fault schedule: the FIRST image
# publish rename fails, and the FIRST watch reopen fails.  The arming lives
# only in the daemon's environment — the routedb invocations below are clean.
READY="$DIR/ready"
PATHALIAS_FAILPOINTS="image.publish.rename=nth:1,errno:ENOSPC; rollover.reopen=nth:1" \
"$ROUTEDBD" --image "$IMAGE" --unix "$SOCK" \
    --map "$DIR/core.map" --map "$DIR/mid.map" --map "$DIR/far.map" \
    --watch-interval 50 --ready-fd 3 3>"$READY" 2>"$DIR/daemon.log" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$READY" ]] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.05
done
[[ -s "$READY" ]] || fail "daemon never signalled readiness"
say "daemon up (pid $DAEMON_PID) with armed failpoints"

expect_route leafc 'far!leafc!%s'

# --- 3. SIGHUP into the armed rename fault: the rollover must FAIL without
# killing the daemon or disturbing the served map ---
printf 'mid\thub(100), leafa(50), leafb(60), leafc(55)\nleafc\tmid(55)\n' > "$DIR/mid.map"
printf 'far\thub(400)\n' > "$DIR/far.map"
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q 'reload (SIGHUP) failed' "$DIR/daemon.log" && break
  sleep 0.05
done
grep -q 'reload (SIGHUP) failed' "$DIR/daemon.log" \
    || fail "daemon never logged the failed reload"
kill -0 "$DAEMON_PID" || fail "daemon died on a failed rollover"
expect_route leafc 'far!leafc!%s'   # the OLD route: nothing torn, nothing swapped
say "failed rollover degraded gracefully (old map still serving)"

# --- 4. SIGHUP again: the rename fault was nth:1 (spent), so the publish
# lands — but the armed reopen fault blocks the in-process swap.  The on-disk
# image is now ahead of the served map, which the watch notices and reconciles
# on its next tick: the route converges with NO further prodding. ---
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  [[ "$(route_of leafc)" == 'mid!leafc!%s' ]] && break
  sleep 0.05
done
expect_route leafc 'mid!leafc!%s'
grep -q 'rollover.reopen' "$DIR/daemon.log" \
    || fail "the reopen failpoint never fired — the swap path was not exercised"
kill -0 "$DAEMON_PID" || fail "daemon restarted somewhere along the way"
say "watch self-healed the published-but-unswapped image (same pid)"

# --- 5. plain external update + watch rollover (leafc back onto far) ---
printf 'mid\thub(100), leafa(50), leafb(60)\n' > "$DIR/mid.map"
printf 'far\thub(400), leafc(10)\nleafc\tfar(10)\n' > "$DIR/far.map"
"$ROUTEDB" update "$IMAGE" "$DIR/mid.map" "$DIR/far.map"
for _ in $(seq 1 100); do
  [[ "$(route_of leafc)" == 'far!leafc!%s' ]] && break
  sleep 0.05
done
expect_route leafc 'far!leafc!%s'
say "external update picked up by the watch"

# --- 6. clean shutdown ---
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon exited nonzero on SIGTERM"
DAEMON_PID=""
say "clean SIGTERM exit"
say "PASS"
