#!/usr/bin/env python3
"""pathalint — the repo-invariant static analyzer.

Eight PRs of this codebase accreted architectural invariants that used to be
enforced only by reviewer memory.  pathalint makes them machine-checkable:
every rule below names an invariant documented in docs/INVARIANTS.md, fires as
a finding when code violates it, and respects a per-site allowlist pragma so a
justified exception is visible *at the site* forever.

Rules (each docstring links its canonical invariant):
  R1  interner-only name ownership         docs/INVARIANTS.md#r1
  R2  durable publish discipline           docs/INVARIANTS.md#r2
  R3  io_retry syscall discipline          docs/INVARIANTS.md#r3
  R4  failpoint coverage                   docs/INVARIANTS.md#r4
  R5  memory_order rationale               docs/INVARIANTS.md#r5
  R6  include layering                     docs/INVARIANTS.md#r6

Engines:
  token     comment/string-aware lexical analysis (always available; what CI
            and the ctest gate run — deterministic, zero dependencies)
  libclang  AST-accurate field/include analysis via clang.cindex when the
            python bindings are importable; falls back to token otherwise
  auto      libclang if importable, else token (the default)

Allowlisting: a finding is suppressed by an inline pragma on the flagged line
or in the contiguous comment block directly above it:
    // pathalint: allow(R1): <mandatory one-line justification>
The justification is part of the contract — an empty reason does not suppress.

Usage:
  scripts/pathalint.py [--gate] [--root DIR] [--engine E] [--rules R1,R5]
  scripts/pathalint.py --self-test tests/lint      # fixture corpus check
  scripts/pathalint.py --list-rules
Exit codes: 0 clean (or findings without --gate), 1 findings with --gate,
2 self-test mismatch or internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Source model: raw text, comment text per line, comment/string-blanked text.
# --------------------------------------------------------------------------


@dataclass
class SourceFile:
    path: str          # repo-relative, forward slashes
    raw: str
    clean: str = ""                      # comments and literals blanked
    raw_lines: list = field(default_factory=list)
    clean_lines: list = field(default_factory=list)
    comments: dict = field(default_factory=dict)   # line -> comment text
    line_offsets: list = field(default_factory=list)

    def line_of_offset(self, offset: int) -> int:
        """1-based line containing byte offset (clean and raw are congruent)."""
        lo, hi = 0, len(self.line_offsets) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_offsets[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def blank_comments_and_strings(text: str):
    """Returns (clean_text, comments_by_line).

    clean_text has the same length and line structure as text, with the
    contents of //, /* */ comments and "...", '...', R"(...)" literals
    replaced by spaces.  comments_by_line maps 1-based line numbers to the
    concatenated comment text on that line (pragmas, EXPECT-FINDING
    directives, and memory_order rationales are read from here, so they are
    invisible to every token rule).
    """
    out = list(text)
    comments: dict = {}
    line = 1
    i = 0
    n = len(text)

    def record_comment(char: str):
        comments[line] = comments.get(line, "") + char

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                record_comment(text[i])
                out[i] = " "
                i += 1
            continue
        if c == "/" and nxt == "*":
            out[i] = out[i + 1] = " "
            record_comment("/*")
            i += 2
            while i < n:
                if text[i] == "\n":
                    line += 1
                    i += 1
                    continue
                if text[i] == "*" and i + 1 < n and text[i + 1] == "/":
                    out[i] = out[i + 1] = " "
                    i += 2
                    break
                record_comment(text[i])
                out[i] = " "
                i += 1
            continue
        if c == "R" and nxt == '"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                end_marker = ")" + m.group(1) + '"'
                end = text.find(end_marker, i + m.end())
                end = (end + len(end_marker)) if end >= 0 else n
                for j in range(i, min(end, n)):
                    if text[j] == "\n":
                        line += 1
                    else:
                        out[j] = " "
                i = end
                continue
        if c == '"' or c == "'":
            quote = c
            out[i] = " "
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out[i] = out[i + 1] = " "
                    i += 2
                    continue
                if text[i] == "\n":  # unterminated; bail at line end
                    break
                out[i] = " "
                i += 1
            if i < n and text[i] == quote:
                out[i] = " "
                i += 1
            continue
        i += 1
    return "".join(out), comments


def load_source(root: str, rel_path: str) -> SourceFile:
    with open(os.path.join(root, rel_path), "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    sf = SourceFile(path=rel_path.replace(os.sep, "/"), raw=raw)
    sf.clean, sf.comments = blank_comments_and_strings(raw)
    sf.raw_lines = raw.splitlines()
    sf.clean_lines = sf.clean.splitlines()
    offset = 0
    sf.line_offsets = []
    for ln in sf.clean.split("\n"):
        sf.line_offsets.append(offset)
        offset += len(ln) + 1
    return sf


# --------------------------------------------------------------------------
# Function extents: which byte ranges of a file are (outermost) function bodies.
# --------------------------------------------------------------------------

_FN_TAIL = re.compile(
    r"[)\]]\s*(const|noexcept|override|final|mutable|try|->\s*[\w:<>,\s&*~]+)*\s*$"
)
_NONFN_KEYWORD = re.compile(r"\b(namespace|class|struct|enum|union|do|else)\s*[\w:<>]*\s*$")


def function_extents(clean: str):
    """Outermost function-body extents [(start, end)] in blanked text.

    Heuristic brace classifier: a '{' preceded (modulo whitespace) by ')' or
    ']' — a parameter list or lambda introducer — opens a function-ish body
    unless an explicit non-function keyword owns it.  Control-flow braces
    classify function-ish too, but they are always nested inside a real
    function, so outermost extents are unaffected.
    """
    extents = []
    stack = []  # (is_function, start_offset)
    for i, c in enumerate(clean):
        if c == "{":
            look = clean[max(0, i - 240):i].rstrip()
            is_fn = bool(_FN_TAIL.search(look)) and not _NONFN_KEYWORD.search(look)
            outer_fn = any(f for f, _ in stack)
            stack.append((is_fn and not outer_fn, i))
        elif c == "}":
            if stack:
                is_fn, start = stack.pop()
                if is_fn:
                    extents.append((start, i + 1))
    return sorted(extents)


def enclosing_extent(extents, offset):
    for start, end in extents:
        if start <= offset < end:
            return (start, end)
    return None


# --------------------------------------------------------------------------
# Findings and allowlist pragmas.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


_ALLOW = re.compile(r"pathalint:\s*allow\((R\d)\)\s*:\s*(\S.*)")


def allowed(sf: SourceFile, line: int, rule: str) -> bool:
    """True if an allow pragma with a non-empty reason covers (line, rule).

    A pragma covers the line it sits on and the first code line below the
    contiguous comment block containing it — so a multi-line justification
    directly above the flagged declaration works naturally."""

    def line_has_pragma(no: int) -> bool:
        for m in _ALLOW.finditer(sf.comments.get(no, "")):
            if m.group(1) == rule and m.group(2).strip():
                return True
        return False

    if line_has_pragma(line):
        return True
    probe = line - 1
    while probe >= 1 and probe in sf.comments and \
            not sf.clean_lines[probe - 1].strip():
        if line_has_pragma(probe):
            return True
        probe -= 1
    return False


def emit(findings, sf: SourceFile, line: int, rule: str, message: str):
    if not allowed(sf, line, rule):
        findings.append(Finding(rule, sf.path, line, message))


# --------------------------------------------------------------------------
# Rule implementations (token engine).
# --------------------------------------------------------------------------

# Layers below src/tools where the interner owns all name bytes (R1 scope).
R1_LAYERS = ("graph", "parser", "core", "route_db", "image", "exec", "incr")

# Identifier components that mark a member as (probably) holding name bytes.
R1_NAMEISH = {
    "name", "names", "host", "hosts", "alias", "aliases", "domain", "domains",
    "dest", "dests", "destination", "destinations", "via", "local", "symbol",
    "symbols", "label", "labels",
}

_R1_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:const\s+)?"
    r"(std::string_view|std::string|std::vector<\s*std::string\s*>)\s+"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*)?;"
)


def rule_r1(sf: SourceFile, findings):
    """R1 interner-only name ownership (docs/INVARIANTS.md#r1).

    No layer below src/tools owns a name string: names are interned once and
    keyed by NameId everywhere (PR 1).  A std::string / string_view /
    vector<string> member whose identifier names hosts, aliases, domains,
    symbols, or similar must either key on NameId instead or carry an allow
    pragma explaining which output/serialization edge it sits on.
    """
    layer = sf.path.split("/")[1] if sf.path.startswith("src/") else ""
    if layer not in R1_LAYERS:
        return
    extents = function_extents(sf.clean)
    for idx, line_text in enumerate(sf.clean_lines):
        m = _R1_MEMBER.match(line_text)
        if not m:
            continue
        line = idx + 1
        offset = sf.line_offsets[idx] + m.start(1)
        if enclosing_extent(extents, offset):
            continue  # a local variable, not an owning member
        ident = m.group(2)
        words = set(w for w in ident.strip("_").lower().split("_") if w)
        if words & R1_NAMEISH:
            emit(findings, sf, line, "R1",
                 f"member '{ident}' looks like owned name bytes ({m.group(1)}); "
                 "layers below src/tools key on NameId — intern it, or pragma "
                 "the output/serialization edge it rides")


_R2_TOKEN = re.compile(
    r"(?<![\w.>:])((?:std::|::)?(?:rename|renameat2?|fsync|fdatasync)\s*\(|O_TRUNC\b)"
)


def rule_r2(sf: SourceFile, findings):
    """R2 durable publish discipline (docs/INVARIANTS.md#r2).

    Every file publish goes through support::PublishFileDurably — the one
    temp+fsync+rename+dirsync implementation (PR 8).  Raw rename/fsync/
    O_TRUNC anywhere else in src/ reintroduces the torn-file window that
    discipline closed.
    """
    if sf.path.startswith("src/support/durable_file"):
        return
    for m in _R2_TOKEN.finditer(sf.clean):
        line = sf.line_of_offset(m.start())
        emit(findings, sf, line, "R2",
             f"raw publish primitive '{m.group(1).strip()}' outside "
             "support/durable_file.cc; use support::PublishFileDurably")


_R3_TOKEN = re.compile(r"(?<![\w.>])::(read|write|send|sendto|sendmsg|recv|recvfrom|recvmsg)\s*\(")
_R3_WRAPPERS = re.compile(r"\b(RetryEintr|ReadFull|WriteFull)\s*\(")


def wrapper_call_spans(clean: str, wrapper_re) -> list:
    """Exact [start, end) extents of each wrapper call's argument list, found by
    forward paren matching — sees through lambda bodies and nested calls, which
    is how RetryEintr is actually used (`RetryEintr([&] { return ::write(...); })`)."""
    spans = []
    for m in wrapper_re.finditer(clean):
        depth = 1
        i = m.end()
        while i < len(clean) and depth > 0:
            if clean[i] == "(":
                depth += 1
            elif clean[i] == ")":
                depth -= 1
            i += 1
        spans.append((m.end(), i))
    return spans


def rule_r3(sf: SourceFile, findings):
    """R3 io_retry syscall discipline (docs/INVARIANTS.md#r3).

    Every raw read/write/send*/recv* in src/net goes through the
    support/io_retry.h helpers (RetryEintr / ReadFull / WriteFull) so the
    EINTR-retry and short-transfer policy lives in one place (PR 7).
    """
    if not sf.path.startswith("src/net/"):
        return
    spans = wrapper_call_spans(sf.clean, _R3_WRAPPERS)
    for m in _R3_TOKEN.finditer(sf.clean):
        if any(start <= m.start() < end for start, end in spans):
            continue
        line = sf.line_of_offset(m.start())
        emit(findings, sf, line, "R3",
             f"raw ::{m.group(1)}() in src/net outside an io_retry wrapper; "
             "wrap in support::RetryEintr / ReadFull / WriteFull")


_R4_PUBLISH_CALL = re.compile(r"\bPublishFileDurably\s*\(")
_R4_FALLIBLE = re.compile(
    r"(?<![\w.>])(?:::(open|socket|bind|mmap|fsync|fdatasync)|std::rename|::rename|mkstemp)\s*\("
)
_STRING_LITERAL = re.compile(r'"([^"\\]|\\.)*"')


def rule_r4(sf: SourceFile, findings):
    """R4 failpoint coverage (docs/INVARIANTS.md#r4).

    Every fallible publish/open/socket site carries a failpoint (PR 8): a
    function performing a raw fallible syscall (open/socket/bind/mmap/fsync/
    rename) must consult support::failpoint::Inject in the same function, and
    every PublishFileDurably call site must name its failpoint prefix with a
    dotted string literal so chaos schedules can target it.
    """
    extents = function_extents(sf.clean)
    if not sf.path.startswith("src/support/durable_file"):
        for m in _R4_PUBLISH_CALL.finditer(sf.clean):
            line = sf.line_of_offset(m.start())
            close = sf.clean.find(";", m.end())
            raw_call = sf.raw[m.start():close if close > 0 else m.end() + 200]
            has_name = any("." in lit.group(0)
                           for lit in _STRING_LITERAL.finditer(raw_call))
            if not has_name:
                emit(findings, sf, line, "R4",
                     "PublishFileDurably call does not name a failpoint prefix "
                     '(dotted string literal like "image.publish")')
    flagged_extents = set()
    for m in _R4_FALLIBLE.finditer(sf.clean):
        extent = enclosing_extent(extents, m.start())
        if extent is None or extent in flagged_extents:
            continue
        start, end = extent
        if "failpoint::Inject" in sf.raw[start:end]:
            continue
        flagged_extents.add(extent)
        line = sf.line_of_offset(m.start())
        emit(findings, sf, line, "R4",
             f"fallible syscall '{m.group(0).strip()}' in a function with no "
             "failpoint::Inject site; add a named failpoint so chaos tests can "
             "reach this error path")


_R5_TOKEN = re.compile(r"\bmemory_order(?:_|::)(relaxed|acquire|release|acq_rel|consume)\b")


def rule_r5(sf: SourceFile, findings):
    """R5 memory_order rationale (docs/INVARIANTS.md#r5).

    Every non-seq_cst atomic operation carries a '// memory_order:' comment
    (same line or within the preceding six lines) saying why the weaker order
    is sound.  Weak orderings are load-bearing proofs, not defaults; TSan can
    only see the interleavings a test produces, the comment is reviewable
    always.
    """
    for m in _R5_TOKEN.finditer(sf.clean):
        line = sf.line_of_offset(m.start())
        documented = any("memory_order:" in sf.comments.get(probe, "")
                         for probe in range(max(1, line - 6), line + 1))
        if not documented:
            emit(findings, sf, line, "R5",
                 f"memory_order_{m.group(1)} without a '// memory_order:' "
                 "rationale comment on or above the operation")


# R6: the allowed direct-include matrix between src/ layers.  Every layer may
# include itself and src/support; the sets below are the additional allowed
# targets.  This codifies the dependency structure as built (docs/
# INVARIANTS.md#r6); widening an edge is a reviewed change to this table.
R6_ALLOWED = {
    "support": set(),
    "graph": set(),
    "parser": {"graph"},
    "core": {"graph", "parser"},
    "route_db": {"graph", "core"},
    "image": {"graph", "route_db"},
    "exec": {"route_db", "image"},
    "incr": {"graph", "parser", "core", "route_db"},
    "net": {"parser", "exec", "image", "incr"},
    "mapgen": {"parser"},
    "baseline": {"graph", "parser", "core"},
    "tools": None,  # tools are the composition root: may include anything
}

# File-level exceptions: (including file, included header) edges allowed
# beyond the matrix, each with a rationale that lives here.
R6_EXCEPTIONS = {
    # The sharded mapper borrows only the fork-join pool from exec; the rest of
    # exec (engines, caches) stays above core.
    ("src/core/sharded_mapper.cc", "src/exec/thread_pool.h"),
}

_INCLUDE = re.compile(r'^\s*#\s*include\s*"(src/([a-z_]+)/[^"]+)"')


def rule_r6(sf: SourceFile, findings):
    """R6 include layering (docs/INVARIANTS.md#r6).

    Lower layers may not include higher ones — src/core must never see
    src/net, src/support depends on nothing above itself.  The full allowed
    matrix is R6_ALLOWED in scripts/pathalint.py; genuinely new edges are
    added there (with rationale), not by just including the header.
    """
    if not sf.path.startswith("src/"):
        return
    layer = sf.path.split("/")[1]
    allowed_layers = R6_ALLOWED.get(layer)
    if allowed_layers is None and layer in R6_ALLOWED:
        return  # composition root
    if layer not in R6_ALLOWED:
        emit(findings, sf, 1, "R6",
             f"unknown layer 'src/{layer}'; add it to R6_ALLOWED with its "
             "permitted dependencies")
        return
    for idx, line_text in enumerate(sf.raw_lines):
        m = _INCLUDE.match(line_text)
        if not m:
            continue
        target = m.group(2)
        if target == layer or target == "support" or target in allowed_layers:
            continue
        if (sf.path, m.group(1)) in R6_EXCEPTIONS:
            continue
        emit(findings, sf, idx + 1, "R6",
             f"src/{layer} may not include src/{target} "
             f"(allowed: support, {layer}"
             + ("".join(", " + a for a in sorted(allowed_layers)))
             + "); see R6_ALLOWED")


RULES = {
    "R1": rule_r1,
    "R2": rule_r2,
    "R3": rule_r3,
    "R4": rule_r4,
    "R5": rule_r5,
    "R6": rule_r6,
}


# --------------------------------------------------------------------------
# libclang engine (optional): AST-accurate R1 field detection.
# --------------------------------------------------------------------------


def try_libclang():
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:
        return None


def libclang_r1(cindex, root, rel_path, compile_args, findings, sf):
    """AST-exact variant of R1: FIELD_DECL cursors of string-ish type with a
    name-ish identifier, in R1 layers.  Used when the bindings import; results
    replace the token R1 for this file."""
    index = cindex.Index.create()
    tu = index.parse(os.path.join(root, rel_path), args=compile_args)
    stringish = ("std::string", "std::basic_string", "std::string_view",
                 "std::vector<std::string")
    for cursor in tu.cursor.walk_preorder():
        if cursor.kind != cindex.CursorKind.FIELD_DECL:
            continue
        if not cursor.location.file or \
           os.path.relpath(str(cursor.location.file), root).replace(os.sep, "/") != rel_path:
            continue
        type_text = cursor.type.get_canonical().spelling
        if not any(s in type_text for s in stringish):
            continue
        words = set(w for w in cursor.spelling.strip("_").lower().split("_") if w)
        if words & R1_NAMEISH:
            emit(findings, sf, cursor.location.line, "R1",
                 f"member '{cursor.spelling}' looks like owned name bytes "
                 f"({cursor.type.spelling}); layers below src/tools key on NameId")


# --------------------------------------------------------------------------
# Driver.
# --------------------------------------------------------------------------


def discover_files(root: str):
    files = []
    src_root = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                files.append(os.path.relpath(os.path.join(dirpath, name), root)
                             .replace(os.sep, "/"))
    return sorted(files)


def load_compile_commands(root: str, explicit: str | None):
    candidates = ([explicit] if explicit else
                  [os.path.join(root, "build", "compile_commands.json"),
                   os.path.join(root, "compile_commands.json")])
    for path in candidates:
        if path and os.path.isfile(path):
            try:
                with open(path, "r", encoding="utf-8") as f:
                    return {os.path.relpath(e["file"], root).replace(os.sep, "/"):
                            e.get("command", "") for e in json.load(f)}
            except (OSError, ValueError, KeyError):
                return {}
    return {}


def run_rules(root, files, rules, engine):
    cindex = try_libclang() if engine in ("auto", "libclang") else None
    if engine == "libclang" and cindex is None:
        print("pathalint: libclang engine requested but clang.cindex is not "
              "importable; falling back to token engine", file=sys.stderr)
    compile_commands = load_compile_commands(root, None) if cindex else {}
    findings: list = []
    for rel_path in files:
        sf = load_source(root, rel_path)
        for rule_name in rules:
            if rule_name == "R1" and cindex and rel_path in compile_commands:
                args = [a for a in compile_commands[rel_path].split()[1:]
                        if a.startswith(("-I", "-D", "-std", "-isystem"))]
                try:
                    libclang_r1(cindex, root, rel_path, args, findings, sf)
                    continue
                except Exception:
                    pass  # any libclang hiccup: token engine is authoritative
            RULES[rule_name](sf, findings)
    return sorted(set(findings), key=lambda f: (f.path, f.line, f.rule))


def write_summary(path, findings, rules, files):
    lines = ["## pathalint findings", ""]
    lines.append(f"Scanned {len(files)} files, rules {', '.join(rules)}: "
                 f"**{len(findings)} finding(s)**.")
    if findings:
        lines += ["", "| file | line | rule | message |", "|---|---|---|---|"]
        for f in findings:
            lines.append(f"| {f.path} | {f.line} | {f.rule} | {f.message} |")
    with open(path, "a", encoding="utf-8") as out:
        out.write("\n".join(lines) + "\n")


_EXPECT = re.compile(r"EXPECT-FINDING:\s*(R\d)\b")


def self_test(lint_dir: str, rules) -> int:
    """Runs the rules over the seeded-violation fixture corpus and diffs the
    findings against the EXPECT-FINDING directives embedded in the fixtures.

    Proves three things per rule: it fires where seeded, it stays quiet on the
    conforming twin, and the allow pragma suppresses it (the corpus must
    contain at least one pragma'd site with no finding)."""
    fixture_root = os.path.join(lint_dir, "fixtures")
    if not os.path.isdir(fixture_root):
        print(f"pathalint: no fixture corpus at {fixture_root}", file=sys.stderr)
        return 2
    files = discover_files(fixture_root)
    expected = set()
    pragma_sites = 0
    for rel_path in files:
        sf = load_source(fixture_root, rel_path)
        for line_no, comment in sf.comments.items():
            for m in _EXPECT.finditer(comment):
                expected.add((rel_path, line_no, m.group(1)))
            if "pathalint: allow(" in comment:
                pragma_sites += 1
    actual = set((f.path, f.line, f.rule)
                 for f in run_rules(fixture_root, files, rules, "token"))
    missing = expected - actual
    unexpected = actual - expected
    ok = not missing and not unexpected
    fired_rules = {r for _, _, r in expected}
    for rule_name in rules:
        status = "fires+clean" if rule_name in fired_rules else "NO FIXTURE"
        print(f"  {rule_name}: {status}")
        if rule_name not in fired_rules:
            ok = False
    if pragma_sites == 0:
        print("  allowlist: NO pragma fixture (need one suppressed violation)")
        ok = False
    else:
        print(f"  allowlist: {pragma_sites} pragma site(s) exercised")
    for path, line, rule in sorted(missing):
        print(f"MISSING   {path}:{line}: [{rule}] expected but not reported")
    for path, line, rule in sorted(unexpected):
        print(f"SPURIOUS  {path}:{line}: [{rule}] reported but not expected")
    print(f"self-test: {len(expected)} expected, {len(actual)} reported — "
          + ("OK" if ok else "MISMATCH"))
    return 0 if ok else 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), help="repo root (default: script's parent)")
    parser.add_argument("--engine", choices=("auto", "token", "libclang"),
                        default="auto")
    parser.add_argument("--rules", default=",".join(RULES),
                        help="comma-separated rule subset (default: all)")
    parser.add_argument("--gate", action="store_true",
                        help="exit 1 if any finding survives the allowlist")
    parser.add_argument("--summary", metavar="PATH",
                        help="append a markdown findings summary (CI job summary)")
    parser.add_argument("--self-test", metavar="DIR",
                        help="run the fixture corpus under DIR/fixtures and diff "
                             "against EXPECT-FINDING directives")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*",
                        help="restrict the scan to these repo-relative files")
    args = parser.parse_args(argv)

    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    for r in rules:
        if r not in RULES:
            parser.error(f"unknown rule {r}; known: {', '.join(RULES)}")

    if args.list_rules:
        for name, fn in RULES.items():
            doc = (fn.__doc__ or "").strip().splitlines()
            print(f"{name}  {doc[0] if doc else ''}")
            for line in doc[1:]:
                print(f"      {line.strip()}")
            print()
        return 0

    if args.self_test:
        return self_test(args.self_test, rules)

    root = os.path.abspath(args.root)
    files = ([p.replace(os.sep, "/") for p in args.files]
             if args.files else discover_files(root))
    findings = run_rules(root, files, rules, args.engine)
    for f in findings:
        print(f.render())
    if args.summary:
        write_summary(args.summary, findings, rules, files)
    if not findings:
        print(f"pathalint: clean ({len(files)} files, rules {','.join(rules)})")
    return 1 if (findings and args.gate) else 0


if __name__ == "__main__":
    sys.exit(main())
