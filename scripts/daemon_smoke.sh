#!/usr/bin/env bash
# End-to-end smoke of the routedbd serving path, using only the shipped binaries:
#
#   1. routedb update --init         build the frozen image + state dir from a map
#   2. routedbd --unix ... &         serve it on a unix-domain datagram socket
#   3. routedb query                 resolve through the daemon, assert the route
#   4. edit a map file
#   5a. SIGHUP rollover              daemon re-reads its --map files in process
#   5b. watch rollover               external `routedb update` refreezes the image;
#                                    the daemon's file poll picks the rename up
#   6. routedb query                 assert the NEW route, under the SAME daemon pid
#   7. SIGTERM                       clean exit (status 0) with stats on stderr
#
# Usage: daemon_smoke.sh <routedb-bin> <routedbd-bin> [workdir]
# Exits nonzero on the first broken step.

set -euo pipefail

ROUTEDB=${1:?usage: daemon_smoke.sh <routedb-bin> <routedbd-bin> [workdir]}
ROUTEDBD=${2:?usage: daemon_smoke.sh <routedb-bin> <routedbd-bin> [workdir]}
DIR=${3:-$(mktemp -d)}
IMAGE="$DIR/routes.pari"
SOCK="$DIR/routedbd.sock"
DAEMON_PID=""

say() { printf 'daemon_smoke: %s\n' "$*"; }
fail() { say "FAIL: $*"; exit 1; }

cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -TERM "$DAEMON_PID" 2>/dev/null || true
    wait "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

# The query helper: one destination, output is "host<TAB>via<TAB>route".
route_of() {
  "$ROUTEDB" query --socket "$SOCK" --timeout 2000 "$1" | awk -F'\t' '{print $3}'
}

expect_route() {
  local host=$1 want=$2 got
  got=$(route_of "$host") || fail "query for $host failed"
  [[ "$got" == "$want" ]] || fail "route for $host: got '$got', want '$want'"
  say "route for $host = $got"
}

# --- 1. build the image from a three-file map (leafc reachable via far) ---
mkdir -p "$DIR"
printf 'hub\tmid(100), far(400)\n' > "$DIR/core.map"
printf 'mid\thub(100), leafa(50), leafb(60)\n' > "$DIR/mid.map"
printf 'far\thub(400), leafc(10)\nleafc\tfar(10)\n' > "$DIR/far.map"
"$ROUTEDB" update --init --local hub "$IMAGE" \
    "$DIR/core.map" "$DIR/mid.map" "$DIR/far.map"
say "image built: $IMAGE"

# --- 2. start the daemon; --ready-fd replaces sleep-and-hope ---
READY="$DIR/ready"
"$ROUTEDBD" --image "$IMAGE" --unix "$SOCK" \
    --map "$DIR/core.map" --map "$DIR/mid.map" --map "$DIR/far.map" \
    --watch-interval 50 --ready-fd 3 3>"$READY" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$READY" ]] && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.05
done
[[ -s "$READY" ]] || fail "daemon never signalled readiness"
say "daemon up (pid $DAEMON_PID)"

# --- 3. resolve through the daemon ---
expect_route leafc 'far!leafc!%s'
expect_route leafa 'mid!leafa!%s'

# --- 4+5a. re-home leafc onto mid, SIGHUP, expect the new route ---
printf 'mid\thub(100), leafa(50), leafb(60), leafc(55)\nleafc\tmid(55)\n' > "$DIR/mid.map"
printf 'far\thub(400)\n' > "$DIR/far.map"
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  [[ "$(route_of leafc)" == 'mid!leafc!%s' ]] && break
  sleep 0.05
done
expect_route leafc 'mid!leafc!%s'
say "SIGHUP rollover applied"

# --- 5b. external update + file-watch rollover (leafc back onto far) ---
printf 'mid\thub(100), leafa(50), leafb(60)\n' > "$DIR/mid.map"
printf 'far\thub(400), leafc(10)\nleafc\tfar(10)\n' > "$DIR/far.map"
"$ROUTEDB" update "$IMAGE" "$DIR/mid.map" "$DIR/far.map"
for _ in $(seq 1 100); do
  [[ "$(route_of leafc)" == 'far!leafc!%s' ]] && break
  sleep 0.05
done
expect_route leafc 'far!leafc!%s'
say "file-watch rollover applied"

# Queries kept flowing the whole time against one daemon process.
kill -0 "$DAEMON_PID" || fail "daemon restarted somewhere along the way"

# --- 7. clean shutdown ---
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || fail "daemon exited nonzero on SIGTERM"
DAEMON_PID=""
say "clean SIGTERM exit"
say "PASS"
