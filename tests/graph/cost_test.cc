// Experiment E1: the cost symbol table (Table 1 of the paper) and the expression
// language over it.

#include "src/graph/cost.h"

#include <gtest/gtest.h>

namespace pathalias {
namespace {

struct SymbolCase {
  std::string_view name;
  Cost value;
};

class CostSymbolTest : public ::testing::TestWithParam<SymbolCase> {};

TEST_P(CostSymbolTest, MatchesPaperTable) {
  auto value = LookupCostSymbol(GetParam().name);
  ASSERT_TRUE(value.has_value()) << GetParam().name;
  EXPECT_EQ(*value, GetParam().value);
}

// The exact table from page 3 of the paper.
INSTANTIATE_TEST_SUITE_P(Table1, CostSymbolTest,
                         ::testing::Values(SymbolCase{"LOCAL", 25}, SymbolCase{"DEDICATED", 95},
                                           SymbolCase{"DIRECT", 200}, SymbolCase{"DEMAND", 300},
                                           SymbolCase{"HOURLY", 500}, SymbolCase{"EVENING", 1800},
                                           SymbolCase{"POLLED", 5000}, SymbolCase{"DAILY", 5000},
                                           SymbolCase{"WEEKLY", 30000}),
                         [](const auto& info) { return std::string(info.param.name); });

TEST(CostSymbols, DailyIsTenTimesHourlyNotTwentyFour) {
  // "DAILY is 10 times greater than HOURLY, instead of 24" — per-hop overhead dominates.
  EXPECT_EQ(*LookupCostSymbol("DAILY"), 10 * *LookupCostSymbol("HOURLY"));
}

TEST(CostSymbols, LookupIsCaseSensitive) {
  EXPECT_FALSE(LookupCostSymbol("daily").has_value());
  EXPECT_FALSE(LookupCostSymbol("Daily").has_value());
}

TEST(CostSymbols, DeadIsEssentiallyInfinite) {
  EXPECT_EQ(*LookupCostSymbol("DEAD"), kInfinity);
}

struct ExprCase {
  std::string_view text;
  Cost expected;
};

class CostExprTest : public ::testing::TestWithParam<ExprCase> {};

TEST_P(CostExprTest, Evaluates) {
  CostParse parsed = EvalCostExpression(GetParam().text);
  ASSERT_TRUE(parsed.value.has_value()) << GetParam().text << ": " << parsed.error;
  EXPECT_EQ(*parsed.value, GetParam().expected) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, CostExprTest,
    ::testing::Values(ExprCase{"10", 10}, ExprCase{"0", 0}, ExprCase{"HOURLY", 500},
                      // The paper's own examples:
                      ExprCase{"HOURLY*3", 1500}, ExprCase{"DAILY/2", 2500},
                      ExprCase{"HOURLY*4", 2000},
                      // Arithmetic structure:
                      ExprCase{"1+2*3", 7}, ExprCase{"(1+2)*3", 9}, ExprCase{"10-4-3", 3},
                      ExprCase{"100/10/2", 5}, ExprCase{"-5+10", 5}, ExprCase{"+25", 25},
                      ExprCase{"DEMAND+LOCAL", 325}, ExprCase{"WEEKLY-DAILY*2", 20000},
                      ExprCase{"((DEDICATED))", 95}, ExprCase{" 1 + 2 ", 3},
                      ExprCase{"DAILY/2+HOURLY", 3000}, ExprCase{"7/2", 3}));

TEST(CostExpr, RejectsUnknownSymbols) {
  CostParse parsed = EvalCostExpression("FORTNIGHTLY");
  EXPECT_FALSE(parsed.value.has_value());
  EXPECT_NE(parsed.error.find("FORTNIGHTLY"), std::string::npos);
}

TEST(CostExpr, RejectsDivisionByZero) {
  EXPECT_FALSE(EvalCostExpression("10/0").value.has_value());
  EXPECT_FALSE(EvalCostExpression("10/(5-5)").value.has_value());
}

TEST(CostExpr, RejectsMalformedInput) {
  for (std::string_view bad : {"", "()", "1+", "*3", "(1", "1)", "1 2", "1//2", "&", "1+@"}) {
    EXPECT_FALSE(EvalCostExpression(bad).value.has_value()) << bad;
  }
}

TEST(CostExpr, RejectsOverflow) {
  EXPECT_FALSE(EvalCostExpression("999999999999999999999").value.has_value());
  EXPECT_FALSE(
      EvalCostExpression("1000000000000*1000000000000").value.has_value());
}

TEST(CostExpr, NegativeResultsAreRepresentable) {
  // adjust {host(-50)} needs negative values; link costs reject them elsewhere.
  CostParse parsed = EvalCostExpression("-50");
  ASSERT_TRUE(parsed.value.has_value());
  EXPECT_EQ(*parsed.value, -50);
}

TEST(CostExpr, DivisionTruncatesTowardZero) {
  EXPECT_EQ(*EvalCostExpression("-7/2").value, -3);
}

}  // namespace
}  // namespace pathalias
