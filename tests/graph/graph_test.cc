#include "src/graph/graph.h"

#include <gtest/gtest.h>

namespace pathalias {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  Diagnostics diag;
  Graph graph{&diag};

  Link* FindLink(Node* from, Node* to) {
    for (Link* link = from->links; link != nullptr; link = link->next) {
      if (link->to == to && !link->alias()) {
        return link;
      }
    }
    return nullptr;
  }
};

TEST_F(GraphTest, InternReturnsSameNodeForSameName) {
  Node* a = graph.Intern("seismo");
  Node* b = graph.Intern("seismo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(graph.node_count(), 1u);
  EXPECT_EQ(graph.NameOf(a), "seismo");
}

TEST_F(GraphTest, FindDoesNotCreate) {
  EXPECT_EQ(graph.Find("ghost"), nullptr);
  EXPECT_EQ(graph.node_count(), 0u);
}

TEST_F(GraphTest, DomainNamesGetDomainAndGatewayedFlags) {
  Node* domain = graph.Intern(".edu");
  EXPECT_TRUE(domain->domain());
  EXPECT_TRUE(domain->gatewayed());
  EXPECT_TRUE(domain->placeholder());
  Node* host = graph.Intern("edu");
  EXPECT_FALSE(host->domain());
}

TEST_F(GraphTest, CaseFoldingWhenIgnoreCase) {
  Graph folding(&diag, Graph::Options{.ignore_case = true});
  Node* a = folding.Intern("SeIsMo");
  Node* b = folding.Intern("seismo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(folding.NameOf(a), "seismo") << "interner owns the folded copy";
}

TEST_F(GraphTest, CaseMattersByDefault) {
  EXPECT_NE(graph.Intern("Seismo"), graph.Intern("seismo"));
}

TEST_F(GraphTest, AddLinkAppendsInDeclarationOrder) {
  Node* a = graph.Intern("a");
  graph.AddLink(a, graph.Intern("b"), 10, '!', false, {});
  graph.AddLink(a, graph.Intern("c"), 20, '!', false, {});
  ASSERT_NE(a->links, nullptr);
  EXPECT_EQ(graph.NameOf(a->links->to), "b");
  EXPECT_EQ(graph.NameOf(a->links->next->to), "c");
  EXPECT_EQ(graph.link_count(), 2u);
}

TEST_F(GraphTest, SelfLinkRejectedWithWarning) {
  Node* a = graph.Intern("a");
  EXPECT_EQ(graph.AddLink(a, a, 10, '!', false, {}), nullptr);
  EXPECT_EQ(a->links, nullptr);
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST_F(GraphTest, NegativeLinkCostClampedToZero) {
  Node* a = graph.Intern("a");
  Link* link = graph.AddLink(a, graph.Intern("b"), -5, '!', false, {});
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->cost, 0);
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST_F(GraphTest, DuplicateLinkKeepsCheaperCost) {
  Node* a = graph.Intern("a");
  Node* b = graph.Intern("b");
  graph.AddLink(a, b, 300, '!', false, {});
  Link* second = graph.AddLink(a, b, 100, '@', true, {});
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->cost, 100);
  EXPECT_TRUE(second->right_syntax()) << "cheaper declaration's syntax wins";
  EXPECT_EQ(graph.link_count(), 1u) << "no second link created";
  EXPECT_TRUE(diag.Mentions("duplicate link"));
}

TEST_F(GraphTest, DuplicateLinkHigherCostIgnored) {
  Node* a = graph.Intern("a");
  Node* b = graph.Intern("b");
  graph.AddLink(a, b, 100, '!', false, {});
  Link* second = graph.AddLink(a, b, 300, '@', true, {});
  EXPECT_EQ(second->cost, 100);
  EXPECT_FALSE(second->right_syntax());
}

TEST_F(GraphTest, DuplicateLinkSameCostSilent) {
  Node* a = graph.Intern("a");
  Node* b = graph.Intern("b");
  graph.AddLink(a, b, 100, '!', false, {});
  graph.AddLink(a, b, 100, '!', false, {});
  EXPECT_EQ(diag.warning_count(), 0);
  EXPECT_TRUE(diag.diagnostics().empty());
}

TEST_F(GraphTest, AliasCreatesZeroCostEdgePair) {
  Node* princeton = graph.Intern("princeton");
  Node* fun = graph.Intern("fun");
  graph.AddAlias(princeton, fun, {});
  ASSERT_NE(princeton->links, nullptr);
  EXPECT_TRUE(princeton->links->alias());
  EXPECT_EQ(princeton->links->cost, 0);
  EXPECT_EQ(princeton->links->to, fun);
  ASSERT_NE(fun->links, nullptr);
  EXPECT_TRUE(fun->links->alias());
  EXPECT_EQ(fun->links->to, princeton);
}

TEST_F(GraphTest, AliasIsIdempotent) {
  Node* a = graph.Intern("a");
  Node* b = graph.Intern("b");
  graph.AddAlias(a, b, {});
  graph.AddAlias(a, b, {});
  EXPECT_EQ(graph.link_count(), 2u);
}

TEST_F(GraphTest, SelfAliasRejected) {
  Node* a = graph.Intern("a");
  graph.AddAlias(a, a, {});
  EXPECT_EQ(a->links, nullptr);
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST_F(GraphTest, NetDeclarationBuildsTollBoothEdges) {
  // "you pay to get onto a network, but you get off for free."
  Node* net = graph.Intern("ARPA");
  std::vector<Node*> members{graph.Intern("mit-ai"), graph.Intern("ucbvax")};
  graph.DeclareNet(net, members, 95, '@', true, {});
  EXPECT_TRUE(net->net());
  Link* on = FindLink(members[0], net);
  ASSERT_NE(on, nullptr);
  EXPECT_EQ(on->cost, 95);
  EXPECT_TRUE(on->right_syntax());
  Link* off = FindLink(net, members[0]);
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(off->cost, 0);
  EXPECT_TRUE(off->net_member());
}

TEST_F(GraphTest, NetListingItselfWarns) {
  Node* net = graph.Intern("NET");
  graph.DeclareNet(net, {net}, 10, '!', false, {});
  EXPECT_EQ(diag.warning_count(), 1);
  EXPECT_EQ(net->links, nullptr);
}

TEST_F(GraphTest, PrivateShadowsGlobalWithinFile) {
  // The paper's bilbo scenario: two distinct machines with one name.
  graph.BeginFile("first.map");
  Node* global_bilbo = graph.Intern("bilbo");
  graph.AddLink(global_bilbo, graph.Intern("princeton"), 10, '!', false, {});
  graph.EndFile();

  graph.BeginFile("second.map");
  graph.DeclarePrivate("bilbo", {});
  Node* private_bilbo = graph.Intern("bilbo");
  EXPECT_NE(private_bilbo, global_bilbo);
  EXPECT_TRUE(private_bilbo->is_private());
  graph.AddLink(private_bilbo, graph.Intern("wiretap"), 10, '!', false, {});
  graph.EndFile();

  // Outside the declaring file the global node is visible again.
  graph.BeginFile("third.map");
  EXPECT_EQ(graph.Intern("bilbo"), global_bilbo);
  graph.EndFile();
}

TEST_F(GraphTest, ReferencesBeforePrivateDeclarationBindGlobally) {
  graph.BeginFile("a.map");
  Node* early = graph.Intern("frodo");
  graph.DeclarePrivate("frodo", {});
  Node* late = graph.Intern("frodo");
  graph.EndFile();
  EXPECT_NE(early, late);
  EXPECT_FALSE(early->is_private());
  EXPECT_TRUE(late->is_private());
}

TEST_F(GraphTest, TwoFilesCanEachHaveAPrivateInstance) {
  graph.BeginFile("a.map");
  graph.DeclarePrivate("gollum", {});
  Node* first = graph.Intern("gollum");
  graph.EndFile();
  graph.BeginFile("b.map");
  graph.DeclarePrivate("gollum", {});
  Node* second = graph.Intern("gollum");
  graph.EndFile();
  EXPECT_NE(first, second);
  EXPECT_TRUE(first->is_private());
  EXPECT_TRUE(second->is_private());
}

TEST_F(GraphTest, DuplicatePrivateInSameFileWarns) {
  graph.BeginFile("a.map");
  graph.DeclarePrivate("sam", {});
  graph.DeclarePrivate("sam", {});
  graph.EndFile();
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST_F(GraphTest, GlobalCreatedAfterPrivateSharesNameSafely) {
  graph.BeginFile("a.map");
  graph.DeclarePrivate("merry", {});
  Node* private_node = graph.Intern("merry");
  graph.EndFile();
  graph.BeginFile("b.map");
  Node* global_node = graph.Intern("merry");
  graph.EndFile();
  EXPECT_NE(private_node, global_node);
  EXPECT_FALSE(global_node->is_private());
  // And the private file still sees its own if revisited... (a new file id is assigned
  // per BeginFile, so the old private stays hidden — its scope ended.)
  graph.BeginFile("a.map");
  EXPECT_EQ(graph.Intern("merry"), global_node);
  graph.EndFile();
}

TEST_F(GraphTest, DeadHostBecomesTerminal) {
  Node* host = graph.Intern("downvax");
  graph.MarkDeadHost(host, {});
  EXPECT_TRUE(host->terminal());
}

TEST_F(GraphTest, DeadLinkMarksOnlyThatDirection) {
  Node* a = graph.Intern("a");
  Node* b = graph.Intern("b");
  graph.AddLink(a, b, 10, '!', false, {});
  graph.AddLink(b, a, 10, '!', false, {});
  graph.MarkDeadLink(a, b, {});
  EXPECT_TRUE(FindLink(a, b)->dead());
  EXPECT_FALSE(FindLink(b, a)->dead());
}

TEST_F(GraphTest, DeadLinkOnUndeclaredLinkWarns) {
  graph.MarkDeadLink(graph.Intern("x"), graph.Intern("y"), {});
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST_F(GraphTest, DeleteAndAdjust) {
  Node* host = graph.Intern("oldvax");
  graph.DeleteHost(host, {});
  EXPECT_TRUE(host->deleted());
  Node* biased = graph.Intern("slowvax");
  graph.AdjustHost(biased, 100, {});
  graph.AdjustHost(biased, -30, {});
  EXPECT_EQ(biased->adjust, 70);
}

TEST_F(GraphTest, GatewayLinkMarksExistingLink) {
  Node* net = graph.Intern("CSNET");
  Node* gw = graph.Intern("csnet-relay");
  graph.AddLink(gw, net, 300, '@', true, {});
  graph.MarkGatewayLink(net, gw, {});
  EXPECT_TRUE(net->gatewayed());
  EXPECT_TRUE((net->flags & kNodeExplicitGateways) != 0);
  EXPECT_TRUE(FindLink(gw, net)->gateway());
}

TEST_F(GraphTest, GatewayLinkCreatesMissingLinkAtZeroCost) {
  Node* net = graph.Intern("BITNET");
  Node* gw = graph.Intern("psuvax1");
  graph.MarkGatewayLink(net, gw, {});
  Link* link = FindLink(gw, net);
  ASSERT_NE(link, nullptr);
  EXPECT_EQ(link->cost, 0);
  EXPECT_TRUE(link->gateway());
}

TEST_F(GraphTest, SetLocalOnUnknownHostWarnsAndCreates) {
  Node* local = graph.SetLocal("lonely");
  ASSERT_NE(local, nullptr);
  EXPECT_TRUE(local->local());
  EXPECT_EQ(diag.warning_count(), 1);
  EXPECT_EQ(graph.local(), local);
}

TEST_F(GraphTest, SetLocalMovesTheFlag) {
  graph.Intern("a");
  graph.Intern("b");
  Node* a = graph.SetLocal("a");
  Node* b = graph.SetLocal("b");
  EXPECT_FALSE(a->local());
  EXPECT_TRUE(b->local());
}

}  // namespace
}  // namespace pathalias
