#include "src/graph/audit.h"

#include <gtest/gtest.h>

#include "src/mapgen/mapgen.h"
#include "src/parser/parser.h"

namespace pathalias {
namespace {

struct Audited {
  Diagnostics diag;
  Graph graph{&diag};
  AuditReport report;
};

// Parses each entry as its own file (file identity matters for collision detection).
std::unique_ptr<Audited> Audit(const std::vector<InputFile>& files) {
  auto audited = std::make_unique<Audited>();
  Parser parser(&audited->graph);
  parser.ParseFiles(files);
  audited->report = AuditGraph(audited->graph);
  return audited;
}

std::unique_ptr<Audited> AuditOne(std::string_view text) {
  return Audit({InputFile{"map", std::string(text)}});
}

bool HasFinding(const AuditReport& report, std::string_view category,
                std::string_view needle = "") {
  for (const AuditFinding& finding : report.findings) {
    if (finding.category == category &&
        (needle.empty() || finding.message.find(needle) != std::string::npos)) {
      return true;
    }
  }
  return false;
}

TEST(Audit, CleanSymmetricMapHasNoFindings) {
  auto a = AuditOne("a\tb(100)\nb\ta(100), c(50)\nc\tb(50)\n");
  EXPECT_TRUE(a->report.findings.empty()) << a->report.ToString();
  EXPECT_TRUE(a->report.clean());
  EXPECT_EQ(a->report.hosts, 3u);
  EXPECT_EQ(a->report.one_way_links, 0u);
}

TEST(Audit, OneWayLinkReported) {
  auto a = AuditOne("a\tb(100)\nb\ta(100)\nleaf\ta(500)\n");
  EXPECT_TRUE(HasFinding(a->report, "one-way-link", "leaf"));
  EXPECT_EQ(a->report.one_way_links, 1u);
}

TEST(Audit, AsymmetricCostReported) {
  auto a = AuditOne("a\tb(25)\nb\ta(30000)\n");
  EXPECT_TRUE(HasFinding(a->report, "asymmetric-cost", "a <-> b"));
}

TEST(Audit, MildAsymmetryNotReported) {
  auto a = AuditOne("a\tb(300)\nb\ta(500)\n");
  EXPECT_FALSE(HasFinding(a->report, "asymmetric-cost"));
}

TEST(Audit, IsolatedHostIsAProblem) {
  auto a = AuditOne("a\tb(100)\nb\ta(100)\nhermit\n");
  EXPECT_TRUE(HasFinding(a->report, "isolated-host", "hermit"));
  EXPECT_FALSE(a->report.clean());
}

TEST(Audit, NameCollisionAcrossThreeFiles) {
  // Three different site files all claim to own bilbo's outgoing links.
  auto a = Audit({{"site1.map", "bilbo\tx(100)\nx\tbilbo(100)\n"},
                  {"site2.map", "bilbo\ty(100)\ny\tbilbo(100)\n"},
                  {"site3.map", "bilbo\tz(100)\nz\tbilbo(100)\n"}});
  EXPECT_TRUE(HasFinding(a->report, "name-collision", "bilbo"));
}

TEST(Audit, PrivateDeclarationsSilenceTheCollision) {
  // The same situation handled the way the paper prescribes: each file declares its
  // bilbo private, so three distinct nodes exist and none is suspicious.
  auto a = Audit({{"site1.map", "private {bilbo}\nbilbo\tx(100)\nx\tbilbo(100)\n"},
                  {"site2.map", "private {bilbo}\nbilbo\ty(100)\ny\tbilbo(100)\n"},
                  {"site3.map", "private {bilbo}\nbilbo\tz(100)\nz\tbilbo(100)\n"}});
  EXPECT_FALSE(HasFinding(a->report, "name-collision")) << a->report.ToString();
}

TEST(Audit, UnenterableNetIsAProblem) {
  auto a = AuditOne("NET = {m1, m2}(95)\nm1\tm2(10)\nm2\tm1(10)\n");
  // Members link INTO the net, so it is enterable; remove that by using a domain
  // nobody links to.
  EXPECT_FALSE(HasFinding(a->report, "unenterable-net", "NET"));
  auto b = AuditOne(".lost\tmember(0)\nmember\tother(10)\nother\tmember(10)\n");
  EXPECT_TRUE(HasFinding(b->report, "unenterable-net", ".lost"));
}

TEST(Audit, GatewaylessNetIsAProblem) {
  auto a = AuditOne(
      "NET = {m1}(95)\n"
      "a\t@NET(10)\na\tm1(10)\nm1\ta(10)\n"
      "gatewayed {NET}\ngateway {NET!ghost}\n"
      "dead {ghost}\n");
  // `gateway {NET!ghost}` created ghost->NET as the only gateway link; mark the
  // situation where inbound links exist but none is a gateway by auditing a net whose
  // only inbound is non-gateway:
  auto b = AuditOne(
      "NET2 = {m2}(95)\n"
      "b\t@NET2(10)\nb\tm2(10)\nm2\tb(10)\n"
      "gatewayed {NET2}\n");
  // NET2 is gatewayed but has no explicit gateway declaration at all -> flag only if
  // explicit gateways were declared; plain gatewayed nets are a config choice.
  EXPECT_FALSE(HasFinding(b->report, "gatewayless-net"));
  EXPECT_FALSE(HasFinding(a->report, "gatewayless-net", "NET")) << "ghost IS a gateway";
}

TEST(Audit, EmptyNetIsSuspicious) {
  auto a = AuditOne("a\t@GHOSTNET(100)\nGHOSTNET = {}\na\tb(10)\nb\ta(10)\n");
  // An empty member list parses as a net with no members.
  EXPECT_TRUE(HasFinding(a->report, "empty-net", "GHOSTNET"));
}

TEST(Audit, DeadButPopularReported) {
  auto a = AuditOne(
      "a\tdowny(100)\nb\tdowny(100)\nc\tdowny(100)\n"
      "downy\ta(100)\ndead {downy}\n");
  EXPECT_TRUE(HasFinding(a->report, "dead-but-popular", "downy"));
}

TEST(Audit, SummaryStatisticsAreComputed) {
  auto a = AuditOne("hub\ta(10), b(10), c(10)\na\thub(10)\nb\thub(10)\nc\thub(10)\n");
  EXPECT_EQ(a->report.hosts, 4u);
  EXPECT_EQ(a->report.max_degree, 3u);
  EXPECT_EQ(a->report.max_degree_host, "hub");
  EXPECT_DOUBLE_EQ(a->report.average_degree, 1.5);
}

TEST(Audit, FindingsAreCappedPerCategory) {
  std::string map;
  for (int i = 0; i < 100; ++i) {
    map += "solo" + std::to_string(i) + "\n";
  }
  map += "a\tb(10)\nb\ta(10)\n";
  auto a = AuditOne(map);
  size_t isolated_findings = 0;
  for (const AuditFinding& finding : a->report.findings) {
    if (finding.category == "isolated-host") {
      ++isolated_findings;
    }
  }
  EXPECT_LE(isolated_findings, 26u);  // cap + the "suppressed" marker
  EXPECT_EQ(a->report.isolated_hosts, 100u) << "the count is still exact";
}

TEST(Audit, GeneratedMapAuditsWithoutProblems) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::Small());
  Diagnostics diag;
  Graph graph(&diag);
  Parser parser(&graph);
  parser.ParseFiles(map.files);
  AuditReport report = AuditGraph(graph);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_GT(report.one_way_links, 0u) << "the call-out-only leaves";
  EXPECT_FALSE(HasFinding(report, "name-collision"))
      << "collisions are declared private by the generator";
}

TEST(Audit, ReportRendersAllSections) {
  auto a = AuditOne("a\tb(25)\nb\ta(30000)\nhermit\n");
  std::string text = a->report.ToString();
  EXPECT_NE(text.find("map audit:"), std::string::npos);
  EXPECT_NE(text.find("PROBLEM/isolated-host"), std::string::npos);
  EXPECT_NE(text.find("suspicious/asymmetric-cost"), std::string::npos);
}

}  // namespace
}  // namespace pathalias
