// The chaos harness: randomized fault schedules driven through init → update →
// serve → rollover, with the crash-safety invariants checked after every run:
//
//   1. the published image is ALWAYS openable under full checksum verification
//      — an injected failure may abort a publish, never tear one;
//   2. the state dir ALWAYS loads cleanly or reports a clean rebuild-needed
//      error — never UB, never an abort;
//   3. the state generation never runs ahead of the image generation (image is
//      published first, so a torn pair is detectable, not adoptable);
//   4. the daemon NEVER exits its loop uncleanly — faults degrade service,
//      they do not kill it.
//
// Every run is seeded deterministically (support::Rng), so a failure reproduces
// byte-for-byte from the seed printed in the assertion message.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/image/frozen_route_set.h"
#include "src/image/image_format.h"
#include "src/image/image_writer.h"
#include "src/incr/map_builder.h"
#include "src/incr/state_dir.h"
#include "src/net/daemon.h"
#include "src/net/wire.h"
#include "src/support/failpoint.h"
#include "src/support/rng.h"

namespace pathalias {
namespace {

namespace fs = std::filesystem;
namespace failpoint = support::failpoint;

// Disarms everything on scope exit so one run's schedule never leaks into the
// next (or into the invariant checks, which must run fault-free).
struct FailpointGuard {
  ~FailpointGuard() { failpoint::Reset(); }
};

fs::path MakeScratchDir(const char* tag, uint64_t seed) {
  fs::path dir = fs::temp_directory_path() /
                 ("chaos_" + std::string(tag) + "_" + std::to_string(::getpid()) + "_" +
                  std::to_string(seed));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void WriteFileAt(const fs::path& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

// Two map versions differing only in where leafc homes; cost jitter from the
// rng makes most update cycles real (dirty routes) without changing the names.
std::vector<InputFile> MapVersion(const fs::path& dir, bool b_side, uint64_t jitter) {
  std::string mid_cost = std::to_string(50 + jitter % 40);
  if (b_side) {
    return {
        {(dir / "core.map").string(), "hub\tmid(100), far(400)\n"},
        {(dir / "mid.map").string(), "mid\thub(100), leafa(" + mid_cost +
                                         "), leafb(60), leafc(55)\nleafc\tmid(55)\n"},
        {(dir / "far.map").string(), "far\thub(400)\n"},
    };
  }
  return {
      {(dir / "core.map").string(), "hub\tmid(100), far(400)\n"},
      {(dir / "mid.map").string(),
       "mid\thub(100), leafa(" + mid_cost + "), leafb(60)\n"},
      {(dir / "far.map").string(), "far\thub(400), leafc(10)\nleafc\tfar(10)\n"},
  };
}

void WriteMapFiles(const std::vector<InputFile>& files) {
  for (const InputFile& file : files) {
    WriteFileAt(file.name, file.content);
  }
}

// `routedb update --init`, in process: image generation 1 and a paired state dir.
void InitImage(const std::vector<InputFile>& files, const std::string& image_path) {
  WriteMapFiles(files);
  incr::MapBuilder builder(incr::MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));
  std::string error;
  ASSERT_TRUE(image::ImageWriter::Refreeze(builder.routes(), image_path,
                                           /*generation=*/1, &error))
      << error;
  incr::StateDirContents contents;
  contents.local = "hub";
  contents.ignore_case = false;
  contents.image_generation = 1;
  contents.artifacts = builder.artifacts();
  ASSERT_TRUE(incr::SaveStateDir(image_path + ".state", contents));
}

// Reads the generation stamp straight from the header bytes — no mmap, no
// failpoints, usable both mid-run and in the invariant checks.
std::optional<uint64_t> ReadImageGeneration(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  image::ImageHeader header{};
  if (!in.read(reinterpret_cast<char*>(&header), sizeof(header))) {
    return std::nullopt;
  }
  if (header.magic != image::kMagic) {
    return std::nullopt;
  }
  return header.generation;
}

// The fault set a publish pipeline can hit.  Schedules are drawn per-run.
const std::vector<std::string>& PublishFaultSites() {
  static const std::vector<std::string> kSites = {
      "image.publish.open", "image.publish.write",  "image.publish.fsync",
      "image.publish.close", "image.publish.rename", "image.publish.dirsync",
      "state.publish.open", "state.publish.write",  "state.publish.fsync",
      "state.publish.close", "state.publish.rename", "state.publish.dirsync",
      "state.read",
  };
  return kSites;
}

std::string RandomSchedule(Rng& rng) {
  static const std::vector<std::string> kErrnos = {"EIO", "ENOSPC", "EACCES"};
  std::string schedule;
  switch (rng.Below(4)) {
    case 0: schedule = "once"; break;
    case 1: schedule = "always"; break;
    case 2: schedule = "nth:" + std::to_string(1 + rng.Below(3)); break;
    default: schedule = "every:" + std::to_string(1 + rng.Below(2)); break;
  }
  return schedule + ",errno:" + rng.Pick(kErrnos);
}

void ArmRandomFaults(Rng& rng, const std::vector<std::string>& sites, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    std::string error;
    ASSERT_TRUE(failpoint::Arm(rng.Pick(sites), RandomSchedule(rng), &error)) << error;
  }
}

// One `routedb update` cycle under whatever faults are armed.  Failures are the
// POINT — the return value only says whether a republish landed.
bool TryUpdateCycle(const fs::path& /*dir*/, const std::string& image_path,
                    const std::vector<InputFile>& files) {
  WriteMapFiles(files);
  std::vector<InputFile> loaded;
  for (const InputFile& file : files) {
    std::ifstream in(file.name);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    loaded.push_back({file.name, std::move(buffer).str()});
  }

  std::string error;
  auto state = incr::LoadStateDir(image_path + ".state", &error);
  incr::MapBuilder builder(incr::MapBuilderOptions{.local = "hub"});
  if (state.has_value()) {
    if (!builder.BuildFromArtifacts(std::move(state->artifacts))) {
      return false;
    }
    builder.Update(loaded);
  } else {
    // Clean rebuild-needed fallback: parse everything from scratch.
    if (!builder.Build(loaded)) {
      return false;
    }
  }
  if (!builder.valid()) {
    return false;
  }
  const uint64_t image_generation = ReadImageGeneration(image_path).value_or(0);
  const uint64_t state_generation = state.has_value() ? state->image_generation : 0;
  const uint64_t next_generation = std::max(image_generation, state_generation) + 1;
  if (!image::ImageWriter::Refreeze(builder.routes(), image_path, next_generation,
                                    &error)) {
    return false;  // publish aborted; the invariants say it must not have torn
  }
  incr::StateDirContents contents;
  contents.local = "hub";
  contents.ignore_case = false;
  contents.image_generation = next_generation;
  contents.artifacts = builder.artifacts();
  (void)incr::SaveStateDir(image_path + ".state", contents);  // may fail; image leads
  return true;
}

// The three on-disk invariants, checked fault-free after every run.
void ExpectDiskInvariants(const std::string& image_path, uint64_t seed) {
  std::string error;
  auto image =
      FrozenImage::Open(image_path, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(image.has_value()) << "seed " << seed << ": torn image: " << error;

  error.clear();
  auto state = incr::LoadStateDir(image_path + ".state", &error);
  if (!state.has_value()) {
    EXPECT_FALSE(error.empty()) << "seed " << seed << ": state load failed silently";
    return;  // clean rebuild-needed is an allowed outcome
  }
  EXPECT_LE(state->image_generation, image->view().header().generation)
      << "seed " << seed << ": state generation ran ahead of the image";
}

TEST(PublishChaos, RandomFaultSchedulesNeverTearImageOrState) {
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    Rng rng(seed);
    FailpointGuard guard;
    fs::path dir = MakeScratchDir("publish", seed);
    std::string image_path = (dir / "routes.pari").string();
    InitImage(MapVersion(dir, false, 0), image_path);

    for (int cycle = 0; cycle < 3; ++cycle) {
      failpoint::Reset();
      ArmRandomFaults(rng, PublishFaultSites(), 1 + rng.Below(2));
      TryUpdateCycle(dir, image_path, MapVersion(dir, rng.Chance(0.5), rng.Next()));
    }

    failpoint::Reset();
    ExpectDiskInvariants(image_path, seed);
    fs::remove_all(dir);
  }
}

// A throwaway client that tolerates injected send/recv failures — under chaos
// the only promise is that the DAEMON stays up; datagrams may vanish.
class ChaosClient {
 public:
  ChaosClient(const fs::path& dir, const std::string& server_path) {
    std::string error;
    auto socket = net::DatagramSocket::ClientForUnix((dir / "c.sock").string(), &error);
    EXPECT_TRUE(socket.has_value()) << error;
    socket_ = std::move(*socket);
    server_ = net::DatagramSocket::UnixPeer(server_path);
    buffer_.resize(net::kMaxDatagramBytes);
  }

  void TrySend(uint64_t id, std::string_view query) {
    std::string datagram;
    std::vector<std::string_view> queries = {query};
    ASSERT_TRUE(net::EncodeRequest(id, queries, &datagram));
    bool dropped = false;
    std::string error;
    (void)socket_.SendTo(datagram, server_, &dropped, &error);
  }

  std::optional<net::DecodedReply> TryReceive(int timeout_ms) {
    if (!socket_.WaitReadable(timeout_ms)) {
      return std::nullopt;
    }
    net::PeerAddress from;
    bool got_one = false;
    std::string error;
    ssize_t got = socket_.Recv(buffer_.data(), buffer_.size(), &from, &got_one, &error);
    if (!got_one) {
      return std::nullopt;
    }
    net::DecodedReply reply;
    if (!net::DecodeReply(std::string_view(buffer_.data(), static_cast<size_t>(got)),
                          &reply, &error)) {
      return std::nullopt;
    }
    return reply;
  }

  // Fault-free ask-with-retries: proves the daemon still SERVES after chaos.
  // Stale replies from the chaos phase may still sit in the socket buffer, so
  // answers are matched by request id, not taken first-come.
  std::string RouteAfterChaos(net::Daemon* daemon, uint64_t id, std::string_view query) {
    for (int attempt = 0; attempt < 5; ++attempt) {
      uint64_t want = id + static_cast<uint64_t>(attempt) * 1000;
      TrySend(want, query);
      daemon->PollOnce(50);
      for (int drain = 0; drain < 32; ++drain) {
        auto reply = TryReceive(500);
        if (!reply.has_value()) {
          break;
        }
        if (reply->request_id == want && reply->results.size() == 1 &&
            (reply->flags & net::kReplyFlagOverloaded) == 0) {
          return std::string(reply->results[0].route);
        }
      }
    }
    return "<no reply>";
  }

 private:
  net::DatagramSocket socket_;
  net::PeerAddress server_;
  std::vector<char> buffer_;
};

TEST(ServeChaos, DaemonSurvivesSocketFaultsAndRecovers) {
  const std::vector<std::string> kSites = {"net.send", "net.recv"};
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    FailpointGuard guard;
    fs::path dir = MakeScratchDir("serve", seed);
    std::string image_path = (dir / "routes.pari").string();
    InitImage(MapVersion(dir, false, 0), image_path);

    net::DaemonOptions options;
    options.rollover.image_path = image_path;
    options.unix_path = (dir / "d.sock").string();
    options.watch_interval_ms = 0;
    net::Daemon daemon(std::move(options));
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << "seed " << seed << ": " << error;
    ChaosClient client(dir, daemon.unix_path());

    ArmRandomFaults(rng, kSites, 1 + rng.Below(2));
    for (int turn = 0; turn < 8; ++turn) {
      client.TrySend(static_cast<uint64_t>(turn) + 1, rng.Chance(0.5) ? "leafa" : "leafc");
      ASSERT_TRUE(daemon.PollOnce(10))
          << "seed " << seed << ": daemon loop ended under socket faults";
      (void)client.TryReceive(0);  // drain whatever survived
    }

    failpoint::Reset();
    EXPECT_EQ(client.RouteAfterChaos(&daemon, 100, "leafa"), "mid!leafa!%s")
        << "seed " << seed << ": daemon did not recover after faults cleared";
    fs::remove_all(dir);
  }
}

TEST(RolloverChaos, ReloadFaultsDegradeButNeverKillOrCorrupt) {
  std::vector<std::string> sites = PublishFaultSites();
  sites.push_back("rollover.reopen");
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed);
    FailpointGuard guard;
    fs::path dir = MakeScratchDir("rollover", seed);
    std::string image_path = (dir / "routes.pari").string();
    std::vector<InputFile> initial = MapVersion(dir, false, 0);
    InitImage(initial, image_path);

    net::DaemonOptions options;
    options.rollover.image_path = image_path;
    for (const InputFile& file : initial) {
      options.rollover.map_files.push_back(file.name);
    }
    options.unix_path = (dir / "d.sock").string();
    options.watch_interval_ms = 1;  // the heal path below needs the watch
    net::Daemon daemon(std::move(options));
    std::string error;
    ASSERT_TRUE(daemon.Start(&error)) << "seed " << seed << ": " << error;
    ChaosClient client(dir, daemon.unix_path());

    bool b_side = false;
    for (int round = 0; round < 3; ++round) {
      failpoint::Reset();
      ArmRandomFaults(rng, sites, 1 + rng.Below(2));
      b_side = rng.Chance(0.5);
      WriteMapFiles(MapVersion(dir, b_side, rng.Next()));
      daemon.RequestReload();
      ASSERT_TRUE(daemon.PollOnce(10))
          << "seed " << seed << ": daemon loop ended during faulted reload";
      // The unchanged route must survive every faulted rollover.
      failpoint::Reset();
      EXPECT_EQ(client.RouteAfterChaos(&daemon, 200 + round * 10, "leafa"),
                "mid!leafa!%s")
          << "seed " << seed << " round " << round;
    }

    // Faults cleared.  A faulted round may have torn image and state apart
    // (state a generation behind), which HUP rightly REFUSES to build on — the
    // documented heal is an external fault-free `routedb update` republishing a
    // consistent pair, which the watch then picks up.  Run the heal and require
    // convergence.
    failpoint::Reset();
    ASSERT_TRUE(TryUpdateCycle(dir, image_path, MapVersion(dir, b_side, 999)))
        << "seed " << seed << ": fault-free update failed";
    std::string expect = b_side ? "mid!leafc!%s" : "far!leafc!%s";
    std::string got;
    for (int i = 0; i < 50 && got != expect; ++i) {
      daemon.PollOnce(5);  // watch tick
      got = client.RouteAfterChaos(&daemon, 900 + static_cast<uint64_t>(i) * 100000,
                                   "leafc");
    }
    EXPECT_EQ(got, expect)
        << "seed " << seed << ": daemon did not converge after faults cleared";

    ExpectDiskInvariants(image_path, seed);
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace pathalias
