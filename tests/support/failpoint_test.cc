// Failpoint framework: schedules, env-spec parsing, counters, and the
// disarmed fast path.

#include "src/support/failpoint.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <string>

namespace failpoint = pathalias::support::failpoint;

namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::Reset(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  EXPECT_FALSE(failpoint::Inject("unknown.site"));
  EXPECT_EQ(failpoint::Hits("unknown.site"), 0u);
  EXPECT_EQ(failpoint::Fires("unknown.site"), 0u);
}

TEST_F(FailpointTest, AlwaysFiresEveryHit) {
  ASSERT_TRUE(failpoint::Arm("a", "always"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Hits("a"), 3u);
  EXPECT_EQ(failpoint::Fires("a"), 3u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Arm("a", "once"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Fires("a"), 1u);
}

TEST_F(FailpointTest, NthFiresOnExactlyTheNthHit) {
  ASSERT_TRUE(failpoint::Arm("a", "nth:3"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Fires("a"), 1u);
}

TEST_F(FailpointTest, EveryFiresPeriodically) {
  ASSERT_TRUE(failpoint::Arm("a", "every:2"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Fires("a"), 2u);
}

TEST_F(FailpointTest, TimesFiresTheFirstNHits) {
  ASSERT_TRUE(failpoint::Arm("a", "times:2"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Fires("a"), 2u);
}

TEST_F(FailpointTest, OffCountsHitsWithoutFiring) {
  ASSERT_TRUE(failpoint::Arm("a", "off"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Hits("a"), 2u);
  EXPECT_EQ(failpoint::Fires("a"), 0u);
}

TEST_F(FailpointTest, FiringSetsConfiguredErrno) {
  ASSERT_TRUE(failpoint::Arm("a", "always,errno:ENOSPC"));
  errno = 0;
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_EQ(errno, ENOSPC);
}

TEST_F(FailpointTest, DefaultErrnoIsEio) {
  ASSERT_TRUE(failpoint::Arm("a", "always"));
  errno = 0;
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_EQ(errno, EIO);
}

TEST_F(FailpointTest, NumericErrnoAccepted) {
  ASSERT_TRUE(failpoint::Arm("a", "always,errno:28"));  // ENOSPC on linux
  errno = 0;
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_EQ(errno, 28);
}

TEST_F(FailpointTest, DisarmStopsFiring) {
  ASSERT_TRUE(failpoint::Arm("a", "always"));
  EXPECT_TRUE(failpoint::Inject("a"));
  failpoint::Disarm("a");
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_EQ(failpoint::Fires("a"), 1u);  // counters survive Disarm
}

TEST_F(FailpointTest, RearmingResetsCounters) {
  ASSERT_TRUE(failpoint::Arm("a", "nth:2"));
  EXPECT_FALSE(failpoint::Inject("a"));
  ASSERT_TRUE(failpoint::Arm("a", "nth:2"));
  EXPECT_FALSE(failpoint::Inject("a"));  // hit 1 again, not hit 2
  EXPECT_TRUE(failpoint::Inject("a"));
}

TEST_F(FailpointTest, SpecArmsMultipleFailpoints) {
  std::string error;
  ASSERT_TRUE(failpoint::ArmFromSpec("a=once,errno:ENOSPC; b=every:2", &error)) << error;
  EXPECT_TRUE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("b"));
  EXPECT_TRUE(failpoint::Inject("b"));
}

TEST_F(FailpointTest, MalformedSchedulesRejected) {
  std::string error;
  EXPECT_FALSE(failpoint::Arm("a", "", &error));
  EXPECT_FALSE(failpoint::Arm("a", "sometimes", &error));
  EXPECT_FALSE(failpoint::Arm("a", "nth:0", &error));
  EXPECT_FALSE(failpoint::Arm("a", "nth:x", &error));
  EXPECT_FALSE(failpoint::Arm("a", "always,errno:EWHATEVER", &error));
  EXPECT_FALSE(failpoint::ArmFromSpec("justaname", &error));
  EXPECT_FALSE(failpoint::ArmFromSpec("=once", &error));
  // Nothing fired along the way.
  EXPECT_FALSE(failpoint::Inject("a"));
}

TEST_F(FailpointTest, ResetDisarmsEverything) {
  ASSERT_TRUE(failpoint::Arm("a", "always"));
  ASSERT_TRUE(failpoint::Arm("b", "always"));
  failpoint::Reset();
  EXPECT_FALSE(failpoint::Inject("a"));
  EXPECT_FALSE(failpoint::Inject("b"));
  EXPECT_EQ(failpoint::Hits("a"), 0u);  // counters forgotten too
}

}  // namespace
