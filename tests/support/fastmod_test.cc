// FastMod must agree with the hardware remainder for every divisor the interner's
// probe geometry can present — BeginProbe's cursor feeds the pipelined resolver,
// whose results are contractually byte-identical to the scalar path, so an
// off-by-one here would corrupt probe sequences silently.

#include "src/support/fastmod.h"

#include <cstdint>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "src/support/primes.h"

namespace pathalias {
namespace {

void CheckDivisor(uint64_t divisor, std::mt19937_64& rng) {
  FastMod fast(divisor);
  ASSERT_EQ(fast.divisor(), divisor);
  // Edges first: small dividends, dividends adjacent to multiples of the divisor,
  // and the extremes of the 64-bit range.
  const uint64_t edges[] = {0,
                            1,
                            2,
                            divisor - 1,
                            divisor,
                            divisor + 1,
                            2 * divisor,
                            2 * divisor + 1,
                            std::numeric_limits<uint64_t>::max() - 1,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t n : edges) {
    ASSERT_EQ(fast.Mod(n), n % divisor) << "divisor=" << divisor << " n=" << n;
  }
  for (int i = 0; i < 10000; ++i) {
    uint64_t n = rng();
    ASSERT_EQ(fast.Mod(n), n % divisor) << "divisor=" << divisor << " n=" << n;
  }
}

TEST(FastModTest, MatchesHardwareRemainderForProbeDivisors) {
  std::mt19937_64 rng(0x5061746841ull);
  // The divisor family BeginProbe actually uses: every Fibonacci-prime capacity
  // the growth schedule can produce (up to ~100M slots) and its T-2 companion.
  FibonacciPrimes growth;
  uint64_t capacity = 5;
  while (capacity < 100'000'000) {
    CheckDivisor(capacity, rng);
    CheckDivisor(capacity - 2, rng);
    capacity = growth.NextSize(capacity);
  }
}

TEST(FastModTest, MatchesHardwareRemainderForAdversarialDivisors) {
  std::mt19937_64 rng(42);
  // Powers of two (the magic rounds differently there), their neighbors, 1, and
  // random 64-bit divisors — none arise from prime capacities, but the helper's
  // contract is every divisor >= 1.
  CheckDivisor(1, rng);
  CheckDivisor(2, rng);
  CheckDivisor(3, rng);
  for (int shift = 2; shift < 64; ++shift) {
    uint64_t pow2 = uint64_t{1} << shift;
    CheckDivisor(pow2, rng);
    CheckDivisor(pow2 - 1, rng);
    CheckDivisor(pow2 + 1, rng);
  }
  for (int i = 0; i < 64; ++i) {
    uint64_t divisor = rng();
    if (divisor == 0) {
      divisor = 7;
    }
    CheckDivisor(divisor, rng);
  }
}

TEST(FastModTest, ResetReplacesDivisor) {
  std::mt19937_64 rng(7);
  FastMod fast(97);
  EXPECT_EQ(fast.Mod(1000), 1000 % 97);
  fast.Reset(101);
  EXPECT_EQ(fast.divisor(), 101u);
  for (int i = 0; i < 1000; ++i) {
    uint64_t n = rng();
    EXPECT_EQ(fast.Mod(n), n % 101);
  }
}

}  // namespace
}  // namespace pathalias
