#include "src/support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <string>

namespace pathalias {
namespace {

TEST(Arena, AllocationsAreDistinctAndWritable) {
  Arena arena;
  char* a = static_cast<char*>(arena.Allocate(16));
  char* b = static_cast<char*>(arena.Allocate(16));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 16);
  std::memset(b, 0xBB, 16);
  EXPECT_EQ(static_cast<unsigned char>(a[15]), 0xAA);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0xBB);
}

TEST(Arena, RespectsAlignment) {
  Arena arena;
  arena.Allocate(1, 1);  // misalign the cursor
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  void* p64 = arena.Allocate(64, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p64) % 64, 0u);
}

TEST(Arena, ZeroSizedAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  EXPECT_NE(a, b);
}

TEST(Arena, OversizeRequestGetsDedicatedBlock) {
  Arena arena(4096);
  char* big = static_cast<char*>(arena.Allocate(1 << 20));
  ASSERT_NE(big, nullptr);
  std::memset(big, 1, 1 << 20);
  EXPECT_EQ(arena.stats().oversize_count, 1u);
}

TEST(Arena, ManySmallAllocationsSpanBlocks) {
  Arena arena(2048);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.Allocate(64);
    EXPECT_TRUE(seen.insert(p).second) << "allocation returned twice";
  }
  EXPECT_GT(arena.stats().block_count, 10u);
  EXPECT_GE(arena.stats().bytes_requested, 64000u);
}

TEST(Arena, InternStringCopiesAndTerminates) {
  Arena arena;
  std::string original = "seismo";
  char* interned = arena.InternString(original);
  original[0] = 'X';
  EXPECT_STREQ(interned, "seismo");
  EXPECT_EQ(interned[6], '\0');
}

TEST(Arena, InternEmptyString) {
  Arena arena;
  char* interned = arena.InternString("");
  EXPECT_STREQ(interned, "");
}

TEST(Arena, DonatedRegionIsReused) {
  Arena arena(1024);
  // A region big enough to satisfy the next over-block request.
  char* region = static_cast<char*>(arena.Allocate(8192));
  size_t blocks_before = arena.stats().block_count;
  arena.Donate(region, 8192);
  void* reused = arena.Allocate(4096);
  EXPECT_EQ(arena.stats().block_count, blocks_before) << "should not have asked the OS";
  EXPECT_EQ(arena.stats().donations_reused, 1u);
  EXPECT_GE(reused, static_cast<void*>(region));
  EXPECT_LT(reused, static_cast<void*>(region + 8192));
}

TEST(Arena, TakeDonationReturnsLargestFitAndRemovesIt) {
  Arena arena;
  char* small = static_cast<char*>(arena.Allocate(2048));
  char* large = static_cast<char*>(arena.Allocate(8192));
  arena.Donate(small, 2048);
  arena.Donate(large, 8192);

  auto [taken, taken_bytes] = arena.TakeDonation(4096);
  EXPECT_EQ(taken, static_cast<void*>(large));
  EXPECT_EQ(taken_bytes, 8192u);
  EXPECT_EQ(arena.stats().donations_taken, 1u);

  // Gone from the list: the same request now finds nothing...
  auto [again, again_bytes] = arena.TakeDonation(4096);
  EXPECT_EQ(again, nullptr);
  EXPECT_EQ(again_bytes, 0u);

  // ...but the smaller donation is still available for requests it can satisfy.
  auto [second, second_bytes] = arena.TakeDonation(1024);
  EXPECT_EQ(second, static_cast<void*>(small));
  EXPECT_EQ(second_bytes, 2048u);
}

TEST(Arena, TinyDonationsAreDiscarded) {
  Arena arena;
  char buffer[32];
  arena.Donate(buffer, sizeof(buffer));
  EXPECT_EQ(arena.stats().donations, 1u);
  // Nothing to verify beyond "no crash, never reused": allocate a lot and ensure the
  // foreign buffer is never handed back.
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(128);
    EXPECT_TRUE(p < static_cast<void*>(buffer) || p >= static_cast<void*>(buffer + 32));
  }
}

TEST(Arena, NewConstructsTriviallyDestructibleTypes) {
  struct Pod {
    int x;
    double y;
  };
  Arena arena;
  Pod* pod = arena.New<Pod>(7, 2.5);
  EXPECT_EQ(pod->x, 7);
  EXPECT_EQ(pod->y, 2.5);
}

TEST(Arena, NewArrayIsWritable) {
  Arena arena;
  int* xs = arena.NewArray<int>(100);
  for (int i = 0; i < 100; ++i) {
    xs[i] = i;
  }
  EXPECT_EQ(xs[99], 99);
}

TEST(Arena, TraceRecordsAllocationSizes) {
  Arena arena;
  std::vector<uint32_t> trace;
  arena.set_trace(&trace);
  arena.Allocate(10);
  arena.Allocate(20);
  arena.InternString("abc");  // 4 bytes with the NUL
  arena.set_trace(nullptr);
  arena.Allocate(99);  // not recorded
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0], 10u);
  EXPECT_EQ(trace[1], 20u);
  EXPECT_EQ(trace[2], 4u);
}

TEST(Arena, StatsTrackRequestsAndReserves) {
  Arena arena(4096);
  arena.Allocate(100);
  arena.Allocate(200);
  const Arena::Stats& stats = arena.stats();
  EXPECT_EQ(stats.allocation_count, 2u);
  EXPECT_GE(stats.bytes_requested, 300u);
  EXPECT_GE(stats.bytes_reserved, stats.bytes_requested);
}

}  // namespace
}  // namespace pathalias
