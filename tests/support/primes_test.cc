#include "src/support/primes.h"

#include <gtest/gtest.h>

namespace pathalias {
namespace {

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(IsPrime(0));
  EXPECT_FALSE(IsPrime(1));
  EXPECT_TRUE(IsPrime(2));
  EXPECT_TRUE(IsPrime(3));
  EXPECT_FALSE(IsPrime(4));
  EXPECT_TRUE(IsPrime(5));
  EXPECT_FALSE(IsPrime(9));
  EXPECT_TRUE(IsPrime(31));
  EXPECT_FALSE(IsPrime(33));
  EXPECT_TRUE(IsPrime(37));
  EXPECT_FALSE(IsPrime(35));
}

TEST(IsPrime, AgreesWithTrialDivisionUpTo10000) {
  auto trial = [](uint64_t n) {
    if (n < 2) {
      return false;
    }
    for (uint64_t d = 2; d * d <= n; ++d) {
      if (n % d == 0) {
        return false;
      }
    }
    return true;
  };
  for (uint64_t n = 0; n <= 10000; ++n) {
    ASSERT_EQ(IsPrime(n), trial(n)) << n;
  }
}

TEST(IsPrime, CarmichaelNumbersAreComposite) {
  // Fermat liars that defeat naive probabilistic tests.
  for (uint64_t carmichael : {561ull, 1105ull, 1729ull, 2465ull, 41041ull, 825265ull}) {
    EXPECT_FALSE(IsPrime(carmichael)) << carmichael;
  }
}

TEST(IsPrime, LargeKnownPrimes) {
  EXPECT_TRUE(IsPrime(2147483647ull));          // 2^31 - 1
  EXPECT_TRUE(IsPrime(4294967311ull));          // first prime above 2^32
  EXPECT_TRUE(IsPrime(18446744073709551557ull));  // largest 64-bit prime
  EXPECT_FALSE(IsPrime(18446744073709551555ull));
  EXPECT_FALSE(IsPrime(4294967297ull));  // F5 = 641 * 6700417
}

TEST(NextPrime, ReturnsFirstPrimeAtOrAbove) {
  EXPECT_EQ(NextPrime(0), 2u);
  EXPECT_EQ(NextPrime(2), 2u);
  EXPECT_EQ(NextPrime(3), 3u);
  EXPECT_EQ(NextPrime(4), 5u);
  EXPECT_EQ(NextPrime(90), 97u);
  EXPECT_EQ(NextPrime(7920), 7927u);
}

TEST(FibonacciPrimes, SequenceStartsAsDocumented) {
  std::vector<uint64_t> seq = FibonacciPrimes::Sequence(8);
  ASSERT_EQ(seq.size(), 8u);
  EXPECT_EQ(seq[0], 3u);
  EXPECT_EQ(seq[1], 5u);
  EXPECT_EQ(seq[2], 11u);   // NextPrime(3+5)
  EXPECT_EQ(seq[3], 17u);   // NextPrime(5+11)
  EXPECT_EQ(seq[4], 29u);   // NextPrime(11+17)
  EXPECT_EQ(seq[5], 47u);
  EXPECT_EQ(seq[6], 79u);
  EXPECT_EQ(seq[7], 127u);
}

TEST(FibonacciPrimes, AllMembersPrimeAndIncreasing) {
  std::vector<uint64_t> seq = FibonacciPrimes::Sequence(30);
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(IsPrime(seq[i])) << seq[i];
    if (i > 0) {
      EXPECT_GT(seq[i], seq[i - 1]);
    }
  }
}

TEST(FibonacciPrimes, GrowthApproachesGoldenRatio) {
  // "maintain a Fibonacci sequence of primes (more or less), which also follows the
  // golden ratio" — the design point the paper wants from its growth policy.
  std::vector<uint64_t> seq = FibonacciPrimes::Sequence(25);
  for (size_t i = 10; i < seq.size(); ++i) {
    double ratio = static_cast<double>(seq[i]) / static_cast<double>(seq[i - 1]);
    EXPECT_GT(ratio, 1.55) << "at index " << i;
    EXPECT_LT(ratio, 1.70) << "at index " << i;
  }
}

TEST(FibonacciPrimes, NextSizeSkipsToStrictlyLarger) {
  FibonacciPrimes seq;
  EXPECT_EQ(seq.NextSize(0), 5u);  // first call starts the sequence
  EXPECT_EQ(seq.NextSize(5), 11u);
  EXPECT_EQ(seq.NextSize(100), 127u);  // jumps several steps at once
  EXPECT_EQ(seq.NextSize(127), 211u);
}

TEST(FibonacciPrimes, FreshGeneratorCatchesUpFromAnyPoint) {
  FibonacciPrimes seq;
  uint64_t size = seq.NextSize(5000);
  EXPECT_GT(size, 5000u);
  EXPECT_TRUE(IsPrime(size));
}

}  // namespace
}  // namespace pathalias
