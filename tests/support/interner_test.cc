#include "src/support/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

namespace pathalias {
namespace {

TEST(NameInterner, InternIsIdempotent) {
  NameInterner interner;
  NameId a = interner.Intern("seismo");
  NameId b = interner.Intern("seismo");
  EXPECT_EQ(a, b);
  EXPECT_NE(interner.Intern("ihnp4"), a);
}

TEST(NameInterner, FindNeverCreates) {
  NameInterner interner;
  EXPECT_EQ(interner.Find("ghost"), kNoName);
  size_t before = interner.size();
  EXPECT_EQ(interner.Find("ghost"), kNoName);
  EXPECT_EQ(interner.size(), before);
  NameId id = interner.Intern("ghost");
  EXPECT_EQ(interner.Find("ghost"), id);
}

TEST(NameInterner, ViewIsNulTerminatedAndStable) {
  NameInterner interner;
  NameId id = interner.Intern(std::string("duke"));  // temporary: bytes must be copied
  std::string_view view = interner.View(id);
  EXPECT_EQ(view, "duke");
  EXPECT_EQ(view.data()[view.size()], '\0');
  EXPECT_STREQ(interner.CStr(id), "duke");
}

TEST(NameInterner, CaseNormalizationFoldsEverySurface) {
  NameInterner interner(NameInterner::Options{.fold_case = true});
  NameId a = interner.Intern("SeIsMo");
  EXPECT_EQ(interner.Intern("seismo"), a);
  EXPECT_EQ(interner.Intern("SEISMO"), a);
  EXPECT_EQ(interner.Find("sEiSmO"), a);
  EXPECT_EQ(interner.View(a), "seismo") << "stored copy is the normalized form";
}

TEST(NameInterner, CaseMattersByDefault) {
  NameInterner interner;
  EXPECT_NE(interner.Intern("Seismo"), interner.Intern("seismo"));
  EXPECT_EQ(interner.Find("SEISMO"), kNoName);
}

TEST(NameInterner, IdsAreDenseAndStableAcrossRehash) {
  NameInterner interner;
  constexpr int kCount = 20000;  // far past several Fibonacci growths
  std::vector<NameId> ids;
  std::vector<const char*> pointers;
  ids.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    std::string name = "host" + std::to_string(i);
    NameId id = interner.Intern(name);
    ids.push_back(id);
    pointers.push_back(interner.CStr(id));
  }
  EXPECT_GT(interner.stats().rehashes, 5u) << "the test must actually cross rehashes";
  for (int i = 0; i < kCount; ++i) {
    std::string name = "host" + std::to_string(i);
    EXPECT_EQ(interner.Find(name), ids[i]) << name;
    EXPECT_EQ(interner.Intern(name), ids[i]) << name;
    EXPECT_EQ(interner.CStr(ids[i]), pointers[i]) << "string storage must not move";
  }
}

TEST(NameInterner, SuffixChainForDottedHost) {
  NameInterner interner;
  NameId caip = interner.Intern("caip.rutgers.edu");
  NameId rutgers = interner.Find(".rutgers.edu");
  NameId edu = interner.Find(".edu");
  ASSERT_NE(rutgers, kNoName) << "interning a dotted name interns its suffixes";
  ASSERT_NE(edu, kNoName);
  EXPECT_EQ(interner.Suffix(caip), rutgers);
  EXPECT_EQ(interner.Suffix(rutgers), edu);
  EXPECT_EQ(interner.Suffix(edu), kNoName);
}

TEST(NameInterner, SuffixChainOfUndottedNameIsEmpty) {
  NameInterner interner;
  EXPECT_EQ(interner.Suffix(interner.Intern("seismo")), kNoName);
}

TEST(NameInterner, HasSuffixWalksTheChain) {
  NameInterner interner;
  NameId sub = interner.Intern(".css.gov.edu");
  NameId gov = interner.Find(".gov.edu");
  NameId edu = interner.Find(".edu");
  EXPECT_TRUE(interner.HasSuffix(sub, gov));
  EXPECT_TRUE(interner.HasSuffix(sub, edu));
  EXPECT_FALSE(interner.HasSuffix(sub, sub)) << "a name is not its own suffix";
  EXPECT_FALSE(interner.HasSuffix(edu, sub));
  NameId unrelated = interner.Intern(".com");
  EXPECT_FALSE(interner.HasSuffix(sub, unrelated));
}

TEST(NameInterner, SuffixChainSharedBetweenSiblings) {
  NameInterner interner;
  NameId a = interner.Intern("caip.rutgers.edu");
  NameId b = interner.Intern("topaz.rutgers.edu");
  EXPECT_EQ(interner.Suffix(a), interner.Suffix(b)) << "siblings share one chain";
}

TEST(NameInterner, SuffixChainsRespectCaseFolding) {
  NameInterner interner(NameInterner::Options{.fold_case = true});
  NameId caip = interner.Intern("CAIP.Rutgers.EDU");
  NameId edu = interner.Find(".edu");
  ASSERT_NE(edu, kNoName);
  EXPECT_TRUE(interner.HasSuffix(caip, edu));
}

TEST(NameInterner, StealTableKeepsViewsAndDegradesLookups) {
  NameInterner interner;
  NameId caip = interner.Intern("caip.rutgers.edu");
  NameId seismo = interner.Intern("seismo");
  uint64_t capacity = interner.table_capacity();
  auto [storage, bytes] = interner.StealTable();
  ASSERT_NE(storage, nullptr);
  EXPECT_EQ(bytes, capacity * 8u) << "8-byte slots: big enough for a pointer heap";
  EXPECT_EQ(reinterpret_cast<uintptr_t>(storage) % 8u, 0u);
  EXPECT_TRUE(interner.stolen());
  // Back-resolution and chains survive the theft.
  EXPECT_EQ(interner.View(caip), "caip.rutgers.edu");
  EXPECT_EQ(interner.Suffix(caip), interner.Find(".rutgers.edu"));
  // Lookups fall back to a linear scan, and interning still works.
  EXPECT_EQ(interner.Find("seismo"), seismo);
  EXPECT_EQ(interner.Intern("seismo"), seismo);
  NameId late = interner.Intern("latecomer");
  EXPECT_EQ(interner.Find("latecomer"), late);
}

TEST(NameInterner, SharedArenaReceivesTheStrings) {
  Arena arena;
  size_t before = arena.stats().bytes_requested;
  NameInterner interner(&arena, NameInterner::Options{});
  interner.Intern("research");
  EXPECT_GT(arena.stats().bytes_requested, before);
}

TEST(NameInterner, MatchesReferenceMapUnderCollisionPressure) {
  NameInterner interner;
  std::unordered_map<std::string, NameId> reference;
  for (int i = 0; i < 5000; ++i) {
    std::string name = "c" + std::to_string((i * 7919) % 2500);
    NameId id = interner.Intern(name);
    auto [it, inserted] = reference.emplace(name, id);
    EXPECT_EQ(it->second, id) << name;
  }
  EXPECT_EQ(interner.size(), reference.size());
}

// The growth path the route database needs: a million distinct names keep dense ids,
// O(1) views, and a load factor below the paper's αH high-water mark.
TEST(NameInterner, MillionNameGrowthPath) {
  NameInterner interner;
  constexpr uint32_t kCount = 1000000;
  for (uint32_t i = 0; i < kCount; ++i) {
    char buffer[32];
    int len = std::snprintf(buffer, sizeof(buffer), "n%u", i);
    NameId id = interner.Intern(std::string_view(buffer, static_cast<size_t>(len)));
    ASSERT_EQ(id, i) << "ids are dense in first-intern order";
  }
  EXPECT_EQ(interner.size(), kCount);
  EXPECT_LE(interner.load_factor(), NameInterner::kHighWater + 1e-9);
  // Spot-check id -> view -> id round trips across the whole range.
  for (uint32_t i = 0; i < kCount; i += 99991) {
    std::string expected = "n" + std::to_string(i);
    EXPECT_EQ(interner.View(i), expected);
    EXPECT_EQ(interner.Find(expected), i);
  }
}

}  // namespace
}  // namespace pathalias
