// Tests for the diagnostics sink and the deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "src/support/diag.h"
#include "src/support/rng.h"

namespace pathalias {
namespace {

TEST(Diagnostics, CountsBySeverity) {
  Diagnostics diag;
  diag.Note({}, "n");
  diag.Warn({}, "w1");
  diag.Warn({}, "w2");
  diag.Error({}, "e");
  EXPECT_EQ(diag.error_count(), 1);
  EXPECT_EQ(diag.warning_count(), 2);
  EXPECT_FALSE(diag.ok());
  EXPECT_EQ(diag.diagnostics().size(), 4u);
}

TEST(Diagnostics, RendersFileLineSeverity) {
  Diagnostic diagnostic{Severity::kError, {"map.txt", 12}, "bad link"};
  EXPECT_EQ(ToString(diagnostic), "map.txt:12: error: bad link");
  Diagnostic no_line{Severity::kWarning, {"map.txt", 0}, "eof oddity"};
  EXPECT_EQ(ToString(no_line), "map.txt: warning: eof oddity");
  Diagnostic no_file{Severity::kNote, {}, "hello"};
  EXPECT_EQ(ToString(no_file), "note: hello");
}

TEST(Diagnostics, SinkStreamsEachReport) {
  Diagnostics diag;
  int seen = 0;
  diag.set_sink([&](const Diagnostic&) { ++seen; });
  diag.Warn({}, "one");
  diag.Error({}, "two");
  EXPECT_EQ(seen, 2);
}

TEST(Diagnostics, MentionsSearchesMessages) {
  Diagnostics diag;
  diag.Warn({}, "duplicate link a!b");
  EXPECT_TRUE(diag.Mentions("duplicate link"));
  EXPECT_FALSE(diag.Mentions("unreachable"));
}

TEST(Diagnostics, ClearResets) {
  Diagnostics diag;
  diag.Error({}, "boom");
  diag.Clear();
  EXPECT_TRUE(diag.ok());
  EXPECT_TRUE(diag.diagnostics().empty());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(9);
  for (uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(10);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t value = rng.Range(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 5u) << "all five values should appear in 500 draws";
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double value = rng.Double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(12);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = values;
  rng.Shuffle(shuffled);
  std::multiset<int> a(values.begin(), values.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pathalias
