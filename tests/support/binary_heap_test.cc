#include "src/support/binary_heap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "src/support/rng.h"

namespace pathalias {
namespace {

struct Item {
  int64_t key = 0;
  int32_t heap_index = 0;
  int id = 0;
};

struct ItemLess {
  bool operator()(const Item* a, const Item* b) const {
    if (a->key != b->key) {
      return a->key < b->key;
    }
    return a->id < b->id;  // deterministic tie-break
  }
};

struct ItemHook {
  static void SetIndex(Item* item, int32_t index) { item->heap_index = index; }
  static int32_t GetIndex(const Item* item) { return item->heap_index; }
};

using Heap = BinaryHeap<Item*, ItemLess, ItemHook>;

TEST(BinaryHeap, PopsInIncreasingOrder) {
  std::vector<Item> items(50);
  Heap heap;
  for (int i = 0; i < 50; ++i) {
    items[static_cast<size_t>(i)].key = (i * 37) % 50;
    items[static_cast<size_t>(i)].id = i;
    heap.Push(&items[static_cast<size_t>(i)]);
  }
  int64_t last = -1;
  while (!heap.empty()) {
    Item* item = heap.PopMin();
    EXPECT_GE(item->key, last);
    last = item->key;
    EXPECT_EQ(item->heap_index, 0) << "popped item should be marked out of the heap";
  }
}

TEST(BinaryHeap, IndexZeroMeansNotInHeap) {
  Item item{5, 0, 1};
  Heap heap;
  EXPECT_FALSE(heap.Contains(&item));
  heap.Push(&item);
  EXPECT_TRUE(heap.Contains(&item));
  EXPECT_GT(item.heap_index, 0);
  heap.PopMin();
  EXPECT_FALSE(heap.Contains(&item));
}

TEST(BinaryHeap, DecreaseKeyPromotesElement) {
  std::vector<Item> items(10);
  Heap heap;
  for (int i = 0; i < 10; ++i) {
    items[static_cast<size_t>(i)].key = 100 + i;
    items[static_cast<size_t>(i)].id = i;
    heap.Push(&items[static_cast<size_t>(i)]);
  }
  items[7].key = 1;  // decrease in place, then restore
  heap.DecreaseKey(&items[7]);
  EXPECT_EQ(heap.PopMin(), &items[7]);
}

TEST(BinaryHeap, DecreaseKeyToTieUsesIdOrder) {
  std::vector<Item> items(3);
  Heap heap;
  for (int i = 0; i < 3; ++i) {
    items[static_cast<size_t>(i)].key = 10 + i;
    items[static_cast<size_t>(i)].id = i;
    heap.Push(&items[static_cast<size_t>(i)]);
  }
  items[2].key = 10;
  heap.DecreaseKey(&items[2]);
  EXPECT_EQ(heap.PopMin()->id, 0);  // tie on key 10 broken by id
  EXPECT_EQ(heap.PopMin()->id, 2);
}

TEST(BinaryHeap, AdoptedStorageWorksWithoutAllocation) {
  std::vector<Item> items(32);
  std::vector<Item*> storage(64);
  Heap heap(storage.data(), storage.size());
  for (int i = 0; i < 32; ++i) {
    items[static_cast<size_t>(i)].key = 32 - i;
    items[static_cast<size_t>(i)].id = i;
    heap.Push(&items[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(heap.size(), 32u);
  int64_t last = -1;
  while (!heap.empty()) {
    int64_t key = heap.PopMin()->key;
    EXPECT_GE(key, last);
    last = key;
  }
}

// Property test: a long random mix of pushes, pops, and decrease-keys agrees with a
// reference priority queue at every extraction.
class BinaryHeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BinaryHeapPropertyTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  constexpr int kItems = 400;
  std::vector<Item> items(kItems);
  for (int i = 0; i < kItems; ++i) {
    items[static_cast<size_t>(i)].id = i;
  }
  Heap heap;
  std::vector<Item*> live;  // items currently in the heap
  auto reference_min = [&]() {
    return *std::min_element(live.begin(), live.end(), ItemLess());
  };
  int next_unused = 0;
  for (int step = 0; step < 2000; ++step) {
    double roll = rng.Double();
    if (roll < 0.45 && next_unused < kItems) {
      Item* item = &items[static_cast<size_t>(next_unused++)];
      item->key = static_cast<int64_t>(rng.Below(1000));
      heap.Push(item);
      live.push_back(item);
    } else if (roll < 0.70 && !live.empty()) {
      Item* item = live[rng.Below(live.size())];
      item->key -= static_cast<int64_t>(rng.Below(50));
      heap.DecreaseKey(item);
    } else if (!live.empty()) {
      Item* expected = reference_min();
      Item* actual = heap.PopMin();
      ASSERT_EQ(actual, expected) << "step " << step;
      live.erase(std::find(live.begin(), live.end(), actual));
    }
  }
  while (!live.empty()) {
    Item* expected = reference_min();
    Item* actual = heap.PopMin();
    ASSERT_EQ(actual, expected);
    live.erase(std::find(live.begin(), live.end(), actual));
  }
  EXPECT_TRUE(heap.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryHeapPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pathalias
