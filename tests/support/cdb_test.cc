#include "src/support/cdb.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace pathalias {
namespace {

TEST(Cdb, RoundTripsSmallSet) {
  CdbWriter writer;
  writer.Put("unc", "%s");
  writer.Put("duke", "duke!%s");
  writer.Put("mit-ai", "duke!research!ucbvax!%s@mit-ai");
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->record_count(), 3u);
  EXPECT_EQ(reader->Get("unc").value_or(""), "%s");
  EXPECT_EQ(reader->Get("duke").value_or(""), "duke!%s");
  EXPECT_EQ(reader->Get("mit-ai").value_or(""), "duke!research!ucbvax!%s@mit-ai");
}

TEST(Cdb, MissingKeysReturnNothing) {
  CdbWriter writer;
  writer.Put("a", "1");
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_FALSE(reader->Get("b").has_value());
  EXPECT_FALSE(reader->Get("").has_value());
  EXPECT_FALSE(reader->Get("aa").has_value());
}

TEST(Cdb, LaterPutReplacesEarlier) {
  CdbWriter writer;
  writer.Put("host", "old!%s");
  writer.Put("host", "new!%s");
  EXPECT_EQ(writer.size(), 1u);
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->Get("host").value_or(""), "new!%s");
}

TEST(Cdb, EmptyDatabaseIsValid) {
  CdbWriter writer;
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->record_count(), 0u);
  EXPECT_FALSE(reader->Get("anything").has_value());
}

TEST(Cdb, EmptyValuesAndBinaryValuesSurvive) {
  CdbWriter writer;
  writer.Put("empty", "");
  writer.Put("binary", std::string("\x00\x01\xff", 3));
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->Get("empty").value_or("x"), "");
  EXPECT_EQ(reader->Get("binary").value_or(""), std::string("\x00\x01\xff", 3));
}

TEST(Cdb, RejectsCorruptImages) {
  EXPECT_FALSE(CdbReader::FromBuffer("").has_value());
  EXPECT_FALSE(CdbReader::FromBuffer("garbage").has_value());
  EXPECT_FALSE(CdbReader::FromBuffer(std::string(64, '\0')).has_value());

  CdbWriter writer;
  writer.Put("k", "v");
  std::string image = writer.WriteBuffer();
  std::string truncated = image.substr(0, image.size() - 7);
  EXPECT_FALSE(CdbReader::FromBuffer(truncated).has_value());
  std::string bad_magic = image;
  bad_magic[0] = 'X';
  EXPECT_FALSE(CdbReader::FromBuffer(bad_magic).has_value());
}

TEST(Cdb, ForEachVisitsInInsertionOrder) {
  CdbWriter writer;
  writer.Put("one", "1");
  writer.Put("two", "2");
  writer.Put("three", "3");
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  std::vector<std::string> keys;
  reader->ForEach([&](std::string_view key, std::string_view) { keys.emplace_back(key); });
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "one");
  EXPECT_EQ(keys[1], "two");
  EXPECT_EQ(keys[2], "three");
}

TEST(Cdb, FileRoundTrip) {
  std::string path =
      (std::filesystem::temp_directory_path() / "pathalias_cdb_test.cdb").string();
  CdbWriter writer;
  writer.Put("seismo", "seismo!%s");
  ASSERT_TRUE(writer.WriteFile(path));
  auto reader = CdbReader::Open(path);
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->Get("seismo").value_or(""), "seismo!%s");
  std::remove(path.c_str());
}

TEST(Cdb, OpenMissingFileFails) {
  EXPECT_FALSE(CdbReader::Open("/nonexistent/路徑/routes.cdb").has_value());
}

class CdbScaleTest : public ::testing::TestWithParam<int> {};

TEST_P(CdbScaleTest, AllKeysRetrievableAtScale) {
  int count = GetParam();
  CdbWriter writer;
  for (int i = 0; i < count; ++i) {
    writer.Put("host" + std::to_string(i), "route" + std::to_string(i * 3) + "!%s");
  }
  auto reader = CdbReader::FromBuffer(writer.WriteBuffer());
  ASSERT_TRUE(reader.has_value());
  EXPECT_EQ(reader->record_count(), static_cast<uint64_t>(count));
  for (int i = 0; i < count; i += 7) {
    auto value = reader->Get("host" + std::to_string(i));
    ASSERT_TRUE(value.has_value()) << i;
    EXPECT_EQ(*value, "route" + std::to_string(i * 3) + "!%s");
  }
  EXPECT_FALSE(reader->Get("host" + std::to_string(count)).has_value());
}

INSTANTIATE_TEST_SUITE_P(Sizes, CdbScaleTest, ::testing::Values(1, 10, 100, 1000, 10000));

}  // namespace
}  // namespace pathalias
