#include "src/support/hash_table.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/rng.h"

namespace pathalias {
namespace {

// Interns keys in the arena the way Graph does.
class TableFixture {
 public:
  Arena arena;
  HashTable<int> table{&arena};

  const char* Intern(const std::string& key) { return arena.InternString(key); }
};

TEST(HashHostName, DiffersOnRealHostNames) {
  // Not a collision-freeness claim, just sanity on representative 1986 names.
  std::vector<std::string> names = {"seismo", "ihnp4",  "ucbvax",   "decvax", "mcvax",
                                    "unc",    "duke",   "research", "phs",    "allegra",
                                    "bilbo",  "bilbo1", "1bilbo",   ".edu",   ".rutgers.edu"};
  for (size_t i = 0; i < names.size(); ++i) {
    for (size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(HashHostName(names[i]), HashHostName(names[j]))
          << names[i] << " vs " << names[j];
    }
  }
}

TEST(HashHostName, DependsOnOrder) {
  EXPECT_NE(HashHostName("ab"), HashHostName("ba"));
}

TEST(SecondaryHash, PaperAndKnuthStayInRange) {
  PaperSecondaryHash paper;
  KnuthSecondaryHash knuth;
  for (uint64_t t : {5ull, 11ull, 61ull, 127ull, 1009ull}) {
    for (uint64_t k = 0; k < 500; ++k) {
      uint64_t h = HashHostName("host" + std::to_string(k));
      uint64_t p = paper(h, t);
      uint64_t q = knuth(h, t);
      EXPECT_GE(p, 1u);
      EXPECT_LE(p, t - 2);
      EXPECT_GE(q, 1u);
      EXPECT_LE(q, t - 2);
    }
  }
}

TEST(HashTable, InsertAndFind) {
  TableFixture f;
  EXPECT_TRUE(f.table.Insert(f.Intern("seismo"), 1));
  EXPECT_TRUE(f.table.Insert(f.Intern("ihnp4"), 2));
  ASSERT_NE(f.table.Find("seismo"), nullptr);
  EXPECT_EQ(*f.table.Find("seismo"), 1);
  ASSERT_NE(f.table.Find("ihnp4"), nullptr);
  EXPECT_EQ(*f.table.Find("ihnp4"), 2);
  EXPECT_EQ(f.table.Find("mcvax"), nullptr);
}

TEST(HashTable, DuplicateInsertRejected) {
  TableFixture f;
  EXPECT_TRUE(f.table.Insert(f.Intern("unc"), 1));
  EXPECT_FALSE(f.table.Insert(f.Intern("unc"), 2));
  EXPECT_EQ(*f.table.Find("unc"), 1);
  EXPECT_EQ(f.table.size(), 1u);
}

TEST(HashTable, FindOnEmptyTable) {
  Arena arena;
  HashTable<int> table(&arena, 0);
  EXPECT_EQ(table.Find("anything"), nullptr);
}

TEST(HashTable, ValueIsMutableThroughFind) {
  TableFixture f;
  f.table.Insert(f.Intern("duke"), 10);
  *f.table.Find("duke") = 99;
  EXPECT_EQ(*f.table.Find("duke"), 99);
}

TEST(HashTable, GrowthPreservesAllEntries) {
  TableFixture f;
  constexpr int kCount = 5000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(f.table.Insert(f.Intern("host" + std::to_string(i)), i));
  }
  EXPECT_EQ(f.table.size(), static_cast<uint64_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    int* value = f.table.Find("host" + std::to_string(i));
    ASSERT_NE(value, nullptr) << i;
    EXPECT_EQ(*value, i);
  }
  EXPECT_GT(f.table.probe_stats().rehashes, 5u);
}

TEST(HashTable, LoadFactorNeverExceedsHighWater) {
  TableFixture f;
  for (int i = 0; i < 2000; ++i) {
    f.table.Insert(f.Intern("h" + std::to_string(i)), i);
    ASSERT_LE(f.table.load_factor(), HashTable<int>::kHighWater + 1e-9) << "after " << i;
  }
}

TEST(HashTable, CapacityIsAlwaysPrime) {
  TableFixture f;
  for (int i = 0; i < 3000; ++i) {
    f.table.Insert(f.Intern("n" + std::to_string(i)), i);
    ASSERT_TRUE(IsPrime(f.table.capacity())) << f.table.capacity();
  }
}

TEST(HashTable, DiscardedTablesAreDonatedToArena) {
  TableFixture f;
  for (int i = 0; i < 2000; ++i) {
    f.table.Insert(f.Intern("d" + std::to_string(i)), i);
  }
  // Every rehash after the initial allocation donates the old slot array (the first
  // growth has no predecessor to donate).
  EXPECT_EQ(f.arena.stats().donations, f.table.probe_stats().rehashes - 1);
  EXPECT_GT(f.arena.stats().donations_reused, 0u)
      << "later growth should reuse earlier tables' storage";
}

TEST(HashTable, ProbeStatsCountAccesses) {
  TableFixture f;
  f.table.ResetProbeStats();
  f.table.Insert(f.Intern("a"), 1);
  f.table.Find("a");
  f.table.Find("missing");
  const auto& stats = f.table.probe_stats();
  EXPECT_EQ(stats.accesses, 3u);
  EXPECT_GE(stats.probes, 3u);
}

TEST(HashTable, AverageProbesNearTwoAtHighWater) {
  // Gonnet's prediction the paper cites: ~2 probes per successful access at α = 0.79.
  TableFixture f;
  constexpr int kCount = 20000;
  std::vector<std::string> keys;
  keys.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    keys.push_back("probe" + std::to_string(i * 7919));
    f.table.Insert(f.Intern(keys.back()), i);
  }
  f.table.ResetProbeStats();
  for (const std::string& key : keys) {
    ASSERT_NE(f.table.Find(key), nullptr);
  }
  double average = static_cast<double>(f.table.probe_stats().probes) /
                   static_cast<double>(f.table.probe_stats().accesses);
  // The table sits somewhere at or below the high-water mark after its last growth, so
  // the average must be comfortably under the full-load prediction.
  EXPECT_LT(average, 2.1);
  EXPECT_GE(average, 1.0);
}

TEST(HashTable, StealSlotsReturnsUsableStorage) {
  TableFixture f;
  for (int i = 0; i < 100; ++i) {
    f.table.Insert(f.Intern("s" + std::to_string(i)), i);
  }
  uint64_t capacity = f.table.capacity();
  auto [storage, bytes] = f.table.StealSlots();
  ASSERT_NE(storage, nullptr);
  EXPECT_EQ(bytes, capacity * sizeof(HashTable<int>::Slot));
  EXPECT_TRUE(f.table.stolen());
  // The arena still owns it; writing through it must be safe.
  std::memset(storage, 0x5A, bytes);
}

TEST(HashTable, GeometricGrowthDoubles) {
  GeometricGrowth growth;
  uint64_t next = growth.Next(61, 49);
  EXPECT_GE(next, 123u);
  EXPECT_TRUE(IsPrime(next));
  EXPECT_LT(next, 140u);
}

TEST(HashTable, ArithmeticGrowthTargetsLowWater) {
  ArithmeticGrowth growth;
  uint64_t next = growth.Next(1009, 800);
  EXPECT_TRUE(IsPrime(next));
  // 800 entries at the 0.49 low-water mark need ~1633 slots; candidates step by 512.
  EXPECT_GE(next, 1633u);
  EXPECT_LE(next, 2560u);
}

TEST(HashTable, KnuthSecondaryVariantStillCorrect) {
  Arena arena;
  HashTable<int, KnuthSecondaryHash> table(&arena);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table.Insert(arena.InternString("k" + std::to_string(i)), i));
  }
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(table.Find("k" + std::to_string(i)), nullptr);
  }
}

TEST(HashTable, GeometricGrowthVariantStillCorrect) {
  Arena arena;
  HashTable<int, PaperSecondaryHash, GeometricGrowth> table(&arena);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(table.Insert(arena.InternString("g" + std::to_string(i)), i));
  }
  EXPECT_EQ(table.size(), 1000u);
}

// Adversarial: many keys forced into the same primary bucket still resolve.
TEST(HashTable, SurvivesHeavyCollisions) {
  Arena arena;
  HashTable<int> table(&arena, 1009);
  Rng rng(7);
  std::unordered_map<std::string, int> reference;
  for (int i = 0; i < 700; ++i) {
    std::string key = "c" + std::to_string(rng.Below(100000));
    bool inserted = table.Insert(arena.InternString(key), i);
    bool reference_inserted = reference.emplace(key, i).second;
    ASSERT_EQ(inserted, reference_inserted) << key;
  }
  for (const auto& [key, value] : reference) {
    int* found = table.Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(*found, value);
  }
}

using GrowthPolicyNames = ::testing::Types<FibonacciGrowth, GeometricGrowth, ArithmeticGrowth>;

template <typename Growth>
class GrowthPolicyTest : public ::testing::Test {};

TYPED_TEST_SUITE(GrowthPolicyTest, GrowthPolicyNames);

TYPED_TEST(GrowthPolicyTest, TableStaysCorrectThroughManyGrowths) {
  Arena arena;
  HashTable<int, PaperSecondaryHash, TypeParam> table(&arena);
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(table.Insert(arena.InternString("x" + std::to_string(i)), i));
  }
  for (int i = 0; i < 4000; i += 37) {
    int* found = table.Find("x" + std::to_string(i));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, i);
  }
  EXPECT_TRUE(IsPrime(table.capacity()));
}

}  // namespace
}  // namespace pathalias
