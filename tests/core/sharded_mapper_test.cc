// Golden byte-equivalence for the domain-sharded parallel mapper.
//
// The contract under test is absolute: for every map and every shard count, routes
// produced through ShardedMapper are byte-identical to the serial Mapper's —
// whether the sharded engine engaged or refused and fell back.  Coverage comes in
// three layers: the paper's worked example (tiny, alias-bearing), mapgen's
// usenet-scale maps at shard counts 1/2/4/8 (where engagement is also asserted, so
// the guarantee is not vacuously met by constant fallback), and a seeded fuzz
// sweep over random domain-structured maps with aliases, dead declarations, nets
// and cross-domain ties.  Gate behavior (small maps, degenerate partitions,
// non-default options) is pinned separately.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/pathalias.h"
#include "src/mapgen/mapgen.h"
#include "src/support/rng.h"

namespace pathalias {
namespace {

constexpr std::string_view kPaperInput = R"(unc	duke(HOURLY), phs(HOURLY*4)
duke	unc(DEMAND), research(DAILY/2), phs(DEMAND)
phs	unc(HOURLY*4), duke(HOURLY)
research	duke(DEMAND), ucbvax(DEMAND)
ucbvax	research(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
)";

struct PipelineRun {
  std::string output;
  ShardStats stats;
  size_t errors = 0;
};

PipelineRun RunPipeline(const std::vector<InputFile>& files, const std::string& local,
                        int shards, size_t min_nodes = 0) {
  Diagnostics diag;
  RunOptions options;
  options.local = local;
  options.print.include_costs = true;
  options.shard.shards = shards;
  options.shard.min_nodes = min_nodes;
  options.shard.threads = 2;
  RunResult result = pathalias::Run(files, options, &diag);
  return PipelineRun{result.output, result.shard_stats,
                     static_cast<size_t>(diag.error_count())};
}

std::vector<InputFile> SingleFile(std::string_view text) {
  return {InputFile{"<input>", std::string(text)}};
}

TEST(ShardedMapper, PaperExampleIsByteIdenticalAtEveryShardCount) {
  PipelineRun serial = RunPipeline(SingleFile(kPaperInput), "unc", 0);
  ASSERT_EQ(serial.errors, 0u);
  for (int shards : {1, 2, 4, 8}) {
    PipelineRun sharded = RunPipeline(SingleFile(kPaperInput), "unc", shards);
    EXPECT_EQ(sharded.output, serial.output) << "shards=" << shards;
  }
}

TEST(ShardedMapper, UsenetScaleMapsAreByteIdenticalAndEngage) {
  for (int hosts : {2000, 6000}) {
    GeneratedMap map = GenerateUsenetMap(MapGenConfig::UsenetScale(hosts));
    PipelineRun serial = RunPipeline(map.files, map.local, 0);
    ASSERT_EQ(serial.errors, 0u);
    ASSERT_GT(serial.output.size(), static_cast<size_t>(hosts) * 8) << "suspiciously few routes";
    for (int shards : {1, 2, 4, 8}) {
      PipelineRun sharded = RunPipeline(map.files, map.local, shards);
      EXPECT_EQ(sharded.output, serial.output) << "hosts=" << hosts << " shards=" << shards;
      if (shards > 1) {
        EXPECT_TRUE(sharded.stats.engaged)
            << "hosts=" << hosts << " shards=" << shards << " fell back: "
            << sharded.stats.fallback_reason;
        EXPECT_EQ(sharded.stats.shards_used, shards);
        EXPECT_GE(sharded.stats.rounds, 1u);
        EXPECT_GT(sharded.stats.groups, 1u);
      }
    }
  }
}

TEST(ShardedMapper, UsenetScaleWithDeeperDomainsIsByteIdentical) {
  MapGenConfig config = MapGenConfig::UsenetScale(3000);
  config.domain_depth = 5;
  config.seed = 7;
  GeneratedMap map = GenerateUsenetMap(config);
  PipelineRun serial = RunPipeline(map.files, map.local, 0);
  PipelineRun sharded = RunPipeline(map.files, map.local, 4);
  EXPECT_EQ(sharded.output, serial.output);
  EXPECT_TRUE(sharded.stats.engaged) << sharded.stats.fallback_reason;
}

// ---- gates -----------------------------------------------------------------

TEST(ShardedMapper, SmallMapsFallBackOnThreshold) {
  PipelineRun run = RunPipeline(SingleFile(kPaperInput), "unc", 4, /*min_nodes=*/4096);
  EXPECT_FALSE(run.stats.engaged);
  EXPECT_EQ(run.stats.fallback_reason, "map below sharding threshold");
}

TEST(ShardedMapper, FlatMapsFallBackAsDegenerate) {
  // All-flat names: one suffix group holds everything, so sharding cannot help.
  std::string text;
  for (int i = 0; i < 64; ++i) {
    text += "h" + std::to_string(i) + "\th" + std::to_string((i + 1) % 64) + "(100)\n";
  }
  PipelineRun serial = RunPipeline(SingleFile(text), "h0", 0);
  PipelineRun sharded = RunPipeline(SingleFile(text), "h0", 4);
  EXPECT_EQ(sharded.output, serial.output);
  EXPECT_FALSE(sharded.stats.engaged);
  EXPECT_EQ(sharded.stats.fallback_reason, "degenerate partition (one suffix subtree dominates)");
}

TEST(ShardedMapper, NonDefaultOptionsFallBack) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::UsenetScale(1000));
  Diagnostics diag;
  RunOptions options;
  options.local = map.local;
  options.shard.shards = 4;
  options.shard.min_nodes = 0;
  options.map.two_label = true;
  RunResult result = pathalias::Run(map.files, options, &diag);
  EXPECT_FALSE(result.shard_stats.engaged);
  EXPECT_EQ(result.shard_stats.fallback_reason, "two-label mode");
}

// ---- seeded fuzz -----------------------------------------------------------
//
// Random maps with the features that stress the order-independent relax rule:
// several domain subtrees (so partitions are real), cross-subtree links at equal
// costs (tie elections across shard boundaries), aliases (the refusal path),
// dead hosts/links (penalty bits riding along equal-cost ties), nets, and
// call-out-only hosts (back-link passes at the sharded pass boundary).

std::string FuzzMap(uint64_t seed, int* host_count) {
  Rng rng(seed);
  std::string text;
  int domains = static_cast<int>(2 + rng.Below(4));
  std::vector<std::string> all;
  std::vector<std::string> tops;
  for (int d = 0; d < domains; ++d) {
    std::string top = ".d" + std::to_string(d);
    tops.push_back(top);
    text += "net" + std::to_string(d) + " = @{";
    int members = static_cast<int>(3 + rng.Below(8));
    std::vector<std::string> local_members;
    for (int m = 0; m < members; ++m) {
      std::string name = "m" + std::to_string(m) + std::to_string(d) + top;
      local_members.push_back(name);
      all.push_back(name);
      text += (m > 0 ? ", " : "") + name;
    }
    text += "}(" + std::to_string(100 * (1 + rng.Below(4))) + ")\n";
    // Intra-domain mesh at repeated costs, to manufacture equal-(cost, hops) ties.
    for (const std::string& from : local_members) {
      if (rng.Below(2) == 0) {
        const std::string& to = local_members[rng.Below(local_members.size())];
        if (to != from) {
          text += from + "\t" + to + "(" + std::to_string(100 * (1 + rng.Below(3))) + ")\n";
        }
      }
    }
  }
  int flats = static_cast<int>(4 + rng.Below(8));
  for (int f = 0; f < flats; ++f) {
    std::string name = "u" + std::to_string(f);
    all.push_back(name);
  }
  // The hub ties the partitions together; extra random edges cross them.
  text += "hub\t";
  for (size_t i = 0; i < tops.size(); ++i) {
    text += (i > 0 ? ", " : "") + tops[i] + "(200)";
  }
  for (int f = 0; f < flats; ++f) {
    text += ", u" + std::to_string(f) + "(" + std::to_string(100 * (1 + rng.Below(3))) + ")";
  }
  text += "\n";
  all.push_back("hub");
  for (int e = 0; e < 24; ++e) {
    const std::string& from = all[rng.Below(all.size())];
    const std::string& to = all[rng.Below(all.size())];
    if (from != to) {
      text += from + "\t" + to + "(" + std::to_string(100 * (1 + rng.Below(3))) + ")\n";
    }
  }
  // Aliases (some cross-partition), dead declarations, a one-way leaf.
  for (int a = 0; a < 3; ++a) {
    const std::string& target = all[rng.Below(all.size())];
    text += "alias" + std::to_string(a) + " = " + target + "\n";
  }
  if (rng.Below(2) == 0) {
    text += "dead {" + all[rng.Below(all.size())] + "}\n";
  }
  if (rng.Below(2) == 0) {
    const std::string& from = all[rng.Below(all.size())];
    const std::string& to = all[rng.Below(all.size())];
    if (from != to) {
      text += "dead {" + from + "!" + to + "}\n";
    }
  }
  text += "lonely\thub(900)\n";  // calls out only; its return route is invented
  *host_count = static_cast<int>(all.size()) + 1;
  return text;
}

TEST(ShardedMapper, FuzzRandomMapsMatchSerialAtEveryShardCount) {
  size_t engaged = 0;
  size_t fallbacks = 0;
  for (uint64_t seed = 1; seed <= 120; ++seed) {
    int hosts = 0;
    std::string text = FuzzMap(seed, &hosts);
    PipelineRun serial = RunPipeline(SingleFile(text), "hub", 0);
    for (int shards : {2, 3, 5}) {
      PipelineRun sharded = RunPipeline(SingleFile(text), "hub", shards);
      ASSERT_EQ(sharded.output, serial.output) << "seed=" << seed << " shards=" << shards
                                               << "\nmap:\n" << text;
      if (sharded.stats.engaged) {
        ++engaged;
      } else {
        ++fallbacks;
      }
    }
  }
  // Non-vacuousness: the sweep must exercise the engaged path heavily.  Fallbacks
  // (alias-warped ties, degenerate partitions) are allowed but may not dominate.
  EXPECT_GT(engaged, 120u) << "engaged=" << engaged << " fallbacks=" << fallbacks;
}

}  // namespace
}  // namespace pathalias
