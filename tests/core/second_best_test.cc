// Experiment E10: the paper's §Problems figure and the "second-best path" fix.
//
// The connection graph (edge weights chosen to land on the figure's printed costs,
// 425+∞ on the left branch vs 500 on the right):
//
//              motown
//                | 25
//              caip
//         0 /        \ 175
//   .rutgers.edu     topaz
//        400 \        / 300
//            princeton
//
// Default pathalias maps caip through the domain (cost 400, cheaper) and is then
// "committed to that route for hosts beyond it": motown's only route inherits the
// domain-relay penalty, total 425+∞.  The two-label mapper keeps the clean second-best
// path to caip (via topaz, 475) and routes motown over it at a clean 500 — "the right
// branch should be preferred.  (In practice, the mailer at Rutgers rejects the left
// branch route.)"

#include <gtest/gtest.h>

#include "src/core/pathalias.h"

namespace pathalias {
namespace {

constexpr std::string_view kMotownMap =
    "princeton\t.rutgers.edu(400), topaz(300)\n"
    ".rutgers.edu\tcaip(0)\n"
    "topaz\tcaip(175)\n"
    "caip\tmotown(25)\n";

const RouteEntry* Find(const RunResult& result, std::string_view name) {
  for (const RouteEntry& entry : result.routes) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

TEST(SecondBest, DefaultMapperCommitsToPenalizedRoute) {
  Diagnostics diag;
  RunOptions options;
  options.local = "princeton";
  RunResult result = RunString(kMotownMap, options, &diag);

  // caip itself: the domain route is cheaper and fine as a destination.
  const RouteEntry* caip = Find(result, "caip.rutgers.edu");
  ASSERT_NE(caip, nullptr);
  EXPECT_EQ(caip->cost, 400);
  EXPECT_EQ(caip->route, "caip.rutgers.edu!%s");

  // motown: the tree is committed to the left branch; cost is 425 + "infinity".
  const RouteEntry* motown = Find(result, "motown");
  ASSERT_NE(motown, nullptr);
  EXPECT_EQ(motown->cost, 425 + kInfinity);
  EXPECT_EQ(result.map.penalized_routes, 1u);
}

TEST(SecondBest, TwoLabelMapperFindsTheCleanRoute) {
  Diagnostics diag;
  RunOptions options;
  options.local = "princeton";
  options.map.two_label = true;
  RunResult result = RunString(kMotownMap, options, &diag);

  // caip still reports its cheapest route (through the domain)...
  const RouteEntry* caip = Find(result, "caip.rutgers.edu");
  ASSERT_NE(caip, nullptr);
  EXPECT_EQ(caip->cost, 400);

  // ...but motown now rides the second-best, domain-free path to caip.
  const RouteEntry* motown = Find(result, "motown");
  ASSERT_NE(motown, nullptr);
  EXPECT_EQ(motown->cost, 500) << "the right branch: princeton!topaz!caip!motown";
  EXPECT_EQ(motown->route, "topaz!caip!motown!%s");
  EXPECT_EQ(result.map.penalized_routes, 0u);
}

TEST(SecondBest, TwoLabelKeepsBothLabelsForDomainReachedHosts) {
  Diagnostics diag;
  RunOptions options;
  options.local = "princeton";
  options.map.two_label = true;
  RunResult result = RunString(kMotownMap, options, &diag);
  Node* caip = result.graph->Find("caip");
  ASSERT_NE(caip, nullptr);
  ASSERT_NE(caip->label[0], nullptr) << "clean label";
  ASSERT_NE(caip->label[1], nullptr) << "via-domain label";
  EXPECT_EQ(caip->label[1]->cost, 400);
  EXPECT_EQ(caip->label[0]->cost, 475);
  EXPECT_TRUE(caip->label[1]->best);
  EXPECT_FALSE(caip->label[0]->best);
}

TEST(SecondBest, TwoLabelMatchesDefaultWhenNoDomainsInvolved) {
  constexpr std::string_view kPlainMap = "a\tb(100), c(50)\nb\td(10)\nc\td(100)\n";
  Diagnostics diag_a;
  Diagnostics diag_b;
  RunOptions plain;
  plain.local = "a";
  RunOptions two_label = plain;
  two_label.map.two_label = true;
  RunResult a = RunString(kPlainMap, plain, &diag_a);
  RunResult b = RunString(kPlainMap, two_label, &diag_b);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].name, b.routes[i].name);
    EXPECT_EQ(a.routes[i].route, b.routes[i].route);
    EXPECT_EQ(a.routes[i].cost, b.routes[i].cost);
  }
}

TEST(SecondBest, PaperExampleUnchangedUnderTwoLabel) {
  constexpr std::string_view kPaperInput =
      "unc\tduke(HOURLY), phs(HOURLY*4)\n"
      "duke\tunc(DEMAND), research(DAILY/2), phs(DEMAND)\n"
      "phs\tunc(HOURLY*4), duke(HOURLY)\n"
      "research\tduke(DEMAND), ucbvax(DEMAND)\n"
      "ucbvax\tresearch(DAILY)\n"
      "ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)\n";
  Diagnostics diag;
  RunOptions options;
  options.local = "unc";
  options.map.two_label = true;
  options.print.include_costs = true;
  RunResult result = RunString(kPaperInput, options, &diag);
  EXPECT_EQ(result.output,
            "0\tunc\t%s\n"
            "500\tduke\tduke!%s\n"
            "800\tphs\tduke!phs!%s\n"
            "3000\tresearch\tduke!research!%s\n"
            "3300\tucbvax\tduke!research!ucbvax!%s\n"
            "3395\tmit-ai\tduke!research!ucbvax!%s@mit-ai\n"
            "3395\tstanford\tduke!research!ucbvax!%s@stanford\n");
}

}  // namespace
}  // namespace pathalias
