// Experiment E2: the paper's worked example (§Output) must reproduce byte-for-byte.
//
// Input is "a simplified portion of the map from 1981"; the expected output is printed
// verbatim in the paper, including the cost column, the routing of everything through
// duke despite unc's direct phs link, and the mixed-syntax ARPANET routes.

#include <gtest/gtest.h>

#include "src/core/pathalias.h"

namespace pathalias {
namespace {

constexpr std::string_view kPaperInput = R"(unc	duke(HOURLY), phs(HOURLY*4)
duke	unc(DEMAND), research(DAILY/2), phs(DEMAND)
phs	unc(HOURLY*4), duke(HOURLY)
research	duke(DEMAND), ucbvax(DEMAND)
ucbvax	research(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
)";

constexpr std::string_view kPaperOutput =
    "0\tunc\t%s\n"
    "500\tduke\tduke!%s\n"
    "800\tphs\tduke!phs!%s\n"
    "3000\tresearch\tduke!research!%s\n"
    "3300\tucbvax\tduke!research!ucbvax!%s\n"
    "3395\tmit-ai\tduke!research!ucbvax!%s@mit-ai\n"
    "3395\tstanford\tduke!research!ucbvax!%s@stanford\n";

TEST(Example1981, ReproducesPaperOutputExactly) {
  Diagnostics diag;
  RunOptions options;
  options.local = "unc";
  options.print.include_costs = true;
  RunResult result = RunString(kPaperInput, options, &diag);
  EXPECT_EQ(diag.error_count(), 0) << diag.ToString();
  EXPECT_EQ(result.output, kPaperOutput);
}

TEST(Example1981, RoutesThroughDukeDespiteDirectPhsLink) {
  Diagnostics diag;
  RunOptions options;
  options.local = "unc";
  RunResult result = RunString(kPaperInput, options, &diag);
  bool saw_phs = false;
  for (const RouteEntry& entry : result.routes) {
    if (entry.name == "phs") {
      saw_phs = true;
      EXPECT_EQ(entry.route, "duke!phs!%s");
      EXPECT_EQ(entry.cost, 800);
    }
  }
  EXPECT_TRUE(saw_phs);
}

TEST(Example1981, NetworkNodeIsNotPrinted) {
  Diagnostics diag;
  RunOptions options;
  options.local = "unc";
  RunResult result = RunString(kPaperInput, options, &diag);
  for (const RouteEntry& entry : result.routes) {
    EXPECT_NE(entry.name, "ARPA");
  }
}

}  // namespace
}  // namespace pathalias
