// Mapping invariants checked over randomized whole maps.  These are the properties
// Dijkstra's correctness argument rests on, restated against pathalias's heuristic
// cost function and both label modes:
//   * tree shape — every mapped label's parent chain reaches the root through mapped
//     labels, with hop counts consistent along the way;
//   * monotonicity — cost never decreases from parent to child (negative adjustments
//     are clamped, penalties only add);
//   * relaxation closure — no single edge can improve any finished label: for every
//     link u→v, cost(v) <= CostOf(best-label(u), link).

#include <gtest/gtest.h>

#include "src/core/pathalias.h"
#include "src/mapgen/mapgen.h"

namespace pathalias {
namespace {

struct Mapped {
  Diagnostics diag;
  std::unique_ptr<Graph> graph;
  Mapper::Result result;
};

std::unique_ptr<Mapped> MapSmall(uint64_t seed, bool two_label) {
  MapGenConfig config = MapGenConfig::Small();
  config.seed = seed;
  GeneratedMap map = GenerateUsenetMap(config);
  auto mapped = std::make_unique<Mapped>();
  mapped->graph = std::make_unique<Graph>(&mapped->diag);
  Parser parser(mapped->graph.get());
  parser.ParseFiles(map.files);
  mapped->graph->SetLocal(map.local);
  MapOptions options;
  options.two_label = two_label;
  Mapper mapper(mapped->graph.get(), options);
  mapped->result = mapper.Run();
  return mapped;
}

class MappingInvariantsTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool>> {};

TEST_P(MappingInvariantsTest, TreeShapeAndHopCounts) {
  auto [seed, two_label] = GetParam();
  auto mapped = MapSmall(seed, two_label);
  size_t roots = 0;
  for (const PathLabel* label : mapped->result.labels) {
    if (!label->mapped) {
      continue;
    }
    if (label->parent == nullptr) {
      ++roots;
      EXPECT_EQ(label->cost, 0);
      EXPECT_EQ(label->hops, 0);
      continue;
    }
    ASSERT_TRUE(label->parent->mapped) << label->node->name;
    ASSERT_NE(label->via, nullptr);
    EXPECT_EQ(label->via->to, label->node);
    int expected_hops = label->parent->hops + (label->via->alias() ? 0 : 1);
    EXPECT_EQ(label->hops, expected_hops) << label->node->name;
    // Walk to the root; must terminate (no cycles) within the label count.
    size_t steps = 0;
    for (const PathLabel* cursor = label; cursor->parent != nullptr;
         cursor = cursor->parent) {
      ASSERT_LT(++steps, mapped->result.labels.size() + 1) << "parent cycle";
    }
  }
  EXPECT_EQ(roots, 1u);
}

TEST_P(MappingInvariantsTest, CostsNeverDecreaseAlongTheTree) {
  auto [seed, two_label] = GetParam();
  auto mapped = MapSmall(seed, two_label);
  for (const PathLabel* label : mapped->result.labels) {
    if (!label->mapped || label->parent == nullptr) {
      continue;
    }
    EXPECT_GE(label->cost, label->parent->cost) << label->node->name;
  }
}

TEST_P(MappingInvariantsTest, NoEdgeImprovesAnyFinishedLabel) {
  auto [seed, two_label] = GetParam();
  auto mapped = MapSmall(seed, two_label);
  MapOptions options;
  options.two_label = two_label;
  Mapper pricer(mapped->graph.get(), options);
  size_t checked = 0;
  for (const Node* node : mapped->graph->nodes()) {
    if (node->deleted() || node->cost == kUnreached) {
      continue;
    }
    for (uint8_t slot = 0; slot < 2; ++slot) {
      const PathLabel* from = node->label[slot];
      if (from == nullptr || !from->mapped) {
        continue;
      }
      for (const Link* link = node->links; link != nullptr; link = link->next) {
        const Node* to = link->to;
        if (to->deleted()) {
          continue;
        }
        Cost through = pricer.CostOf(*from, *link);
        ASSERT_NE(to->cost, kUnreached)
            << to->name << " unreached despite an edge from mapped " << node->name;
        EXPECT_LE(to->cost, through)
            << node->name << " -> " << to->name << " would improve the tree";
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 1000u);
}

TEST_P(MappingInvariantsTest, BestLabelIsTheCheapest) {
  auto [seed, two_label] = GetParam();
  auto mapped = MapSmall(seed, two_label);
  for (const Node* node : mapped->graph->nodes()) {
    const PathLabel* best = nullptr;
    for (uint8_t slot = 0; slot < 2; ++slot) {
      if (node->label[slot] != nullptr && node->label[slot]->best) {
        ASSERT_EQ(best, nullptr) << "two best labels on " << node->name;
        best = node->label[slot];
      }
    }
    if (best == nullptr) {
      continue;
    }
    EXPECT_EQ(best->cost, node->cost);
    for (uint8_t slot = 0; slot < 2; ++slot) {
      const PathLabel* other = node->label[slot];
      if (other != nullptr && other != best && other->mapped) {
        EXPECT_GE(other->cost, best->cost) << node->name;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndModes, MappingInvariantsTest,
    ::testing::Combine(::testing::Values(101, 202, 303, 404),
                       ::testing::Bool()),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_twolabel" : "_single");
    });

}  // namespace
}  // namespace pathalias
