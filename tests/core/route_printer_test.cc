#include "src/core/route_printer.h"

#include <gtest/gtest.h>

#include "src/core/pathalias.h"

namespace pathalias {
namespace {

struct Printed {
  RunResult result;
  Diagnostics diag;

  const RouteEntry* Find(std::string_view name) const {
    for (const RouteEntry& entry : result.routes) {
      if (entry.name == name) {
        return &entry;
      }
    }
    return nullptr;
  }
  bool Has(std::string_view name) const { return Find(name) != nullptr; }
};

Printed RunPrint(std::string_view map_text, std::string local, PrintOptions print = {}) {
  Printed printed;
  RunOptions options;
  options.local = std::move(local);
  options.print = print;
  printed.result = RunString(map_text, options, &printed.diag);
  return printed;
}

TEST(RoutePrinter, RootIsLocalHostWithBareMarker) {
  Printed p = RunPrint("a\tb(10)\n", "a");
  ASSERT_FALSE(p.result.routes.empty());
  EXPECT_EQ(p.result.routes[0].name, "a");
  EXPECT_EQ(p.result.routes[0].route, "%s");
  EXPECT_EQ(p.result.routes[0].cost, 0);
}

TEST(RoutePrinter, DomainChainAppendsNamesPaperExample) {
  // The paper's seismo figure: split domain names .edu / .rutgers, appended on the way
  // down, yielding seismo!caip.rutgers.edu!%s.
  Printed p = RunPrint(
      "local\tseismo(100)\n"
      "seismo\t.edu(95)\n"
      ".edu\t.rutgers(0)\n"
      ".rutgers\tcaip(0)\n",
      "local");
  const RouteEntry* caip = p.Find("caip.rutgers.edu");
  ASSERT_NE(caip, nullptr);
  EXPECT_EQ(caip->route, "seismo!caip.rutgers.edu!%s");
}

TEST(RoutePrinter, FullyQualifiedDomainNamesDoNotDoubleAppend) {
  // The same tree declared with fully qualified subdomain names.
  Printed p = RunPrint(
      "local\tseismo(100)\n"
      "seismo\t.edu(95)\n"
      ".edu\t.rutgers.edu(0)\n"
      ".rutgers.edu\tcaip(0)\n",
      "local");
  const RouteEntry* caip = p.Find("caip.rutgers.edu");
  ASSERT_NE(caip, nullptr);
  EXPECT_EQ(caip->route, "seismo!caip.rutgers.edu!%s");
}

TEST(RoutePrinter, TopLevelDomainIsPrintedWithParentRoute) {
  // "a top level domain ... is shown in the output.  The route is given by the route
  // to its parent (i.e., its gateway)."
  Printed p = RunPrint("local\tseismo(100)\nseismo\t.edu(95)\n.edu\tcaip(0)\n", "local");
  const RouteEntry* edu = p.Find(".edu");
  ASSERT_NE(edu, nullptr);
  EXPECT_EQ(edu->route, "seismo!%s");
}

TEST(RoutePrinter, SubdomainsAreNotPrinted) {
  Printed p = RunPrint(
      "local\tseismo(100)\nseismo\t.edu(95)\n.edu\t.rutgers(0)\n.rutgers\tcaip(0)\n",
      "local");
  EXPECT_TRUE(p.Has(".edu"));
  EXPECT_FALSE(p.Has(".rutgers")) << "routes to subdomains are not printed";
  EXPECT_FALSE(p.Has(".rutgers.edu"));
}

TEST(RoutePrinter, MasqueradingSubdomainPaperExample) {
  // ".rutgers.edu" declared as its own top-level domain with gateway caip: "This makes
  // caip a gateway for .rutgers.edu, but not for the ARPANET as a whole."
  Printed p = RunPrint(
      "host\tcaip(50)\n"
      "caip\t.rutgers.edu(95)\n"
      ".rutgers.edu\tblue(0)\n",
      "host");
  EXPECT_EQ(p.Find("caip")->route, "caip!%s");
  const RouteEntry* masq = p.Find(".rutgers.edu");
  ASSERT_NE(masq, nullptr);
  EXPECT_EQ(masq->route, "caip!%s");
  const RouteEntry* blue = p.Find("blue.rutgers.edu");
  ASSERT_NE(blue, nullptr);
  EXPECT_EQ(blue->route, "caip!blue.rutgers.edu!%s");
}

TEST(RoutePrinter, NetworksNeverAppearInOutput) {
  Printed p = RunPrint("a\tgw(10)\ngw\t@NET(5)\nNET = @{x, y}(95)\n", "a");
  EXPECT_FALSE(p.Has("NET"));
  EXPECT_TRUE(p.Has("x"));
  EXPECT_TRUE(p.Has("y"));
}

TEST(RoutePrinter, NetMembersUseEntrySyntax) {
  // "the routing character and direction are the ones encountered when entering the
  // network" — enter with @, members are addressed %s@member.
  Printed p = RunPrint("a\tgw(10)\ngw\t@NET(5)\nNET = @{x}(95)\n", "a");
  EXPECT_EQ(p.Find("x")->route, "gw!%s@x");
}

TEST(RoutePrinter, DifferentGatewaysMayUseDifferentSyntax) {
  // "This allows different gateways between two networks to use different syntax."
  // Entering through lgw (bang syntax) must produce a bang-style member address.
  Printed p = RunPrint(
      "a\tlgw(10)\n"
      "lgw\tNET!(5)\n"
      "NET = @{x}(95)\n",
      "a");
  EXPECT_EQ(p.Find("x")->route, "lgw!x!%s");
}

TEST(RoutePrinter, SecondRightHopUsesUndergroundPercentSyntax) {
  // Reaching a net member through a host that is itself addressed user@gateway must
  // not emit a second '@'; the inner hop uses the user%inner@outer convention.
  Printed p = RunPrint(
      "a\tb(10)\n"
      "b\t@gw(20)\n"
      "NET = @{gw, inner}(95)\n",
      "a");
  EXPECT_EQ(p.Find("gw")->route, "b!%s@gw");
  const RouteEntry* inner = p.Find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->route, "b!%s%inner@gw");
  // And the spliced form is exactly what a 1986 gateway rewrites.
  EXPECT_EQ(RoutePrinter::SpliceUser(inner->route, "user"), "b!user%inner@gw");
}

TEST(RoutePrinter, PrivateHostsHiddenButUsableAsRelay) {
  Printed p = RunPrint(
      "private {secret}\n"
      "a\tsecret(10)\n"
      "secret\tb(10)\n",
      "a");
  EXPECT_FALSE(p.Has("secret")) << "no output line for a private host";
  const RouteEntry* b = p.Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->route, "secret!b!%s") << "but it may appear as a relay";
}

TEST(RoutePrinter, OutputOrderIsPreorderCheapestFirst) {
  Printed p = RunPrint("a\tb(100), c(50)\nb\td(1)\nc\te(1)\n", "a");
  std::vector<std::string> names;
  for (const RouteEntry& entry : p.result.routes) {
    names.push_back(entry.name);
  }
  // Preorder with children by cost: a, then c(50) subtree, then b(100) subtree...
  // e hangs under c (51), d under b (101).
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "c");
  EXPECT_EQ(names[2], "e");
  EXPECT_EQ(names[3], "b");
  EXPECT_EQ(names[4], "d");
}

TEST(RoutePrinter, FirstHopCostMode) {
  PrintOptions print;
  print.first_hop_cost = true;
  Printed p = RunPrint("a\tb(100)\nb\tc(50)\nc\td(25)\n", "a", print);
  EXPECT_EQ(p.Find("b")->cost, 100);
  EXPECT_EQ(p.Find("c")->cost, 100) << "-f reports the first hop, not the total";
  EXPECT_EQ(p.Find("d")->cost, 100);
  EXPECT_EQ(p.Find("a")->cost, 0);
}

TEST(RoutePrinter, RenderWithAndWithoutCosts) {
  Printed p = RunPrint("a\tb(100)\n", "a");
  std::string plain = RoutePrinter::Render(p.result.routes, PrintOptions{});
  EXPECT_EQ(plain, "a\t%s\nb\tb!%s\n");
  std::string with_costs =
      RoutePrinter::Render(p.result.routes, PrintOptions{.include_costs = true});
  EXPECT_EQ(with_costs, "0\ta\t%s\n100\tb\tb!%s\n");
}

TEST(RoutePrinter, EveryRouteHasExactlyOneMarker) {
  Printed p = RunPrint(
      "a\tb(10), @c(20)\nb\td(5)\nNET = @{m1, m2}(95)\nc\t@NET(10)\n"
      "seismo\t.edu(95)\na\tseismo(40)\n.edu\tcaip(0)\n",
      "a");
  ASSERT_GT(p.result.routes.size(), 5u);
  for (const RouteEntry& entry : p.result.routes) {
    size_t first = entry.route.find("%s");
    ASSERT_NE(first, std::string::npos) << entry.name << ": " << entry.route;
    EXPECT_EQ(entry.route.find("%s", first + 1), std::string::npos)
        << entry.name << ": " << entry.route;
  }
}

TEST(RoutePrinter, SpliceUserSubstitutes) {
  EXPECT_EQ(RoutePrinter::SpliceUser("duke!%s", "honey"), "duke!honey");
  EXPECT_EQ(RoutePrinter::SpliceUser("a!%s@b", "piet"), "a!piet@b");
  EXPECT_EQ(RoutePrinter::SpliceUser("seismo!%s", "caip.rutgers.edu!pleasant"),
            "seismo!caip.rutgers.edu!pleasant");
}

TEST(RoutePrinter, UsableAsPrintfFormat) {
  // "Use of such a marker enables the generated path to be used directly as a format
  // string for printf."
  Printed p = RunPrint("a\tb(10)\nb\t@c(5)\n", "a");
  const RouteEntry* c = p.Find("c");
  ASSERT_NE(c, nullptr);
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), c->route.c_str(), "user");
  EXPECT_STREQ(buffer, "b!user@c");
}

}  // namespace
}  // namespace pathalias
