#include "src/core/mapper.h"

#include <gtest/gtest.h>

#include "src/core/pathalias.h"

namespace pathalias {
namespace {

// Convenience: run the pipeline and index routes by name.
struct Routes {
  RunResult result;
  Diagnostics diag;

  const RouteEntry* Find(std::string_view name) const {
    for (const RouteEntry& entry : result.routes) {
      if (entry.name == name) {
        return &entry;
      }
    }
    return nullptr;
  }
};

Routes Map(std::string_view map_text, std::string local, MapOptions map_options = {}) {
  Routes routes;
  RunOptions options;
  options.local = std::move(local);
  options.map = std::move(map_options);
  routes.result = RunString(map_text, options, &routes.diag);
  return routes;
}

TEST(Mapper, PrefersCheaperRelayOverDirectLink) {
  Routes r = Map("a\tb(100), c(500)\nb\tc(100)\n", "a");
  const RouteEntry* c = r.Find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->route, "b!c!%s");
  EXPECT_EQ(c->cost, 200);
}

TEST(Mapper, DirectLinkWinsWhenCheaper) {
  Routes r = Map("a\tb(100), c(150)\nb\tc(100)\n", "a");
  EXPECT_EQ(r.Find("c")->route, "c!%s");
  EXPECT_EQ(r.Find("c")->cost, 150);
}

TEST(Mapper, AliasCostsNothingAndInheritsRoute) {
  // The paper's nosc/noscvax case: the name in a route is the one the predecessor
  // understands; the alias rides along for free.
  Routes r = Map(
      "local\tarpagw(100), noscvax(5000)\n"
      "arpagw\t@nosc(10)\n"
      "nosc = noscvax\n",
      "local");
  const RouteEntry* nosc = r.Find("nosc");
  const RouteEntry* noscvax = r.Find("noscvax");
  ASSERT_NE(nosc, nullptr);
  ASSERT_NE(noscvax, nullptr);
  EXPECT_EQ(nosc->cost, 110);
  EXPECT_EQ(noscvax->cost, 110) << "alias edge is free";
  EXPECT_EQ(nosc->route, "arpagw!%s@nosc");
  EXPECT_EQ(noscvax->route, "arpagw!%s@nosc") << "route uses the ARPANET name";
}

TEST(Mapper, AliasResolvesPerRouteNotPerHost) {
  // When the UUCP side is cheaper, both names route via the UUCP name instead.
  Routes r = Map(
      "local\tarpagw(5000), noscvax(50)\n"
      "arpagw\t@nosc(10)\n"
      "nosc = noscvax\n",
      "local");
  EXPECT_EQ(r.Find("nosc")->route, "noscvax!%s");
  EXPECT_EQ(r.Find("noscvax")->route, "noscvax!%s");
  EXPECT_EQ(r.Find("nosc")->cost, 50);
}

TEST(Mapper, DeadLinkAvoidedWhenAlternativeExists) {
  Routes r = Map("a\tb(100), c(1000)\nb\tc(10)\ndead {b!c}\n", "a");
  EXPECT_EQ(r.Find("c")->route, "c!%s");
  EXPECT_EQ(r.Find("c")->cost, 1000);
}

TEST(Mapper, DeadLinkStillUsedAsLastResort) {
  Routes r = Map("a\tb(100)\nb\tc(10)\ndead {b!c}\n", "a");
  const RouteEntry* c = r.Find("c");
  ASSERT_NE(c, nullptr) << "penalties are finite; the route must still exist";
  EXPECT_GE(c->cost, kInfinity);
  EXPECT_EQ(c->route, "b!c!%s");
  EXPECT_EQ(r.result.map.penalized_routes, 1u);
}

TEST(Mapper, TerminalHostReceivesButDoesNotRelay) {
  Routes r = Map("a\tb(100), d(9000)\nb\tc(10)\ndead {b}\nd\tc(10)\n", "a");
  EXPECT_EQ(r.Find("b")->cost, 100) << "mail TO the dead host is fine";
  EXPECT_EQ(r.Find("c")->route, "d!c!%s") << "mail THROUGH it is not";
  EXPECT_EQ(r.Find("c")->cost, 9010);
}

TEST(Mapper, AdjustPenalizesPathsThroughHost) {
  Routes r = Map("a\tb(100), c(100)\nb\td(100)\nc\td(100)\nadjust {b(+50)}\n", "a");
  EXPECT_EQ(r.Find("d")->route, "c!d!%s");
  EXPECT_EQ(r.Find("d")->cost, 200);
  EXPECT_EQ(r.Find("b")->cost, 100) << "adjust charges transit, not delivery";
}

TEST(Mapper, NegativeAdjustAttractsTraffic) {
  Routes r = Map("a\tb(100), c(100)\nb\td(100)\nc\td(100)\nadjust {b(-50)}\n", "a");
  EXPECT_EQ(r.Find("d")->route, "b!d!%s");
  EXPECT_EQ(r.Find("d")->cost, 150);
}

TEST(Mapper, NegativeAdjustCannotShortenPrefix) {
  // Dijkstra's invariant: traversal cost clamps at the predecessor's cost.
  Routes r = Map("a\tb(100)\nb\tc(10)\nadjust {b(-100000)}\n", "a");
  EXPECT_EQ(r.Find("c")->cost, 100) << "clamped to cost(b), not negative";
}

TEST(Mapper, GatewayedNetRequiresGateway) {
  Routes r = Map(
      "NET = @{x, y}(95)\n"
      "a\tgw(100), rogue(100)\n"
      "gw\t@NET(50)\n"
      "rogue\t@NET(1)\n"
      "gatewayed {NET}\ngateway {NET!gw}\n",
      "a");
  const RouteEntry* x = r.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->route, "gw!%s@x") << "entry through the declared gateway";
  EXPECT_EQ(x->cost, 150);
}

TEST(Mapper, NonGatewayEntryPenalizedButUsable) {
  Routes r = Map(
      "NET = @{x}(95)\n"
      "a\trogue(100)\n"
      "rogue\t@NET(1)\n"
      "gatewayed {NET}\n",
      "a");
  const RouteEntry* x = r.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_GE(x->cost, kInfinity);
}

TEST(Mapper, RightThenLeftSyntaxPenalized) {
  // A route already using RIGHT syntax extended by a LEFT link is ambiguous under
  // every mailer convention; it exists only as a last resort.
  Routes r = Map(
      "a\t@relay(100)\n"
      "relay\tleaf(10)\n",
      "a");
  const RouteEntry* leaf = r.Find("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_GE(leaf->cost, kInfinity);
  EXPECT_EQ(r.result.map.syntax_penalized_routes, 1u);
  EXPECT_EQ(r.Find("relay")->cost, 100) << "the relay itself is clean";
}

TEST(Mapper, LeftThenRightUnpenalizedByDefault) {
  // The paper's own example output ends ...ucbvax!%s@mit-ai at plain summed cost.
  Routes r = Map("a\tb(100)\nb\t@c(10)\n", "a");
  EXPECT_EQ(r.Find("c")->cost, 110);
  EXPECT_EQ(r.Find("c")->route, "b!%s@c");
  EXPECT_EQ(r.result.map.syntax_penalized_routes, 0u);
  EXPECT_EQ(r.result.map.mixed_syntax_routes, 1u);
}

TEST(Mapper, StrictSyntaxModePenalizesBothDirections) {
  MapOptions options;
  options.penalize_left_then_right = true;
  Routes r = Map("a\tb(100)\nb\t@c(10)\n", "a", options);
  EXPECT_GE(r.Find("c")->cost, kInfinity);
  EXPECT_EQ(r.result.map.syntax_penalized_routes, 1u);
}

TEST(Mapper, BackLinksInventReturnRoutes) {
  // leaf only calls out; its return route is "generated by implication".
  Routes r = Map("hub\tother(100)\nleaf\thub(200)\n", "hub");
  const RouteEntry* leaf = r.Find("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->route, "leaf!%s");
  EXPECT_EQ(leaf->cost, 200) << "invented link inherits the forward cost";
  EXPECT_EQ(r.result.map.invented_links, 1u);
  EXPECT_EQ(r.result.map.unreachable_hosts, 0u);
}

TEST(Mapper, BackLinkChainsResolveInMultiplePasses) {
  Routes r = Map("hub\tx(10)\na\thub(100)\nb\ta(100)\nc\tb(100)\n", "hub");
  EXPECT_EQ(r.Find("c")->route, "a!b!c!%s");
  EXPECT_EQ(r.Find("c")->cost, 300);
  EXPECT_GE(r.result.map.back_link_passes, 2u);
}

TEST(Mapper, BackLinksCanBeDisabled) {
  MapOptions options;
  options.back_links = false;
  Routes r = Map("hub\tother(100)\nleaf\thub(200)\n", "hub", options);
  EXPECT_EQ(r.Find("leaf"), nullptr);
  EXPECT_EQ(r.result.map.unreachable_hosts, 1u);
  ASSERT_EQ(r.result.map.unreachable.size(), 1u);
  EXPECT_EQ(r.result.map.names->View(r.result.map.unreachable[0]->name), "leaf");
  EXPECT_TRUE(r.diag.Mentions("unreachable"));
}

TEST(Mapper, DeletedHostsAreInvisible) {
  Routes r = Map("a\tb(100)\nb\tc(10)\ndelete {b}\na\tc(5000)\n", "a");
  EXPECT_EQ(r.Find("b"), nullptr);
  EXPECT_EQ(r.Find("c")->cost, 5000) << "may not route through a deleted host";
}

TEST(Mapper, EqualCostPrefersFewerHops) {
  // Both routes to d cost 200; the per-hop overhead argument prefers the short one.
  Routes r = Map("a\tb(100), d(200)\nb\td(100)\n", "a");
  EXPECT_EQ(r.Find("d")->route, "d!%s");
}

TEST(Mapper, EqualCostEqualHopsBreaksTiesByName) {
  Routes r = Map("a\tzeta(100), beta(100)\nzeta\td(100)\nbeta\td(100)\n", "a");
  EXPECT_EQ(r.Find("d")->route, "beta!d!%s");
}

TEST(Mapper, UpDomainTraversalPenalized) {
  // caip!seismo.css.gov.edu.rutgers!%s must never happen: the edge from a subdomain up
  // to its parent is essentially infinite.
  Routes r = Map(
      "a\t.rutgers.edu(100)\n"
      ".rutgers.edu\tcaip(0), .edu(0)\n"
      ".edu\tharvard(0)\n",
      "a");
  const RouteEntry* harvard = nullptr;
  for (const RouteEntry& entry : r.result.routes) {
    if (entry.name.starts_with("harvard")) {
      harvard = &entry;
    }
  }
  ASSERT_NE(harvard, nullptr);
  EXPECT_GE(harvard->cost, kInfinity);
  // The absurd domainized name the paper warns about is exactly what the up-traversal
  // would produce — which is why it carries an essentially infinite cost.
  EXPECT_EQ(harvard->name, "harvard.edu.rutgers.edu");
}

TEST(Mapper, ContinuingPastADomainPenalized) {
  // "once a path enters a domain, pathalias penalizes further links."
  Routes r = Map(
      "a\t.dom(100)\n"
      ".dom\tmember(0)\n"
      "member\tbeyond(10)\n",
      "a");
  EXPECT_LT(r.Find("member.dom")->cost, kInfinity);
  const RouteEntry* beyond = r.Find("beyond");
  ASSERT_NE(beyond, nullptr);
  EXPECT_GE(beyond->cost, kInfinity);
}

TEST(Mapper, TraceEmitsNotes) {
  MapOptions options;
  options.trace.push_back("b");
  Routes r = Map("a\tb(100)\nb\tc(10)\n", "a", options);
  EXPECT_TRUE(r.diag.Mentions("trace: a -> b"));
  EXPECT_TRUE(r.diag.Mentions("trace: b -> c"));
}

TEST(Mapper, TraceOfUnknownTargetWarns) {
  MapOptions options;
  options.trace.push_back("nonesuch");
  Routes r = Map("a\tb(100)\n", "a", options);
  EXPECT_TRUE(r.diag.Mentions("trace target"));
}

TEST(Mapper, HeapStorageComesFromHashTable) {
  Routes r = Map("a\tb(100)\n", "a");
  EXPECT_TRUE(r.result.map.heap_storage_reused);
}

TEST(Mapper, SecondRunFallsBackToOwnedHeap) {
  Diagnostics diag;
  Graph graph(&diag);
  Parser parser(&graph);
  parser.ParseFile(InputFile{"m", "a\tb(100)\nb\tc(50)\n"});
  graph.SetLocal("a");
  Mapper mapper(&graph, MapOptions{});
  Mapper::Result first = mapper.Run();
  EXPECT_TRUE(first.heap_storage_reused);
  Mapper::Result second = mapper.Run();
  EXPECT_FALSE(second.heap_storage_reused) << "table already stolen";
  // Same mapping either way.
  EXPECT_EQ(first.mapped_hosts, second.mapped_hosts);
  EXPECT_EQ(graph.Find("c")->cost, 150);
}

TEST(Mapper, TwoLabelHeapStealsDonatedTableWhenInternerTableIsTooSmall) {
  // The ROADMAP note: two_label needs 2v+2 heap slots, the interner table only
  // guarantees ~1.27v.  A retired table on the arena's donation list fills the gap.
  Diagnostics diag;
  Graph graph(&diag);
  Parser parser(&graph);
  std::string map;
  constexpr int kHosts = 60;
  for (int i = 0; i < kHosts; ++i) {
    map += "h" + std::to_string(i) + "\th" + std::to_string((i + 1) % kHosts) + "(100)\n";
  }
  parser.ParseFile(InputFile{"m", map});
  graph.SetLocal("h0");
  size_t needed_slots = 2 * graph.node_count() + 2;
  ASSERT_LT(graph.names().table_capacity(), needed_slots)
      << "fixture must force the donation fallback";
  // Plant a donated region big enough for the heap (stands in for a retired table).
  size_t bytes = needed_slots * sizeof(void*) + 64;
  graph.arena().Donate(graph.arena().Allocate(bytes, alignof(void*)), bytes);

  MapOptions options;
  options.two_label = true;
  Mapper mapper(&graph, options);
  Mapper::Result result = mapper.Run();
  EXPECT_TRUE(result.heap_storage_reused);
  EXPECT_TRUE(result.heap_storage_from_donation);
  EXPECT_EQ(result.mapped_hosts, static_cast<size_t>(kHosts));
  EXPECT_EQ(graph.Find("h1")->cost, 100);
}

TEST(Mapper, TwoLabelWithoutDonationStillMaps) {
  // No donated region and a too-small table: reuse fails, the owned-heap path serves.
  Diagnostics diag;
  Graph graph(&diag);
  Parser parser(&graph);
  std::string map;
  for (int i = 0; i < 60; ++i) {
    map += "g" + std::to_string(i) + "\tg" + std::to_string((i + 1) % 60) + "(100)\n";
  }
  parser.ParseFile(InputFile{"m", map});
  graph.SetLocal("g0");
  MapOptions options;
  options.two_label = true;
  Mapper mapper(&graph, options);
  Mapper::Result result = mapper.Run();
  EXPECT_FALSE(result.heap_storage_from_donation);
  EXPECT_EQ(result.mapped_hosts, 60u);
}

TEST(Mapper, MissingLocalHostIsAnError) {
  Diagnostics diag;
  Graph graph(&diag);
  Mapper mapper(&graph, MapOptions{});
  Mapper::Result result = mapper.Run();
  EXPECT_EQ(result.mapped_hosts, 0u);
  EXPECT_EQ(diag.error_count(), 1);
}

TEST(Mapper, PenaltyBitsAccumulateAlongPath) {
  Routes r = Map(
      "a\tb(10)\nb\tc(10)\nc\td(10)\n"
      "dead {a!b, b}\n",
      "a");
  const RouteEntry* d = r.Find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_GE(d->cost, 2 * kInfinity) << "dead link and dead host both charged";
}

TEST(Mapper, StatsCountsAreConsistent) {
  Routes r = Map("a\tb(1), c(2)\nb\td(3)\nc\td(4)\nd\te(5)\n", "a");
  const auto& stats = r.result.map;
  EXPECT_EQ(stats.mapped_hosts, 5u);
  EXPECT_EQ(stats.heap_pops, stats.heap_pushes);
  EXPECT_EQ(stats.mapped_labels, stats.label_count);
  EXPECT_GE(stats.relaxations, 5u);
}

}  // namespace
}  // namespace pathalias
