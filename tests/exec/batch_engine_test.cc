// The sharded batch engine's contract: byte-identical to the serial resolver at any
// thread count, with the result cache on or off, over both backends.

#include "src/exec/batch_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/exec/result_cache.h"
#include "src/image/frozen_route_set.h"
#include "src/image/image_writer.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace pathalias {
namespace exec {
namespace {

// A route set big enough that every shard of an 8-way engine sees real traffic:
// hosts across several domains, domain keys, and a deep suffix chain.
RouteSet BuildRoutes() {
  RouteSet set;
  set.Add("seismo", "seismo!%s", 100);
  set.Add(".edu", "seismo!%s", 100);
  set.Add(".rutgers.edu", "caip!%s", 50);
  set.Add(".cs.wisc.edu", "spool!%s", 60);
  set.Add("duke", "duke!%s", 500);
  set.Add("phs", "duke!phs!%s", 800);
  set.Add("ucbvax", "duke!research!ucbvax!%s", 3300);
  for (int i = 0; i < 200; ++i) {
    std::string host = "host" + std::to_string(i);
    set.Add(host, host + "!%s", 100 + i);
    std::string member = "m" + std::to_string(i) + ".dept" + std::to_string(i % 7) + ".edu";
    set.Add(member, "seismo!" + member + "!%s", 200 + i);
  }
  return set;
}

// The mixed workload every test resolves: exact hits, suffix fallbacks through
// interned and un-interned names, misses, and queries with no routable shape.
std::vector<std::string> BuildQueryPool() {
  std::vector<std::string> pool;
  for (int i = 0; i < 200; ++i) {
    pool.push_back("host" + std::to_string(i));
    pool.push_back("m" + std::to_string(i) + ".dept" + std::to_string(i % 7) + ".edu");
    pool.push_back("stranger" + std::to_string(i) + ".rutgers.edu");
    pool.push_back("miss" + std::to_string(i) + ".unrouted.example");
  }
  pool.push_back("phs");
  pool.push_back(".edu");          // a domain key queried directly
  pool.push_back(".rutgers.edu");  // likewise, via an interned id
  pool.push_back("nowhere");       // undotted miss
  pool.push_back("");              // no routable shape at all
  pool.push_back("   ");           // whitespace only
  return pool;
}

std::vector<std::string_view> Views(const std::vector<std::string>& pool) {
  return std::vector<std::string_view>(pool.begin(), pool.end());
}

// Every observable field must match, including the view identity: cached results
// must alias the route source's storage, never a copy.
void ExpectSameResults(const std::vector<BatchLookup>& expected,
                       const std::vector<BatchLookup>& actual,
                       const std::vector<std::string_view>& queries) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].route.name, actual[i].route.name) << queries[i];
    EXPECT_EQ(expected[i].route.cost, actual[i].route.cost) << queries[i];
    EXPECT_EQ(expected[i].via, actual[i].via) << queries[i];
    EXPECT_EQ(expected[i].suffix_match, actual[i].suffix_match) << queries[i];
    EXPECT_EQ(expected[i].route.route.data(), actual[i].route.route.data())
        << queries[i] << ": the route view must alias the same storage";
    EXPECT_EQ(expected[i].route.route.size(), actual[i].route.route.size()) << queries[i];
  }
}

TEST(BatchEngine, MatchesSerialResolverAtEveryThreadAndCacheSetting) {
  RouteSet routes = BuildRoutes();
  std::vector<std::string> pool = BuildQueryPool();
  std::vector<std::string_view> queries = Views(pool);

  Resolver resolver(&routes, ResolveOptions{});
  std::vector<BatchLookup> serial(queries.size());
  size_t serial_resolved = resolver.ResolveBatch(queries, serial);
  ASSERT_GT(serial_resolved, 0u);

  for (int threads : {1, 2, 4, 8}) {
    for (size_t cache_entries : {size_t{0}, size_t{8}, size_t{4096}}) {
      BatchEngineOptions options;
      options.threads = threads;
      options.cache_entries = cache_entries;
      BatchEngine engine(&routes, options);
      std::vector<BatchLookup> parallel(queries.size());
      size_t resolved = engine.ResolveBatch(queries, parallel);
      EXPECT_EQ(resolved, serial_resolved)
          << threads << " threads, " << cache_entries << " cache entries";
      ExpectSameResults(serial, parallel, queries);
    }
  }
}

TEST(BatchEngine, FrozenBackendMatchesLiveBackend) {
  RouteSet routes = BuildRoutes();
  std::string image = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view = image::ImageView::Adopt(image, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view.has_value()) << error;
  FrozenRouteSet frozen(*view);

  std::vector<std::string> pool = BuildQueryPool();
  std::vector<std::string_view> queries = Views(pool);

  Resolver resolver(&routes, ResolveOptions{});
  std::vector<BatchLookup> serial(queries.size());
  size_t serial_resolved = resolver.ResolveBatch(queries, serial);

  BatchEngineOptions options;
  options.threads = 4;
  options.cache_entries = 256;
  FrozenBatchEngine engine(&frozen, options);
  std::vector<BatchLookup> parallel(queries.size());
  EXPECT_EQ(engine.ResolveBatch(queries, parallel), serial_resolved);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(serial[i].route.ok(), parallel[i].route.ok()) << queries[i];
    EXPECT_EQ(serial[i].route.route, parallel[i].route.route) << queries[i];
    EXPECT_EQ(serial[i].suffix_match, parallel[i].suffix_match) << queries[i];
    if (serial[i].route.ok()) {
      // Ids are assigned in different orders by the two backends; compare by name.
      EXPECT_EQ(routes.names().View(serial[i].via), frozen.names().View(parallel[i].via))
          << queries[i];
    }
  }
}

// The flush-free serving update: a long-lived frozen engine adopts a refrozen image
// and invalidates only the dirty ids.  Clean destinations may keep serving cached
// views into the OLD mapping (kept alive, as the contract requires); dirty ones
// must come back fresh.
TEST(BatchEngine, AdoptRoutesServesFreshDirtyRoutesWithoutFlushingCleanOnes) {
  RouteSet routes = BuildRoutes();
  std::string image_a = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view_a = image::ImageView::Adopt(image_a, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view_a.has_value()) << error;
  FrozenRouteSet frozen_a(*view_a);

  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 1024;
  FrozenBatchEngine engine(&frozen_a, options);

  std::vector<std::string> pool = BuildQueryPool();
  std::vector<std::string_view> queries = Views(pool);
  std::vector<BatchLookup> results(queries.size());
  engine.ResolveBatch(queries, results);  // warm every shard cache
  ASSERT_GT(engine.stats().cache_lookups, 0u);

  // The maintained RouteSet absorbs an edit (stable ids) and refreezes.
  std::vector<RouteUpsert> upserts;
  upserts.push_back({"host7", "rerouted!host7!%s", 9999});
  std::vector<NameId> dirty_live = routes.ApplyDelta(upserts, {});
  ASSERT_EQ(dirty_live.size(), 1u);
  std::string image_b = image::ImageWriter::Freeze(routes);
  auto view_b = image::ImageView::Adopt(image_b, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view_b.has_value()) << error;
  FrozenRouteSet frozen_b(*view_b);

  // The image id space tracks the live set's: translate by name (here they agree).
  NameId dirty_id = frozen_b.names().Find("host7");
  ASSERT_NE(dirty_id, kNoName);
  std::vector<NameId> dirty = {dirty_id};
  engine.AdoptRoutes(&frozen_b, dirty);  // image A stays alive above — required

  std::vector<BatchLookup> after(queries.size());
  engine.ResolveBatch(queries, after);
  Resolver reference(&routes, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  reference.ResolveBatch(queries, expected);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(after[i].route.ok(), expected[i].route.ok()) << queries[i];
    EXPECT_EQ(after[i].route.route, expected[i].route.route) << queries[i];
  }
}

TEST(BatchEngine, NinetyPercentRepeatedDestinationsIdenticalWithCacheOnAndOff) {
  // The satellite case: a delivery scan where 90% of the batch is a hot set of
  // repeated destinations.  The cache must change the speed, never the bytes.
  RouteSet routes = BuildRoutes();
  std::vector<std::string> hot = {"phs",     "duke",    "ucbvax",
                                  "host7",   "host42",  "m3.dept3.edu",
                                  "host100", "host199", "m150.dept3.edu",
                                  "stranger0.rutgers.edu"};
  std::vector<std::string> pool;
  for (int i = 0; i < 5000; ++i) {
    if (i % 10 == 9) {
      pool.push_back("cold" + std::to_string(i) + ".unrouted.example");
    } else {
      // i + i/10 de-syncs the pick from the 90% filter so every hot name occurs.
      pool.push_back(hot[static_cast<size_t>(i + i / 10) % hot.size()]);
    }
  }
  std::vector<std::string_view> queries = Views(pool);

  BatchEngineOptions cached_options;
  cached_options.threads = 4;
  cached_options.cache_entries = 64;
  BatchEngine cached(&routes, cached_options);
  BatchEngineOptions uncached_options;
  uncached_options.threads = 4;
  BatchEngine uncached(&routes, uncached_options);

  std::vector<BatchLookup> with_cache(queries.size());
  std::vector<BatchLookup> without_cache(queries.size());
  size_t resolved_cached = cached.ResolveBatch(queries, with_cache);
  size_t resolved_uncached = uncached.ResolveBatch(queries, without_cache);
  EXPECT_EQ(resolved_cached, resolved_uncached);
  ExpectSameResults(without_cache, with_cache, queries);

  // The interned hot set (9 of the 10 hot names) dominates, so the hit rate must too.
  // The tenth hot name is a stranger: never cached, resolved by suffix walk each time.
  EXPECT_GT(cached.stats().hit_rate(), 0.95);
  EXPECT_EQ(uncached.stats().cache_lookups, 0u);
}

TEST(BatchEngine, CachesNegativeResults) {
  RouteSet routes;
  routes.Add("x.y.zz", "x.y.zz!%s", 10);  // interns ".y.zz" and ".zz", both routeless
  BatchEngineOptions options;
  options.cache_entries = 16;
  BatchEngine engine(&routes, options);

  std::vector<std::string_view> queries = {".y.zz", ".y.zz", ".y.zz"};
  std::vector<BatchLookup> results(queries.size());
  EXPECT_EQ(engine.ResolveBatch(queries, results), 0u);
  for (const BatchLookup& result : results) {
    EXPECT_FALSE(result.route.ok());
  }
  EXPECT_EQ(engine.stats().cache_lookups, 3u);
  EXPECT_EQ(engine.stats().cache_hits, 2u) << "a cached miss is as final as a cached route";
}

TEST(BatchEngine, CachePersistsAcrossBatches) {
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.threads = 2;
  options.cache_entries = 64;
  BatchEngine engine(&routes, options);

  std::vector<std::string_view> queries = {"phs", "duke", "ucbvax"};
  std::vector<BatchLookup> results(queries.size());
  EXPECT_EQ(engine.ResolveBatch(queries, results), 3u);
  uint64_t hits_after_first = engine.stats().cache_hits;
  EXPECT_EQ(engine.ResolveBatch(queries, results), 3u);
  EXPECT_EQ(engine.stats().cache_hits, hits_after_first + 3)
      << "a server loop's second batch runs entirely from the warm cache";
}

TEST(BatchEngine, StrangersAreNeverCached) {
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.cache_entries = 64;
  BatchEngine engine(&routes, options);
  std::vector<std::string_view> queries = {"s1.rutgers.edu", "s1.rutgers.edu",
                                           "nope.example", "nope.example"};
  std::vector<BatchLookup> results(queries.size());
  EXPECT_EQ(engine.ResolveBatch(queries, results), 2u);
  EXPECT_EQ(engine.stats().cache_lookups, 0u)
      << "no NameId, no cache key: strangers bypass the cache entirely";
}

TEST(BatchEngine, EmptyBatchAndTruncatedResultsSpan) {
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.threads = 4;
  options.cache_entries = 16;
  BatchEngine engine(&routes, options);

  std::vector<BatchLookup> none;
  EXPECT_EQ(engine.ResolveBatch({}, none), 0u);

  // A results span shorter than the hosts span truncates the batch (the documented
  // ResolveBatch contract), in the engine exactly as in the serial resolver.
  std::vector<std::string_view> queries = {"phs", "duke", "ucbvax"};
  std::vector<BatchLookup> short_results(2);
  EXPECT_EQ(engine.ResolveBatch(queries, short_results), 2u);
  EXPECT_TRUE(short_results[0].route.ok());
  EXPECT_TRUE(short_results[1].route.ok());
}

TEST(BatchEngine, ZeroThreadsMeansHardwareWidth) {
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.threads = 0;
  BatchEngine engine(&routes, options);
  EXPECT_GE(engine.shards(), 1);
  std::vector<std::string_view> queries = {"phs"};
  std::vector<BatchLookup> results(1);
  EXPECT_EQ(engine.ResolveBatch(queries, results), 1u);
}

TEST(BatchEngine, PipelineWindowOptionChangesNothingObservable) {
  // pipeline_window is a pure throughput knob on the uncached paths: every
  // setting — degenerate, tiny, default-selecting zero, max — produces the
  // serial resolver's bytes at every thread count.
  RouteSet routes = BuildRoutes();
  std::vector<std::string> pool = BuildQueryPool();
  std::vector<std::string_view> queries = Views(pool);

  Resolver resolver(&routes, ResolveOptions{});
  std::vector<BatchLookup> serial(queries.size());
  size_t serial_resolved = resolver.ResolveBatchScalar(queries, serial);

  for (int threads : {1, 4}) {
    for (size_t window : {size_t{0}, size_t{1}, size_t{2}, size_t{24}, size_t{64}}) {
      BatchEngineOptions options;
      options.threads = threads;
      options.pipeline_window = window;
      BatchEngine engine(&routes, options);
      std::vector<BatchLookup> results(queries.size());
      EXPECT_EQ(engine.ResolveBatch(queries, results), serial_resolved)
          << threads << " threads, window " << window;
      ExpectSameResults(serial, results, queries);
    }
  }
}

TEST(BatchEngine, CacheMinHitRateDropsAThrashingCacheAfterProbation) {
  // ~400 interned destinations cycling through an 8-entry cache thrash it —
  // nearly every lookup misses.  Once past the probation the floor fires,
  // caches_dropped latches, and results stay byte-identical throughout.
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 8;
  options.cache_min_hit_rate = 0.25;
  BatchEngine engine(&routes, options);

  std::vector<std::string> pool;
  for (int i = 0; i < 200; ++i) {  // every interned host and member, once per batch
    pool.push_back("host" + std::to_string(i));
    pool.push_back("m" + std::to_string(i) + ".dept" + std::to_string(i % 7) + ".edu");
  }
  std::vector<std::string_view> queries = Views(pool);
  std::vector<BatchLookup> results(queries.size());

  Resolver resolver(&routes, ResolveOptions{});
  std::vector<BatchLookup> serial(queries.size());
  size_t serial_resolved = resolver.ResolveBatchScalar(queries, serial);

  size_t batches = 0;
  while (!engine.stats().caches_dropped && batches < 64) {
    EXPECT_EQ(engine.ResolveBatch(queries, results), serial_resolved);
    ExpectSameResults(serial, results, queries);
    ++batches;
  }
  EXPECT_TRUE(engine.stats().caches_dropped)
      << "a thrashing cache must be dropped once past the probation";
  // Dropped means dropped: further batches consult no cache, and the bytes
  // still match the serial reference.
  uint64_t lookups_at_drop = engine.stats().cache_lookups;
  EXPECT_EQ(engine.ResolveBatch(queries, results), serial_resolved);
  ExpectSameResults(serial, results, queries);
  EXPECT_EQ(engine.stats().cache_lookups, lookups_at_drop);
}

TEST(BatchEngine, CacheMinHitRateSparesAHotCache) {
  // A 100%-repeated stream keeps the measured hit rate far above any sane
  // floor: the caches must survive probation and keep serving.
  RouteSet routes = BuildRoutes();
  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 64;
  options.cache_min_hit_rate = 0.50;
  BatchEngine engine(&routes, options);

  std::vector<std::string> pool;
  for (int i = 0; i < 1000; ++i) {
    pool.push_back("host" + std::to_string(i % 8));
  }
  std::vector<std::string_view> queries = Views(pool);
  std::vector<BatchLookup> results(queries.size());
  for (int pass = 0; pass < 8; ++pass) {  // > kCacheProbationLookups lookups total
    EXPECT_EQ(engine.ResolveBatch(queries, results), queries.size());
  }
  EXPECT_FALSE(engine.stats().caches_dropped);
  EXPECT_GT(engine.stats().hit_rate(), 0.9);
}

TEST(ResultCache, ClockEvictsUnreferencedWaysFirst) {
  ResultCache cache(4);  // one set of four ways
  ASSERT_EQ(cache.capacity(), 4u);
  BatchLookup value;
  value.via = 7;
  BatchLookup out;

  // Ids 0..3 fill the only set (whatever order the scramble maps them in).
  for (NameId id = 0; id < 4; ++id) {
    cache.Put(id, value);
  }
  for (NameId id = 0; id < 4; ++id) {
    EXPECT_TRUE(cache.Get(id, &out));
  }
  // All four are armed; inserting a fifth forces the hand all the way around: it
  // disarms everything, evicts exactly one resident, and the other three survive.
  cache.Put(4, value);
  EXPECT_TRUE(cache.Get(4, &out));
  int survivors = 0;
  for (NameId id = 0; id < 4; ++id) {
    if (cache.Get(id, &out)) {
      ++survivors;
    }
  }
  EXPECT_EQ(survivors, 3);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, RoundsCapacityAndDisablesAtZero) {
  EXPECT_FALSE(ResultCache(0).enabled());
  EXPECT_EQ(ResultCache(1).capacity(), 4u);
  EXPECT_EQ(ResultCache(5).capacity(), 8u);
  EXPECT_EQ(ResultCache(4096).capacity(), 4096u);
}

// A small topology with cacheable non-route keys: interning "a.b.org" also
// interns ".b.org" and ".org", so querying ".b.org" produces a cacheable
// suffix-match entry (via ".org") and querying ".z.net" a cacheable miss.
RouteSet BuildChainRoutes(const char* org_route) {
  RouteSet set;
  set.Add("gate", "gate!%s", 5);
  set.Add(".org", org_route, 10);
  set.Add("a.b.org", "gate!a.b.org!%s", 15);
  set.Add("c.z.net", "gate!c.z.net!%s", 20);
  return set;
}

// Regression: a cached suffix-match result depends on its VIA's route, not just
// its own key.  Key-only invalidation left ".b.org"'s cached entry (via ".org")
// stale when only ".org" changed; the chain-closure pass must condemn it.
TEST(BatchEngine, AdoptRoutesCondemnsSuffixMatchWhoseViaChanged) {
  RouteSet v1 = BuildChainRoutes("gate!%s");
  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 64;
  BatchEngine engine(&v1, options);

  std::vector<std::string_view> query = {".b.org"};
  std::vector<BatchLookup> result(1);
  ASSERT_EQ(engine.ResolveBatch(query, result), 1u);
  ASSERT_TRUE(result[0].suffix_match);
  ASSERT_EQ(result[0].route.route, "gate!%s");
  ASSERT_EQ(engine.ResolveBatch(query, result), 1u);  // now served from cache
  ASSERT_GT(engine.stats().cache_hits, 0u);

  // Same Add order → same id assignment; only ".org"'s route differs.
  RouteSet v2 = BuildChainRoutes("spool!%s");
  NameId org = v2.names().Find(".org");
  ASSERT_NE(org, kNoName);
  std::vector<NameId> dirty = {org};
  engine.AdoptRoutes(&v2, dirty);

  ASSERT_EQ(engine.ResolveBatch(query, result), 1u);
  EXPECT_EQ(result[0].route.route, "spool!%s")
      << "cached suffix match survived although its via's route changed";
}

// Regression: a cached MISS depends on every id of its suffix chain staying
// routeless.  When ".net" gains a route, the cached miss for ".z.net" must go.
TEST(BatchEngine, AdoptRoutesCondemnsCachedMissWhoseDomainGainedARoute) {
  RouteSet v1 = BuildChainRoutes("gate!%s");
  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 64;
  BatchEngine engine(&v1, options);

  std::vector<std::string_view> query = {".z.net"};
  std::vector<BatchLookup> result(1);
  ASSERT_EQ(engine.ResolveBatch(query, result), 0u);  // miss, and cached as one
  ASSERT_EQ(engine.ResolveBatch(query, result), 0u);
  ASSERT_GT(engine.stats().cache_hits, 0u);

  RouteSet v2 = BuildChainRoutes("gate!%s");
  v2.Add(".net", "gate!%s", 1);  // ".net" was already interned: same id, new route
  NameId net = v2.names().Find(".net");
  ASSERT_NE(net, kNoName);
  ASSERT_EQ(net, v1.names().Find(".net")) << "id stability premise broken";
  std::vector<NameId> dirty = {net};
  engine.AdoptRoutes(&v2, dirty);

  ASSERT_EQ(engine.ResolveBatch(query, result), 1u)
      << "cached miss survived although its domain gained a route";
  EXPECT_TRUE(result[0].suffix_match);
  EXPECT_EQ(result[0].route.route, "gate!%s");
}

// After AdoptRoutes, NOTHING in the engine may reference the old source: clean
// surviving cache entries are re-homed onto the fresh storage.  Clobbering the
// old image's bytes (the moral equivalent of munmap) must not change any result.
TEST(BatchEngine, AdoptRoutesReleasesEveryReferenceToTheOldImage) {
  RouteSet v1 = BuildChainRoutes("gate!%s");
  std::string image_a = image::ImageWriter::Freeze(v1);
  std::string error;
  auto view_a = image::ImageView::Adopt(image_a, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view_a.has_value()) << error;
  FrozenRouteSet frozen_a(*view_a);

  BatchEngineOptions options;
  options.threads = 1;
  options.cache_entries = 64;
  FrozenBatchEngine engine(&frozen_a, options);

  std::vector<std::string_view> queries = {"a.b.org", ".b.org", ".z.net", "gate"};
  std::vector<BatchLookup> results(queries.size());
  engine.ResolveBatch(queries, results);  // warm the cache with all entry kinds

  RouteSet v2 = BuildChainRoutes("spool!%s");
  std::string image_b = image::ImageWriter::Freeze(v2);
  auto view_b = image::ImageView::Adopt(image_b, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view_b.has_value()) << error;
  FrozenRouteSet frozen_b(*view_b);
  NameId org = frozen_b.names().Find(".org");
  ASSERT_NE(org, kNoName);
  std::vector<NameId> dirty = {org};
  engine.AdoptRoutes(&frozen_b, dirty);

  // "Unmap" image A.  Any surviving view into it now reads garbage, which the
  // byte-compare below (and ASan's container annotations) would catch.
  std::fill(image_a.begin(), image_a.end(), '\0');

  std::vector<BatchLookup> after(queries.size());
  engine.ResolveBatch(queries, after);
  Resolver reference(&v2, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  reference.ResolveBatch(queries, expected);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(after[i].route.ok(), expected[i].route.ok()) << queries[i];
    EXPECT_EQ(after[i].route.route, expected[i].route.route) << queries[i];
    if (after[i].route.ok()) {
      // And the views must alias image B's storage, not a copy of it.
      EXPECT_EQ(after[i].route.route.data(),
                frozen_b.FindRouteView(after[i].via).route.data())
          << queries[i];
    }
  }
}

// The drain counters: started moves before the work, completed after, so a mark
// taken mid-traffic is reached exactly when every covered batch has returned.
TEST(BatchEngine, BatchCountersBracketEveryResolve) {
  RouteSet routes = BuildChainRoutes("gate!%s");
  BatchEngine engine(&routes, BatchEngineOptions{});
  EXPECT_EQ(engine.batches_started(), 0u);
  EXPECT_EQ(engine.batches_completed(), 0u);
  std::vector<std::string_view> query = {"gate"};
  std::vector<BatchLookup> result(1);
  engine.ResolveBatch(query, result);
  engine.ResolveBatch(query, result);
  EXPECT_EQ(engine.batches_started(), 2u);
  EXPECT_EQ(engine.batches_completed(), 2u);
}

}  // namespace
}  // namespace exec
}  // namespace pathalias
