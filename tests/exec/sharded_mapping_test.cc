// Thread-safety surface for the domain-sharded mapper (runs under the TSan CI leg).
//
// The sharded engine's data-race argument is structural: during a parallel drain a
// shard writes only labels, support snapshots, heap slots and outboxes it owns, and
// the only cross-shard reads are immutable fields (node order/flags/links, a
// foreign label's creation-time node pointer).  This test drives real multi-thread
// drains — several shard counts, repeated runs, worker threads forced above one —
// so TSan can check that argument against the implementation, and asserts the
// parallel schedule is deterministic (identical bytes run to run and across thread
// counts), which is the property the byte-identity guarantee rides on.

#include <gtest/gtest.h>

#include <string>

#include "src/core/pathalias.h"
#include "src/mapgen/mapgen.h"

namespace pathalias {
namespace {

std::string RunSharded(const GeneratedMap& map, int shards, int threads,
                       ShardStats* stats = nullptr) {
  Diagnostics diag;
  RunOptions options;
  options.local = map.local;
  options.print.include_costs = true;
  options.shard.shards = shards;
  options.shard.min_nodes = 0;
  options.shard.threads = threads;
  RunResult result = pathalias::Run(map.files, options, &diag);
  EXPECT_EQ(diag.error_count(), 0u) << diag.ToString();
  if (stats != nullptr) {
    *stats = result.shard_stats;
  }
  return result.output;
}

TEST(ShardedMappingConcurrency, ParallelDrainsAreRaceFreeAndDeterministic) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::UsenetScale(3000));
  ShardStats stats;
  std::string baseline = RunSharded(map, 4, /*threads=*/4, &stats);
  ASSERT_TRUE(stats.engaged) << stats.fallback_reason;
  ASSERT_FALSE(baseline.empty());
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(RunSharded(map, 4, /*threads=*/4), baseline) << "repeat " << repeat;
  }
  // Thread count is a wall-clock knob, never an output knob.
  EXPECT_EQ(RunSharded(map, 4, /*threads=*/1), baseline);
  EXPECT_EQ(RunSharded(map, 4, /*threads=*/2), baseline);
  EXPECT_EQ(RunSharded(map, 4, /*threads=*/8), baseline);
}

TEST(ShardedMappingConcurrency, ManyShardsOnManyThreads) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::UsenetScale(2000));
  ShardStats stats;
  std::string eight = RunSharded(map, 8, /*threads=*/8, &stats);
  ASSERT_TRUE(stats.engaged) << stats.fallback_reason;
  EXPECT_EQ(RunSharded(map, 2, /*threads=*/2), eight);
  EXPECT_EQ(RunSharded(map, 12, /*threads=*/6), eight);
}

}  // namespace
}  // namespace pathalias
