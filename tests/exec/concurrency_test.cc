// Concurrent readers over one route source — the guarantee the serving path stands
// on.  Run under ThreadSanitizer (cmake -DPATHALIAS_TSAN=ON; the CI tsan job does)
// these tests are the race detector for the whole read path: interner probe,
// suffix-chain chase, route-record view, engine sharding, pool handoff.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/exec/batch_engine.h"
#include "src/exec/thread_pool.h"
#include "src/image/frozen_route_set.h"
#include "src/image/image_writer.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"

namespace pathalias {
namespace exec {
namespace {

constexpr int kThreads = 8;
constexpr int kRounds = 25;

RouteSet BuildRoutes() {
  RouteSet set;
  set.Add(".edu", "seismo!%s", 100);
  set.Add(".rutgers.edu", "caip!%s", 50);
  for (int i = 0; i < 300; ++i) {
    std::string host = "site" + std::to_string(i) + ".dept" + std::to_string(i % 11) + ".edu";
    set.Add(host, "gate!" + host + "!%s", 100 + i);
  }
  return set;
}

std::vector<std::string> BuildQueries() {
  std::vector<std::string> queries;
  for (int i = 0; i < 600; ++i) {
    queries.push_back("site" + std::to_string(i % 300) + ".dept" +
                      std::to_string(i % 11) + ".edu");
    queries.push_back("visitor" + std::to_string(i) + ".rutgers.edu");
    queries.push_back("miss" + std::to_string(i) + ".nowhere.example");
  }
  return queries;
}

std::vector<std::string_view> Views(const std::vector<std::string>& pool) {
  return std::vector<std::string_view>(pool.begin(), pool.end());
}

// The satellite case: N threads, each running ResolveBatch against ONE FrozenRouteSet
// adopted from ONE image buffer — the exact shape of a multi-threaded mail server
// sharing one mmap'd .pari file.
TEST(Concurrency, ParallelResolveBatchOverOneFrozenMapping) {
  RouteSet routes = BuildRoutes();
  std::string image = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view = image::ImageView::Adopt(image, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view.has_value()) << error;
  FrozenRouteSet frozen(*view);

  std::vector<std::string> pool = BuildQueries();
  std::vector<std::string_view> queries = Views(pool);

  FrozenResolver reference(&frozen, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  size_t expected_resolved = reference.ResolveBatch(queries, expected);
  ASSERT_GT(expected_resolved, 0u);

  std::vector<size_t> resolved(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      FrozenResolver resolver(&frozen, ResolveOptions{});
      std::vector<BatchLookup> results(queries.size());
      for (int round = 0; round < kRounds; ++round) {
        resolved[static_cast<size_t>(t)] = resolver.ResolveBatch(queries, results);
      }
      for (size_t i = 0; i < queries.size(); ++i) {
        ASSERT_EQ(results[i].route.route, expected[i].route.route) << queries[i];
        ASSERT_EQ(results[i].via, expected[i].via) << queries[i];
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(resolved[t], expected_resolved) << "thread " << t;
  }
}

// Several engines — each with its own pool and caches — sharing one frozen mapping:
// engines are per-serving-thread objects, the route source is the shared one.
TEST(Concurrency, ParallelEnginesOverOneFrozenMapping) {
  RouteSet routes = BuildRoutes();
  std::string image = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view = image::ImageView::Adopt(image, image::ImageView::Verify::kStructure, &error);
  ASSERT_TRUE(view.has_value()) << error;
  FrozenRouteSet frozen(*view);

  std::vector<std::string> pool = BuildQueries();
  std::vector<std::string_view> queries = Views(pool);

  FrozenResolver reference(&frozen, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  size_t expected_resolved = reference.ResolveBatch(queries, expected);

  constexpr int kEngines = 4;
  std::vector<std::thread> threads;
  threads.reserve(kEngines);
  for (int t = 0; t < kEngines; ++t) {
    threads.emplace_back([&] {
      BatchEngineOptions options;
      options.threads = 2;
      options.cache_entries = 128;
      FrozenBatchEngine engine(&frozen, options);
      std::vector<BatchLookup> results(queries.size());
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_EQ(engine.ResolveBatch(queries, results), expected_resolved);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

// Live RouteSet readers: the post-PR1 invariant is that const lookups on the live
// interner mutate nothing (not even stats), so a parse-built set is as shareable as
// the frozen one.
TEST(Concurrency, ParallelResolveBatchOverOneLiveRouteSet) {
  RouteSet routes = BuildRoutes();
  std::vector<std::string> pool = BuildQueries();
  std::vector<std::string_view> queries = Views(pool);

  Resolver reference(&routes, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  size_t expected_resolved = reference.ResolveBatch(queries, expected);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Resolver resolver(&routes, ResolveOptions{});
      std::vector<BatchLookup> results(queries.size());
      for (int round = 0; round < kRounds; ++round) {
        ASSERT_EQ(resolver.ResolveBatch(queries, results), expected_resolved);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
}

// The pool itself: claimed indices partition exactly, across many back-to-back
// batches, including batches with more jobs than lanes and with slow wakeups.
TEST(Concurrency, ThreadPoolRunsEveryJobExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.width(), 4);
  for (int round = 0; round < 200; ++round) {
    int jobs = 1 + round % 13;
    std::vector<std::atomic<int>> ran(static_cast<size_t>(jobs));
    pool.Run(jobs, [&](int job) { ran[static_cast<size_t>(job)].fetch_add(1); });
    for (int job = 0; job < jobs; ++job) {
      ASSERT_EQ(ran[static_cast<size_t>(job)].load(), 1) << "round " << round;
    }
  }
}

TEST(Concurrency, WidthOnePoolIsSerial) {
  ThreadPool pool(1);
  int sum = 0;
  pool.Run(10, [&](int job) { sum += job; });  // no workers: runs on this thread
  EXPECT_EQ(sum, 45);
}

// The incremental-update shape: an updater thread revokes dirty route keys while
// batch readers are mid-flight over their shard caches.  Under TSan this is the
// race detector for ResultCache's atomic key slots; functionally, every batch must
// still resolve every query correctly (the source itself never changes here, so
// stale-vs-fresh cannot diverge — what is being exercised is the key-slot
// synchronization and the engine's cross-thread Invalidate entry point).
TEST(Concurrency, CacheInvalidationRacesBatchReaders) {
  RouteSet routes = BuildRoutes();
  std::vector<std::string> pool = BuildQueries();
  std::vector<std::string_view> queries = Views(pool);

  // Dirty ids: every third interned destination, the hot-path shape of a 1-file edit.
  std::vector<NameId> dirty;
  for (size_t i = 0; i < routes.routes().size(); i += 3) {
    dirty.push_back(routes.routes()[i].name);
  }

  BatchEngineOptions options;
  options.threads = 4;
  options.cache_entries = 256;
  BasicBatchEngine<RouteSet> engine(&routes, options);

  Resolver reference(&routes, ResolveOptions{});
  std::vector<BatchLookup> expected(queries.size());
  reference.ResolveBatch(queries, expected);

  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      engine.InvalidateRoutes(dirty);
    }
  });
  for (int round = 0; round < kRounds; ++round) {
    std::vector<BatchLookup> results(queries.size());
    size_t resolved = engine.ResolveBatch(queries, results);
    size_t expected_resolved = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ(results[i].route.ok(), expected[i].route.ok()) << queries[i];
      ASSERT_EQ(results[i].via, expected[i].via) << queries[i];
      if (expected[i].route.ok()) {
        ++expected_resolved;
      }
    }
    ASSERT_EQ(resolved, expected_resolved);
  }
  stop.store(true);
  invalidator.join();
}

}  // namespace
}  // namespace exec
}  // namespace pathalias
