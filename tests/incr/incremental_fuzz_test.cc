// Randomized-edit golden equivalence for the incremental pipeline.
//
// A seeded model of a multi-file map absorbs a few hundred random edits — recosts,
// host adds/removes/renames, link adds/removes, duplicate declarations, whole-file
// adds/removes, non-plain declarations the patch path must now absorb IN PLACE
// (aliases, dead hosts/links, adjust biases, gatewayed nets with gateways), and
// occasional net/private declarations that still force the replay-rebuild path.
// After EVERY edit the MapBuilder's route set must be byte-identical (canonical
// name-sorted form) to a from-scratch pipeline over the edited inputs; periodically
// the refrozen .pari image and the sharded batch engine (serial and --threads) are
// held to the same standard.  Three path-coverage assertions keep the property
// non-vacuous: the patch path, the fallback path, AND patched updates that applied
// alias/dead/gateway/adjust edits (if those all silently fell back, the lifted
// gates would be untested).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/pathalias.h"
#include "src/exec/batch_engine.h"
#include "src/image/frozen_route_set.h"
#include "src/image/image_writer.h"
#include "src/incr/map_builder.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"
#include "src/support/rng.h"

namespace pathalias {
namespace incr {
namespace {

namespace fs = std::filesystem;

struct LinkModel {
  std::string to;
  Cost cost;
};

struct HostModel {
  std::string name;
  std::vector<LinkModel> links;
};

struct FileModel {
  std::string name;
  std::vector<HostModel> hosts;
  std::vector<std::string> extra_lines;  // non-plain declarations (aliases, dead, ...)
};

struct MapModel {
  std::vector<FileModel> files;
  int next_host = 0;

  std::string NewHostName() { return "h" + std::to_string(next_host++); }

  std::vector<std::string> AllHostNames() const {
    std::vector<std::string> names;
    for (const FileModel& file : files) {
      for (const HostModel& host : file.hosts) {
        names.push_back(host.name);
      }
    }
    return names;
  }

  InputFile Render(const FileModel& file) const {
    std::string text;
    for (const HostModel& host : file.hosts) {
      text += host.name;
      if (!host.links.empty()) {
        text += '\t';
        for (size_t i = 0; i < host.links.size(); ++i) {
          if (i > 0) {
            text += ", ";
          }
          text += host.links[i].to + "(" + std::to_string(host.links[i].cost) + ")";
        }
      }
      text += '\n';
    }
    for (const std::string& line : file.extra_lines) {
      text += line + "\n";
    }
    return InputFile{file.name, text};
  }

  std::vector<InputFile> RenderAll() const {
    std::vector<InputFile> rendered;
    for (const FileModel& file : files) {
      rendered.push_back(Render(file));
    }
    return rendered;
  }
};

std::string ReferenceSortedRoutes(const std::vector<InputFile>& files,
                                  const std::string& local) {
  Diagnostics diag;
  RunOptions options;
  options.local = local;
  RunResult result = pathalias::Run(files, options, &diag);
  return RouteSet::FromEntries(result.routes).ToSortedText(/*include_costs=*/true);
}

// Resolves `queries` against any route source and formats the outcomes; all
// backends and execution modes must produce these bytes identically.
template <typename RouteSourceT>
std::string FormatBatch(const RouteSourceT& source,
                        const std::vector<std::string_view>& queries, int threads) {
  exec::BatchEngineOptions options;
  options.threads = threads;
  exec::BasicBatchEngine<RouteSourceT> engine(&source, options);
  std::vector<BatchLookup> results(queries.size());
  engine.ResolveBatch(queries, results);
  std::string out;
  for (size_t i = 0; i < queries.size(); ++i) {
    out += queries[i];
    if (results[i].route.ok()) {
      out += "\tvia=";
      out += source.names().View(results[i].via);
      out += "\troute=";
      out += results[i].route.route;
      out += results[i].suffix_match ? "\tsuffix" : "\texact";
    } else {
      out += "\t*miss*";
    }
    out += '\n';
  }
  return out;
}

class IncrementalFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalFuzz, EveryEditStaysGoldenAcrossBackends) {
  Rng rng(GetParam());
  MapModel model;

  // --- seed topology: a connected multi-file map ---
  constexpr int kFiles = 6;
  constexpr int kInitialHosts = 42;
  for (int i = 0; i < kFiles; ++i) {
    model.files.push_back(FileModel{"site" + std::to_string(i) + ".map", {}, {}});
  }
  std::vector<std::pair<int, int>> host_index;  // (file, host) of every declared host
  for (int i = 0; i < kInitialHosts; ++i) {
    std::string name = model.NewHostName();
    int file = static_cast<int>(rng.Below(kFiles));
    model.files[file].hosts.push_back(HostModel{name, {}});
    host_index.emplace_back(file, static_cast<int>(model.files[file].hosts.size()) - 1);
    if (i > 0) {
      // Two-way attachment to a random earlier host keeps the map connected.
      auto [pf, ph] = host_index[rng.Below(static_cast<uint64_t>(i))];
      HostModel& parent = model.files[pf].hosts[ph];
      Cost cost = static_cast<Cost>(10 + rng.Below(500));
      model.files[file].hosts.back().links.push_back(LinkModel{parent.name, cost});
      parent.links.push_back(LinkModel{name, static_cast<Cost>(10 + rng.Below(500))});
    }
  }
  const std::string local = "h0";

  MapBuilder builder(MapBuilderOptions{.local = local});
  ASSERT_TRUE(builder.Build(model.RenderAll()));
  ASSERT_EQ(builder.routes().ToSortedText(true),
            ReferenceSortedRoutes(model.RenderAll(), local));

  fs::path image_path =
      fs::temp_directory_path() /
      ("pathalias_incr_fuzz_" + std::to_string(::getpid()) + "_" +
       std::to_string(GetParam()) + ".pari");

  size_t patched_updates = 0;
  size_t rebuild_updates = 0;
  size_t patched_alias_updates = 0;  // patched updates that applied non-plain edits
  constexpr int kSteps = 140;
  for (int step = 0; step < kSteps; ++step) {
    std::vector<std::string> changed_names;  // model files to re-render
    std::vector<std::string> removed_names;
    auto touch = [&](const FileModel& file) {
      if (std::find(changed_names.begin(), changed_names.end(), file.name) ==
          changed_names.end()) {
        changed_names.push_back(file.name);
      }
    };
    auto random_file = [&]() -> FileModel& {
      return model.files[rng.Below(model.files.size())];
    };
    auto random_hosted_file = [&]() -> FileModel* {
      for (int attempt = 0; attempt < 16; ++attempt) {
        FileModel& file = random_file();
        if (!file.hosts.empty()) {
          return &file;
        }
      }
      return nullptr;
    };

    switch (rng.Below(10)) {
      case 0:
      case 1:
      case 2: {  // recost an existing link (the everyday edit)
        FileModel* file = random_hosted_file();
        if (file == nullptr) {
          break;
        }
        HostModel& host = file->hosts[rng.Below(file->hosts.size())];
        if (host.links.empty()) {
          break;
        }
        host.links[rng.Below(host.links.size())].cost =
            static_cast<Cost>(1 + rng.Below(900));
        touch(*file);
        break;
      }
      case 3: {  // add a host (with a two-way attachment)
        FileModel* anchor_file = random_hosted_file();
        if (anchor_file == nullptr) {
          break;
        }
        // Index, not reference: pushing the new host may reallocate this very
        // file's hosts vector when target == anchor_file.
        size_t anchor_index = rng.Below(anchor_file->hosts.size());
        std::string anchor_name = anchor_file->hosts[anchor_index].name;
        std::string name = model.NewHostName();
        FileModel& target = random_file();
        target.hosts.push_back(HostModel{
            name, {LinkModel{anchor_name, static_cast<Cost>(5 + rng.Below(300))}}});
        anchor_file->hosts[anchor_index].links.push_back(
            LinkModel{name, static_cast<Cost>(5 + rng.Below(300))});
        touch(target);
        touch(*anchor_file);
        break;
      }
      case 4: {  // remove a host's declaration (sometimes scrubbing references too)
        FileModel* file = random_hosted_file();
        if (file == nullptr) {
          break;
        }
        size_t index = rng.Below(file->hosts.size());
        std::string name = file->hosts[index].name;
        if (name == local) {
          break;
        }
        file->hosts.erase(file->hosts.begin() + static_cast<long>(index));
        touch(*file);
        if (rng.Below(2) == 0) {  // full scrub: the name disappears from the map
          for (FileModel& other : model.files) {
            for (HostModel& host : other.hosts) {
              size_t before = host.links.size();
              host.links.erase(std::remove_if(host.links.begin(), host.links.end(),
                                              [&](const LinkModel& link) {
                                                return link.to == name;
                                              }),
                               host.links.end());
              if (host.links.size() != before) {
                touch(other);
              }
            }
          }
        }
        break;
      }
      case 5: {  // rename a host everywhere
        FileModel* file = random_hosted_file();
        if (file == nullptr) {
          break;
        }
        HostModel& host = file->hosts[rng.Below(file->hosts.size())];
        if (host.name == local) {
          break;
        }
        std::string from = host.name;
        std::string to = model.NewHostName();
        for (FileModel& other : model.files) {
          bool touched = false;
          for (HostModel& candidate : other.hosts) {
            if (candidate.name == from) {
              candidate.name = to;
              touched = true;
            }
            for (LinkModel& link : candidate.links) {
              if (link.to == from) {
                link.to = to;
                touched = true;
              }
            }
          }
          if (touched) {
            touch(other);
          }
        }
        break;
      }
      case 6: {  // add or remove a single link
        FileModel* file = random_hosted_file();
        if (file == nullptr) {
          break;
        }
        HostModel& host = file->hosts[rng.Below(file->hosts.size())];
        if (!host.links.empty() && rng.Below(2) == 0) {
          host.links.erase(host.links.begin() +
                           static_cast<long>(rng.Below(host.links.size())));
        } else {
          std::vector<std::string> names = model.AllHostNames();
          std::string target = names[rng.Below(names.size())];
          if (target == host.name) {
            break;
          }
          host.links.push_back(LinkModel{target, static_cast<Cost>(1 + rng.Below(900))});
        }
        touch(*file);
        break;
      }
      case 7: {  // duplicate declaration of an existing link in ANOTHER file
        std::vector<std::string> names = model.AllHostNames();
        if (names.size() < 2) {
          break;
        }
        FileModel& file = random_file();
        std::string from = names[rng.Below(names.size())];
        std::string to = names[rng.Below(names.size())];
        if (from == to) {
          break;
        }
        file.hosts.push_back(
            HostModel{from, {LinkModel{to, static_cast<Cost>(1 + rng.Below(900))}}});
        touch(file);
        break;
      }
      case 8: {  // non-plain declaration in, or out
        // Aliases, dead hosts/links, adjust biases, and gatewayed nets now take the
        // patch path; net and private declarations still force a replay.  Remove-
        // first keeps the replay-forcing episodes short (while a net/private decl
        // sits in the map, related edits rebuild) so neither path starves.
        FileModel* holder = nullptr;
        for (FileModel& file : model.files) {
          if (!file.extra_lines.empty()) {
            holder = &file;
            break;
          }
        }
        if (holder != nullptr) {
          holder->extra_lines.pop_back();
          touch(*holder);
        } else {
          std::vector<std::string> names = model.AllHostNames();
          if (names.size() < 2) {
            break;
          }
          FileModel& file = random_file();
          const std::string& subject = names[rng.Below(names.size())];
          const std::string& other = names[rng.Below(names.size())];
          switch (rng.Below(7)) {
            case 0:
              file.extra_lines.push_back(subject + " = nick" + std::to_string(step));
              break;
            case 1:
              file.extra_lines.push_back("dead {" + subject + "}");
              break;
            case 2:
              if (subject != other) {
                file.extra_lines.push_back("dead {" + subject + "!" + other + "}");
              }
              break;
            case 3:
              file.extra_lines.push_back("adjust {" + subject + "(" +
                                         std::to_string(5 + rng.Below(200)) + ")}");
              break;
            case 4:
              file.extra_lines.push_back("gatewayed {" + subject + "}\ngateway {" +
                                         subject + "!" + other + "}");
              break;
            case 5:  // net declarations still force the replay path
              if (subject != other) {
                file.extra_lines.push_back("fuzznet" + std::to_string(step) + " = {" +
                                           subject + ", " + other + "}(" +
                                           std::to_string(20 + rng.Below(200)) + ")");
              }
              break;
            default:  // private scoping still forces the replay path
              file.extra_lines.push_back("private {" + subject + "}");
              break;
          }
          touch(file);
        }
        break;
      }
      default: {  // add a new file, or drop a non-essential one
        if (model.files.size() > 3 && rng.Below(2) == 0) {
          size_t index = rng.Below(model.files.size());
          bool holds_local = false;
          for (const HostModel& host : model.files[index].hosts) {
            if (host.name == local) {
              holds_local = true;
            }
          }
          if (!holds_local) {
            removed_names.push_back(model.files[index].name);
            model.files.erase(model.files.begin() + static_cast<long>(index));
            break;
          }
        }
        std::vector<std::string> names = model.AllHostNames();
        if (names.empty()) {
          break;
        }
        FileModel fresh{"extra" + std::to_string(step) + ".map", {}, {}};
        std::string name = model.NewHostName();
        const std::string& anchor = names[rng.Below(names.size())];
        fresh.hosts.push_back(
            HostModel{name, {LinkModel{anchor, static_cast<Cost>(5 + rng.Below(300))}}});
        model.files.push_back(fresh);
        touch(model.files.back());
        break;
      }
    }

    // Heal: re-attach any declared host the edit disconnected.  Permanent
    // unreachability would ratchet the builder into rebuild-forever (back links are
    // a global fixpoint), starving the patch path; transient unreachability is
    // covered by the dedicated unit test.
    {
      std::unordered_map<std::string, std::vector<std::string>> outgoing;
      std::vector<std::string> declared;
      for (const FileModel& file : model.files) {
        for (const HostModel& host : file.hosts) {
          declared.push_back(host.name);
          auto& targets = outgoing[host.name];
          for (const LinkModel& link : host.links) {
            targets.push_back(link.to);
          }
        }
      }
      std::unordered_set<std::string> reached;
      std::vector<std::string> frontier{local};
      reached.insert(local);
      auto expand = [&] {
        while (!frontier.empty()) {
          std::string current = std::move(frontier.back());
          frontier.pop_back();
          for (const std::string& target : outgoing[current]) {
            if (reached.insert(target).second) {
              frontier.push_back(target);
            }
          }
        }
      };
      expand();
      for (const std::string& name : declared) {
        if (reached.contains(name)) {
          continue;
        }
        for (FileModel& file : model.files) {  // graft onto the local host's decl
          for (HostModel& host : file.hosts) {
            if (host.name == local) {
              host.links.push_back(LinkModel{name, static_cast<Cost>(50 + rng.Below(200))});
              touch(file);
            }
          }
        }
        reached.insert(name);
        frontier.push_back(name);
        expand();
      }
    }

    std::vector<InputFile> changed;
    for (const std::string& name : changed_names) {
      for (const FileModel& file : model.files) {
        if (file.name == name) {
          changed.push_back(model.Render(file));
        }
      }
    }
    UpdateStats stats = builder.Update(changed, removed_names);
    (stats.patched ? patched_updates : rebuild_updates) += 1;
    if (stats.patched && (stats.alias_edits > 0 || stats.link_flag_edits > 0 ||
                          stats.host_state_edits > 0 || stats.region_has_aliases)) {
      ++patched_alias_updates;
    }

    std::vector<InputFile> rendered = model.RenderAll();
    ASSERT_EQ(builder.routes().ToSortedText(true), ReferenceSortedRoutes(rendered, local))
        << "step " << step << " seed " << GetParam()
        << (stats.patched ? " (patched: " : " (rebuilt: ") << stats.rebuild_reason << ")";

    if (step % 20 == 19) {
      // Cross-backend, cross-execution-mode equivalence on a mixed query load.
      std::vector<std::string> names = model.AllHostNames();
      names.push_back("unknown-host");
      names.push_back("stranger.example");
      std::vector<std::string_view> queries(names.begin(), names.end());

      Diagnostics diag;
      RunOptions options;
      options.local = local;
      RunResult reference = pathalias::Run(rendered, options, &diag);
      RouteSet reference_routes = RouteSet::FromEntries(reference.routes);

      std::string expected = FormatBatch(reference_routes, queries, /*threads=*/1);
      EXPECT_EQ(FormatBatch(builder.routes(), queries, 1), expected) << "step " << step;
      EXPECT_EQ(FormatBatch(builder.routes(), queries, 4), expected) << "step " << step;

      // The pipelined batch loop must stay byte-identical to the scalar
      // reference over every evolving topology this fuzz produces, at a
      // degenerate, the default, and the maximum window.
      {
        Resolver resolver(&builder.routes(), ResolveOptions{});
        std::vector<BatchLookup> scalar(queries.size());
        size_t scalar_resolved = resolver.ResolveBatchScalar(queries, scalar);
        for (size_t window : {size_t{1}, Resolver::kDefaultPipelineWindow,
                              Resolver::kMaxPipelineWindow}) {
          std::vector<BatchLookup> pipelined(queries.size());
          ASSERT_EQ(resolver.ResolveBatchPipelined(queries, pipelined, window),
                    scalar_resolved)
              << "step " << step << " window " << window;
          for (size_t i = 0; i < queries.size(); ++i) {
            ASSERT_EQ(scalar[i].route.route.data(), pipelined[i].route.route.data())
                << "step " << step << " window " << window << " query " << queries[i];
            ASSERT_EQ(scalar[i].via, pipelined[i].via)
                << "step " << step << " window " << window << " query " << queries[i];
            ASSERT_EQ(scalar[i].suffix_match, pipelined[i].suffix_match)
                << "step " << step << " window " << window << " query " << queries[i];
          }
        }
      }

      ASSERT_TRUE(image::ImageWriter::Refreeze(builder.routes(), image_path.string()));
      std::string error;
      auto frozen = FrozenImage::Open(image_path.string(),
                                      image::ImageView::Verify::kChecksum, &error);
      ASSERT_TRUE(frozen.has_value()) << error;
      EXPECT_EQ(FormatBatch(frozen->routes(), queries, 1), expected) << "step " << step;
      EXPECT_EQ(FormatBatch(frozen->routes(), queries, 4), expected) << "step " << step;
    }
  }

  // The property is vacuous if one of the paths never ran — and the lifted gates
  // are untested if every alias/dead/gateway/adjust edit silently fell back.
  EXPECT_GT(patched_updates, static_cast<size_t>(kSteps / 4))
      << "patch path barely exercised";
  EXPECT_GT(rebuild_updates, 0u) << "fallback path never exercised";
  EXPECT_GT(patched_alias_updates, 0u)
      << "no alias/dead/gateway/adjust edit took the patch path";
  fs::remove(image_path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalFuzz,
                         ::testing::Values(1986u, 42u, 0xfeedfaceu, 7u));

}  // namespace
}  // namespace incr
}  // namespace pathalias
