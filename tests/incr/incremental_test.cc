// Unit tests for the incremental pipeline's pieces: artifact record/replay/serialize,
// per-node route building, RouteSet deltas, the MapBuilder's patch and fallback
// paths, and state-dir persistence.  The randomized-edit equivalence property lives
// in incremental_fuzz_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "src/core/pathalias.h"
#include "src/core/route_printer.h"
#include "src/incr/artifact.h"
#include "src/incr/map_builder.h"
#include "src/incr/state_dir.h"
#include "src/mapgen/mapgen.h"
#include "src/route_db/route_db.h"

namespace pathalias {
namespace incr {
namespace {

namespace fs = std::filesystem;

// The canonical form every equivalence check compares: what a from-scratch pipeline
// over `files` emits, as a name-sorted route list.
std::string ReferenceSortedRoutes(const std::vector<InputFile>& files,
                                  const std::string& local) {
  Diagnostics diag;
  RunOptions options;
  options.local = local;
  RunResult result = pathalias::Run(files, options, &diag);
  return RouteSet::FromEntries(result.routes).ToSortedText(/*include_costs=*/true);
}

std::string BuilderSortedRoutes(const MapBuilder& builder) {
  return builder.routes().ToSortedText(/*include_costs=*/true);
}

TEST(Artifact, RecordsEveryDeclarationKind) {
  InputFile file{"kitchen.map",
                 "alpha\tbeta(10), gamma(4), @delta\n"
                 "net = @{alpha, beta}(25)\n"
                 "alpha = omega\n"
                 "private {secret}\n"
                 "dead {beta, alpha!gamma}\n"
                 "delete {zombie}\n"
                 "adjust {alpha(+5)}\n"
                 "gatewayed {net}\n"
                 "gateway {net!alpha}\n"};
  Diagnostics diag;
  FileArtifact artifact = ParseFileToArtifact(file, &diag);
  EXPECT_EQ(artifact.file_name, "kitchen.map");
  EXPECT_EQ(artifact.digest, DigestBytes(file.content));
  EXPECT_FALSE(artifact.plain_links);
  EXPECT_NE(artifact.first_host, kNoSymbol);
  EXPECT_EQ(artifact.Symbol(artifact.first_host), "alpha");

  size_t links = 0, nets = 0, aliases = 0, privates = 0, dead_hosts = 0, dead_links = 0,
         deletes = 0, adjusts = 0, gatewayed = 0, gateways = 0;
  for (const Op& op : artifact.ops) {
    switch (op.kind) {
      case OpKind::kLink: ++links; break;
      case OpKind::kNet: ++nets; break;
      case OpKind::kAlias: ++aliases; break;
      case OpKind::kPrivate: ++privates; break;
      case OpKind::kDeadHost: ++dead_hosts; break;
      case OpKind::kDeadLink: ++dead_links; break;
      case OpKind::kDelete: ++deletes; break;
      case OpKind::kAdjust: ++adjusts; break;
      case OpKind::kGatewayed: ++gatewayed; break;
      case OpKind::kGatewayLink: ++gateways; break;
      default: break;
    }
  }
  EXPECT_EQ(links, 3u);
  EXPECT_EQ(nets, 1u);
  EXPECT_EQ(aliases, 1u);
  EXPECT_EQ(privates, 1u);
  EXPECT_EQ(dead_hosts, 1u);
  EXPECT_EQ(dead_links, 1u);
  EXPECT_EQ(deletes, 1u);
  EXPECT_EQ(adjusts, 1u);
  EXPECT_EQ(gatewayed, 1u);
  EXPECT_EQ(gateways, 1u);
}

TEST(Artifact, SerializationRoundTrips) {
  InputFile file{"round.map",
                 "a\tb(10), c(HOURLY)\n"
                 "n = {a, b, c}(50)\n"
                 "private {p}\n"};
  Diagnostics diag;
  FileArtifact artifact = ParseFileToArtifact(file, &diag);
  std::string bytes = SerializeArtifact(artifact);
  std::optional<FileArtifact> loaded = DeserializeArtifact(bytes);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->file_name, artifact.file_name);
  EXPECT_EQ(loaded->digest, artifact.digest);
  EXPECT_EQ(loaded->symbols, artifact.symbols);
  EXPECT_EQ(loaded->net_members, artifact.net_members);
  EXPECT_EQ(loaded->first_host, artifact.first_host);
  EXPECT_EQ(loaded->plain_links, artifact.plain_links);
  ASSERT_EQ(loaded->ops.size(), artifact.ops.size());
  for (size_t i = 0; i < artifact.ops.size(); ++i) {
    EXPECT_EQ(loaded->ops[i].kind, artifact.ops[i].kind) << i;
    EXPECT_EQ(loaded->ops[i].a, artifact.ops[i].a) << i;
    EXPECT_EQ(loaded->ops[i].b, artifact.ops[i].b) << i;
    EXPECT_EQ(loaded->ops[i].cost, artifact.ops[i].cost) << i;
    EXPECT_EQ(loaded->ops[i].op, artifact.ops[i].op) << i;
    EXPECT_EQ(loaded->ops[i].right, artifact.ops[i].right) << i;
  }
  // Truncations must be rejected, never mis-read.
  for (size_t cut : {size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeArtifact(std::string_view(bytes).substr(0, cut)).has_value())
        << cut;
  }
}

// Replaying recorded artifacts must build the same routes a direct parse does —
// across the full declaration surface the synthetic generator exercises (nets,
// domains, aliases, private collisions, dead links).
TEST(Artifact, ReplayMatchesDirectParseOnGeneratedMap) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::Small());
  std::string reference = ReferenceSortedRoutes(map.files, map.local);

  MapBuilder builder(MapBuilderOptions{.local = map.local});
  ASSERT_TRUE(builder.Build(map.files));
  EXPECT_EQ(BuilderSortedRoutes(builder), reference);
  EXPECT_FALSE(reference.empty());
}

TEST(RoutePrinter, BuildEntryForMatchesFullTraversal) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::Small());
  Diagnostics diag;
  RunOptions options;
  options.local = map.local;
  RunResult result = pathalias::Run(map.files, options, &diag);

  RoutePrinter printer(result.map, PrintOptions{});
  std::vector<RouteEntry> full = printer.Build();
  ASSERT_FALSE(full.empty());
  size_t matched = 0;
  for (const RouteEntry& entry : full) {
    const PathLabel* label = entry.node->label[0] != nullptr && entry.node->label[0]->best
                                 ? entry.node->label[0]
                                 : entry.node->label[1];
    std::optional<RouteEntry> single = printer.BuildEntryFor(label);
    ASSERT_TRUE(single.has_value()) << entry.name;
    EXPECT_EQ(single->name, entry.name);
    EXPECT_EQ(single->route, entry.route);
    EXPECT_EQ(single->cost, entry.cost);
    ++matched;
  }
  EXPECT_EQ(matched, full.size());
}

TEST(RouteSet, ApplyDeltaUpsertsErasesAndReportsDirtyIds) {
  RouteSet set;
  set.Add("a", "a!%s", 10);
  set.Add("b", "b!%s", 20);
  set.Add("c", "c!%s", 30);

  std::vector<RouteUpsert> upserts;
  upserts.push_back({"b", "x!b!%s", 25});  // changed
  upserts.push_back({"a", "a!%s", 10});    // identical: must not be dirty
  upserts.push_back({"d", "d!%s", 40});    // new
  std::vector<std::string> erases = {"c", "ghost"};
  std::vector<NameId> dirty = set.ApplyDelta(upserts, erases);

  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.Find("b")->route, "x!b!%s");
  EXPECT_EQ(set.Find("b")->cost, 25);
  EXPECT_EQ(set.Find("a")->route, "a!%s");
  EXPECT_EQ(set.Find("d")->cost, 40);
  EXPECT_EQ(set.Find("c"), nullptr);

  std::vector<NameId> expected = {set.names().Find("b"), set.names().Find("c"),
                                  set.names().Find("d")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(dirty, expected);

  // Erased names keep their ids: re-adding dirties the same id.
  std::vector<RouteUpsert> readd;
  readd.push_back({"c", "via!c!%s", 31});
  std::vector<NameId> dirty2 = set.ApplyDelta(readd, {});
  ASSERT_EQ(dirty2.size(), 1u);
  EXPECT_EQ(dirty2[0], expected[1]);
}

class MapBuilderPatchTest : public ::testing::Test {
 protected:
  // A three-file map with an unambiguous tree and room to edit.
  std::vector<InputFile> Files(Cost far_cost) {
    return {
        {"core.map", "hub\tmid(100), far(" + std::to_string(far_cost) + ")\n"},
        {"mid.map", "mid\thub(100), leafa(50), leafb(60)\n"},
        {"far.map", "far\thub(400), leafc(10)\nleafc\tfar(10)\n"},
    };
  }

  void ExpectGolden(const MapBuilder& builder, const std::vector<InputFile>& files) {
    EXPECT_EQ(BuilderSortedRoutes(builder), ReferenceSortedRoutes(files, "hub"));
  }
};

TEST_F(MapBuilderPatchTest, RecostPatchesInPlace) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(Files(400)));
  ExpectGolden(builder, Files(400));

  std::vector<InputFile> edited = Files(200);
  UpdateStats stats = builder.Update({edited[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(stats.files_reparsed, 1u);
  EXPECT_GT(stats.dirty_nodes, 0u);
  ExpectGolden(builder, edited);

  // The dirty id list names exactly the changed routes.
  for (NameId id : builder.dirty_route_ids()) {
    EXPECT_NE(builder.routes().names().View(id), "");
  }
}

TEST_F(MapBuilderPatchTest, UnchangedDigestSkipsReparse) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(Files(400)));
  UpdateStats stats = builder.Update({Files(400)[0]});
  EXPECT_TRUE(stats.patched);
  EXPECT_EQ(stats.files_reparsed, 0u);
  EXPECT_EQ(stats.files_unchanged, 1u);
  EXPECT_EQ(stats.routes_changed, 0u);
}

TEST_F(MapBuilderPatchTest, AddAndRemoveHostsAndFiles) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  // Add a new leaf with a return link: patchable.
  files[1].content = "mid\thub(100), leafa(50), leafb(60), leafd(70)\nleafd\tmid(70)\n";
  UpdateStats stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  // Remove it again: its node is orphaned and its route must vanish.
  files[1].content = "mid\thub(100), leafa(50), leafb(60)\n";
  stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  // Add a whole new file, then remove it.
  InputFile extra{"extra.map", "mid\tleafe(5)\nleafe\tmid(5)\n"};
  files.push_back(extra);
  stats = builder.Update({extra});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  files.pop_back();
  stats = builder.Update({}, {"extra.map"});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, RenameHostPatches) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  files[2].content = "far\thub(400), leafz(10)\nleafz\tfar(10)\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, AliasEditsPatchInPlace) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  // Adding an alias is an in-place patch: the nickname's route appears without a
  // replay, and the alias edge count surfaces in the stats.
  files[2].content = "far\thub(400), leafc(10)\nleafc\tfar(10)\nfar = faraway\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(stats.alias_edits, 1u);
  EXPECT_TRUE(stats.region_has_aliases);
  ASSERT_NE(builder.routes().Find("faraway"), nullptr);
  EXPECT_EQ(builder.routes().Find("faraway")->route, builder.routes().Find("far")->route);
  ExpectGolden(builder, files);

  // A plain edit with the alias still in the graph also patches (the old blanket
  // alias gate) ...
  files[0].content = "hub\tmid(100), far(350)\n";
  stats = builder.Update({files[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  // ... and removing the alias patches the nickname's route away again.
  files[2].content = "far\thub(400), leafc(10)\nleafc\tfar(10)\n";
  stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(stats.alias_edits, 1u);
  EXPECT_EQ(builder.routes().Find("faraway"), nullptr);
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, KeywordDeclarationEditsPatchInPlace) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  // dead {hub!far} penalizes the direct link; far re-routes through mid.
  files[2].content = "far\thub(400), leafc(10)\nleafc\tfar(10)\ndead {hub!far}\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_GT(stats.link_flag_edits, 0u);
  ExpectGolden(builder, files);

  // dead {mid} (terminal host) penalizes relaying through mid.
  files[1].content = "mid\thub(100), leafa(50), leafb(60)\ndead {mid}\n";
  stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_GT(stats.host_state_edits, 0u);
  ExpectGolden(builder, files);

  // adjust {far(75)} biases every path through far.
  files[2].content = "far\thub(400), leafc(10)\nleafc\tfar(10)\nadjust {far(75)}\n";
  stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  // gatewayed {far} + gateway {far!hub}: entry anywhere but hub's link costs extra.
  files[2].content =
      "far\thub(400), leafc(10)\nleafc\tfar(10)\ngatewayed {far}\ngateway {far!hub}\n";
  stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  // delete {leafb} removes its route; undeleting restores it.  Both patch.
  files[1].content = "mid\thub(100), leafa(50), leafb(60)\ndelete {leafb}\n";
  stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(builder.routes().Find("leafb"), nullptr);
  ExpectGolden(builder, files);
  files[1].content = "mid\thub(100), leafa(50), leafb(60)\n";
  stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_NE(builder.routes().Find("leafb"), nullptr);
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, CrossReferencedEditsWidenTheSeedSetInsteadOfRefusing) {
  // A dead {hub!far} declaration lives in a file that never changes; editing the
  // referenced link's cost in ANOTHER file used to force a replay ("changed link is
  // referenced by a dead/gateway declaration") and now recomputes the effective
  // state — cheaper cost, dead flag preserved — in place.
  std::vector<InputFile> files = Files(400);
  files.push_back({"marks.map", "dead {hub!far}\n"});
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));

  files[0].content = "hub\tmid(100), far(250)\n";
  UpdateStats stats = builder.Update({files[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, NetMembershipCoincidenceComputesTheCombinedWinner) {
  // wan = {mid, far}(80) declares member→net and net→member edges that take part
  // in duplicate resolution with plain links.  A plain edit on the coinciding
  // (mid, wan) pair used to force a replay and now recomputes the winner across
  // both declaration kinds.
  std::vector<InputFile> files = Files(400);
  files.push_back({"nets.map", "wan = {mid, far}(80)\n"});
  files.push_back({"extra.map", "mid\twan(200)\n"});  // loses to the net's 80
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));

  files.back().content = "mid\twan(40)\n";  // now beats the net's 80
  UpdateStats stats = builder.Update({files.back()});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);

  files.back().content = "mid\twan(120)\n";  // back under the net's winner
  stats = builder.Update({files.back()});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, NetAndPrivateChangedFilesStillFallBack) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  files[2].content = "far\thub(400), leafc(10)\nleafc\tfar(10)\nlan = {far, leafc}(30)\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_FALSE(stats.patched);
  EXPECT_NE(stats.rebuild_reason.find("net or private"), std::string::npos)
      << stats.rebuild_reason;
  ExpectGolden(builder, files);

  files[1].content = "mid\thub(100), leafa(50), leafb(60)\nprivate {leafa}\n";
  stats = builder.Update({files[1]});
  EXPECT_FALSE(stats.patched);
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, AliasChainsPatchAndSurviveUnrelatedEdits) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  // A two-deep nickname chain lands in one patch; both nicknames route like far.
  files[2].content =
      "far\thub(400), leafc(10)\nleafc\tfar(10)\nfar = faraway\nfaraway = farther\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(stats.alias_edits, 2u);
  ASSERT_NE(builder.routes().Find("farther"), nullptr);
  EXPECT_EQ(builder.routes().Find("farther")->route, builder.routes().Find("far")->route);
  ExpectGolden(builder, files);

  // A plain recost in ANOTHER file, with the chain untouched in the graph and the
  // changed-file diff side empty of alias edits, still patches — the chain re-maps
  // inside the dirty region.
  files[0].content = "hub\tmid(100), far(120)\n";
  stats = builder.Update({files[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(stats.alias_edits, 0u);
  EXPECT_TRUE(stats.region_has_aliases);
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, AmbiguousAliasTieFallsBackAndStaysGolden) {
  // nick is aliased to BOTH p1 and p2.  While p1 is strictly cheaper the alias
  // region patches fine; once the edit makes p1 and p2 tie at equal (cost, hops),
  // nick's parent depends on alias-warped pop order the patch cannot reconstruct,
  // so it must refuse — and the replay still lands on the golden output.
  std::vector<InputFile> files = {
      {"f0.map", "hub\tp1(10), p2(20)\n"},
      {"f1.map", "p1\thub(10)\np2\thub(20)\nnick = p1\nnick = p2\n"},
  };
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));

  files[0].content = "hub\tp1(10), p2(10)\n";
  UpdateStats stats = builder.Update({files[0]});
  EXPECT_FALSE(stats.patched);
  EXPECT_NE(stats.rebuild_reason.find("ambiguous alias tie"), std::string::npos)
      << stats.rebuild_reason;
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, UnreachableRegionForcesRebuild) {
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));

  // leafc loses its only inbound path but keeps an outbound link: a rebuild invents
  // a back link, which the patch cannot do locally.
  files[2].content = "far\thub(400)\nleafc\tfar(10)\n";
  UpdateStats stats = builder.Update({files[2]});
  EXPECT_FALSE(stats.patched);
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, DefaultLocalTracksFirstHost) {
  // No explicit local: the first declared host is the source, and an edit that
  // changes it forces a rebuild rooted at the new source.
  MapBuilder builder(MapBuilderOptions{});
  std::vector<InputFile> files = Files(400);
  ASSERT_TRUE(builder.Build(files));
  EXPECT_EQ(builder.local_name(), "hub");

  files[0].content = "newhub\tmid(100)\nmid\tnewhub(100)\nhub\tmid(100), far(400)\n";
  UpdateStats stats = builder.Update({files[0]});
  EXPECT_FALSE(stats.patched);
  EXPECT_EQ(builder.local_name(), "newhub");
  EXPECT_EQ(BuilderSortedRoutes(builder), ReferenceSortedRoutes(files, "newhub"));
}

TEST_F(MapBuilderPatchTest, ImprovementReopensCleanRegion) {
  // y initially routes directly from hub (50); cheapening a's link to x makes the
  // path hub!a!x!y (25) win.  y is OUTSIDE the edit's dirty closure (not in x's old
  // subtree), so the patch must reopen it mid-drain — and its subtree with it.
  std::vector<InputFile> files = {
      {"f0.map", "hub\ta(10), y(50)\n"},
      {"f1.map", "a\thub(10), x(50)\n"},
      {"f2.map", "x\ta(50), y(10)\ny\thub(50), yleaf(5)\nyleaf\ty(5)\n"},
  };
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));
  ASSERT_EQ(builder.routes().Find("y")->route, "y!%s");

  files[1].content = "a\thub(10), x(5)\n";
  UpdateStats stats = builder.Update({files[1]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(builder.routes().Find("y")->route, "a!x!y!%s");
  EXPECT_EQ(builder.routes().Find("yleaf")->route, "a!x!y!yleaf!%s");
  ExpectGolden(builder, files);
}

TEST_F(MapBuilderPatchTest, EqualCostTieReopensToExtractionOrderWinner) {
  // p1 and p2 offer z identical (cost, hops); a full run routes z via p1 (p1 pops
  // first: equal cost and hops, smaller name).  Knock p1 out, then restore it: the
  // restoring patch relaxes z with an EQUAL candidate from p1, and must reopen z
  // because the full rebuild's tie-break elects p1 — byte-identity demands the
  // parent switch, not just the cost.
  std::vector<InputFile> files = {
      {"f0.map", "hub\tp1(10), p2(10)\n"},
      {"f1.map", "p1\thub(10), z(5)\np2\thub(10), z(5)\nz\tp1(5)\n"},
  };
  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(builder.Build(files));
  ASSERT_EQ(builder.routes().Find("z")->route, "p1!z!%s");

  files[0].content = "hub\tp1(30), p2(10)\n";
  UpdateStats stats = builder.Update({files[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(builder.routes().Find("z")->route, "p2!z!%s");
  ExpectGolden(builder, files);

  files[0].content = "hub\tp1(10), p2(10)\n";
  stats = builder.Update({files[0]});
  EXPECT_TRUE(stats.patched) << stats.rebuild_reason;
  EXPECT_EQ(builder.routes().Find("z")->route, "p1!z!%s");
  ExpectGolden(builder, files);
}

TEST(Artifact, StoredParseErrorsSurviveReuse) {
  InputFile broken{"broken.map", "hub\tleaf(10)\nbogus !!! line\n"};
  Diagnostics parse_diag;
  FileArtifact artifact = ParseFileToArtifact(broken, &parse_diag);
  EXPECT_EQ(parse_diag.error_count(), 1u);
  ASSERT_EQ(artifact.errors.size(), 1u);
  EXPECT_EQ(artifact.errors[0].line, 2u);

  // The errors ride through serialization, and a builder fed the pre-parsed
  // artifact (the digest-matched reuse path) reports them again: a still-broken
  // input must not decay into a silent success.
  std::optional<FileArtifact> loaded = DeserializeArtifact(SerializeArtifact(artifact));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->errors.size(), 1u);
  EXPECT_EQ(loaded->errors[0].message, artifact.errors[0].message);

  MapBuilder builder(MapBuilderOptions{.local = "hub"});
  std::vector<FileArtifact> artifacts;
  artifacts.push_back(std::move(*loaded));
  ASSERT_TRUE(builder.BuildFromArtifacts(std::move(artifacts)));
  EXPECT_EQ(builder.diag().error_count(), 1u);

  size_t reparsed = 0;
  size_t reused = 0;
  MapBuilder again(MapBuilderOptions{.local = "hub"});
  ASSERT_TRUE(again.BuildReusing({broken}, builder.artifacts(), &reparsed, &reused));
  EXPECT_EQ(reused, 1u);
  EXPECT_EQ(again.diag().error_count(), 1u);
}

TEST(StateDir, SaveLoadRoundTripAndRejection) {
  GeneratedMap map = GenerateUsenetMap(MapGenConfig::Small());
  MapBuilder builder(MapBuilderOptions{.local = map.local});
  ASSERT_TRUE(builder.Build(map.files));

  fs::path dir = fs::temp_directory_path() / ("pathalias_state_test_" +
                                              std::to_string(::getpid()));
  fs::remove_all(dir);
  StateDirContents contents;
  contents.local = builder.local_name();
  contents.ignore_case = false;
  contents.artifacts = builder.artifacts();
  ASSERT_TRUE(SaveStateDir(dir.string(), contents));

  std::string error;
  std::optional<StateDirContents> loaded = LoadStateDir(dir.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->local, map.local);
  ASSERT_EQ(loaded->artifacts.size(), builder.artifacts().size());

  // A builder restored from the state dir produces identical routes.
  MapBuilder restored(MapBuilderOptions{.local = loaded->local});
  ASSERT_TRUE(restored.BuildFromArtifacts(std::move(loaded->artifacts)));
  EXPECT_EQ(BuilderSortedRoutes(restored), BuilderSortedRoutes(builder));

  // Corruption is refused, not misread.
  {
    std::ofstream manifest(dir / "manifest", std::ios::trunc);
    manifest << "not a manifest\n";
  }
  EXPECT_FALSE(LoadStateDir(dir.string(), &error).has_value());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace incr
}  // namespace pathalias
