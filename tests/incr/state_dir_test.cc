// State-dir robustness: generation stamping, corrupt/truncated/skewed loads
// falling back cleanly to rebuild-needed, and crash-safe manifest publishing
// under injected faults.  The happy-path round trip lives in incremental_test.cc.

#include "src/incr/state_dir.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "src/incr/artifact.h"
#include "src/support/failpoint.h"

namespace pathalias {
namespace incr {
namespace {

namespace fs = std::filesystem;
namespace failpoint = support::failpoint;

fs::path MakeScratchDir() {
  static int counter = 0;
  fs::path dir = fs::temp_directory_path() /
                 ("pathalias_statedir_test_" + std::to_string(::getpid()) + "_" +
                  std::to_string(counter++));
  fs::remove_all(dir);
  return dir;
}

StateDirContents SmallContents() {
  StateDirContents contents;
  contents.local = "hub";
  contents.ignore_case = false;
  contents.image_generation = 7;
  Diagnostics diag;
  contents.artifacts.push_back(
      ParseFileToArtifact({"a.map", "hub\talpha(3), beta\n"}, &diag));
  contents.artifacts.push_back(
      ParseFileToArtifact({"b.map", "beta\tgamma(2)\n"}, &diag));
  return contents;
}

std::string ReadFileText(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFileText(const fs::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
}

class StateDirTest : public ::testing::Test {
 protected:
  void SetUp() override { dir_ = MakeScratchDir(); }
  void TearDown() override {
    failpoint::Reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(StateDirTest, GenerationRoundTrips) {
  StateDirContents contents = SmallContents();
  contents.image_generation = 42;
  ASSERT_TRUE(SaveStateDir(dir_.string(), contents));
  std::string error;
  auto loaded = LoadStateDir(dir_.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->image_generation, 42u);
  EXPECT_EQ(loaded->artifacts.size(), 2u);
}

TEST_F(StateDirTest, Version1ManifestLoadsAsGenerationZero) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  // Rewrite the manifest as the v1 format: old header, no generation line.
  std::string manifest = ReadFileText(dir_ / "manifest");
  size_t generation_at = manifest.find("generation\t");
  ASSERT_NE(generation_at, std::string::npos);
  size_t line_end = manifest.find('\n', generation_at);
  manifest.erase(generation_at, line_end - generation_at + 1);
  size_t header_at = manifest.find("pathalias-state 2");
  ASSERT_NE(header_at, std::string::npos);
  manifest.replace(header_at, 17, "pathalias-state 1");
  WriteFileText(dir_ / "manifest", manifest);

  std::string error;
  auto loaded = LoadStateDir(dir_.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->image_generation, 0u);
  EXPECT_EQ(loaded->artifacts.size(), 2u);
}

TEST_F(StateDirTest, FutureVersionRejectedCleanly) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  std::string manifest = ReadFileText(dir_ / "manifest");
  size_t header_at = manifest.find("pathalias-state 2");
  ASSERT_NE(header_at, std::string::npos);
  manifest.replace(header_at, 17, "pathalias-state 9");
  WriteFileText(dir_ / "manifest", manifest);

  std::string error;
  EXPECT_FALSE(LoadStateDir(dir_.string(), &error).has_value());
  EXPECT_NE(error.find("newer"), std::string::npos) << error;
}

TEST_F(StateDirTest, TruncatedManifestRejectedCleanly) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  std::string manifest = ReadFileText(dir_ / "manifest");
  // Chop at every prefix length: no truncation point may crash or misload.
  for (size_t keep = 0; keep < manifest.size(); keep += 7) {
    WriteFileText(dir_ / "manifest", manifest.substr(0, keep));
    std::string error;
    EXPECT_FALSE(LoadStateDir(dir_.string(), &error).has_value())
        << "prefix of " << keep << " bytes loaded";
    EXPECT_FALSE(error.empty());
  }
}

TEST_F(StateDirTest, TruncatedArtifactRejectedCleanly) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_ / "artifacts")) {
    std::string bytes = ReadFileText(entry.path());
    ASSERT_GT(bytes.size(), 4u);
    WriteFileText(entry.path(), bytes.substr(0, bytes.size() / 2));
    break;  // one torn payload is enough to poison the directory
  }
  std::string error;
  EXPECT_FALSE(LoadStateDir(dir_.string(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(StateDirTest, DigestMismatchRejectedCleanly) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  // Corrupt the first digit of the first artifact line's digest.
  std::string manifest = ReadFileText(dir_ / "manifest");
  size_t files_line = manifest.find("files\t");
  ASSERT_NE(files_line, std::string::npos);
  size_t digest_at = manifest.find('\n', files_line) + 1;
  ASSERT_LT(digest_at, manifest.size());
  manifest[digest_at] = manifest[digest_at] == '1' ? '2' : '1';
  WriteFileText(dir_ / "manifest", manifest);

  std::string error;
  EXPECT_FALSE(LoadStateDir(dir_.string(), &error).has_value());
  EXPECT_NE(error.find("does not match"), std::string::npos) << error;
}

TEST_F(StateDirTest, MalformedGenerationRejectedCleanly) {
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  std::string manifest = ReadFileText(dir_ / "manifest");
  size_t generation_at = manifest.find("generation\t7");
  ASSERT_NE(generation_at, std::string::npos);
  manifest.replace(generation_at, 12, "generation\tx");
  WriteFileText(dir_ / "manifest", manifest);

  std::string error;
  EXPECT_FALSE(LoadStateDir(dir_.string(), &error).has_value());
  EXPECT_NE(error.find("generation"), std::string::npos) << error;
}

// The satellite regression: a crash (injected failure) between writing the
// manifest temp file and renaming it must leave the previously published
// manifest fully intact — loads succeed and see the OLD contents.
TEST_F(StateDirTest, FailedRenameKeepsPreviousManifest) {
  StateDirContents contents = SmallContents();
  ASSERT_TRUE(SaveStateDir(dir_.string(), contents));

  contents.image_generation = 8;
  ASSERT_TRUE(failpoint::Arm("state.publish.rename", "always,errno:ENOSPC"));
  EXPECT_FALSE(SaveStateDir(dir_.string(), contents));
  failpoint::Reset();

  std::string error;
  auto loaded = LoadStateDir(dir_.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->image_generation, 7u);  // the OLD publish, not the torn one
}

TEST_F(StateDirTest, ShortWriteNeverTearsPublishedManifest) {
  StateDirContents contents = SmallContents();
  ASSERT_TRUE(SaveStateDir(dir_.string(), contents));
  std::string before = ReadFileText(dir_ / "manifest");

  contents.image_generation = 8;
  // The .write site simulates ENOSPC after half the bytes: the torn bytes live
  // only in the temp file (unlinked on failure), never at the published path.
  ASSERT_TRUE(failpoint::Arm("state.publish.write", "always,errno:ENOSPC"));
  EXPECT_FALSE(SaveStateDir(dir_.string(), contents));
  failpoint::Reset();

  EXPECT_EQ(ReadFileText(dir_ / "manifest"), before);
  std::string error;
  ASSERT_TRUE(LoadStateDir(dir_.string(), &error).has_value()) << error;
}

TEST_F(StateDirTest, FsyncFailureReportsAndKeepsOld) {
  StateDirContents contents = SmallContents();
  ASSERT_TRUE(SaveStateDir(dir_.string(), contents));

  contents.image_generation = 8;
  ASSERT_TRUE(failpoint::Arm("state.publish.fsync", "always,errno:EIO"));
  EXPECT_FALSE(SaveStateDir(dir_.string(), contents));
  failpoint::Reset();

  std::string error;
  auto loaded = LoadStateDir(dir_.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->image_generation, 7u);
}

TEST_F(StateDirTest, LeftoverTempFileFromCrashIsRecoveredFrom) {
  // A real crash leaves <manifest>.tmp behind (no unlink ran).  The next save
  // must truncate and overwrite it, and loads must ignore it entirely.
  ASSERT_TRUE(SaveStateDir(dir_.string(), SmallContents()));
  WriteFileText(dir_ / "manifest.tmp", "garbage from a crashed publish");

  std::string error;
  ASSERT_TRUE(LoadStateDir(dir_.string(), &error).has_value()) << error;

  StateDirContents contents = SmallContents();
  contents.image_generation = 9;
  ASSERT_TRUE(SaveStateDir(dir_.string(), contents));
  auto loaded = LoadStateDir(dir_.string(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->image_generation, 9u);
}

}  // namespace
}  // namespace incr
}  // namespace pathalias
