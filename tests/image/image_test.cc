// The frozen route image: freeze → adopt/mmap → resolve must be indistinguishable from
// the live RouteSet, and a damaged image must be rejected before anything trusts it.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/core/pathalias.h"
#include "src/image/frozen_route_set.h"
#include "src/image/image_format.h"
#include "src/image/image_view.h"
#include "src/image/image_writer.h"
#include "src/route_db/resolver.h"
#include "src/route_db/route_db.h"
#include "src/support/failpoint.h"

namespace pathalias {
namespace {

namespace fs = std::filesystem;

// The paper's worked example (§Output): the map whose routes every layer reproduces
// byte-for-byte, which makes it the canonical equivalence fixture.
constexpr std::string_view kPaperInput = R"(unc	duke(HOURLY), phs(HOURLY*4)
duke	unc(DEMAND), research(DAILY/2), phs(DEMAND)
phs	unc(HOURLY*4), duke(HOURLY)
research	duke(DEMAND), ucbvax(DEMAND)
ucbvax	research(DAILY)
ARPA = @{mit-ai, ucbvax, stanford}(DEDICATED)
)";

RouteSet PaperRouteSet() {
  Diagnostics diag;
  RunOptions options;
  options.local = "unc";
  RunResult result = RunString(kPaperInput, options, &diag);
  RouteSet set = RouteSet::FromEntries(result.routes);
  // Domain keys exercise the suffix machinery the image must freeze faithfully.
  set.Add(".edu", "seismo!%s", 100);
  set.Add("caip.rutgers.edu", "seismo!caip.rutgers.edu!%s", 195);
  return set;
}

std::optional<image::ImageView> Adopt(const std::string& buffer,
                                      image::ImageView::Verify verify,
                                      std::string* error = nullptr) {
  return image::ImageView::Adopt(buffer, verify, error);
}

TEST(ImageWriter, FreezeProducesValidatedImage) {
  RouteSet routes = PaperRouteSet();
  std::string buffer = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view = Adopt(buffer, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view.has_value()) << error;
  EXPECT_EQ(view->route_count(), routes.size());
  EXPECT_EQ(view->name_count(), routes.names().size());
  EXPECT_EQ(view->header().file_size, buffer.size());
}

TEST(ImageWriter, FrozenSetMatchesLiveRouteByRoute) {
  RouteSet routes = PaperRouteSet();
  std::string buffer = image::ImageWriter::Freeze(routes);
  auto view = Adopt(buffer, image::ImageView::Verify::kChecksum);
  ASSERT_TRUE(view.has_value());
  FrozenRouteSet frozen(*view);

  ASSERT_EQ(frozen.size(), routes.size());
  for (uint32_t i = 0; i < routes.size(); ++i) {
    const Route& live = routes.routes()[i];
    RouteView image_route = frozen.RouteAt(i);
    EXPECT_EQ(image_route.name, live.name);
    EXPECT_EQ(image_route.route, live.route);
    EXPECT_EQ(image_route.cost, live.cost);
    EXPECT_EQ(frozen.NameOf(image_route), routes.NameOf(live));
  }
  // Interner equivalence: every id resolves to the same bytes, suffix chain included.
  for (NameId id = 0; id < routes.names().size(); ++id) {
    EXPECT_EQ(frozen.names().View(id), routes.names().View(id));
    EXPECT_EQ(frozen.names().Suffix(id), routes.names().Suffix(id));
    EXPECT_EQ(frozen.names().Find(routes.names().View(id)), id);
  }
}

TEST(ImageWriter, FrozenResolverAgreesWithLiveResolverOnMixedBatch) {
  RouteSet routes = PaperRouteSet();
  std::string buffer = image::ImageWriter::Freeze(routes);
  auto view = Adopt(buffer, image::ImageView::Verify::kChecksum);
  ASSERT_TRUE(view.has_value());
  FrozenRouteSet frozen(*view);

  std::vector<std::string_view> queries = {
      "phs",                  // exact hit
      "ucbvax",               // exact hit
      "caip.rutgers.edu",     // exact hit on a domainized key
      "blue.rutgers.edu",     // suffix fallback to .edu through an un-interned suffix
      "deep.caip.rutgers.edu",  // stranger under a known chain
      "nowhere",              // undotted miss
      "miss.example.com",     // dotted miss: the suffix walk must drain identically
      ".edu",                 // a domain key queried directly
  };
  std::vector<BatchLookup> live_results(queries.size());
  std::vector<BatchLookup> frozen_results(queries.size());
  Resolver live_resolver(&routes, ResolveOptions{});
  FrozenResolver frozen_resolver(&frozen, ResolveOptions{});
  size_t live_hits = live_resolver.ResolveBatch(queries, live_results);
  size_t frozen_hits = frozen_resolver.ResolveBatch(queries, frozen_results);
  EXPECT_EQ(live_hits, frozen_hits);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(live_results[i].route.ok(), frozen_results[i].route.ok()) << queries[i];
    EXPECT_EQ(live_results[i].via, frozen_results[i].via) << queries[i];
    EXPECT_EQ(live_results[i].suffix_match, frozen_results[i].suffix_match) << queries[i];
    if (live_results[i].route.ok()) {
      EXPECT_EQ(live_results[i].route.route, frozen_results[i].route.route) << queries[i];
      EXPECT_EQ(live_results[i].route.cost, frozen_results[i].route.cost) << queries[i];
    }
  }

  // Full address resolution, both optimization policies.
  for (auto optimize : {ResolveOptions::Optimize::kFirstHop,
                        ResolveOptions::Optimize::kRightmostKnown}) {
    ResolveOptions options;
    options.optimize = optimize;
    Resolver live(&routes, options);
    FrozenResolver cold(&frozen, options);
    for (std::string_view address :
         {"phs!honey", "caip.rutgers.edu!pleasant", "duke!research!ucbvax!mcvax!piet",
          "pleasant@blue.rutgers.edu", "duke!phs!duke!user", "ghost!user", "honey"}) {
      Resolution a = live.Resolve(address);
      Resolution b = cold.Resolve(address);
      EXPECT_EQ(a.ok, b.ok) << address;
      EXPECT_EQ(a.route, b.route) << address;
      EXPECT_EQ(a.via, b.via) << address;
      EXPECT_EQ(a.argument, b.argument) << address;
      EXPECT_EQ(a.error, b.error) << address;
    }
  }
}

TEST(ImageWriter, EmptyRouteSetFreezesAndMisses) {
  RouteSet routes;
  std::string buffer = image::ImageWriter::Freeze(routes);
  std::string error;
  auto view = Adopt(buffer, image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(view.has_value()) << error;
  FrozenRouteSet frozen(*view);
  EXPECT_TRUE(frozen.empty());
  EXPECT_FALSE(frozen.FindRouteView("anything").ok());
  EXPECT_EQ(frozen.names().Find("anything"), kNoName);
}

TEST(ImageView, RejectsTruncatedImage) {
  std::string buffer = image::ImageWriter::Freeze(PaperRouteSet());
  std::string error;
  for (size_t keep : {size_t{0}, size_t{16}, sizeof(image::ImageHeader),
                      buffer.size() / 2, buffer.size() - 1}) {
    EXPECT_FALSE(
        Adopt(buffer.substr(0, keep), image::ImageView::Verify::kStructure, &error).has_value())
        << "kept " << keep << " bytes";
  }
}

TEST(ImageView, RejectsBadMagicAndVersion) {
  std::string buffer = image::ImageWriter::Freeze(PaperRouteSet());
  std::string error;

  std::string bad_magic = buffer;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Adopt(bad_magic, image::ImageView::Verify::kStructure, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  std::string bad_version = buffer;
  image::ImageHeader header;
  std::memcpy(&header, bad_version.data(), sizeof(header));
  header.version = 999;
  std::memcpy(bad_version.data(), &header, sizeof(header));
  EXPECT_FALSE(Adopt(bad_version, image::ImageView::Verify::kStructure, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(ImageView, RejectsForeignEndianImage) {
  std::string buffer = image::ImageWriter::Freeze(PaperRouteSet());
  // Simulate reading a foreign-endian image: byte-swap the endian marker, as the whole
  // header would appear on an opposite-endian host.
  image::ImageHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  header.endian = __builtin_bswap32(header.endian);
  std::memcpy(buffer.data(), &header, sizeof(header));
  std::string error;
  EXPECT_FALSE(Adopt(buffer, image::ImageView::Verify::kStructure, &error).has_value());
  EXPECT_NE(error.find("endian"), std::string::npos) << error;
}

TEST(ImageView, ChecksumCatchesPayloadCorruption) {
  std::string buffer = image::ImageWriter::Freeze(PaperRouteSet());
  // Flip one bit in the middle of the payload (name/route pool area).
  buffer[buffer.size() - 8] ^= 0x40;
  std::string error;
  EXPECT_FALSE(Adopt(buffer, image::ImageView::Verify::kChecksum, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(ImageView, StructureCatchesCorruptedRecords) {
  RouteSet routes = PaperRouteSet();
  std::string pristine = image::ImageWriter::Freeze(routes);
  image::ImageHeader header;
  std::memcpy(&header, pristine.data(), sizeof(header));
  std::string error;

  {  // A by-name slot pointing past the route section.
    std::string corrupt = pristine;
    uint32_t bogus = header.route_count + 7;
    std::memcpy(corrupt.data() + header.by_name_offset, &bogus, sizeof(bogus));
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
  }
  {  // A route record keyed by an out-of-range NameId.
    std::string corrupt = pristine;
    image::FrozenRoute route;
    std::memcpy(&route, corrupt.data() + header.routes_offset, sizeof(route));
    route.name = header.name_count + 1;
    std::memcpy(corrupt.data() + header.routes_offset, &route, sizeof(route));
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
  }
  {  // A name entry escaping its pool.
    std::string corrupt = pristine;
    NameInterner::FrozenEntry entry;
    std::memcpy(&entry, corrupt.data() + header.names_offset, sizeof(entry));
    entry.bytes_offset = static_cast<uint32_t>(header.name_bytes_size);
    std::memcpy(corrupt.data() + header.names_offset, &entry, sizeof(entry));
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
  }
  {  // Header claims more bytes than the buffer holds.
    std::string corrupt = pristine;
    image::ImageHeader lying = header;
    lying.file_size += 4096;
    std::memcpy(corrupt.data(), &lying, sizeof(lying));
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
  }
  {  // Unknown header flag bits.
    std::string corrupt = pristine;
    image::ImageHeader lying = header;
    lying.flags |= 1u << 31;
    std::memcpy(corrupt.data(), &lying, sizeof(lying));
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
    EXPECT_NE(error.find("flags"), std::string::npos) << error;
  }
  {  // A probe table with every slot filled must be rejected (an unterminated probe
     // loop would otherwise hang the resolver on any miss).
    std::string corrupt = pristine;
    for (uint64_t i = 0; i < header.table_capacity; ++i) {
      NameInterner::FrozenSlot slot;
      char* at = corrupt.data() + header.slots_offset + i * sizeof(slot);
      std::memcpy(&slot, at, sizeof(slot));
      if (slot.id == kNoName) {
        slot.id = 0;
        std::memcpy(at, &slot, sizeof(slot));
      }
    }
    EXPECT_FALSE(Adopt(corrupt, image::ImageView::Verify::kStructure, &error).has_value());
    EXPECT_NE(error.find("occupancy"), std::string::npos) << error;
  }
}

TEST(ImageView, ChecksumCoversTheHeader) {
  // Flipping a *valid* flag bit (fold_case) leaves the structure plausible but changes
  // lookup semantics; the checksum must still catch it because it covers the header.
  std::string buffer = image::ImageWriter::Freeze(PaperRouteSet());
  image::ImageHeader header;
  std::memcpy(&header, buffer.data(), sizeof(header));
  header.flags ^= image::kFlagFoldCase;
  std::memcpy(buffer.data(), &header, sizeof(header));
  std::string error;
  EXPECT_FALSE(Adopt(buffer, image::ImageView::Verify::kChecksum, &error).has_value());
  EXPECT_NE(error.find("checksum"), std::string::npos) << error;
}

TEST(FrozenImage, FileRoundTripThroughMmap) {
  RouteSet routes = PaperRouteSet();
  fs::path path = fs::temp_directory_path() /
                  ("pathalias_image_test_" + std::to_string(getpid()) + ".pari");
  ASSERT_TRUE(image::ImageWriter::WriteFile(routes, path.string()));

  std::string error;
  auto opened =
      FrozenImage::Open(path.string(), image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(opened.has_value()) << error;
  EXPECT_EQ(opened->routes().size(), routes.size());

  FrozenResolver resolver(&opened->routes(), ResolveOptions{});
  std::string_view matched;
  RouteView route = resolver.Lookup("blue.rutgers.edu", &matched);
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(matched, ".edu");
  EXPECT_EQ(route.route, "seismo!%s");

  fs::remove(path);
}

TEST(FrozenImage, OpenRejectsMissingAndCorruptFiles) {
  std::string error;
  EXPECT_FALSE(FrozenImage::Open("/nonexistent/image.pari",
                                 image::ImageView::Verify::kStructure, &error)
                   .has_value());

  fs::path path = fs::temp_directory_path() /
                  ("pathalias_image_test_bad_" + std::to_string(getpid()) + ".pari");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a frozen route image";
  }
  EXPECT_FALSE(
      FrozenImage::Open(path.string(), image::ImageView::Verify::kStructure, &error)
          .has_value());
  fs::remove(path);
}

TEST(ImageWriter, GenerationStampRoundTripsThroughTheFile) {
  RouteSet routes = PaperRouteSet();
  fs::path path = fs::temp_directory_path() /
                  ("pathalias_image_gen_" + std::to_string(getpid()) + ".pari");
  ASSERT_TRUE(image::ImageWriter::WriteFile(routes, path.string(), /*generation=*/17));
  std::string error;
  auto opened =
      FrozenImage::Open(path.string(), image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(opened.has_value()) << error;
  EXPECT_EQ(opened->view().header().generation, 17u);
  // An unstamped freeze reads back as generation 0 (the legacy value).
  std::string unstamped = image::ImageWriter::Freeze(routes);
  auto view = Adopt(unstamped, image::ImageView::Verify::kChecksum);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->header().generation, 0u);
  fs::remove(path);
}

// Crash-safety regression (the historical bug was rename-without-fsync): an
// injected failure at ANY publish step must leave the previously published
// image fully intact and openable — never a short or torn file.
class ImagePublishFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            ("pathalias_image_fault_" + std::to_string(getpid()) + ".pari");
    fs::remove(path_);
    fs::remove(path_.string() + ".tmp");
    routes_ = PaperRouteSet();
    ASSERT_TRUE(image::ImageWriter::WriteFile(routes_, path_.string(), /*generation=*/1));
  }
  void TearDown() override {
    support::failpoint::Reset();
    fs::remove(path_);
    fs::remove(path_.string() + ".tmp");
  }

  void ExpectOldImageIntact() {
    std::string error;
    auto opened =
        FrozenImage::Open(path_.string(), image::ImageView::Verify::kChecksum, &error);
    ASSERT_TRUE(opened.has_value()) << error;
    EXPECT_EQ(opened->view().header().generation, 1u);
  }

  fs::path path_;
  RouteSet routes_;
};

TEST_F(ImagePublishFaultTest, FailedRenameNeverTearsThePublishedImage) {
  std::string error;
  ASSERT_TRUE(support::failpoint::Arm("image.publish.rename", "always,errno:EIO"));
  EXPECT_FALSE(
      image::ImageWriter::Refreeze(routes_, path_.string(), /*generation=*/2, &error));
  EXPECT_FALSE(error.empty());
  support::failpoint::Reset();
  ExpectOldImageIntact();
  EXPECT_FALSE(fs::exists(path_.string() + ".tmp"));  // torn temp is unlinked
}

TEST_F(ImagePublishFaultTest, ShortWriteNeverTearsThePublishedImage) {
  std::string error;
  // The .write site lands HALF the bytes then fails — the worst torn-write case.
  ASSERT_TRUE(support::failpoint::Arm("image.publish.write", "always,errno:ENOSPC"));
  EXPECT_FALSE(
      image::ImageWriter::Refreeze(routes_, path_.string(), /*generation=*/2, &error));
  EXPECT_NE(error.find("No space"), std::string::npos) << error;
  support::failpoint::Reset();
  ExpectOldImageIntact();
  EXPECT_FALSE(fs::exists(path_.string() + ".tmp"));
}

TEST_F(ImagePublishFaultTest, FailedFsyncNeverTearsThePublishedImage) {
  std::string error;
  ASSERT_TRUE(support::failpoint::Arm("image.publish.fsync", "always,errno:EIO"));
  EXPECT_FALSE(
      image::ImageWriter::Refreeze(routes_, path_.string(), /*generation=*/2, &error));
  support::failpoint::Reset();
  ExpectOldImageIntact();
}

TEST_F(ImagePublishFaultTest, LeftoverTempJunkFromACrashIsOverwritten) {
  {
    std::ofstream junk(path_.string() + ".tmp", std::ios::binary);
    junk << "half-written image from a crashed publish";
  }
  std::string error;
  ASSERT_TRUE(
      image::ImageWriter::Refreeze(routes_, path_.string(), /*generation=*/2, &error))
      << error;
  auto opened =
      FrozenImage::Open(path_.string(), image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(opened.has_value()) << error;
  EXPECT_EQ(opened->view().header().generation, 2u);
  EXPECT_FALSE(fs::exists(path_.string() + ".tmp"));
}

TEST_F(ImagePublishFaultTest, MmapFailureFallsBackToReadingTheWholeFile) {
  std::string error;
  ASSERT_TRUE(support::failpoint::Arm("image.mmap", "always"));
  auto opened =
      FrozenImage::Open(path_.string(), image::ImageView::Verify::kChecksum, &error);
  ASSERT_TRUE(opened.has_value()) << error;  // read() fallback served the open
  EXPECT_EQ(opened->routes().size(), routes_.size());
}

TEST(FrozenInterner, AdoptedInternerIsReadOnly) {
  RouteSet routes = PaperRouteSet();
  std::string buffer = image::ImageWriter::Freeze(routes);
  auto view = Adopt(buffer, image::ImageView::Verify::kChecksum);
  ASSERT_TRUE(view.has_value());
  NameInterner frozen = NameInterner::AdoptFrozen(view->interner_view());
  EXPECT_TRUE(frozen.frozen());
  EXPECT_EQ(frozen.size(), routes.names().size());
  // Adopted lookups return views into the image buffer, not copies.
  NameId id = frozen.Find("phs");
  ASSERT_NE(id, kNoName);
  const char* bytes = frozen.View(id).data();
  EXPECT_GE(bytes, buffer.data());
  EXPECT_LT(bytes, buffer.data() + buffer.size());
}

}  // namespace
}  // namespace pathalias
