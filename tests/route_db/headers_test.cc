#include "src/route_db/headers.h"

#include <gtest/gtest.h>

namespace pathalias {
namespace {

RouteSet CbosgdRoutes() {
  // The route database as cbosgd would compute it for the paper's §Perspectives
  // fragment: cbosgd -- princeton -- seismo -- mcvax.
  RouteSet set;
  set.Add("princeton", "princeton!%s");
  set.Add("seismo", "seismo!%s");
  set.Add("mcvax", "seismo!mcvax!%s");
  return set;
}

class HeadersTest : public ::testing::Test {
 protected:
  RouteSet routes = CbosgdRoutes();
  Resolver resolver{&routes, ResolveOptions{}};
  HeaderRewriter originator{"cbosgd", &resolver};
  HeaderRewriter relay{"princeton", nullptr};
};

TEST_F(HeadersTest, OriginatorExpandsRecipientsFromDatabase) {
  EXPECT_EQ(originator.RewriteAddress("mcvax!piet", MailRole::kOriginate),
            "seismo!mcvax!piet");
  EXPECT_EQ(originator.RewriteAddress("honey@princeton", MailRole::kOriginate),
            "princeton!honey");
}

TEST_F(HeadersTest, OriginatorLeavesUnknownHostsAlone) {
  EXPECT_EQ(originator.RewriteAddress("nowhere!user", MailRole::kOriginate),
            "nowhere!user");
}

TEST_F(HeadersTest, RelayNeverTouchesRecipients) {
  // The cbosgd lesson: abbreviating seismo!mcvax!piet to mcvax!piet makes the copy
  // recipient cbosgd!mcvax!piet from everyone else's perspective — unroutable.
  EXPECT_EQ(relay.RewriteAddress("seismo!mcvax!piet", MailRole::kRelay),
            "seismo!mcvax!piet");
  EXPECT_EQ(relay.RewriteAddress("piet@mcvax", MailRole::kRelay), "piet@mcvax");
}

TEST_F(HeadersTest, PaperCbosgdMessageSurvivesTheRelay) {
  // The message as it arrives on princeton in the paper, envelope included.
  constexpr std::string_view kArrived =
      "From cbosgd!mark Sun Feb 9 13:14:58 EST 1986\n"
      "To: princeton!honey\n"
      "Cc: seismo!mcvax!piet\n"
      "\n"
      "body text\n";
  // princeton relays it onward (say to a departmental machine).
  std::string relayed = relay.RewriteMessage(kArrived, MailRole::kRelay);
  EXPECT_NE(relayed.find("From princeton!cbosgd!mark"), std::string::npos)
      << "the relative From path grows by one hop";
  EXPECT_NE(relayed.find("remote from princeton"), std::string::npos);
  EXPECT_NE(relayed.find("Cc: seismo!mcvax!piet"), std::string::npos)
      << "the copy recipient is NOT abbreviated";
  EXPECT_NE(relayed.find("body text"), std::string::npos);
}

TEST_F(HeadersTest, OriginatorFromGetsHostQualified) {
  std::string message = originator.RewriteMessage(
      "From: mark\nTo: mcvax!piet\n\nhi\n", MailRole::kOriginate);
  EXPECT_NE(message.find("From: cbosgd!mark"), std::string::npos)
      << "a host must not generate a return path that would be rejected if used";
  EXPECT_NE(message.find("To: seismo!mcvax!piet"), std::string::npos);
}

TEST_F(HeadersTest, AddressListsAndContinuationsHandled) {
  std::string message = originator.RewriteMessage(
      "To: mcvax!piet, honey@princeton,\n\tseismo!rick\n\n.\n", MailRole::kOriginate);
  EXPECT_NE(message.find("To: seismo!mcvax!piet, princeton!honey, seismo!rick"),
            std::string::npos)
      << message;
}

TEST_F(HeadersTest, NonAddressHeadersAndBodyUntouched) {
  constexpr std::string_view kMessage =
      "Subject: pathalias!is@great\n"
      "X-Debug: mcvax!piet\n"
      "\n"
      "To: not a header anymore\n";
  std::string rewritten = originator.RewriteMessage(kMessage, MailRole::kOriginate);
  EXPECT_EQ(rewritten, kMessage) << "other message data should not be modified at all";
}

TEST_F(HeadersTest, GatewayTranslatesToRfc822) {
  HeaderRewriter gateway{"seismo", nullptr,
                         HeaderRewriteOptions{.gateway_target = AddressStyle::kRfc822}};
  EXPECT_EQ(gateway.RewriteAddress("mcvax!cwi!piet", MailRole::kGateway),
            "piet%cwi@mcvax");
  std::string message = gateway.RewriteMessage(
      "From: ihnp4!mark\nTo: mcvax!piet\n\n.\n", MailRole::kGateway);
  EXPECT_NE(message.find("To: piet@mcvax"), std::string::npos) << message;
  EXPECT_NE(message.find("From: mark%ihnp4@seismo"), std::string::npos)
      << "the gateway inserts itself into the return path: " << message;
}

TEST_F(HeadersTest, GatewayTranslatesToUucp) {
  HeaderRewriter gateway{"seismo", nullptr,
                         HeaderRewriteOptions{.gateway_target = AddressStyle::kUucp}};
  EXPECT_EQ(gateway.RewriteAddress("piet%cwi@mcvax", MailRole::kGateway),
            "mcvax!cwi!piet");
  EXPECT_EQ(gateway.RewriteAddress("postel@f.isi.usc.edu", MailRole::kGateway),
            "f.isi.usc.edu!postel");
}

TEST_F(HeadersTest, RoundTripThroughGatewaysPreservesDeliveryOrder) {
  HeaderRewriter to_arpa{"gwa", nullptr,
                         HeaderRewriteOptions{.gateway_target = AddressStyle::kRfc822}};
  HeaderRewriter to_uucp{"gwb", nullptr,
                         HeaderRewriteOptions{.gateway_target = AddressStyle::kUucp}};
  std::string rfc = to_arpa.RewriteAddress("a!b!c!user", MailRole::kGateway);
  EXPECT_EQ(rfc, "user%c%b@a");
  EXPECT_EQ(to_uucp.RewriteAddress(rfc, MailRole::kGateway), "a!b!c!user");
}

TEST_F(HeadersTest, EmptyMessageAndHeaderOnlyMessage) {
  EXPECT_EQ(relay.RewriteMessage("", MailRole::kRelay), "");
  std::string headers_only = relay.RewriteMessage("To: a!b\n", MailRole::kRelay);
  EXPECT_EQ(headers_only, "To: a!b\n");
}

}  // namespace
}  // namespace pathalias
