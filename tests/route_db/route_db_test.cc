#include "src/route_db/route_db.h"

#include <gtest/gtest.h>

namespace pathalias {
namespace {

TEST(RouteSet, FromTextTwoColumnLayout) {
  RouteSet set = RouteSet::FromText("unc\t%s\nduke\tduke!%s\n");
  EXPECT_EQ(set.size(), 2u);
  ASSERT_NE(set.Find("duke"), nullptr);
  EXPECT_EQ(set.Find("duke")->route, "duke!%s");
  EXPECT_EQ(set.Find("duke")->cost, -1) << "no cost column";
}

TEST(RouteSet, FromTextThreeColumnLayout) {
  RouteSet set = RouteSet::FromText("0\tunc\t%s\n500\tduke\tduke!%s\n");
  ASSERT_NE(set.Find("duke"), nullptr);
  EXPECT_EQ(set.Find("duke")->cost, 500);
  EXPECT_EQ(set.Find("duke")->route, "duke!%s");
}

TEST(RouteSet, FromTextSkipsCommentsAndBlanks) {
  RouteSet set = RouteSet::FromText("# header\n\nhost\th!%s\n");
  EXPECT_EQ(set.size(), 1u);
}

TEST(RouteSet, MalformedLinesWarnAndSkip) {
  Diagnostics diag;
  RouteSet set = RouteSet::FromText("bad line without tabs\nx\ty!%s\nbad\ta\tb\tc\n", &diag);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(diag.warning_count(), 2);
}

TEST(RouteSet, BadCostColumnWarns) {
  Diagnostics diag;
  RouteSet set = RouteSet::FromText("notanumber\thost\troute!%s\n", &diag);
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(diag.warning_count(), 1);
}

TEST(RouteSet, LaterAddReplaces) {
  RouteSet set;
  set.Add("h", "old!%s", 10);
  set.Add("h", "new!%s", 5);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.Find("h")->route, "new!%s");
  EXPECT_EQ(set.Find("h")->cost, 5);
}

TEST(RouteSet, ToTextRoundTrip) {
  RouteSet set;
  set.Add("a", "%s", 0);
  set.Add("b", "b!%s", 100);
  std::string text = set.ToText(/*include_costs=*/true);
  EXPECT_EQ(text, "0\ta\t%s\n100\tb\tb!%s\n");
  RouteSet reparsed = RouteSet::FromText(text);
  EXPECT_EQ(reparsed.size(), 2u);
  EXPECT_EQ(reparsed.Find("b")->cost, 100);
}

TEST(RouteSet, CdbRoundTripPreservesCosts) {
  RouteSet set;
  set.Add("a", "%s", 0);
  set.Add("mit-ai", "duke!research!ucbvax!%s@mit-ai", 3395);
  set.Add("nocost", "n!%s");  // cost -1
  auto reloaded = RouteSet::FromCdbBuffer(set.ToCdbBuffer());
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->size(), 3u);
  EXPECT_EQ(reloaded->Find("mit-ai")->cost, 3395);
  EXPECT_EQ(reloaded->Find("mit-ai")->route, "duke!research!ucbvax!%s@mit-ai");
  EXPECT_EQ(reloaded->Find("nocost")->cost, -1);
  EXPECT_EQ(reloaded->Find("nocost")->route, "n!%s");
}

TEST(RouteSet, FromCdbBufferRejectsGarbage) {
  EXPECT_FALSE(RouteSet::FromCdbBuffer("not a cdb image").has_value());
}

TEST(RouteSet, FromEntriesCopiesEverything) {
  std::vector<RouteEntry> entries{{"x", "x!%s", 42, nullptr}, {"y", "y!%s", 7, nullptr}};
  RouteSet set = RouteSet::FromEntries(entries);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.Find("x")->cost, 42);
}

}  // namespace
}  // namespace pathalias
